#ifndef FAIRLAW_CORE_REGISTRY_H_
#define FAIRLAW_CORE_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "metrics/fairness_metric.h"

namespace fairlaw {

/// A registered group-fairness metric: evaluates a MetricInput at a
/// tolerance.
using MetricFn = std::function<Result<metrics::MetricReport>(
    const metrics::MetricInput&, double tolerance)>;

/// Descriptor of one registered metric.
struct MetricEntry {
  std::string name;
  bool requires_labels = false;
  std::string paper_section;  // §III anchor, e.g. "III-A"
  MetricFn fn;
};

/// Registry of the group metrics fairlaw ships, keyed by the canonical
/// names used across reports, the legal doctrine mapping, and the
/// checklist. Custom metrics can be registered on a copy.
class MetricRegistry {
 public:
  /// The built-in registry (demographic parity, equal opportunity,
  /// equalized odds, demographic disparity, disparate impact, predictive
  /// parity, accuracy equality).
  static const MetricRegistry& Default();

  /// Registers a metric; fails on duplicate name.
  FAIRLAW_NODISCARD Status Register(MetricEntry entry);

  /// Looks up a metric by name. Takes a string_view so call sites with
  /// literals or substrings do not materialize a temporary std::string.
  FAIRLAW_NODISCARD Result<const MetricEntry*> Get(std::string_view name) const;

  /// All registered names in registration order.
  std::vector<std::string> Names() const;

  size_t size() const { return entries_.size(); }

 private:
  std::vector<MetricEntry> entries_;
};

}  // namespace fairlaw

#endif  // FAIRLAW_CORE_REGISTRY_H_
