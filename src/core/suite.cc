#include "core/suite.h"

#include "base/string_util.h"
#include "metrics/fairness_metric.h"
#include "obs/obs.h"

namespace fairlaw {

std::string SuiteReport::Render() const {
  std::string out = audit.Render();
  if (!proxies.empty()) {
    out += "--- proxy audit (§IV-B) ---\n";
    for (const audit::ProxyFinding& finding : proxies) {
      out += "  " + finding.feature + ": cramers_v=" +
             FormatDouble(finding.cramers_v, 4) + " mi=" +
             FormatDouble(finding.mutual_information, 4) +
             " predictability_gain=" +
             FormatDouble(finding.predictability_gain, 4) +
             (finding.flagged ? "  <-- PROXY" : "") + "\n";
    }
  }
  if (subgroups.has_value()) {
    out += "--- subgroup audit (§IV-C) ---\n";
    out += "  examined " + std::to_string(subgroups->subgroups_examined) +
           " conjunctions (" +
           std::to_string(subgroups->subgroups_skipped_small) +
           " skipped for support)\n";
    size_t shown = 0;
    for (const audit::SubgroupFinding& finding : subgroups->findings) {
      if (shown++ >= 5) break;
      out += "  " + finding.subgroup.ToString() + ": n=" +
             std::to_string(finding.count) + " rate=" +
             FormatDouble(finding.selection_rate, 4) + " gap=" +
             FormatDouble(finding.gap, 4) + "\n";
    }
  }
  if (sampling.has_value()) {
    out += "--- sampling adequacy (§IV-F) ---\n";
    for (const audit::GroupSupport& support : sampling->groups) {
      out += "  " + support.group + ": n=" + std::to_string(support.count) +
             " ci_halfwidth=" + FormatDouble(support.ci_halfwidth, 4) +
             (support.adequate ? "" : "  <-- INADEQUATE") + "\n";
    }
  }
  if (four_fifths.has_value()) {
    out += "--- four-fifths screen (§II-B) ---\n";
    out += legal::RenderFourFifths(*four_fifths);
  }
  if (representation.has_value()) {
    out += "--- representation vs population (§IV-F) ---\n";
    for (const audit::GroupRepresentation& rep : representation->groups) {
      out += "  " + rep.group + ": data " +
             FormatDouble(rep.data_share, 4) + " vs reference " +
             FormatDouble(rep.reference_share, 4) + " (ratio " +
             FormatDouble(rep.representation_ratio, 4) + ")" +
             (rep.under_represented ? "  <-- UNDER-REPRESENTED" : "") +
             "\n";
    }
    out += "  TV=" + FormatDouble(representation->total_variation, 4) +
           " hellinger=" + FormatDouble(representation->hellinger, 4) +
           " chi2_p=" + FormatDouble(representation->chi_square_p_value, 4) +
           "\n";
  }
  out += all_clear ? "SUITE VERDICT: all clear\n"
                   : "SUITE VERDICT: issues found\n";
  return out;
}

Result<SuiteReport> RunFairnessSuite(const data::Table& table,
                                     const SuiteConfig& config) {
  obs::TraceSpan span("fairness_suite");
  SuiteReport report;
  FAIRLAW_ASSIGN_OR_RETURN(report.audit, audit::RunAudit(table, config.audit));
  report.all_clear = report.audit.all_satisfied;

  if (!config.proxy_candidates.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(
        report.proxies,
        audit::DetectProxies(table, config.audit.protected_column,
                             config.proxy_candidates, config.proxy_options));
    for (const audit::ProxyFinding& finding : report.proxies) {
      if (finding.flagged) report.all_clear = false;
    }
  }

  if (!config.subgroup_columns.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(
        report.subgroups,
        audit::AuditSubgroups(table, config.subgroup_columns,
                              config.audit.prediction_column,
                              config.subgroup_options));
    if (report.subgroups->any_violation) report.all_clear = false;
  }

  FAIRLAW_ASSIGN_OR_RETURN(
      metrics::MetricInput input,
      audit::MetricInputFromTable(table, config.audit.protected_column,
                                  config.audit.prediction_column,
                                  config.audit.label_column));
  if (config.check_sampling) {
    FAIRLAW_ASSIGN_OR_RETURN(
        report.sampling,
        audit::AssessSamplingAdequacy(input, config.sampling_options));
    // Inadequate sampling is a warning about estimate quality, not a
    // fairness violation; it does not flip all_clear.
  }
  if (config.check_four_fifths) {
    FAIRLAW_ASSIGN_OR_RETURN(report.four_fifths,
                             legal::FourFifthsTest(input));
    if (!report.four_fifths->passed) report.all_clear = false;
  }
  if (!config.population_shares.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(
        report.representation,
        audit::AuditRepresentation(table, config.audit.protected_column,
                                   config.population_shares,
                                   config.representation_options));
    if (!report.representation->composition_ok) report.all_clear = false;
  }
  return report;
}

}  // namespace fairlaw
