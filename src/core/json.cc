#include "core/json.h"

#include "audit/proxy.h"
#include "audit/report_io.h"
#include "audit/sampling_adequacy.h"
#include "audit/subgroup.h"
#include "legal/four_fifths.h"
#include "metrics/conditional_metrics.h"
#include "metrics/fairness_metric.h"

namespace fairlaw {

Result<std::string> MetricReportToJson(const metrics::MetricReport& report) {
  JsonWriter json;
  audit::WriteMetricReport(&json, report);
  return json.Finish();
}

Result<std::string> SuiteReportToJson(const SuiteReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Field("schema_version", audit::kReportSchemaVersion);
  json.Field("kind", std::string("suite_report"));
  json.Key("findings");
  json.BeginObject();
  json.Field("all_clear", report.all_clear);

  json.Key("metrics");
  json.BeginArray();
  for (const metrics::MetricReport& metric : report.audit.reports) {
    audit::WriteMetricReport(&json, metric);
  }
  json.EndArray();

  json.Key("conditional_metrics");
  json.BeginArray();
  for (const metrics::ConditionalReport& conditional :
       report.audit.conditional_reports) {
    audit::WriteConditionalReport(&json, conditional);
  }
  json.EndArray();

  if (report.audit.calibration.has_value()) {
    json.Key("calibration");
    audit::WriteCalibrationReport(&json, *report.audit.calibration);
  }
  if (report.audit.score_distribution.has_value()) {
    json.Key("score_distribution");
    audit::WriteScoreDistributionReport(&json,
                                        *report.audit.score_distribution);
  }

  json.Key("proxies");
  json.BeginArray();
  for (const audit::ProxyFinding& finding : report.proxies) {
    json.BeginObject();
    json.Field("feature", finding.feature);
    json.Field("cramers_v", finding.cramers_v);
    json.Field("mutual_information", finding.mutual_information);
    json.Field("predictability_gain", finding.predictability_gain);
    json.Field("flagged", finding.flagged);
    json.EndObject();
  }
  json.EndArray();

  if (report.subgroups.has_value()) {
    json.Key("subgroups");
    json.BeginObject();
    json.Field("examined",
               static_cast<int64_t>(report.subgroups->subgroups_examined));
    json.Field("any_violation", report.subgroups->any_violation);
    json.Key("findings");
    json.BeginArray();
    for (const audit::SubgroupFinding& finding :
         report.subgroups->findings) {
      json.BeginObject();
      json.Field("subgroup", finding.subgroup.ToString());
      json.Field("count", static_cast<int64_t>(finding.count));
      json.Field("selection_rate", finding.selection_rate);
      json.Field("gap", finding.gap);
      json.Field("weighted_gap", finding.weighted_gap);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  if (report.sampling.has_value()) {
    json.Key("sampling");
    json.BeginArray();
    for (const audit::GroupSupport& support : report.sampling->groups) {
      json.BeginObject();
      json.Field("group", support.group);
      json.Field("count", static_cast<int64_t>(support.count));
      json.Field("ci_halfwidth", support.ci_halfwidth);
      json.Field("adequate", support.adequate);
      json.EndObject();
    }
    json.EndArray();
  }

  if (report.four_fifths.has_value()) {
    json.Key("four_fifths");
    json.BeginObject();
    json.Field("reference_group", report.four_fifths->reference_group);
    json.Field("passed", report.four_fifths->passed);
    json.Field("adverse_impact_indicated",
               report.four_fifths->adverse_impact_indicated);
    json.Key("groups");
    json.BeginArray();
    for (const legal::FourFifthsGroup& group : report.four_fifths->groups) {
      json.BeginObject();
      json.Field("group", group.group);
      json.Field("selection_rate", group.selection_rate);
      json.Field("impact_ratio", group.impact_ratio);
      json.Field("below_threshold", group.below_threshold);
      json.Field("p_value", group.significance.p_value);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  json.EndObject();  // findings
  json.EndObject();  // envelope
  return json.Finish();
}

}  // namespace fairlaw
