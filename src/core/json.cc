#include "core/json.h"

#include <cmath>
#include <cstdio>

#include "audit/proxy.h"
#include "audit/sampling_adequacy.h"
#include "audit/subgroup.h"
#include "base/check.h"
#include "legal/four_fifths.h"
#include "metrics/conditional_metrics.h"
#include "metrics/fairness_metric.h"

namespace fairlaw {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (!stack_.empty() && !expecting_value_) {
    if (has_items_.back()) out_ += ',';
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  expecting_value_ = false;
}

void JsonWriter::EndObject() {
  FAIRLAW_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                    "EndObject() without a matching BeginObject()");
  FAIRLAW_CHECK_MSG(!expecting_value_,
                    "EndObject() called while a key awaits its value");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  expecting_value_ = false;
}

void JsonWriter::EndArray() {
  FAIRLAW_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                    "EndArray() without a matching BeginArray()");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::Key(const std::string& key) {
  FAIRLAW_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                    "Key() called outside an open object");
  FAIRLAW_CHECK_MSG(!expecting_value_, "Key() called while a value is due");
  if (has_items_.back()) out_ += ',';
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  expecting_value_ = true;
}

void JsonWriter::String(const std::string& value) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Number(double value) {
  Separate();
  if (std::isfinite(value)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    out_ += buffer;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  String(value);
}
void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  Number(value);
}
void JsonWriter::Field(const std::string& key, int64_t value) {
  Key(key);
  Int(value);
}
void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  Bool(value);
}

Result<std::string> JsonWriter::Finish() {
  if (!stack_.empty()) {
    return Status::FailedPrecondition("JsonWriter: " +
                                      std::to_string(stack_.size()) +
                                      " unclosed containers");
  }
  return out_;
}

namespace {

void WriteMetricReport(JsonWriter* json,
                       const metrics::MetricReport& report) {
  json->BeginObject();
  json->Field("metric", report.metric_name);
  json->Field("satisfied", report.satisfied);
  json->Field("max_gap", report.max_gap);
  json->Field("min_ratio", report.min_ratio);
  json->Field("tolerance", report.tolerance);
  if (!report.detail.empty()) json->Field("detail", report.detail);
  json->Key("groups");
  json->BeginArray();
  for (const metrics::GroupStats& gs : report.groups) {
    json->BeginObject();
    json->Field("group", gs.group);
    json->Field("count", gs.count);
    json->Field("selection_rate", gs.selection_rate);
    if (gs.actual_positives + gs.actual_negatives > 0) {
      json->Field("tpr", gs.tpr);
      json->Field("fpr", gs.fpr);
      json->Field("ppv", gs.ppv);
    }
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

Result<std::string> MetricReportToJson(const metrics::MetricReport& report) {
  JsonWriter json;
  WriteMetricReport(&json, report);
  return json.Finish();
}

Result<std::string> SuiteReportToJson(const SuiteReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Field("all_clear", report.all_clear);

  json.Key("metrics");
  json.BeginArray();
  for (const metrics::MetricReport& metric : report.audit.reports) {
    WriteMetricReport(&json, metric);
  }
  json.EndArray();

  json.Key("conditional_metrics");
  json.BeginArray();
  for (const metrics::ConditionalReport& conditional :
       report.audit.conditional_reports) {
    json.BeginObject();
    json.Field("metric", conditional.metric_name);
    json.Field("satisfied", conditional.satisfied);
    json.Field("max_gap", conditional.max_gap);
    json.Key("strata");
    json.BeginArray();
    for (const metrics::StratumReport& stratum : conditional.strata) {
      json.BeginObject();
      json.Field("stratum", stratum.stratum);
      json.Field("satisfied", stratum.report.satisfied);
      json.Field("gap", stratum.report.max_gap);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.Key("proxies");
  json.BeginArray();
  for (const audit::ProxyFinding& finding : report.proxies) {
    json.BeginObject();
    json.Field("feature", finding.feature);
    json.Field("cramers_v", finding.cramers_v);
    json.Field("mutual_information", finding.mutual_information);
    json.Field("predictability_gain", finding.predictability_gain);
    json.Field("flagged", finding.flagged);
    json.EndObject();
  }
  json.EndArray();

  if (report.subgroups.has_value()) {
    json.Key("subgroups");
    json.BeginObject();
    json.Field("examined",
               static_cast<int64_t>(report.subgroups->subgroups_examined));
    json.Field("any_violation", report.subgroups->any_violation);
    json.Key("findings");
    json.BeginArray();
    for (const audit::SubgroupFinding& finding :
         report.subgroups->findings) {
      json.BeginObject();
      json.Field("subgroup", finding.subgroup.ToString());
      json.Field("count", static_cast<int64_t>(finding.count));
      json.Field("selection_rate", finding.selection_rate);
      json.Field("gap", finding.gap);
      json.Field("weighted_gap", finding.weighted_gap);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  if (report.sampling.has_value()) {
    json.Key("sampling");
    json.BeginArray();
    for (const audit::GroupSupport& support : report.sampling->groups) {
      json.BeginObject();
      json.Field("group", support.group);
      json.Field("count", static_cast<int64_t>(support.count));
      json.Field("ci_halfwidth", support.ci_halfwidth);
      json.Field("adequate", support.adequate);
      json.EndObject();
    }
    json.EndArray();
  }

  if (report.four_fifths.has_value()) {
    json.Key("four_fifths");
    json.BeginObject();
    json.Field("reference_group", report.four_fifths->reference_group);
    json.Field("passed", report.four_fifths->passed);
    json.Field("adverse_impact_indicated",
               report.four_fifths->adverse_impact_indicated);
    json.Key("groups");
    json.BeginArray();
    for (const legal::FourFifthsGroup& group : report.four_fifths->groups) {
      json.BeginObject();
      json.Field("group", group.group);
      json.Field("selection_rate", group.selection_rate);
      json.Field("impact_ratio", group.impact_ratio);
      json.Field("below_threshold", group.below_threshold);
      json.Field("p_value", group.significance.p_value);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  json.EndObject();
  return json.Finish();
}

}  // namespace fairlaw
