#ifndef FAIRLAW_CORE_FAIRLAW_H_
#define FAIRLAW_CORE_FAIRLAW_H_

// Umbrella header for the fairlaw library: fairness auditing, bias
// mitigation, and legal-doctrine mapping, reproducing "Fairness in AI:
// challenges in bridging the gap between algorithms and law"
// (Fairness in AI Workshop @ ICDE 2024). Include the per-module headers
// directly in performance-sensitive translation units.

#include "audit/auditor.h"          // IWYU pragma: export
#include "audit/manipulation.h"     // IWYU pragma: export
#include "audit/proxy.h"            // IWYU pragma: export
#include "audit/representation.h"   // IWYU pragma: export
#include "audit/sampling_adequacy.h"  // IWYU pragma: export
#include "audit/subgroup.h"         // IWYU pragma: export
#include "causal/counterfactual.h"  // IWYU pragma: export
#include "causal/graph_analysis.h"  // IWYU pragma: export
#include "causal/scm.h"             // IWYU pragma: export
#include "core/json.h"              // IWYU pragma: export
#include "core/registry.h"          // IWYU pragma: export
#include "core/suite.h"             // IWYU pragma: export
#include "core/version.h"           // IWYU pragma: export
#include "data/csv.h"               // IWYU pragma: export
#include "data/group_by.h"          // IWYU pragma: export
#include "data/impute.h"            // IWYU pragma: export
#include "data/table.h"             // IWYU pragma: export
#include "legal/burden_shifting.h"  // IWYU pragma: export
#include "legal/checklist.h"        // IWYU pragma: export
#include "legal/doctrine.h"         // IWYU pragma: export
#include "legal/four_fifths.h"      // IWYU pragma: export
#include "legal/jurisdiction.h"     // IWYU pragma: export
#include "legal/proportionality.h"  // IWYU pragma: export
#include "legal/report.h"           // IWYU pragma: export
#include "metrics/calibration_metric.h"       // IWYU pragma: export
#include "metrics/conditional_metrics.h"      // IWYU pragma: export
#include "metrics/counterfactual_fairness.h"  // IWYU pragma: export
#include "metrics/group_metrics.h"            // IWYU pragma: export
#include "metrics/impossibility.h"            // IWYU pragma: export
#include "metrics/individual_fairness.h"      // IWYU pragma: export
#include "metrics/inequality_indices.h"       // IWYU pragma: export
#include "metrics/ranking_metrics.h"          // IWYU pragma: export
#include "mitigation/di_remover.h"            // IWYU pragma: export
#include "mitigation/group_blind_repair.h"    // IWYU pragma: export
#include "mitigation/group_calibrator.h"      // IWYU pragma: export
#include "mitigation/randomized_eodds.h"      // IWYU pragma: export
#include "mitigation/quota.h"                 // IWYU pragma: export
#include "mitigation/regularized_lr.h"        // IWYU pragma: export
#include "mitigation/reweighing.h"            // IWYU pragma: export
#include "mitigation/sampling.h"              // IWYU pragma: export
#include "mitigation/threshold_optimizer.h"   // IWYU pragma: export
#include "ml/calibration.h"                   // IWYU pragma: export
#include "ml/cross_validation.h"              // IWYU pragma: export
#include "ml/decision_tree.h"                 // IWYU pragma: export
#include "ml/feature_importance.h"            // IWYU pragma: export
#include "ml/isotonic.h"                      // IWYU pragma: export
#include "ml/knn.h"                           // IWYU pragma: export
#include "ml/logistic_regression.h"           // IWYU pragma: export
#include "ml/model_eval.h"                    // IWYU pragma: export
#include "ml/naive_bayes.h"                   // IWYU pragma: export
#include "ml/random_forest.h"                 // IWYU pragma: export
#include "ml/split.h"                         // IWYU pragma: export
#include "ml/standardizer.h"                  // IWYU pragma: export
#include "simulation/adversary.h"             // IWYU pragma: export
#include "simulation/feedback_loop.h"         // IWYU pragma: export
#include "simulation/scenarios.h"             // IWYU pragma: export
#include "stats/bootstrap.h"                  // IWYU pragma: export
#include "stats/distance.h"                   // IWYU pragma: export
#include "stats/hypothesis.h"                 // IWYU pragma: export
#include "stats/mmd.h"                        // IWYU pragma: export
#include "stats/ot.h"                         // IWYU pragma: export
#include "stats/sample_complexity.h"          // IWYU pragma: export

#endif  // FAIRLAW_CORE_FAIRLAW_H_
