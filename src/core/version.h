#ifndef FAIRLAW_CORE_VERSION_H_
#define FAIRLAW_CORE_VERSION_H_

namespace fairlaw {

/// Library version (semantic).
inline constexpr int kVersionMajor = 0;
inline constexpr int kVersionMinor = 1;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "0.1.0";

}  // namespace fairlaw

#endif  // FAIRLAW_CORE_VERSION_H_
