#ifndef FAIRLAW_CORE_JSON_H_
#define FAIRLAW_CORE_JSON_H_

#include <string>

// The streaming JsonWriter moved to base/json_writer.h (rank 0) so the
// audit report envelope and the serve daemon can emit JSON without
// depending on core; re-exported here so existing call sites keep one
// include.
#include "base/json_writer.h"  // IWYU pragma: export
#include "base/result.h"
#include "core/suite.h"
#include "metrics/fairness_metric.h"

namespace fairlaw {

/// Serializes a full suite report (metric reports, proxy findings,
/// subgroup findings, sampling support, four-fifths screen) inside the
/// versioned envelope from audit/report_io.h:
/// {"schema_version":2,"kind":"suite_report","findings":{...}}.
FAIRLAW_NODISCARD Result<std::string> SuiteReportToJson(const SuiteReport& report);

/// Serializes a single metric report (no envelope — it is the embedded
/// per-metric shape shared with audit::WriteMetricReport).
FAIRLAW_NODISCARD Result<std::string> MetricReportToJson(const metrics::MetricReport& report);

}  // namespace fairlaw

#endif  // FAIRLAW_CORE_JSON_H_
