#include "core/registry.h"

#include "base/check.h"
#include "metrics/group_metrics.h"

namespace fairlaw {

const MetricRegistry& MetricRegistry::Default() {
  static const MetricRegistry& registry = *[] {
    auto* r = new MetricRegistry;
    auto must = [r](MetricEntry entry) {
      FAIRLAW_CHECK_OK(r->Register(std::move(entry)));
    };
    must({"demographic_parity", false, "III-A",
          [](const metrics::MetricInput& input, double tolerance) {
            return metrics::DemographicParity(input, tolerance);
          }});
    must({"equal_opportunity", true, "III-C",
          [](const metrics::MetricInput& input, double tolerance) {
            return metrics::EqualOpportunity(input, tolerance);
          }});
    must({"equalized_odds", true, "III-D",
          [](const metrics::MetricInput& input, double tolerance) {
            return metrics::EqualizedOdds(input, tolerance);
          }});
    must({"demographic_disparity", false, "III-E",
          [](const metrics::MetricInput& input, double tolerance) {
            (void)tolerance;  // definition has a fixed 1/2 cut
            return metrics::DemographicDisparity(input);
          }});
    must({"disparate_impact_ratio", false, "IV-A",
          [](const metrics::MetricInput& input, double tolerance) {
            // tolerance is reused as the ratio threshold; 0 means the
            // default 0.8 four-fifths cut.
            return metrics::DisparateImpactRatio(
                input, tolerance > 0.0 ? tolerance : 0.8);
          }});
    must({"predictive_parity", true, "III (companion)",
          [](const metrics::MetricInput& input, double tolerance) {
            return metrics::PredictiveParity(input, tolerance);
          }});
    must({"accuracy_equality", true, "III (companion)",
          [](const metrics::MetricInput& input, double tolerance) {
            return metrics::AccuracyEquality(input, tolerance);
          }});
    return r;
  }();
  return registry;
}

Status MetricRegistry::Register(MetricEntry entry) {
  if (entry.name.empty()) {
    return Status::Invalid("MetricRegistry: empty metric name");
  }
  if (!entry.fn) {
    return Status::Invalid("MetricRegistry: metric '" + entry.name +
                           "' has no function");
  }
  for (const MetricEntry& existing : entries_) {
    if (existing.name == entry.name) {
      return Status::AlreadyExists("MetricRegistry: '" + entry.name +
                                   "' already registered");
    }
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<const MetricEntry*> MetricRegistry::Get(std::string_view name) const {
  for (const MetricEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return Status::NotFound("MetricRegistry: no metric named '" +
                          std::string(name) + "'");
}

std::vector<std::string> MetricRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const MetricEntry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace fairlaw
