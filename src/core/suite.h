#ifndef FAIRLAW_CORE_SUITE_H_
#define FAIRLAW_CORE_SUITE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/proxy.h"
#include "audit/representation.h"
#include "audit/sampling_adequacy.h"
#include "audit/subgroup.h"
#include "base/result.h"
#include "data/table.h"
#include "legal/four_fifths.h"

namespace fairlaw {

/// Configuration of the one-stop fairness suite: the metric audit plus
/// the §IV risk audits (proxies, subgroups, sampling) and the §II legal
/// screen.
struct SuiteConfig {
  audit::AuditConfig audit;
  /// Candidate feature columns for the proxy audit; empty disables it.
  std::vector<std::string> proxy_candidates;
  audit::ProxyDetectionOptions proxy_options;
  /// Attribute columns for the subgroup audit; empty disables it
  /// (typically the protected columns plus coarse feature buckets).
  std::vector<std::string> subgroup_columns;
  audit::SubgroupAuditOptions subgroup_options;
  /// Run the sampling adequacy assessment.
  bool check_sampling = true;
  audit::SamplingAdequacyOptions sampling_options;
  /// Run the EEOC four-fifths screen.
  bool check_four_fifths = true;
  /// Population reference shares for the protected column (group ->
  /// share); non-empty enables the representation audit (§IV-F).
  std::map<std::string, double> population_shares;
  audit::RepresentationAuditOptions representation_options;
};

/// Everything the suite produced.
struct SuiteReport {
  audit::AuditResult audit;
  std::vector<audit::ProxyFinding> proxies;
  std::optional<audit::SubgroupAuditResult> subgroups;
  std::optional<audit::SamplingReport> sampling;
  std::optional<legal::FourFifthsResult> four_fifths;
  std::optional<audit::RepresentationReport> representation;
  bool all_clear = true;

  std::string Render() const;
};

/// The public one-call entry point: runs the full configured suite over
/// a table holding protected attribute(s), predictions, and (optionally)
/// labels.
FAIRLAW_NODISCARD Result<SuiteReport> RunFairnessSuite(const data::Table& table,
                                     const SuiteConfig& config);

}  // namespace fairlaw

#endif  // FAIRLAW_CORE_SUITE_H_
