#include "mitigation/regularized_lr.h"

#include <cmath>

#include "ml/logistic_regression.h"

namespace fairlaw::mitigation {

FairLogisticRegression::FairLogisticRegression(std::vector<int> group_indicator,
                                               FairLrOptions options)
    : group_indicator_(std::move(group_indicator)), options_(options) {}

Status FairLogisticRegression::Fit(const ml::Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (group_indicator_.size() != data.size()) {
    return Status::Invalid("FairLogisticRegression: group indicator size "
                           "mismatch");
  }
  if (options_.fairness_weight < 0.0) {
    return Status::Invalid("FairLogisticRegression: fairness_weight must be "
                           ">= 0");
  }
  double n_group[2] = {0.0, 0.0};
  for (int g : group_indicator_) {
    if (g != 0 && g != 1) {
      return Status::Invalid("FairLogisticRegression: group indicator must "
                             "be 0/1");
    }
    n_group[g] += 1.0;
  }
  if (n_group[0] == 0.0 || n_group[1] == 0.0) {
    return Status::Invalid("FairLogisticRegression: both groups must be "
                           "present");
  }

  const size_t n = data.size();
  const size_t d = data.num_features();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  std::vector<double> probs(n);
  std::vector<double> gradient(d);
  std::vector<double> gap_gradient(d);
  double previous_loss = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    // Forward pass.
    double mean_score[2] = {0.0, 0.0};
    for (size_t i = 0; i < n; ++i) {
      double z = bias_;
      for (size_t j = 0; j < d; ++j) z += weights_[j] * data.features[i][j];
      probs[i] = ml::Sigmoid(z);
      mean_score[group_indicator_[i]] += probs[i];
    }
    mean_score[0] /= n_group[0];
    mean_score[1] /= n_group[1];
    const double gap = mean_score[1] - mean_score[0];

    // Gradients: NLL + L2 + 2*lambda*gap * d(gap)/d(params).
    std::fill(gradient.begin(), gradient.end(), 0.0);
    std::fill(gap_gradient.begin(), gap_gradient.end(), 0.0);
    double bias_gradient = 0.0;
    double gap_bias_gradient = 0.0;
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double error = probs[i] - static_cast<double>(data.labels[i]);
      double sensitivity = probs[i] * (1.0 - probs[i]);
      double group_scale = group_indicator_[i] == 1 ? 1.0 / n_group[1]
                                                    : -1.0 / n_group[0];
      for (size_t j = 0; j < d; ++j) {
        gradient[j] += error * data.features[i][j];
        gap_gradient[j] += group_scale * sensitivity * data.features[i][j];
      }
      bias_gradient += error;
      gap_bias_gradient += group_scale * sensitivity;
      double pc = std::clamp(probs[i], 1e-12, 1.0 - 1e-12);
      loss -= data.labels[i] == 1 ? std::log(pc) : std::log(1.0 - pc);
    }
    loss /= static_cast<double>(n);
    loss += options_.fairness_weight * gap * gap;
    const double penalty_scale = 2.0 * options_.fairness_weight * gap;
    for (size_t j = 0; j < d; ++j) {
      gradient[j] = gradient[j] / static_cast<double>(n) +
                    options_.l2 * weights_[j] +
                    penalty_scale * gap_gradient[j];
      loss += 0.5 * options_.l2 * weights_[j] * weights_[j];
    }
    bias_gradient = bias_gradient / static_cast<double>(n) +
                    penalty_scale * gap_bias_gradient;

    for (size_t j = 0; j < d; ++j) {
      weights_[j] -= options_.learning_rate * gradient[j];
    }
    bias_ -= options_.learning_rate * bias_gradient;

    if (std::fabs(previous_loss - loss) < options_.tolerance) break;
    previous_loss = loss;
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> FairLogisticRegression::PredictProba(
    std::span<const double> x) const {
  if (!fitted_) {
    return Status::FailedPrecondition("FairLogisticRegression: not fitted");
  }
  if (x.size() != weights_.size()) {
    return Status::Invalid("FairLogisticRegression: feature width mismatch");
  }
  double z = bias_;
  for (size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return ml::Sigmoid(z);
}

}  // namespace fairlaw::mitigation
