#ifndef FAIRLAW_MITIGATION_THRESHOLD_OPTIMIZER_H_
#define FAIRLAW_MITIGATION_THRESHOLD_OPTIMIZER_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::mitigation {

// Post-processing threshold optimizer (Hardt, Price & Srebro [6]):
// instead of retraining, pick a separate decision threshold per protected
// group so the chosen criterion holds on the score distribution. This is
// the "equal outcome via group-dependent treatment" instrument — exactly
// the legal tension §IV-A describes, which is why the legal layer must be
// consulted before deploying it.

/// Criterion the per-group thresholds target.
enum class ThresholdCriterion {
  /// Equal selection rates P(R=+|A=a).
  kDemographicParity,
  /// Equal true positive rates (requires labels).
  kEqualOpportunity,
  /// Jointly near-equal TPR and FPR (requires labels; grid search).
  kEqualizedOdds,
};

/// Fitted per-group thresholds.
struct GroupThresholds {
  std::map<std::string, double> threshold;
  ThresholdCriterion criterion = ThresholdCriterion::kDemographicParity;
  std::string detail;

  /// Applies the thresholds: prediction_i = scores[i] >= threshold[group].
  FAIRLAW_NODISCARD Result<std::vector<int>> Apply(const std::vector<std::string>& groups,
                                 const std::vector<double>& scores) const;
};

struct ThresholdOptimizerOptions {
  /// Target selection rate for demographic parity; negative = use the
  /// pooled base selection rate at threshold 0.5.
  double target_rate = -1.0;
  /// Target TPR for equal opportunity; negative = pooled TPR at 0.5.
  double target_tpr = -1.0;
  /// Grid resolution for the equalized-odds search.
  size_t grid = 101;
};

/// Fits per-group thresholds on (groups, scores[, labels]).
/// Labels may be empty for kDemographicParity and are required otherwise.
FAIRLAW_NODISCARD Result<GroupThresholds> OptimizeThresholds(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    const std::vector<int>& labels, ThresholdCriterion criterion,
    const ThresholdOptimizerOptions& options = {});

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_THRESHOLD_OPTIMIZER_H_
