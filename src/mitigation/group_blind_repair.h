#ifndef FAIRLAW_MITIGATION_GROUP_BLIND_REPAIR_H_
#define FAIRLAW_MITIGATION_GROUP_BLIND_REPAIR_H_

#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::mitigation {

// Group-blind repair (§IV-F; Langbridge et al. [13], Zhou & Marecek
// [24]). The operational dataset does NOT carry the protected attribute;
// all that is available is (a) a small archival/research sample with
// per-group score distributions, and (b) the population-wide marginal
// shares of the protected groups.
//
// A shared *monotone* transport map cannot help here: it preserves ranks,
// so any threshold rule selects exactly the same individuals before and
// after. What group-blind information does allow is posterior
// compensation: from the reference group densities f_a and the marginals
// pi_a, every operational score x yields a posterior P(a | x), and the
// repair adds the posterior-expected deficit to the common barycenter,
//   T(x) = x + t * sum_a P(a | x) * (mu_bar - mu_a),
// with mu_bar = sum_a pi_a mu_a. Low scores, which are more likely to
// come from the disadvantaged group, get boosted; the map is non-
// monotone overall, so ranks — and therefore selections — genuinely
// change. In expectation the injected group bias is fully compensated;
// the residual per-threshold gap is bounded by the overlap of the group
// densities (the posterior's irreducible uncertainty), which is the
// honest information-theoretic limit of repairing without per-row access
// to the protected attribute.

/// Fitted group-blind repairer. Group densities are modeled as normals
/// estimated from the reference samples.
class GroupBlindRepair {
 public:
  /// Fits from reference per-group score samples (the small research
  /// dataset; >= 2 points each) and the population-wide group marginals
  /// (same order, non-negative, positive total; normalized internally).
  FAIRLAW_NODISCARD static Result<GroupBlindRepair> Fit(
      const std::vector<std::vector<double>>& reference_group_scores,
      const std::vector<double>& group_marginals);

  /// Applies the repair with strength t in [0,1] to operational scores
  /// that do not carry group labels.
  FAIRLAW_NODISCARD Result<std::vector<double>> Apply(std::span<const double> pooled_scores,
                                    double strength) const;

  /// Posterior P(group = a | score) under the fitted normal mixture.
  /// Exposed for tests and for downstream diagnostics.
  std::vector<double> PosteriorGroupProbabilities(double score) const;

  /// Marginal-weighted barycenter mean sum_a pi_a mu_a.
  double BarycenterMean() const { return barycenter_mean_; }

  /// Fitted per-group means (reference-sample order).
  const std::vector<double>& group_means() const { return means_; }

  /// Calibration factor applied to the posterior-expected deficit. The
  /// raw posterior correction under-compensates (posterior shrinkage
  /// averages each group's deficit toward zero), so Fit measures the
  /// achieved compensation on the reference samples and scales the
  /// correction so the *group-mean* gaps close at strength 1.
  double calibration() const { return calibration_; }

 private:
  GroupBlindRepair(std::vector<double> means, std::vector<double> stddevs,
                   std::vector<double> marginals, double barycenter_mean)
      : means_(std::move(means)),
        stddevs_(std::move(stddevs)),
        marginals_(std::move(marginals)),
        barycenter_mean_(barycenter_mean) {}

  /// Uncalibrated posterior-expected deficit at `score`.
  double RawCorrection(double score) const;

  std::vector<double> means_;
  std::vector<double> stddevs_;
  std::vector<double> marginals_;
  double barycenter_mean_;
  double calibration_ = 1.0;
};

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_GROUP_BLIND_REPAIR_H_
