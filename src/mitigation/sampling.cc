#include "mitigation/sampling.h"

#include <cmath>
#include <map>

#include "mitigation/reweighing.h"

namespace fairlaw::mitigation {

Result<std::vector<size_t>> PreferentialSamplingIndices(
    const std::vector<std::string>& groups, const std::vector<int>& labels,
    stats::Rng* rng) {
  if (rng == nullptr) {
    return Status::Invalid("PreferentialSampling: null rng");
  }
  // Reuse the reweighing targets: cell (a, y) should appear with
  // expected multiplicity w(a, y).
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> weights,
                           ReweighingWeights(groups, labels));

  std::vector<size_t> indices;
  indices.reserve(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    // Deterministic floor copies plus a Bernoulli for the fraction keeps
    // the expected cell size exactly at the reweighing target.
    double copies = weights[i];
    size_t whole = static_cast<size_t>(std::floor(copies));
    double fraction = copies - static_cast<double>(whole);
    for (size_t c = 0; c < whole; ++c) indices.push_back(i);
    if (rng->Bernoulli(fraction)) indices.push_back(i);
  }
  if (indices.empty()) {
    return Status::Internal("PreferentialSampling: produced empty sample");
  }
  return indices;
}

Result<ml::Dataset> ApplyPreferentialSampling(
    const std::vector<std::string>& groups, const ml::Dataset& data,
    stats::Rng* rng) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (groups.size() != data.size()) {
    return Status::Invalid("PreferentialSampling: groups/data size "
                           "mismatch");
  }
  FAIRLAW_ASSIGN_OR_RETURN(
      std::vector<size_t> indices,
      PreferentialSamplingIndices(groups, data.labels, rng));
  return data.Take(indices);
}

}  // namespace fairlaw::mitigation
