#ifndef FAIRLAW_MITIGATION_RANDOMIZED_EODDS_H_
#define FAIRLAW_MITIGATION_RANDOMIZED_EODDS_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "stats/rng.h"

namespace fairlaw::mitigation {

// Exact equalized-odds post-processing (Hardt, Price & Srebro [6], the
// full construction). Deterministic per-group thresholds can only reach
// points ON each group's ROC curve, and different groups' curves rarely
// intersect — which is why the grid search in threshold_optimizer.h is
// only approximate. The exact fix is a *randomized* decision rule: any
// (FPR, TPR) point inside a group's ROC hull is achievable by mixing
// threshold rules, so all groups can be driven to one shared target
// point in the intersection of their hulls, making TPR and FPR exactly
// equal in expectation.
//
// Construction per group, for a shared target (f*, t*):
//   1. The hull boundary point A = (f*, hull_g(f*)) is a mixture of the
//      two ROC vertices whose segment spans f*.
//   2. The diagonal point D = (f*, f*) is a label-blind coin with
//      P(positive) = f*.
//   3. Any t* in [f*, hull_g(f*)] is the mixture lambda*A + (1-lambda)*D.
// The shared target maximizes Youden's J = t - f over the lower envelope
// min_g hull_g(f).

/// Fitted randomized equalized-odds rule.
class RandomizedEqualizedOdds {
 public:
  /// Fits from validation data: per-row group, score, and true label.
  /// Every group needs both classes present.
  FAIRLAW_NODISCARD static Result<RandomizedEqualizedOdds> Fit(
      const std::vector<std::string>& groups,
      const std::vector<double>& scores, const std::vector<int>& labels,
      size_t fpr_grid = 101);

  /// Probability that the rule outputs 1 for a member of `group` with
  /// `score` (the decision is a Bernoulli draw of this probability).
  FAIRLAW_NODISCARD Result<double> PositiveProbability(const std::string& group,
                                     double score) const;

  /// Samples hard decisions for a batch.
  FAIRLAW_NODISCARD Result<std::vector<int>> Apply(const std::vector<std::string>& groups,
                                 const std::vector<double>& scores,
                                 stats::Rng* rng) const;

  /// The shared operating point all groups are driven to.
  double target_fpr() const { return target_fpr_; }
  double target_tpr() const { return target_tpr_; }

 private:
  /// Mixture of two threshold rules plus a diagonal coin.
  struct GroupRule {
    double threshold_hi = 0.0;  // stricter rule (lower FPR vertex)
    double threshold_lo = 0.0;  // looser rule (higher FPR vertex)
    double vertex_mix = 0.0;    // P(use lo rule) when playing the hull point
    double hull_weight = 1.0;   // P(play hull point); else diagonal coin
    double coin_rate = 0.0;     // diagonal coin P(positive) = f*
  };

  RandomizedEqualizedOdds() = default;

  std::map<std::string, GroupRule> rules_;
  double target_fpr_ = 0.0;
  double target_tpr_ = 0.0;
};

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_RANDOMIZED_EODDS_H_
