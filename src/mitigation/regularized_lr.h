#ifndef FAIRLAW_MITIGATION_REGULARIZED_LR_H_
#define FAIRLAW_MITIGATION_REGULARIZED_LR_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairlaw::ml {}  // forward-friendly

namespace fairlaw::mitigation {

/// Options for the fairness-regularized logistic regression.
struct FairLrOptions {
  double learning_rate = 0.1;
  int max_epochs = 500;
  double l2 = 1e-4;
  /// Weight of the demographic-parity penalty
  /// (mean score group1 - mean score group0)^2 added to the loss.
  double fairness_weight = 1.0;
  double tolerance = 1e-8;
};

/// In-processing mitigator: logistic regression whose training objective
/// adds a squared demographic-parity penalty on the mean predicted
/// probability between the two protected groups. `group_indicator[i]` is
/// 0/1 group membership for training row i (binary protected attribute).
///
/// Sweeping `fairness_weight` traces the accuracy-vs-parity frontier of
/// experiment E2.
class FairLogisticRegression : public ml::Classifier {
 public:
  FairLogisticRegression(std::vector<int> group_indicator,
                         FairLrOptions options = {});

  std::string name() const override { return "fair_logistic_regression"; }
  FAIRLAW_NODISCARD Status Fit(const ml::Dataset& data) override;
  FAIRLAW_NODISCARD Result<double> PredictProba(std::span<const double> x) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<int> group_indicator_;
  FairLrOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_REGULARIZED_LR_H_
