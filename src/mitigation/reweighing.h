#ifndef FAIRLAW_MITIGATION_REWEIGHING_H_
#define FAIRLAW_MITIGATION_REWEIGHING_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "ml/dataset.h"

namespace fairlaw::mitigation {

// Reweighing (Kamiran & Calders [8]) — the pre-processing mitigator: give
// each (group, label) cell the weight that makes group and label
// statistically independent in the weighted data,
//   w(a, y) = P(A=a) * P(Y=y) / P(A=a, Y=y).
// A classifier trained on the weighted data no longer sees the historical
// association between the protected attribute and the favorable label.

/// Per-row reweighing weights for the given group/label assignment.
/// Every (group, label) cell present in the data must be non-empty.
FAIRLAW_NODISCARD Result<std::vector<double>> ReweighingWeights(
    const std::vector<std::string>& groups, const std::vector<int>& labels);

/// Convenience: computes the weights and installs them into
/// `data->weights` (multiplying into existing weights if present).
FAIRLAW_NODISCARD Status ApplyReweighing(const std::vector<std::string>& groups,
                       ml::Dataset* data);

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_REWEIGHING_H_
