#include "mitigation/group_blind_repair.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "obs/obs.h"
#include "stats/descriptive.h"

namespace fairlaw::mitigation {

Result<GroupBlindRepair> GroupBlindRepair::Fit(
    const std::vector<std::vector<double>>& reference_group_scores,
    const std::vector<double>& group_marginals) {
  obs::TraceSpan span("group_blind_repair_fit");
  if (reference_group_scores.size() < 2) {
    return Status::Invalid("GroupBlindRepair: need >= 2 reference groups");
  }
  if (group_marginals.size() != reference_group_scores.size()) {
    return Status::Invalid("GroupBlindRepair: marginals/groups size "
                           "mismatch");
  }
  double total = 0.0;
  for (double m : group_marginals) {
    if (m < 0.0) {
      return Status::Invalid("GroupBlindRepair: negative marginal");
    }
    total += m;
  }
  if (total <= 0.0) {
    return Status::Invalid("GroupBlindRepair: marginals sum to zero");
  }

  std::vector<double> means;
  std::vector<double> stddevs;
  for (const std::vector<double>& scores : reference_group_scores) {
    if (scores.size() < 2) {
      return Status::Invalid("GroupBlindRepair: each reference group needs "
                             ">= 2 samples");
    }
    FAIRLAW_ASSIGN_OR_RETURN(double mean, stats::Mean(scores));
    FAIRLAW_ASSIGN_OR_RETURN(double stddev, stats::StdDev(scores));
    means.push_back(mean);
    // Floor so degenerate reference samples keep a proper density.
    stddevs.push_back(std::max(stddev, 1e-6));
  }
  std::vector<double> marginals(group_marginals);
  for (double& m : marginals) m /= total;
  double barycenter = 0.0;
  for (size_t a = 0; a < means.size(); ++a) {
    barycenter += marginals[a] * means[a];
  }
  GroupBlindRepair repair(std::move(means), std::move(stddevs),
                          std::move(marginals), barycenter);

  // Calibrate: the posterior-expected deficit under-compensates because
  // the posterior shrinks each group's correction toward the population
  // average. Measure the achieved group-mean compensation on the
  // reference samples and scale so that at strength 1 the group means
  // meet the barycenter (clamped to avoid blow-ups when groups are
  // near-identical).
  double needed_total = 0.0;
  double achieved_total = 0.0;
  for (size_t a = 0; a < repair.means_.size(); ++a) {
    double needed = repair.barycenter_mean_ - repair.means_[a];
    double achieved = 0.0;
    for (double x : reference_group_scores[a]) {
      achieved += repair.RawCorrection(x);
    }
    achieved /= static_cast<double>(reference_group_scores[a].size());
    needed_total += repair.marginals_[a] * std::fabs(needed);
    achieved_total += repair.marginals_[a] * std::fabs(achieved);
  }
  if (achieved_total > 1e-9 && needed_total > 1e-9) {
    repair.calibration_ =
        std::clamp(needed_total / achieved_total, 1.0, 10.0);
  }
  return repair;
}

double GroupBlindRepair::RawCorrection(double score) const {
  std::vector<double> posterior = PosteriorGroupProbabilities(score);
  double correction = 0.0;
  for (size_t a = 0; a < means_.size(); ++a) {
    correction += posterior[a] * (barycenter_mean_ - means_[a]);
  }
  return correction;
}

std::vector<double> GroupBlindRepair::PosteriorGroupProbabilities(
    double score) const {
  // Log-domain normal mixture posterior for numerical stability in the
  // tails.
  std::vector<double> log_joint(means_.size());
  double max_log = -std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < means_.size(); ++a) {
    double z = (score - means_[a]) / stddevs_[a];
    log_joint[a] = std::log(marginals_[a]) - std::log(stddevs_[a]) -
                   0.5 * z * z -
                   0.5 * std::log(2.0 * std::numbers::pi);
    max_log = std::max(max_log, log_joint[a]);
  }
  double denom = 0.0;
  std::vector<double> posterior(means_.size());
  for (size_t a = 0; a < means_.size(); ++a) {
    posterior[a] = std::exp(log_joint[a] - max_log);
    denom += posterior[a];
  }
  for (double& p : posterior) p /= denom;
  return posterior;
}

Result<std::vector<double>> GroupBlindRepair::Apply(
    std::span<const double> pooled_scores, double strength) const {
  obs::TraceSpan span("group_blind_repair_apply");
  if (strength < 0.0 || strength > 1.0) {
    return Status::Invalid("GroupBlindRepair: strength must lie in [0,1]");
  }
  if (pooled_scores.empty()) {
    return Status::Invalid("GroupBlindRepair: empty scores");
  }
  std::vector<double> repaired(pooled_scores.size());
  for (size_t i = 0; i < pooled_scores.size(); ++i) {
    repaired[i] = pooled_scores[i] +
                  strength * calibration_ * RawCorrection(pooled_scores[i]);
  }
  obs::GetCounter("mitigation.values_repaired")->Increment(repaired.size());
  return repaired;
}

}  // namespace fairlaw::mitigation
