#include "mitigation/di_remover.h"

#include <map>

#include "obs/obs.h"
#include "stats/empirical.h"

namespace fairlaw::mitigation {

Result<std::vector<double>> RepairFeature(
    const std::vector<std::string>& groups, const std::vector<double>& values,
    double repair_level) {
  obs::TraceSpan span("repair_feature");
  if (groups.size() != values.size()) {
    return Status::Invalid("RepairFeature: size mismatch");
  }
  if (groups.empty()) return Status::Invalid("RepairFeature: empty input");
  if (repair_level < 0.0 || repair_level > 1.0) {
    return Status::Invalid("RepairFeature: repair_level must lie in [0,1]");
  }

  FAIRLAW_ASSIGN_OR_RETURN(stats::EmpiricalDistribution pooled,
                           stats::EmpiricalDistribution::Make(values));

  std::map<std::string, std::vector<double>> by_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    by_group[groups[i]].push_back(values[i]);
  }
  std::map<std::string, stats::EmpiricalDistribution> group_dist;
  for (const auto& [group, group_values] : by_group) {
    FAIRLAW_ASSIGN_OR_RETURN(
        stats::EmpiricalDistribution dist,
        stats::EmpiricalDistribution::Make(group_values));
    group_dist.emplace(group, std::move(dist));
  }

  // x -> (1-t) x + t * Q_pooled(F_group(x)): within-group rank maps to the
  // pooled quantile at that rank.
  std::vector<double> repaired(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const stats::EmpiricalDistribution& dist = group_dist.at(groups[i]);
    double rank = dist.Cdf(values[i]);
    // Use the mid-rank convention so the top value maps to a high (not
    // out-of-range) pooled quantile.
    double u = rank - 0.5 / static_cast<double>(dist.size());
    double target = pooled.Quantile(u);
    repaired[i] =
        (1.0 - repair_level) * values[i] + repair_level * target;
  }
  obs::GetCounter("mitigation.values_repaired")->Increment(repaired.size());
  return repaired;
}

Status RepairFeatures(const std::vector<std::string>& groups,
                      std::vector<std::vector<double>>* features,
                      const std::vector<size_t>& columns,
                      double repair_level) {
  if (features == nullptr) {
    return Status::Invalid("RepairFeatures: null features");
  }
  if (features->size() != groups.size()) {
    return Status::Invalid("RepairFeatures: size mismatch");
  }
  for (size_t column : columns) {
    std::vector<double> values(features->size());
    for (size_t i = 0; i < features->size(); ++i) {
      if (column >= (*features)[i].size()) {
        return Status::OutOfRange("RepairFeatures: column index out of range");
      }
      values[i] = (*features)[i][column];
    }
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> repaired,
                             RepairFeature(groups, values, repair_level));
    for (size_t i = 0; i < features->size(); ++i) {
      (*features)[i][column] = repaired[i];
    }
  }
  return Status::OK();
}

}  // namespace fairlaw::mitigation
