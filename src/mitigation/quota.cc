#include "mitigation/quota.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::mitigation {

Result<QuotaSelection> SelectWithQuota(const std::vector<std::string>& groups,
                                       const std::vector<double>& scores,
                                       const QuotaOptions& options) {
  if (groups.empty()) return Status::Invalid("SelectWithQuota: empty input");
  if (scores.size() != groups.size()) {
    return Status::Invalid("SelectWithQuota: scores/groups size mismatch");
  }
  const size_t n = groups.size();
  if (options.total_selections == 0 || options.total_selections > n) {
    return Status::Invalid("SelectWithQuota: total_selections must lie in "
                           "[1, n]");
  }
  double share_sum = 0.0;
  for (const auto& [group, share] : options.min_share) {
    (void)group;
    if (share < 0.0 || share > 1.0) {
      return Status::Invalid("SelectWithQuota: shares must lie in [0,1]");
    }
    share_sum += share;
  }
  if (share_sum > 1.0 + 1e-12) {
    return Status::Invalid("SelectWithQuota: shares sum above 1");
  }

  // Group members sorted by descending score.
  std::map<std::string, std::vector<size_t>> members;
  for (size_t i = 0; i < n; ++i) members[groups[i]].push_back(i);
  for (auto& [group, rows] : members) {
    (void)group;
    std::sort(rows.begin(), rows.end(),
              [&scores](size_t a, size_t b) { return scores[a] > scores[b]; });
  }

  QuotaSelection result;
  result.selected.assign(n, 0);

  // Phase 1: fill reserved slots with each quota group's top scorers.
  size_t slots_used = 0;
  for (const auto& [group, share] : options.min_share) {
    auto it = members.find(group);
    if (it == members.end()) {
      return Status::NotFound("SelectWithQuota: quota group '" + group +
                              "' has no candidates");
    }
    size_t reserved = static_cast<size_t>(std::ceil(
        share * static_cast<double>(options.total_selections) - 1e-12));
    reserved = std::min({reserved, it->second.size(),
                         options.total_selections - slots_used});
    for (size_t k = 0; k < reserved; ++k) {
      result.selected[it->second[k]] = 1;
    }
    slots_used += reserved;
  }

  // Phase 2: fill the open pool by global score order.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] > scores[b]; });
  for (size_t i : order) {
    if (slots_used >= options.total_selections) break;
    if (result.selected[i] == 0) {
      result.selected[i] = 1;
      ++slots_used;
    }
  }

  // Bookkeeping: per-group counts and displacement vs pure top-k.
  for (size_t i = 0; i < n; ++i) {
    if (result.selected[i] == 1) ++result.selected_per_group[groups[i]];
  }
  std::vector<int> pure_topk(n, 0);
  for (size_t k = 0; k < options.total_selections; ++k) {
    pure_topk[order[k]] = 1;
  }
  for (size_t i = 0; i < n; ++i) {
    if (result.selected[i] == 1 && pure_topk[i] == 0) ++result.displaced;
  }
  return result;
}

}  // namespace fairlaw::mitigation
