#ifndef FAIRLAW_MITIGATION_GROUP_CALIBRATOR_H_
#define FAIRLAW_MITIGATION_GROUP_CALIBRATOR_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "ml/isotonic.h"

namespace fairlaw::mitigation {

// Per-group probability calibration: one isotonic calibrator per
// protected group, fitted on validation (score, outcome) pairs. Repairs
// calibration-within-groups violations (the calibration definition §V
// lists among the legally distinguished ones) without touching the
// ranking within any group. Note the impossibility backdrop: calibration
// within groups and equalized odds cannot hold simultaneously when base
// rates differ, so the legal checklist — not the toolbox — decides which
// to target.

class GroupCalibrator {
 public:
  /// Fits one isotonic calibrator per group on validation data.
  FAIRLAW_NODISCARD static Result<GroupCalibrator> Fit(const std::vector<std::string>& groups,
                                     const std::vector<double>& scores,
                                     const std::vector<int>& labels);

  /// Calibrated probability for one (group, score); NotFound for groups
  /// absent at Fit time.
  FAIRLAW_NODISCARD Result<double> Calibrate(const std::string& group, double score) const;

  /// Batch calibration.
  FAIRLAW_NODISCARD Result<std::vector<double>> CalibrateBatch(
      const std::vector<std::string>& groups,
      const std::vector<double>& scores) const;

 private:
  explicit GroupCalibrator(
      std::map<std::string, ml::IsotonicCalibrator> calibrators)
      : calibrators_(std::move(calibrators)) {}

  std::map<std::string, ml::IsotonicCalibrator> calibrators_;
};

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_GROUP_CALIBRATOR_H_
