#ifndef FAIRLAW_MITIGATION_QUOTA_H_
#define FAIRLAW_MITIGATION_QUOTA_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::mitigation {

// Affirmative-action quota selector (§IV-A). Equal outcome is achieved
// through an explicit positive-action instrument: reserve a minimum share
// of the selections for each protected group, fill the reserved slots
// with each group's best-scoring candidates, and allocate the remaining
// slots purely by score. This is the instrument EU positive action and
// US race-aware program design reason about, so its use must clear the
// legal::Proportionality test for the jurisdiction at hand.

struct QuotaOptions {
  /// Total number of candidates to select (1 <= total <= n).
  size_t total_selections = 0;
  /// Minimum share of the selections per group, e.g. {"female", 0.4}.
  /// Shares must be in [0,1] and sum to <= 1. Groups absent from the map
  /// have no reserved slots.
  std::map<std::string, double> min_share;
};

/// Result of a quota selection.
struct QuotaSelection {
  /// 0/1 selection per candidate.
  std::vector<int> selected;
  /// Selections per group actually made.
  std::map<std::string, size_t> selected_per_group;
  /// Candidates who displaced a higher-scoring candidate from another
  /// group because of a reserved slot (the "cost" of the quota).
  size_t displaced = 0;
};

/// Selects `options.total_selections` candidates by score subject to the
/// per-group minimum shares. If a group has fewer members than its
/// reserved slots, all its members are selected and the spare slots
/// return to the open pool.
FAIRLAW_NODISCARD Result<QuotaSelection> SelectWithQuota(const std::vector<std::string>& groups,
                                       const std::vector<double>& scores,
                                       const QuotaOptions& options);

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_QUOTA_H_
