#include "mitigation/group_calibrator.h"

namespace fairlaw::mitigation {

Result<GroupCalibrator> GroupCalibrator::Fit(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    const std::vector<int>& labels) {
  if (groups.empty()) return Status::Invalid("GroupCalibrator: empty input");
  if (scores.size() != groups.size() || labels.size() != groups.size()) {
    return Status::Invalid("GroupCalibrator: size mismatch");
  }
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      per_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::Invalid("GroupCalibrator: labels must be 0/1");
    }
    auto& [group_scores, group_targets] = per_group[groups[i]];
    group_scores.push_back(scores[i]);
    group_targets.push_back(static_cast<double>(labels[i]));
  }
  std::map<std::string, ml::IsotonicCalibrator> calibrators;
  for (const auto& [group, data] : per_group) {
    FAIRLAW_ASSIGN_OR_RETURN(
        ml::IsotonicCalibrator calibrator,
        ml::IsotonicCalibrator::Fit(data.first, data.second));
    calibrators.emplace(group, std::move(calibrator));
  }
  return GroupCalibrator(std::move(calibrators));
}

Result<double> GroupCalibrator::Calibrate(const std::string& group,
                                          double score) const {
  auto it = calibrators_.find(group);
  if (it == calibrators_.end()) {
    return Status::NotFound("GroupCalibrator: no calibrator fitted for "
                            "group '" + group + "'");
  }
  return it->second.Predict(score);
}

Result<std::vector<double>> GroupCalibrator::CalibrateBatch(
    const std::vector<std::string>& groups,
    const std::vector<double>& scores) const {
  if (groups.size() != scores.size()) {
    return Status::Invalid("GroupCalibrator: size mismatch");
  }
  std::vector<double> calibrated(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    FAIRLAW_ASSIGN_OR_RETURN(calibrated[i],
                             Calibrate(groups[i], scores[i]));
  }
  return calibrated;
}

}  // namespace fairlaw::mitigation
