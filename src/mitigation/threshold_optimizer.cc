#include "mitigation/threshold_optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/string_util.h"
#include "stats/empirical.h"

namespace fairlaw::mitigation {
namespace {

struct GroupRows {
  std::vector<double> scores;
  std::vector<int> labels;  // empty when labels were not supplied
};

Result<std::map<std::string, GroupRows>> Partition(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    const std::vector<int>& labels, bool require_labels) {
  if (groups.empty()) {
    return Status::Invalid("OptimizeThresholds: empty input");
  }
  if (scores.size() != groups.size()) {
    return Status::Invalid("OptimizeThresholds: scores/groups size mismatch");
  }
  if (require_labels && labels.size() != groups.size()) {
    return Status::Invalid("OptimizeThresholds: this criterion requires "
                           "labels");
  }
  if (!labels.empty() && labels.size() != groups.size()) {
    return Status::Invalid("OptimizeThresholds: labels/groups size mismatch");
  }
  std::map<std::string, GroupRows> partition;
  for (size_t i = 0; i < groups.size(); ++i) {
    GroupRows& rows = partition[groups[i]];
    rows.scores.push_back(scores[i]);
    if (!labels.empty()) rows.labels.push_back(labels[i]);
  }
  if (partition.size() < 2) {
    return Status::Invalid("OptimizeThresholds: need >= 2 groups");
  }
  return partition;
}

/// Quantile threshold selecting the top `rate` fraction of `values`.
Result<double> TopFractionThreshold(const std::vector<double>& values,
                                    double rate) {
  FAIRLAW_ASSIGN_OR_RETURN(stats::EmpiricalDistribution dist,
                           stats::EmpiricalDistribution::Make(values));
  if (rate <= 0.0) return dist.max() + 1.0;  // select nobody
  if (rate >= 1.0) return dist.min();        // select everybody
  return dist.Quantile(1.0 - rate);
}

double RateAtThreshold(const std::vector<double>& scores, double threshold) {
  size_t selected = 0;
  for (double s : scores) selected += s >= threshold ? 1 : 0;
  return scores.empty() ? 0.0
                        : static_cast<double>(selected) /
                              static_cast<double>(scores.size());
}

struct OddsRates {
  double tpr = 0.0;
  double fpr = 0.0;
};

OddsRates OddsAtThreshold(const GroupRows& rows, double threshold) {
  size_t tp = 0;
  size_t fp = 0;
  size_t positives = 0;
  size_t negatives = 0;
  for (size_t i = 0; i < rows.scores.size(); ++i) {
    bool selected = rows.scores[i] >= threshold;
    if (rows.labels[i] == 1) {
      ++positives;
      if (selected) ++tp;
    } else {
      ++negatives;
      if (selected) ++fp;
    }
  }
  OddsRates rates;
  rates.tpr = positives > 0 ? static_cast<double>(tp) /
                                  static_cast<double>(positives)
                            : 0.0;
  rates.fpr = negatives > 0 ? static_cast<double>(fp) /
                                  static_cast<double>(negatives)
                            : 0.0;
  return rates;
}

}  // namespace

Result<std::vector<int>> GroupThresholds::Apply(
    const std::vector<std::string>& groups,
    const std::vector<double>& scores) const {
  if (groups.size() != scores.size()) {
    return Status::Invalid("GroupThresholds::Apply: size mismatch");
  }
  std::vector<int> predictions(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    auto it = threshold.find(groups[i]);
    if (it == threshold.end()) {
      return Status::NotFound("GroupThresholds::Apply: no threshold fitted "
                              "for group '" + groups[i] + "'");
    }
    predictions[i] = scores[i] >= it->second ? 1 : 0;
  }
  return predictions;
}

Result<GroupThresholds> OptimizeThresholds(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    const std::vector<int>& labels, ThresholdCriterion criterion,
    const ThresholdOptimizerOptions& options) {
  const bool needs_labels = criterion != ThresholdCriterion::kDemographicParity;
  FAIRLAW_ASSIGN_OR_RETURN(auto partition,
                           Partition(groups, scores, labels, needs_labels));

  GroupThresholds fitted;
  fitted.criterion = criterion;

  switch (criterion) {
    case ThresholdCriterion::kDemographicParity: {
      double target = options.target_rate;
      if (target < 0.0) target = RateAtThreshold(scores, 0.5);
      if (target > 1.0) {
        return Status::Invalid("OptimizeThresholds: target_rate > 1");
      }
      for (const auto& [group, rows] : partition) {
        FAIRLAW_ASSIGN_OR_RETURN(double threshold,
                                 TopFractionThreshold(rows.scores, target));
        fitted.threshold[group] = threshold;
      }
      fitted.detail = "target selection rate " + FormatDouble(target, 4);
      return fitted;
    }
    case ThresholdCriterion::kEqualOpportunity: {
      double target = options.target_tpr;
      if (target < 0.0) {
        // Pooled TPR at threshold 0.5.
        size_t tp = 0;
        size_t positives = 0;
        for (size_t i = 0; i < scores.size(); ++i) {
          if (labels[i] == 1) {
            ++positives;
            if (scores[i] >= 0.5) ++tp;
          }
        }
        if (positives == 0) {
          return Status::Invalid("OptimizeThresholds: no actual positives");
        }
        target = static_cast<double>(tp) / static_cast<double>(positives);
      }
      if (target > 1.0) {
        return Status::Invalid("OptimizeThresholds: target_tpr > 1");
      }
      for (const auto& [group, rows] : partition) {
        std::vector<double> positive_scores;
        for (size_t i = 0; i < rows.scores.size(); ++i) {
          if (rows.labels[i] == 1) positive_scores.push_back(rows.scores[i]);
        }
        if (positive_scores.empty()) {
          return Status::Invalid("OptimizeThresholds: group '" + group +
                                 "' has no actual positives");
        }
        FAIRLAW_ASSIGN_OR_RETURN(double threshold,
                                 TopFractionThreshold(positive_scores,
                                                      target));
        fitted.threshold[group] = threshold;
      }
      fitted.detail = "target TPR " + FormatDouble(target, 4);
      return fitted;
    }
    case ThresholdCriterion::kEqualizedOdds: {
      if (options.grid < 3) {
        return Status::Invalid("OptimizeThresholds: grid must be >= 3");
      }
      // Targets: pooled TPR/FPR at threshold 0.5.
      GroupRows pooled;
      pooled.scores = scores;
      pooled.labels = labels;
      OddsRates target = OddsAtThreshold(pooled, 0.5);
      for (const auto& [group, rows] : partition) {
        double best_threshold = 0.5;
        double best_cost = std::numeric_limits<double>::infinity();
        double lo = *std::min_element(rows.scores.begin(), rows.scores.end());
        double hi = *std::max_element(rows.scores.begin(), rows.scores.end());
        for (size_t g = 0; g < options.grid; ++g) {
          double threshold =
              lo + (hi - lo + 1e-12) * static_cast<double>(g) /
                       static_cast<double>(options.grid - 1);
          OddsRates rates = OddsAtThreshold(rows, threshold);
          double cost = (rates.tpr - target.tpr) * (rates.tpr - target.tpr) +
                        (rates.fpr - target.fpr) * (rates.fpr - target.fpr);
          if (cost < best_cost) {
            best_cost = cost;
            best_threshold = threshold;
          }
        }
        fitted.threshold[group] = best_threshold;
      }
      fitted.detail = "target tpr " + FormatDouble(target.tpr, 4) +
                      " fpr " + FormatDouble(target.fpr, 4);
      return fitted;
    }
  }
  return Status::Internal("OptimizeThresholds: unknown criterion");
}

}  // namespace fairlaw::mitigation
