#ifndef FAIRLAW_MITIGATION_SAMPLING_H_
#define FAIRLAW_MITIGATION_SAMPLING_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace fairlaw::mitigation {

// Preferential sampling (Kamiran & Calders' companion to reweighing):
// instead of attaching weights, physically resample the training data so
// that the protected attribute and the label become independent. Useful
// when the downstream learner ignores example weights. Cells that
// reweighing would up-weight are oversampled (with replacement); cells it
// would down-weight are undersampled.

/// Row indices of a resampled dataset (size ~ the original) in which
/// group and label are independent. Duplicate indices realize
/// oversampling.
FAIRLAW_NODISCARD Result<std::vector<size_t>> PreferentialSamplingIndices(
    const std::vector<std::string>& groups, const std::vector<int>& labels,
    stats::Rng* rng);

/// Convenience: materializes the resampled dataset.
FAIRLAW_NODISCARD Result<ml::Dataset> ApplyPreferentialSampling(
    const std::vector<std::string>& groups, const ml::Dataset& data,
    stats::Rng* rng);

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_SAMPLING_H_
