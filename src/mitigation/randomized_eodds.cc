#include "mitigation/randomized_eodds.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairlaw::mitigation {
namespace {

/// One ROC vertex: the threshold rule "predict 1 iff score >= threshold"
/// and its operating point.
struct RocVertex {
  double threshold;
  double fpr;
  double tpr;
};

struct GroupData {
  std::vector<double> positives;
  std::vector<double> negatives;
};

/// Upper concave hull of the group's ROC curve, from (0,0) to (1,1), as
/// vertices in increasing-FPR order.
std::vector<RocVertex> RocUpperHull(const GroupData& group) {
  // Candidate thresholds: +inf (predict nobody) then each distinct score
  // descending.
  std::vector<double> all_scores;
  all_scores.reserve(group.positives.size() + group.negatives.size());
  all_scores.insert(all_scores.end(), group.positives.begin(),
                    group.positives.end());
  all_scores.insert(all_scores.end(), group.negatives.begin(),
                    group.negatives.end());
  std::sort(all_scores.begin(), all_scores.end(), std::greater<double>());
  all_scores.erase(std::unique(all_scores.begin(), all_scores.end()),
                   all_scores.end());

  std::vector<double> sorted_pos = group.positives;
  std::vector<double> sorted_neg = group.negatives;
  std::sort(sorted_pos.begin(), sorted_pos.end());
  std::sort(sorted_neg.begin(), sorted_neg.end());
  auto rate_at = [](const std::vector<double>& sorted, double threshold) {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), threshold);
    return static_cast<double>(sorted.end() - it) /
           static_cast<double>(sorted.size());
  };

  std::vector<RocVertex> points;
  points.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  for (double threshold : all_scores) {
    points.push_back({threshold, rate_at(sorted_neg, threshold),
                      rate_at(sorted_pos, threshold)});
  }
  // Ensure the terminal (1,1) vertex exists (threshold below every score).
  if (points.back().fpr < 1.0 || points.back().tpr < 1.0) {
    points.push_back({-std::numeric_limits<double>::infinity(), 1.0, 1.0});
  }

  // Monotone-chain upper hull over (fpr, tpr); points are already in
  // nondecreasing fpr order.
  std::vector<RocVertex> hull;
  for (const RocVertex& point : points) {
    while (hull.size() >= 2) {
      const RocVertex& a = hull[hull.size() - 2];
      const RocVertex& b = hull[hull.size() - 1];
      double cross = (b.fpr - a.fpr) * (point.tpr - a.tpr) -
                     (b.tpr - a.tpr) * (point.fpr - a.fpr);
      if (cross >= 0.0) {
        hull.pop_back();  // b is under the a->point segment
      } else {
        break;
      }
    }
    hull.push_back(point);
  }
  return hull;
}

/// Hull TPR at the given FPR (linear interpolation).
double HullTprAt(const std::vector<RocVertex>& hull, double fpr) {
  for (size_t i = 1; i < hull.size(); ++i) {
    if (fpr <= hull[i].fpr + 1e-15) {
      const RocVertex& a = hull[i - 1];
      const RocVertex& b = hull[i];
      if (b.fpr <= a.fpr) return std::max(a.tpr, b.tpr);
      double mix = (fpr - a.fpr) / (b.fpr - a.fpr);
      return a.tpr + mix * (b.tpr - a.tpr);
    }
  }
  return 1.0;
}

}  // namespace

Result<RandomizedEqualizedOdds> RandomizedEqualizedOdds::Fit(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    const std::vector<int>& labels, size_t fpr_grid) {
  if (groups.empty()) {
    return Status::Invalid("RandomizedEqualizedOdds: empty input");
  }
  if (scores.size() != groups.size() || labels.size() != groups.size()) {
    return Status::Invalid("RandomizedEqualizedOdds: size mismatch");
  }
  if (fpr_grid < 3) {
    return Status::Invalid("RandomizedEqualizedOdds: fpr_grid must be >= 3");
  }
  std::map<std::string, GroupData> data;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::Invalid("RandomizedEqualizedOdds: labels must be 0/1");
    }
    GroupData& group = data[groups[i]];
    (labels[i] == 1 ? group.positives : group.negatives)
        .push_back(scores[i]);
  }
  if (data.size() < 2) {
    return Status::Invalid("RandomizedEqualizedOdds: need >= 2 groups");
  }
  std::map<std::string, std::vector<RocVertex>> hulls;
  for (const auto& [group, group_data] : data) {
    if (group_data.positives.empty() || group_data.negatives.empty()) {
      return Status::Invalid("RandomizedEqualizedOdds: group '" + group +
                             "' lacks positives or negatives");
    }
    hulls[group] = RocUpperHull(group_data);
  }

  // Shared target: maximize Youden's J on the lower envelope of the
  // hulls.
  double best_j = -1.0;
  double target_fpr = 0.5;
  double target_tpr = 0.5;
  for (size_t g = 0; g < fpr_grid; ++g) {
    double fpr = static_cast<double>(g) / static_cast<double>(fpr_grid - 1);
    double envelope = 1.0;
    for (const auto& [group, hull] : hulls) {
      (void)group;
      envelope = std::min(envelope, HullTprAt(hull, fpr));
    }
    double j = envelope - fpr;
    if (j > best_j) {
      best_j = j;
      target_fpr = fpr;
      target_tpr = envelope;
    }
  }

  RandomizedEqualizedOdds fitted;
  fitted.target_fpr_ = target_fpr;
  fitted.target_tpr_ = target_tpr;
  for (const auto& [group, hull] : hulls) {
    GroupRule rule;
    rule.coin_rate = target_fpr;
    // Hull segment spanning target_fpr.
    size_t seg = 1;
    while (seg + 1 < hull.size() && hull[seg].fpr < target_fpr) ++seg;
    const RocVertex& a = hull[seg - 1];
    const RocVertex& b = hull[seg];
    rule.threshold_hi = a.threshold;
    rule.threshold_lo = b.threshold;
    rule.vertex_mix =
        b.fpr > a.fpr ? (target_fpr - a.fpr) / (b.fpr - a.fpr) : 0.0;
    rule.vertex_mix = std::clamp(rule.vertex_mix, 0.0, 1.0);
    double hull_tpr = a.tpr + rule.vertex_mix * (b.tpr - a.tpr);
    // Mix the hull point down toward the diagonal coin to land exactly
    // on target_tpr.
    rule.hull_weight =
        hull_tpr > target_fpr
            ? std::clamp((target_tpr - target_fpr) /
                             (hull_tpr - target_fpr),
                         0.0, 1.0)
            : 0.0;
    fitted.rules_[group] = rule;
  }
  return fitted;
}

Result<double> RandomizedEqualizedOdds::PositiveProbability(
    const std::string& group, double score) const {
  auto it = rules_.find(group);
  if (it == rules_.end()) {
    return Status::NotFound("RandomizedEqualizedOdds: no rule fitted for "
                            "group '" + group + "'");
  }
  const GroupRule& rule = it->second;
  double hull_prob =
      rule.vertex_mix * (score >= rule.threshold_lo ? 1.0 : 0.0) +
      (1.0 - rule.vertex_mix) * (score >= rule.threshold_hi ? 1.0 : 0.0);
  return rule.hull_weight * hull_prob +
         (1.0 - rule.hull_weight) * rule.coin_rate;
}

Result<std::vector<int>> RandomizedEqualizedOdds::Apply(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    stats::Rng* rng) const {
  if (groups.size() != scores.size()) {
    return Status::Invalid("RandomizedEqualizedOdds: size mismatch");
  }
  if (rng == nullptr) {
    return Status::Invalid("RandomizedEqualizedOdds: null rng");
  }
  std::vector<int> decisions(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    FAIRLAW_ASSIGN_OR_RETURN(double p,
                             PositiveProbability(groups[i], scores[i]));
    decisions[i] = rng->Bernoulli(p) ? 1 : 0;
  }
  return decisions;
}

}  // namespace fairlaw::mitigation
