#include "mitigation/reweighing.h"

#include <map>

namespace fairlaw::mitigation {

Result<std::vector<double>> ReweighingWeights(
    const std::vector<std::string>& groups, const std::vector<int>& labels) {
  if (groups.empty()) return Status::Invalid("ReweighingWeights: empty input");
  if (groups.size() != labels.size()) {
    return Status::Invalid("ReweighingWeights: size mismatch");
  }
  const double n = static_cast<double>(groups.size());
  std::map<std::string, double> group_count;
  double label_count[2] = {0.0, 0.0};
  std::map<std::pair<std::string, int>, double> cell_count;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::Invalid("ReweighingWeights: labels must be 0/1");
    }
    group_count[groups[i]] += 1.0;
    label_count[labels[i]] += 1.0;
    cell_count[{groups[i], labels[i]}] += 1.0;
  }
  std::vector<double> weights(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    double expected =
        (group_count[groups[i]] / n) * (label_count[labels[i]] / n);
    double observed = cell_count[{groups[i], labels[i]}] / n;
    weights[i] = expected / observed;  // observed > 0: the cell contains row i
  }
  return weights;
}

Status ApplyReweighing(const std::vector<std::string>& groups,
                       ml::Dataset* data) {
  if (data == nullptr) return Status::Invalid("ApplyReweighing: null dataset");
  FAIRLAW_RETURN_NOT_OK(data->Validate());
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> weights,
                           ReweighingWeights(groups, data->labels));
  if (data->weights.empty()) {
    data->weights = std::move(weights);
  } else {
    for (size_t i = 0; i < weights.size(); ++i) {
      data->weights[i] *= weights[i];
    }
  }
  return Status::OK();
}

}  // namespace fairlaw::mitigation
