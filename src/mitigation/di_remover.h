#ifndef FAIRLAW_MITIGATION_DI_REMOVER_H_
#define FAIRLAW_MITIGATION_DI_REMOVER_H_

#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::mitigation {

// Disparate-impact remover (Feldman et al. style quantile repair): move
// each group's conditional distribution of a feature toward the pooled
// barycenter so the feature no longer reveals (or penalizes) group
// membership, with `repair_level` interpolating between the original
// (0) and fully repaired (1) values. Rank order *within* each group is
// preserved, which is what keeps the feature predictive after repair.

/// Repairs one numeric feature. `groups[i]` is row i's protected value,
/// `values[i]` the feature. Returns the repaired values.
FAIRLAW_NODISCARD Result<std::vector<double>> RepairFeature(
    const std::vector<std::string>& groups, const std::vector<double>& values,
    double repair_level);

/// Repairs several feature columns in place (each independently).
/// `features` is row-major; `columns` lists the indices to repair.
FAIRLAW_NODISCARD Status RepairFeatures(const std::vector<std::string>& groups,
                      std::vector<std::vector<double>>* features,
                      const std::vector<size_t>& columns, double repair_level);

}  // namespace fairlaw::mitigation

#endif  // FAIRLAW_MITIGATION_DI_REMOVER_H_
