#ifndef FAIRLAW_AUDIT_PROXY_H_
#define FAIRLAW_AUDIT_PROXY_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "data/table.h"

namespace fairlaw::audit {

// Proxy-discrimination detection (§IV-B). A feature is a proxy when it is
// statistically associated with the protected attribute strongly enough
// that a model trained without the protected attribute can reconstruct
// the bias through it ("fairness through unawareness" failure).

/// Association scores between one candidate feature and the protected
/// attribute.
struct ProxyFinding {
  std::string feature;
  /// Cramér's V of the (discretized) feature vs the protected attribute,
  /// in [0,1].
  double cramers_v = 0.0;
  /// Mutual information (nats) of the same contingency table.
  double mutual_information = 0.0;
  /// Accuracy of predicting the protected attribute from this feature
  /// alone (majority class per feature bin), minus the majority-class
  /// baseline; > 0 means the feature carries protected information.
  double predictability_gain = 0.0;
  /// True when cramers_v exceeds the configured threshold.
  bool flagged = false;
};

struct ProxyDetectionOptions {
  /// Quantile bins used to discretize continuous candidates.
  size_t bins = 10;
  /// Cramér's V above which a feature is flagged as a proxy.
  double flag_threshold = 0.3;
};

/// Scores every candidate column against the protected column. Candidates
/// may be numeric (discretized into quantile bins) or categorical.
/// Findings are sorted by descending Cramér's V.
FAIRLAW_NODISCARD Result<std::vector<ProxyFinding>> DetectProxies(
    const data::Table& table, const std::string& protected_column,
    const std::vector<std::string>& candidate_columns,
    const ProxyDetectionOptions& options = {});

/// Builds the contingency table of (discretized) `feature_column` x
/// `protected_column`. Exposed for tests and for custom association
/// scores.
FAIRLAW_NODISCARD Result<std::vector<std::vector<int64_t>>> ProxyContingencyTable(
    const data::Table& table, const std::string& feature_column,
    const std::string& protected_column, size_t bins);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_PROXY_H_
