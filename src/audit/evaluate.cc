#include "audit/evaluate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iterator>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "base/thread_pool.h"
#include "data/table.h"
#include "metrics/calibration_metric.h"
#include "metrics/conditional_metrics.h"
#include "metrics/fairness_metric.h"
#include "metrics/group_metrics.h"
#include "obs/obs.h"
#include "stats/distance.h"
#include "stats/histogram.h"

namespace fairlaw::audit {
namespace {

/// Per-group score-distribution drift: each group's sorted scores against
/// the multiset difference of the sorted pooled scores (everyone else),
/// through the presorted W1/KS kernels — or the binned kernels when the
/// config asks for the O(n) fast path. Runs serially after the metric
/// jobs, so thread count cannot touch the result. `series` holds each
/// group's scores in global row order (the chunk-order merge guarantees
/// that), and `scores` is the full score column in row order, so the
/// sorts see exactly the sequences the old whole-table pass fed them.
Result<ScoreDistributionReport> ScoreDistributionAudit(
    const stats::GroupedSeries& series, std::span<const double> scores,
    const AuditConfig& config) {
  ScoreDistributionReport report;
  report.tolerance = config.score_distribution_tolerance;
  for (double s : scores) {
    if (!std::isfinite(s)) {
      return Status::Invalid("score distribution audit: non-finite score");
    }
  }
  std::vector<double> all_sorted(scores.begin(), scores.end());
  std::sort(all_sorted.begin(), all_sorted.end());
  const bool constant =
      !all_sorted.empty() && all_sorted.front() == all_sorted.back();
  for (size_t g = 0; g < series.num_keys(); ++g) {
    std::vector<double> group_scores = series.values(g);
    std::sort(group_scores.begin(), group_scores.end());
    // Everyone else = pooled minus this group, linear-time multiset
    // difference over the two sorted vectors.
    std::vector<double> rest;
    rest.reserve(all_sorted.size() - group_scores.size());
    std::set_difference(all_sorted.begin(), all_sorted.end(),
                        group_scores.begin(), group_scores.end(),
                        std::back_inserter(rest));
    GroupScoreDistance distance;
    distance.group = series.keys()[g];
    distance.count = group_scores.size();
    if (!rest.empty() && !group_scores.empty() && !constant) {
      if (config.score_distribution_bins > 0) {
        FAIRLAW_ASSIGN_OR_RETURN(
            stats::Histogram hp,
            stats::Histogram::Make(all_sorted.front(), all_sorted.back(),
                                   config.score_distribution_bins));
        FAIRLAW_ASSIGN_OR_RETURN(
            stats::Histogram hq,
            stats::Histogram::Make(all_sorted.front(), all_sorted.back(),
                                   config.score_distribution_bins));
        hp.AddAll(group_scores);
        hq.AddAll(rest);
        FAIRLAW_ASSIGN_OR_RETURN(distance.wasserstein1,
                                 stats::Wasserstein1Binned(hp, hq));
        FAIRLAW_ASSIGN_OR_RETURN(distance.ks,
                                 stats::KolmogorovSmirnovBinned(hp, hq));
      } else {
        FAIRLAW_ASSIGN_OR_RETURN(
            distance.wasserstein1,
            stats::Wasserstein1Presorted(group_scores, rest));
        FAIRLAW_ASSIGN_OR_RETURN(
            distance.ks,
            stats::KolmogorovSmirnovPresorted(group_scores, rest));
      }
    }
    report.max_wasserstein1 =
        std::max(report.max_wasserstein1, distance.wasserstein1);
    report.max_ks = std::max(report.max_ks, distance.ks);
    report.groups.push_back(std::move(distance));
  }
  report.satisfied = report.max_ks <= report.tolerance;
  return report;
}

/// Collects metric results completed on worker threads. Each result
/// carries the sequence number of its job in the canonical (serial)
/// evaluation order, so Finish() can assemble an AuditResult that is
/// byte-identical for any thread count — including which error wins when
/// several metrics fail at once.
class ResultAggregator {
 public:
  void AddMetric(size_t seq, Result<metrics::MetricReport> report)
      FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    metric_reports_.emplace_back(seq, std::move(report));
  }

  void AddConditional(size_t seq, Result<metrics::ConditionalReport> report)
      FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    conditional_reports_.emplace_back(seq, std::move(report));
  }

  void AddCalibration(size_t seq, Result<metrics::CalibrationReport> report)
      FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    calibration_.emplace(seq, std::move(report));
  }

  /// Deterministic assembly; call only after every job has completed.
  Result<AuditResult> Finish() FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto by_seq = [](const auto& a, const auto& b) {
      return a.first < b.first;
    };
    std::sort(metric_reports_.begin(), metric_reports_.end(), by_seq);
    std::sort(conditional_reports_.begin(), conditional_reports_.end(),
              by_seq);

    // Serial evaluation returns the error of the first failing job; keep
    // that contract by picking the non-OK status with the lowest seq.
    size_t first_error_seq = SIZE_MAX;
    const Status* first_error = nullptr;
    auto consider = [&](size_t seq, const Status& status) {
      if (!status.ok() && seq < first_error_seq) {
        first_error_seq = seq;
        first_error = &status;
      }
    };
    for (const auto& [seq, report] : metric_reports_) {
      consider(seq, report.status());
    }
    if (calibration_.has_value()) {
      consider(calibration_->first, calibration_->second.status());
    }
    for (const auto& [seq, report] : conditional_reports_) {
      consider(seq, report.status());
    }
    if (first_error != nullptr) return *first_error;

    AuditResult result;
    for (auto& [seq, report] : metric_reports_) {
      metrics::MetricReport r = std::move(report).ValueOrDie();
      result.all_satisfied = result.all_satisfied && r.satisfied;
      result.reports.push_back(std::move(r));
    }
    if (calibration_.has_value()) {
      metrics::CalibrationReport calibration =
          std::move(calibration_->second).ValueOrDie();
      result.all_satisfied = result.all_satisfied && calibration.satisfied;
      result.calibration = std::move(calibration);
    }
    for (auto& [seq, report] : conditional_reports_) {
      metrics::ConditionalReport r = std::move(report).ValueOrDie();
      result.all_satisfied = result.all_satisfied && r.satisfied;
      result.conditional_reports.push_back(std::move(r));
    }
    return result;
  }

 private:
  Mutex mu_;
  std::vector<std::pair<size_t, Result<metrics::MetricReport>>>
      metric_reports_ FAIRLAW_GUARDED_BY(mu_);
  std::vector<std::pair<size_t, Result<metrics::ConditionalReport>>>
      conditional_reports_ FAIRLAW_GUARDED_BY(mu_);
  std::optional<std::pair<size_t, Result<metrics::CalibrationReport>>>
      calibration_ FAIRLAW_GUARDED_BY(mu_);
};

}  // namespace

Result<AuditResult> EvaluateMetrics(const EvaluateInputs& inputs,
                                    const AuditConfig& config,
                                    const std::string& parent_path) {
  const stats::GroupCountsAccumulator& counts = *inputs.counts;
  const bool with_strata = inputs.strata_counts != nullptr &&
                           inputs.strata_counts->num_strata() > 0;

  ResultAggregator aggregator;
  std::vector<std::function<void()>> jobs;
  size_t seq = 0;
  auto add_metric =
      [&](std::string_view name,
          std::function<Result<metrics::MetricReport>()> compute) {
        jobs.push_back([&aggregator, &parent_path, seq,
                        name = "metric/" + std::string(name),
                        compute = std::move(compute)] {
          obs::TraceSpan span(name, parent_path);
          aggregator.AddMetric(seq, compute());
        });
        ++seq;
      };

  add_metric("demographic_parity", [&] {
    return metrics::DemographicParityFromStats(
        metrics::GroupStatsFromCounts(counts, /*with_labels=*/false),
        config.tolerance);
  });
  add_metric("demographic_disparity", [&] {
    return metrics::DemographicDisparityFromStats(
        metrics::GroupStatsFromCounts(counts, /*with_labels=*/false));
  });
  add_metric("disparate_impact_ratio", [&] {
    return metrics::DisparateImpactRatioFromStats(
        metrics::GroupStatsFromCounts(counts, /*with_labels=*/false),
        config.di_threshold);
  });
  if (inputs.has_labels) {
    add_metric("equal_opportunity", [&] {
      return metrics::EqualOpportunityFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
    add_metric("equalized_odds", [&] {
      return metrics::EqualizedOddsFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
    add_metric("predictive_parity", [&] {
      return metrics::PredictiveParityFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
    add_metric("accuracy_equality", [&] {
      return metrics::AccuracyEqualityFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
  }
  if (inputs.score_series != nullptr && !config.score_column.empty()) {
    jobs.push_back([&aggregator, &parent_path, seq, &inputs, &config] {
      obs::TraceSpan span("metric/calibration_within_groups", parent_path);
      aggregator.AddCalibration(
          seq, metrics::CalibrationFromSeries(*inputs.score_series,
                                              config.calibration_bins,
                                              config.calibration_tolerance));
    });
    ++seq;
  }
  if (with_strata) {
    auto add_conditional =
        [&](std::string_view name,
            std::function<Result<metrics::ConditionalReport>()> compute) {
          jobs.push_back([&aggregator, &parent_path, seq,
                          name = "metric/" + std::string(name),
                          compute = std::move(compute)] {
            obs::TraceSpan span(name, parent_path);
            aggregator.AddConditional(seq, compute());
          });
          ++seq;
        };
    add_conditional("conditional_statistical_parity", [&] {
      return metrics::ConditionalStatisticalParityFromCounts(
          *inputs.strata_counts, config.tolerance, config.min_stratum_size);
    });
    add_conditional("conditional_demographic_disparity", [&] {
      return metrics::ConditionalDemographicDisparityFromCounts(
          *inputs.strata_counts, config.min_stratum_size);
    });
  }

  if (config.num_threads == 1) {
    for (const std::function<void()>& job : jobs) job();
  } else {
    // num_threads == 0 sizes the pool to the hardware; otherwise never
    // spawn more workers than there are jobs.
    ThreadPool pool(config.num_threads == 0
                        ? 0
                        : std::min(config.num_threads, jobs.size()));
    pool.ParallelFor(jobs.size(), [&jobs](size_t i) { jobs[i](); });
  }
  return aggregator.Finish();
}

Result<AuditResult> EvaluateMergedPartials(const MergedPartials& merged,
                                           const AuditConfig& config,
                                           const std::string& parent_path) {
  FAIRLAW_RETURN_NOT_OK(merged.FirstError());
  EvaluateInputs inputs;
  inputs.counts = &merged.counts();
  inputs.strata_counts =
      config.strata_columns.empty() ? nullptr : &merged.strata_counts();
  inputs.score_series =
      config.score_column.empty() ? nullptr : &merged.score_series();
  inputs.has_labels = !config.label_column.empty();
  FAIRLAW_ASSIGN_OR_RETURN(AuditResult result,
                           EvaluateMetrics(inputs, config, parent_path));
  if (config.audit_score_distribution) {
    obs::TraceSpan span("metric/score_distribution", parent_path);
    FAIRLAW_ASSIGN_OR_RETURN(
        result.score_distribution,
        ScoreDistributionAudit(merged.score_series(), merged.scores(),
                               config));
    result.all_satisfied =
        result.all_satisfied && result.score_distribution->satisfied;
  }
  return result;
}

Status EmptyAuditError(const data::Table& empty, const AuditConfig& config) {
  Status probe = MetricInputFromTable(empty, config.protected_column,
                                      config.prediction_column,
                                      config.label_column)
                     .status();
  if (!probe.ok()) return probe;
  return Status::Invalid("MetricInput: empty input");
}

}  // namespace fairlaw::audit
