#include "audit/subgroup.h"

#include <algorithm>
#include <cmath>

#include "data/group_by.h"

namespace fairlaw::audit {

std::string SubgroupDefinition::ToString() const {
  std::string out;
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) out += " & ";
    out += conditions[i].first + "=" + conditions[i].second;
  }
  return out.empty() ? "(everyone)" : out;
}

std::vector<SubgroupFinding> SubgroupAuditResult::Violations(
    double tolerance) const {
  std::vector<SubgroupFinding> out;
  for (const SubgroupFinding& finding : findings) {
    if (finding.gap > tolerance) out.push_back(finding);
  }
  return out;
}

namespace {

struct AttributeColumn {
  std::string name;
  std::vector<std::string> values;          // per-row rendered value
  std::vector<std::string> distinct;        // value universe
};

/// Recursively extends the current conjunction with conditions on
/// attributes with index >= `next_attribute` (attributes are used at most
/// once per conjunction, in ascending order, so each subgroup is
/// enumerated exactly once).
void Enumerate(const std::vector<AttributeColumn>& attributes,
               const std::vector<int>& predictions, double overall_rate,
               const SubgroupAuditOptions& options, size_t next_attribute,
               int depth, std::vector<std::pair<std::string, std::string>>*
                              conditions,
               std::vector<size_t>* member_rows, SubgroupAuditResult* result) {
  if (depth > 0) {
    ++result->subgroups_examined;
    if (member_rows->size() < options.min_support) {
      ++result->subgroups_skipped_small;
    } else {
      SubgroupFinding finding;
      finding.subgroup.conditions = *conditions;
      finding.count = member_rows->size();
      size_t positives = 0;
      for (size_t row : *member_rows) positives += predictions[row];
      finding.selection_rate = static_cast<double>(positives) /
                               static_cast<double>(member_rows->size());
      finding.overall_rate = overall_rate;
      finding.gap = std::fabs(finding.selection_rate - overall_rate);
      finding.weighted_gap = finding.gap *
                             static_cast<double>(member_rows->size()) /
                             static_cast<double>(predictions.size());
      if (finding.gap > options.tolerance) result->any_violation = true;
      result->findings.push_back(std::move(finding));
    }
  }
  if (depth >= options.max_depth) return;
  for (size_t a = next_attribute; a < attributes.size(); ++a) {
    const AttributeColumn& attribute = attributes[a];
    for (const std::string& value : attribute.distinct) {
      std::vector<size_t> narrowed;
      narrowed.reserve(member_rows->size());
      for (size_t row : *member_rows) {
        if (attribute.values[row] == value) narrowed.push_back(row);
      }
      if (narrowed.empty()) continue;
      conditions->push_back({attribute.name, value});
      Enumerate(attributes, predictions, overall_rate, options, a + 1,
                depth + 1, conditions, &narrowed, result);
      conditions->pop_back();
    }
  }
}

}  // namespace

Result<SubgroupAuditResult> AuditSubgroups(
    const data::Table& table,
    const std::vector<std::string>& attribute_columns,
    const std::string& prediction_column,
    const SubgroupAuditOptions& options) {
  if (attribute_columns.empty()) {
    return Status::Invalid("AuditSubgroups: no attribute columns");
  }
  if (options.max_depth < 1) {
    return Status::Invalid("AuditSubgroups: max_depth must be >= 1");
  }
  if (table.num_rows() == 0) {
    return Status::Invalid("AuditSubgroups: empty table");
  }

  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* prediction_col,
                           table.GetColumn(prediction_column));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> raw_predictions,
                           prediction_col->ToDoubles());
  std::vector<int> predictions(raw_predictions.size());
  size_t positives = 0;
  for (size_t i = 0; i < raw_predictions.size(); ++i) {
    if (raw_predictions[i] != 0.0 && raw_predictions[i] != 1.0) {
      return Status::Invalid("AuditSubgroups: prediction column must be 0/1");
    }
    predictions[i] = raw_predictions[i] == 1.0 ? 1 : 0;
    positives += predictions[i];
  }
  const double overall_rate =
      static_cast<double>(positives) / static_cast<double>(predictions.size());

  std::vector<AttributeColumn> attributes;
  attributes.reserve(attribute_columns.size());
  for (const std::string& name : attribute_columns) {
    FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column,
                             table.GetColumn(name));
    AttributeColumn attribute;
    attribute.name = name;
    attribute.values.resize(column->size());
    for (size_t row = 0; row < column->size(); ++row) {
      attribute.values[row] = column->ValueToString(row);
    }
    FAIRLAW_ASSIGN_OR_RETURN(attribute.distinct,
                             data::DistinctValues(table, name));
    attributes.push_back(std::move(attribute));
  }

  SubgroupAuditResult result;
  std::vector<std::pair<std::string, std::string>> conditions;
  std::vector<size_t> all_rows(table.num_rows());
  for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  Enumerate(attributes, predictions, overall_rate, options,
            /*next_attribute=*/0, /*depth=*/0, &conditions, &all_rows,
            &result);
  std::sort(result.findings.begin(), result.findings.end(),
            [](const SubgroupFinding& a, const SubgroupFinding& b) {
              return a.gap > b.gap;
            });
  return result;
}

size_t CountConjunctions(const std::vector<size_t>& cardinalities,
                         int max_depth) {
  // Sum over non-empty attribute subsets of size <= max_depth of the
  // product of their cardinalities, computed by dynamic programming over
  // attributes.
  std::vector<size_t> by_depth(static_cast<size_t>(max_depth) + 1, 0);
  by_depth[0] = 1;  // the empty conjunction (not counted in the result)
  for (size_t cardinality : cardinalities) {
    for (int d = max_depth; d >= 1; --d) {
      by_depth[d] += by_depth[d - 1] * cardinality;
    }
  }
  size_t total = 0;
  for (int d = 1; d <= max_depth; ++d) total += by_depth[d];
  return total;
}

}  // namespace fairlaw::audit
