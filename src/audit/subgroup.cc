#include "audit/subgroup.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

#include "base/string_util.h"
#include "base/thread_pool.h"
#include "data/bitmap.h"
#include "data/chunked.h"
#include "data/group_by.h"
#include "data/group_index.h"
#include "obs/obs.h"

namespace fairlaw::audit {

std::string SubgroupDefinition::ToString() const {
  std::string out;
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) out += " & ";
    out += conditions[i].first + "=" + conditions[i].second;
  }
  return out.empty() ? "(everyone)" : out;
}

Status SubgroupAuditOptions::Validate() const {
  if (max_depth < 1) {
    return Status::Invalid(
        "SubgroupAuditOptions: max_depth must be >= 1, got " +
        std::to_string(max_depth));
  }
  if (tolerance < 0.0 || tolerance > 1.0) {
    return Status::Invalid(
        "SubgroupAuditOptions: tolerance must lie in [0,1], got " +
        FormatDouble(tolerance, 4));
  }
  return Status::OK();
}

std::vector<SubgroupFinding> SubgroupAuditResult::Violations(
    double tolerance) const {
  std::vector<SubgroupFinding> out;
  for (const SubgroupFinding& finding : findings) {
    if (finding.gap > tolerance) out.push_back(finding);
  }
  return out;
}

namespace {

/// Scores one conjunction; shared by the bitmap and rowwise enumerators
/// so both produce bit-identical findings.
void RecordFinding(
    const std::vector<std::pair<std::string, std::string>>& conditions,
    size_t member_count, size_t positives, size_t num_rows,
    double overall_rate, const SubgroupAuditOptions& options,
    SubgroupAuditResult* result) {
  ++result->subgroups_examined;
  if (member_count < options.min_support) {
    ++result->subgroups_skipped_small;
    return;
  }
  SubgroupFinding finding;
  finding.subgroup.conditions = conditions;
  finding.count = member_count;
  finding.selection_rate = static_cast<double>(positives) /
                           static_cast<double>(member_count);
  finding.overall_rate = overall_rate;
  finding.gap = std::fabs(finding.selection_rate - overall_rate);
  finding.weighted_gap = finding.gap * static_cast<double>(member_count) /
                         static_cast<double>(num_rows);
  if (finding.gap > options.tolerance) result->any_violation = true;
  result->findings.push_back(std::move(finding));
}

/// Sorts findings by descending gap. stable_sort keeps equal-gap
/// findings in enumeration order, which is canonical for every thread
/// count — std::sort would make tie order an implementation detail.
void SortFindings(SubgroupAuditResult* result) {
  std::stable_sort(result->findings.begin(), result->findings.end(),
                   [](const SubgroupFinding& a, const SubgroupFinding& b) {
                     return a.gap > b.gap;
                   });
}

// ---------------------------------------------------------------------------
// Bitmap enumerator.

/// Per-subtree kernel statistics, tallied on plain fields while the walk
/// runs and folded into the obs counters once per audit — the lattice
/// walk is the hot path, so it never touches an atomic per node.
struct KernelTally {
  uint64_t popcount_calls = 0;
  uint64_t pruned_subtrees = 0;

  void MergeInto(KernelTally* total) const {
    total->popcount_calls += popcount_calls;
    total->pruned_subtrees += pruned_subtrees;
  }
};

/// The chunked analogue of data::AttributeIndex: the same first-seen
/// value dictionary, with one chunk-spanning bitmap per value. Values
/// absent from a chunk hold an all-zero bitmap there, so every value's
/// ChunkedBitmap shares the table's chunk layout and the AND/popcount
/// kernels never special-case absence.
struct ChunkedAttributeIndex {
  std::string name;
  std::vector<std::string> values;
  std::vector<data::ChunkedBitmap> bitmaps;  // aligned with `values`
};

/// Walks the conjunction lattice under one member set. `scratch` holds
/// one preallocated bitmap per depth level, so the whole walk allocates
/// nothing: the intersection for depth d is computed into (*scratch)[d]
/// and its popcount falls out of the same pass (BitmapT::AndInto).
///
/// Templated over the index/bitmap pair — (data::AttributeIndex,
/// data::Bitmap) for the contiguous path, (ChunkedAttributeIndex,
/// data::ChunkedBitmap) for the morsel path — so both walks share every
/// branch, visit order, and tally increment. One logical kernel call
/// counts once in the tally however many chunks it spans, which keeps
/// the kernel counters chunk-layout-invariant.
template <typename AttributeT, typename BitmapT>
void EnumerateBitmap(const std::vector<const AttributeT*>& attrs,
                     const BitmapT& predictions, double overall_rate,
                     size_t num_rows, const SubgroupAuditOptions& options,
                     size_t next_attribute, int depth,
                     const BitmapT& members, size_t member_count,
                     std::vector<std::pair<std::string, std::string>>*
                         conditions,
                     std::vector<BitmapT>* scratch,
                     SubgroupAuditResult* result, KernelTally* tally) {
  if (depth > 0) {
    const size_t positives = BitmapT::AndCount(members, predictions);
    ++tally->popcount_calls;
    RecordFinding(*conditions, member_count, positives, num_rows,
                  overall_rate, options, result);
  }
  if (depth >= options.max_depth) return;
  for (size_t a = next_attribute; a < attrs.size(); ++a) {
    const AttributeT& attribute = *attrs[a];
    for (size_t v = 0; v < attribute.values.size(); ++v) {
      BitmapT& narrowed = (*scratch)[static_cast<size_t>(depth)];
      const size_t count =
          BitmapT::AndInto(members, attribute.bitmaps[v], &narrowed);
      ++tally->popcount_calls;
      if (count == 0) {
        ++tally->pruned_subtrees;
        continue;
      }
      conditions->push_back({attribute.name, attribute.values[v]});
      EnumerateBitmap(attrs, predictions, overall_rate, num_rows, options,
                      a + 1, depth + 1, narrowed, count, conditions, scratch,
                      result, tally);
      conditions->pop_back();
    }
  }
}

/// One first-condition subtree: the (attribute, value) root plus
/// everything below it. Subtrees share no mutable state, so they are the
/// unit of parallelism; merging their results in root order reproduces
/// the serial walk exactly.
struct SubtreeTask {
  size_t attribute;
  size_t value;
};

template <typename AttributeT, typename BitmapT>
SubgroupAuditResult RunSubtree(
    const std::vector<const AttributeT*>& attrs,
    const BitmapT& predictions, double overall_rate, size_t num_rows,
    const SubgroupAuditOptions& options, const SubtreeTask& task,
    KernelTally* tally) {
  SubgroupAuditResult result;
  const AttributeT& attribute = *attrs[task.attribute];
  const BitmapT& members = attribute.bitmaps[task.value];
  const size_t count = members.Count();
  ++tally->popcount_calls;
  if (count == 0) return result;  // unreachable: index bitmaps are nonempty
  std::vector<std::pair<std::string, std::string>> conditions = {
      {attribute.name, attribute.values[task.value]}};
  // Depth d intersections land in scratch[d]; the root set itself is the
  // index bitmap, so levels 1..max_depth-1 suffice.
  std::vector<BitmapT> scratch(
      static_cast<size_t>(options.max_depth) + 1);
  EnumerateBitmap(attrs, predictions, overall_rate, num_rows, options,
                  task.attribute + 1, /*depth=*/1, members, count,
                  &conditions, &scratch, &result, tally);
  return result;
}

void MergeResult(SubgroupAuditResult&& subtree, SubgroupAuditResult* total) {
  total->subgroups_examined += subtree.subgroups_examined;
  total->subgroups_skipped_small += subtree.subgroups_skipped_small;
  total->any_violation = total->any_violation || subtree.any_violation;
  for (SubgroupFinding& finding : subtree.findings) {
    total->findings.push_back(std::move(finding));
  }
}

/// The full lattice walk over a prepared index: canonical subtree order,
/// per-subtree slots (serial or ThreadPool), merge in task order, obs
/// counters, final sort. Shared by the contiguous and chunked entry
/// points so their scheduling and bookkeeping cannot drift apart.
template <typename AttributeT, typename BitmapT>
SubgroupAuditResult RunLattice(const std::vector<AttributeT>& attributes,
                               const BitmapT& predictions,
                               double overall_rate, size_t num_rows,
                               const SubgroupAuditOptions& options) {
  std::vector<const AttributeT*> attrs;
  attrs.reserve(attributes.size());
  for (const AttributeT& attribute : attributes) {
    attrs.push_back(&attribute);
  }

  // Canonical subtree order: attributes in argument order, values in
  // first-seen order — the order the serial walk visits them.
  std::vector<SubtreeTask> tasks;
  for (size_t a = 0; a < attrs.size(); ++a) {
    for (size_t v = 0; v < attrs[a]->values.size(); ++v) {
      tasks.push_back(SubtreeTask{a, v});
    }
  }

  std::vector<SubgroupAuditResult> subtree_results(tasks.size());
  std::vector<KernelTally> subtree_tallies(tasks.size());
  auto run_task = [&](size_t t) {
    subtree_results[t] =
        RunSubtree(attrs, predictions, overall_rate, num_rows, options,
                   tasks[t], &subtree_tallies[t]);
  };
  if (options.num_threads == 1 || tasks.size() <= 1) {
    for (size_t t = 0; t < tasks.size(); ++t) run_task(t);
  } else {
    // Each task writes only its own slot, so aggregation needs no lock;
    // determinism comes from merging in task order below.
    ThreadPool pool(options.num_threads == 0
                        ? 0
                        : std::min(options.num_threads, tasks.size()));
    pool.ParallelFor(tasks.size(), run_task);
  }

  SubgroupAuditResult result;
  KernelTally tally;
  for (size_t t = 0; t < tasks.size(); ++t) {
    MergeResult(std::move(subtree_results[t]), &result);
    subtree_tallies[t].MergeInto(&tally);
  }
  obs::GetCounter("subgroup.audits")->Increment();
  obs::GetCounter("subgroup.nodes_visited")
      ->Increment(result.subgroups_examined);
  obs::GetCounter("subgroup.popcount_calls")->Increment(tally.popcount_calls);
  obs::GetCounter("subgroup.pruned_subtrees")
      ->Increment(tally.pruned_subtrees);
  SortFindings(&result);
  return result;
}

// ---------------------------------------------------------------------------
// Shared column extraction / validation.

struct PreparedAudit {
  data::GroupIndex index;
  data::Bitmap predictions;
  double overall_rate = 0.0;
  size_t num_rows = 0;
};

Result<PreparedAudit> Prepare(const data::Table& table,
                              const std::vector<std::string>& attribute_columns,
                              const std::string& prediction_column,
                              const SubgroupAuditOptions& options) {
  FAIRLAW_RETURN_NOT_OK(options.Validate());
  if (attribute_columns.empty()) {
    return Status::Invalid("AuditSubgroups: no attribute columns");
  }
  if (table.num_rows() == 0) {
    return Status::Invalid("AuditSubgroups: empty table");
  }
  PreparedAudit prepared;
  prepared.num_rows = table.num_rows();
  FAIRLAW_ASSIGN_OR_RETURN(
      prepared.predictions,
      data::GroupIndex::BinaryColumnBitmap(table, prediction_column));
  prepared.overall_rate = static_cast<double>(prepared.predictions.Count()) /
                          static_cast<double>(prepared.num_rows);
  FAIRLAW_ASSIGN_OR_RETURN(prepared.index,
                           data::GroupIndex::Build(table, attribute_columns));
  return prepared;
}

// ---------------------------------------------------------------------------
// Chunked (morsel-driven) preparation.

/// Per-chunk indexing output: both extraction steps always run so the
/// step-ranked error merge below can reproduce the contiguous path's
/// error precedence (predictions are extracted before the index is
/// built, and every step error is a row-independent string).
struct ChunkIndexPartial {
  Status prediction_status;
  Status index_status;
  data::Bitmap predictions;
  data::GroupIndex index;
};

ChunkIndexPartial IndexChunk(const data::Table& chunk,
                             const std::vector<std::string>& attribute_columns,
                             const std::string& prediction_column) {
  ChunkIndexPartial partial;
  auto predictions =
      data::GroupIndex::BinaryColumnBitmap(chunk, prediction_column);
  partial.prediction_status = predictions.status();
  if (partial.prediction_status.ok()) {
    partial.predictions = std::move(predictions).ValueOrDie();
  }
  auto index = data::GroupIndex::Build(chunk, attribute_columns);
  partial.index_status = index.status();
  if (partial.index_status.ok()) {
    partial.index = std::move(index).ValueOrDie();
  }
  return partial;
}

}  // namespace

Result<SubgroupAuditResult> AuditSubgroups(
    const data::Table& table,
    const std::vector<std::string>& attribute_columns,
    const std::string& prediction_column,
    const SubgroupAuditOptions& options) {
  if (options.chunk_rows > 0) {
    FAIRLAW_ASSIGN_OR_RETURN(
        data::ChunkedTable chunked,
        data::ChunkedTable::FromTable(table, options.chunk_rows));
    return AuditSubgroups(chunked, attribute_columns, prediction_column,
                          options);
  }
  obs::TraceSpan span("audit_subgroups");
  FAIRLAW_ASSIGN_OR_RETURN(
      PreparedAudit prepared,
      Prepare(table, attribute_columns, prediction_column, options));
  return RunLattice(prepared.index.attributes(), prepared.predictions,
                    prepared.overall_rate, prepared.num_rows, options);
}

Result<SubgroupAuditResult> AuditSubgroups(
    const data::ChunkedTable& table,
    const std::vector<std::string>& attribute_columns,
    const std::string& prediction_column,
    const SubgroupAuditOptions& options) {
  obs::TraceSpan span("audit_subgroups");
  FAIRLAW_RETURN_NOT_OK(options.Validate());
  if (attribute_columns.empty()) {
    return Status::Invalid("AuditSubgroups: no attribute columns");
  }
  if (table.num_rows() == 0) {
    return Status::Invalid("AuditSubgroups: empty table");
  }

  // Morsel phase: every chunk is indexed independently.
  const size_t num_chunks = table.num_chunks();
  std::vector<ChunkIndexPartial> partials(num_chunks);
  auto index_chunk = [&](size_t c) {
    partials[c] =
        IndexChunk(table.chunk(c), attribute_columns, prediction_column);
  };
  if (options.num_threads == 1 || num_chunks <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) index_chunk(c);
  } else {
    ThreadPool pool(options.num_threads == 0
                        ? 0
                        : std::min(options.num_threads, num_chunks));
    pool.ParallelFor(num_chunks, index_chunk);
  }
  // Step outranks chunk: the contiguous path fails on the prediction
  // column before it ever builds the index, so any chunk's prediction
  // error beats any chunk's index error.
  for (const ChunkIndexPartial& partial : partials) {
    FAIRLAW_RETURN_NOT_OK(partial.prediction_status);
  }
  for (const ChunkIndexPartial& partial : partials) {
    FAIRLAW_RETURN_NOT_OK(partial.index_status);
  }

  std::vector<size_t> chunk_sizes(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_sizes[c] = table.chunk(c).num_rows();
  }

  std::vector<data::Bitmap> prediction_chunks;
  prediction_chunks.reserve(num_chunks);
  for (ChunkIndexPartial& partial : partials) {
    prediction_chunks.push_back(std::move(partial.predictions));
  }
  data::ChunkedBitmap predictions(std::move(prediction_chunks));
  const double overall_rate = static_cast<double>(predictions.Count()) /
                              static_cast<double>(table.num_rows());

  // Merge the per-chunk value dictionaries in chunk order: each chunk's
  // values are in its first-seen row order, so first-seen-across-chunks
  // is exactly the whole-table first-seen order.
  std::vector<ChunkedAttributeIndex> attributes(attribute_columns.size());
  for (size_t a = 0; a < attribute_columns.size(); ++a) {
    ChunkedAttributeIndex& merged = attributes[a];
    merged.name = attribute_columns[a];
    std::map<std::string, size_t> global_of;
    for (size_t c = 0; c < num_chunks; ++c) {
      const data::AttributeIndex& local = partials[c].index.attributes()[a];
      for (const std::string& value : local.values) {
        auto [it, inserted] = global_of.try_emplace(value,
                                                    merged.values.size());
        if (inserted) merged.values.push_back(it->first);
      }
    }
    merged.bitmaps.reserve(merged.values.size());
    for (size_t v = 0; v < merged.values.size(); ++v) {
      merged.bitmaps.push_back(data::ChunkedBitmap::AllZero(chunk_sizes));
    }
    for (size_t c = 0; c < num_chunks; ++c) {
      const data::AttributeIndex& local = partials[c].index.attributes()[a];
      for (size_t v = 0; v < local.values.size(); ++v) {
        *merged.bitmaps[global_of.at(local.values[v])].mutable_chunk(c) =
            local.bitmaps[v];
      }
    }
  }

  return RunLattice(attributes, predictions, overall_rate, table.num_rows(),
                    options);
}

namespace {

// ---------------------------------------------------------------------------
// Rowwise reference enumerator (pre-kernel implementation, kept as the
// equivalence oracle and bench baseline).

struct AttributeColumn {
  std::string name;
  std::vector<std::string> values;  // per-row rendered value
  std::vector<std::string> distinct;
};

void EnumerateRowwise(const std::vector<AttributeColumn>& attributes,
                      const std::vector<int>& predictions,
                      double overall_rate,
                      const SubgroupAuditOptions& options,
                      size_t next_attribute, int depth,
                      std::vector<std::pair<std::string, std::string>>*
                          conditions,
                      std::vector<size_t>* member_rows,
                      SubgroupAuditResult* result) {
  if (depth > 0) {
    size_t positives = 0;
    for (size_t row : *member_rows) {
      positives += static_cast<size_t>(predictions[row]);
    }
    RecordFinding(*conditions, member_rows->size(), positives,
                  predictions.size(), overall_rate, options, result);
  }
  if (depth >= options.max_depth) return;
  for (size_t a = next_attribute; a < attributes.size(); ++a) {
    const AttributeColumn& attribute = attributes[a];
    for (const std::string& value : attribute.distinct) {
      std::vector<size_t> narrowed;
      narrowed.reserve(member_rows->size());
      for (size_t row : *member_rows) {
        // The per-row compare is the scalar baseline the bitmap kernels
        // replace. lint: allow-string-compare
        if (attribute.values[row] == value) narrowed.push_back(row);
      }
      if (narrowed.empty()) continue;
      conditions->push_back({attribute.name, value});
      EnumerateRowwise(attributes, predictions, overall_rate, options, a + 1,
                       depth + 1, conditions, &narrowed, result);
      conditions->pop_back();
    }
  }
}

}  // namespace

Result<SubgroupAuditResult> AuditSubgroupsRowwise(
    const data::Table& table,
    const std::vector<std::string>& attribute_columns,
    const std::string& prediction_column,
    const SubgroupAuditOptions& options) {
  obs::TraceSpan span("audit_subgroups_rowwise");
  FAIRLAW_RETURN_NOT_OK(options.Validate());
  if (attribute_columns.empty()) {
    return Status::Invalid("AuditSubgroups: no attribute columns");
  }
  if (table.num_rows() == 0) {
    return Status::Invalid("AuditSubgroups: empty table");
  }

  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* prediction_col,
                           table.GetColumn(prediction_column));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> raw_predictions,
                           prediction_col->ToDoubles());
  std::vector<int> predictions(raw_predictions.size());
  size_t positives = 0;
  for (size_t i = 0; i < raw_predictions.size(); ++i) {
    if (raw_predictions[i] != 0.0 && raw_predictions[i] != 1.0) {
      return Status::Invalid("AuditSubgroups: prediction column must be 0/1");
    }
    predictions[i] = raw_predictions[i] == 1.0 ? 1 : 0;
    positives += static_cast<size_t>(predictions[i]);
  }
  const double overall_rate =
      static_cast<double>(positives) / static_cast<double>(predictions.size());

  std::vector<AttributeColumn> attributes;
  attributes.reserve(attribute_columns.size());
  for (const std::string& name : attribute_columns) {
    FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column,
                             table.GetColumn(name));
    AttributeColumn attribute;
    attribute.name = name;
    attribute.values.resize(column->size());
    for (size_t row = 0; row < column->size(); ++row) {
      attribute.values[row] = column->ValueToString(row);
    }
    FAIRLAW_ASSIGN_OR_RETURN(attribute.distinct,
                             data::DistinctValues(table, name));
    attributes.push_back(std::move(attribute));
  }

  SubgroupAuditResult result;
  std::vector<std::pair<std::string, std::string>> conditions;
  std::vector<size_t> all_rows(table.num_rows());
  for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  EnumerateRowwise(attributes, predictions, overall_rate, options,
                   /*next_attribute=*/0, /*depth=*/0, &conditions, &all_rows,
                   &result);
  SortFindings(&result);
  return result;
}

size_t CountConjunctions(const std::vector<size_t>& cardinalities,
                         int max_depth) {
  // Sum over non-empty attribute subsets of size <= max_depth of the
  // product of their cardinalities, computed by dynamic programming over
  // attributes.
  std::vector<size_t> by_depth(static_cast<size_t>(max_depth) + 1, 0);
  by_depth[0] = 1;  // the empty conjunction (not counted in the result)
  for (size_t cardinality : cardinalities) {
    for (int d = max_depth; d >= 1; --d) {
      by_depth[d] += by_depth[d - 1] * cardinality;
    }
  }
  size_t total = 0;
  for (int d = 1; d <= max_depth; ++d) total += by_depth[d];
  return total;
}

}  // namespace fairlaw::audit
