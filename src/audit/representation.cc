#include "audit/representation.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"
#include "data/group_by.h"
#include "stats/distance.h"
#include "stats/hypothesis.h"

namespace fairlaw::audit {

Result<RepresentationReport> AuditRepresentation(
    const data::Table& table, const std::string& column,
    const std::map<std::string, double>& reference_shares,
    const RepresentationAuditOptions& options) {
  if (reference_shares.size() < 2) {
    return Status::Invalid("AuditRepresentation: need >= 2 reference "
                           "groups");
  }
  if (options.under_representation_threshold <= 0.0 ||
      options.under_representation_threshold > 1.0) {
    return Status::Invalid("AuditRepresentation: threshold must lie in "
                           "(0,1]");
  }
  double reference_total = 0.0;
  for (const auto& [group, share] : reference_shares) {
    (void)group;
    if (share < 0.0) {
      return Status::Invalid("AuditRepresentation: negative reference "
                             "share");
    }
    reference_total += share;
  }
  if (reference_total <= 0.0) {
    return Status::Invalid("AuditRepresentation: reference shares sum to "
                           "zero");
  }

  FAIRLAW_ASSIGN_OR_RETURN(std::vector<data::Group> groups,
                           data::GroupBy(table, {column}));
  std::map<std::string, int64_t> counts;
  int64_t total = 0;
  for (const data::Group& group : groups) {
    counts[group.key[0]] = static_cast<int64_t>(group.rows.size());
    total += static_cast<int64_t>(group.rows.size());
  }
  if (total == 0) return Status::Invalid("AuditRepresentation: empty table");

  // Both directions must agree on the category set.
  for (const auto& [group, count] : counts) {
    (void)count;
    if (!reference_shares.contains(group)) {
      return Status::Invalid("AuditRepresentation: data contains group '" +
                             group + "' absent from the reference");
    }
  }
  for (const auto& [group, share] : reference_shares) {
    (void)share;
    if (!counts.contains(group)) {
      return Status::Invalid("AuditRepresentation: reference group '" +
                             group + "' absent from the data");
    }
  }

  RepresentationReport report;
  std::vector<double> data_probs;
  std::vector<double> reference_probs;
  std::vector<std::vector<int64_t>> gof_table;  // observed vs expected-ish
  std::string flagged;
  for (const auto& [group, share] : reference_shares) {
    GroupRepresentation rep;
    rep.group = group;
    rep.count = counts[group];
    rep.data_share =
        static_cast<double>(rep.count) / static_cast<double>(total);
    rep.reference_share = share / reference_total;
    rep.representation_ratio =
        rep.reference_share > 0.0 ? rep.data_share / rep.reference_share
                                  : 1.0;
    rep.under_represented =
        rep.representation_ratio < options.under_representation_threshold;
    if (rep.under_represented) {
      if (!flagged.empty()) flagged += ", ";
      flagged += group;
    }
    data_probs.push_back(rep.data_share);
    reference_probs.push_back(rep.reference_share);
    report.groups.push_back(std::move(rep));
  }

  FAIRLAW_ASSIGN_OR_RETURN(report.total_variation,
                           stats::TotalVariation(data_probs,
                                                 reference_probs));
  FAIRLAW_ASSIGN_OR_RETURN(report.hellinger,
                           stats::Hellinger(data_probs, reference_probs));

  // Chi-square goodness of fit against the reference composition.
  double chi2 = 0.0;
  for (const GroupRepresentation& rep : report.groups) {
    double expected = rep.reference_share * static_cast<double>(total);
    if (expected > 0.0) {
      double diff = static_cast<double>(rep.count) - expected;
      chi2 += diff * diff / expected;
    }
  }
  double df = static_cast<double>(report.groups.size() - 1);
  report.chi_square_p_value = stats::RegularizedGammaQ(df / 2.0, chi2 / 2.0);

  report.composition_ok =
      flagged.empty() && report.total_variation <= options.max_total_variation;
  if (!report.composition_ok) {
    report.detail = "TV=" + FormatDouble(report.total_variation, 4);
    if (!flagged.empty()) {
      report.detail += "; under-represented: " + flagged;
    }
  }
  return report;
}

Result<size_t> RequiredDatasetSize(
    const std::map<std::string, double>& reference_shares,
    size_t min_group_count) {
  if (reference_shares.empty()) {
    return Status::Invalid("RequiredDatasetSize: no reference groups");
  }
  if (min_group_count == 0) {
    return Status::Invalid("RequiredDatasetSize: min_group_count must be "
                           ">= 1");
  }
  double total = 0.0;
  double smallest = std::numeric_limits<double>::infinity();
  for (const auto& [group, share] : reference_shares) {
    (void)group;
    if (share < 0.0) {
      return Status::Invalid("RequiredDatasetSize: negative share");
    }
    total += share;
    if (share > 0.0) smallest = std::min(smallest, share);
  }
  if (total <= 0.0 || !std::isfinite(smallest)) {
    return Status::Invalid("RequiredDatasetSize: shares sum to zero");
  }
  return static_cast<size_t>(std::ceil(
      static_cast<double>(min_group_count) / (smallest / total)));
}

}  // namespace fairlaw::audit
