#include "audit/manipulation.h"

#include <cmath>

#include "base/string_util.h"
#include "metrics/group_metrics.h"

namespace fairlaw::audit {

Result<ManipulationAuditReport> AuditManipulation(
    const std::vector<ml::FeatureImportance>& importances,
    const std::string& sensitive_feature,
    const metrics::MetricInput& outcomes,
    const ManipulationAuditOptions& options) {
  if (importances.empty()) {
    return Status::Invalid("AuditManipulation: no importances");
  }
  double total_mass = 0.0;
  double sensitive_mass = -1.0;
  for (const ml::FeatureImportance& fi : importances) {
    double mass = std::fabs(fi.importance);
    total_mass += mass;
    if (fi.feature == sensitive_feature) sensitive_mass = mass;
  }
  if (sensitive_mass < 0.0) {
    return Status::NotFound("AuditManipulation: feature '" +
                            sensitive_feature +
                            "' not present in the importance list");
  }

  ManipulationAuditReport report;
  report.sensitive_attribution_share =
      total_mass > 0.0 ? sensitive_mass / total_mass : 0.0;
  report.attribution_says_fair =
      report.sensitive_attribution_share < options.attribution_threshold;

  FAIRLAW_ASSIGN_OR_RETURN(
      metrics::MetricReport dp,
      metrics::DemographicParity(outcomes, options.outcome_tolerance));
  report.outcome_gap = dp.max_gap;
  report.outcome_says_fair = dp.satisfied;
  report.masking_suspected =
      report.attribution_says_fair && !report.outcome_says_fair;
  report.detail =
      "sensitive attribution share " +
      FormatDouble(report.sensitive_attribution_share, 4) +
      (report.attribution_says_fair ? " (attribution audit: fair)"
                                    : " (attribution audit: unfair)") +
      ", outcome DP gap " + FormatDouble(report.outcome_gap, 4) +
      (report.outcome_says_fair ? " (outcome audit: fair)"
                                : " (outcome audit: unfair)") +
      (report.masking_suspected ? " -> MASKING SUSPECTED" : "");
  return report;
}

}  // namespace fairlaw::audit
