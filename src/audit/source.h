#ifndef FAIRLAW_AUDIT_SOURCE_H_
#define FAIRLAW_AUDIT_SOURCE_H_

#include <string>
#include <variant>

#include "audit/auditor.h"
#include "audit/windowed.h"
#include "base/result.h"
#include "data/chunked.h"
#include "data/csv.h"
#include "data/table.h"

namespace fairlaw::audit {

/// Where an audit's rows come from. One value type closes over the four
/// ingestion shapes the engine supports, so every caller — batch tool,
/// tests, the serve daemon's windows — invokes the same
/// `Auditor::Run(source, config)` and gets the same determinism
/// contract: output is byte-identical for every chunk size, thread
/// count, and ingestion path that delivers the same rows in the same
/// order.
///
/// Table, chunked-table, and window sources borrow their referent (the
/// caller keeps it alive across Run); the CSV source owns its path and
/// options.
class AuditSource {
 public:
  static AuditSource FromTable(const data::Table& table) {
    return AuditSource(&table);
  }
  static AuditSource FromChunked(const data::ChunkedTable& table) {
    return AuditSource(&table);
  }
  static AuditSource FromCsv(std::string path,
                             data::CsvOptions options = data::CsvOptions{}) {
    return AuditSource(CsvSpec{std::move(path), std::move(options)});
  }
  /// A merged serve window: exact tallies plus per-group sketches in
  /// place of rows (audit/windowed.h). Runs the windowed evaluator —
  /// calibration skipped, drift approximate.
  static AuditSource FromWindow(const WindowedPartial& window) {
    return AuditSource(&window);
  }

  struct CsvSpec {
    std::string path;
    data::CsvOptions options;
  };

  const std::variant<const data::Table*, const data::ChunkedTable*, CsvSpec,
                     const WindowedPartial*>&
  value() const {
    return value_;
  }

 private:
  template <typename T>
  explicit AuditSource(T value) : value_(std::move(value)) {}

  std::variant<const data::Table*, const data::ChunkedTable*, CsvSpec,
               const WindowedPartial*>
      value_;
};

/// The one audit entry point. Validates `config`, dispatches on the
/// source shape, and runs the morsel-driven engine (tables, CSV
/// streams) or the windowed evaluator (serve windows). The legacy
/// RunAudit/RunAuditCsv free functions in auditor.h are thin shims over
/// this.
class Auditor {
 public:
  FAIRLAW_NODISCARD static Result<AuditResult> Run(const AuditSource& source,
                                                   const AuditConfig& config);
};

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_SOURCE_H_
