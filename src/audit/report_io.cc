#include "audit/report_io.h"

#include "metrics/calibration_metric.h"
#include "obs/obs.h"

namespace fairlaw::audit {

void WriteMetricReport(JsonWriter* json,
                       const metrics::MetricReport& report) {
  json->BeginObject();
  json->Field("metric", report.metric_name);
  json->Field("satisfied", report.satisfied);
  json->Field("max_gap", report.max_gap);
  json->Field("min_ratio", report.min_ratio);
  json->Field("tolerance", report.tolerance);
  if (!report.detail.empty()) json->Field("detail", report.detail);
  json->Key("groups");
  json->BeginArray();
  for (const metrics::GroupStats& gs : report.groups) {
    json->BeginObject();
    json->Field("group", gs.group);
    json->Field("count", gs.count);
    json->Field("selection_rate", gs.selection_rate);
    if (gs.actual_positives + gs.actual_negatives > 0) {
      json->Field("tpr", gs.tpr);
      json->Field("fpr", gs.fpr);
      json->Field("ppv", gs.ppv);
    }
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

void WriteConditionalReport(JsonWriter* json,
                            const metrics::ConditionalReport& report) {
  json->BeginObject();
  json->Field("metric", report.metric_name);
  json->Field("satisfied", report.satisfied);
  json->Field("max_gap", report.max_gap);
  json->Key("strata");
  json->BeginArray();
  for (const metrics::StratumReport& stratum : report.strata) {
    json->BeginObject();
    json->Field("stratum", stratum.stratum);
    json->Field("satisfied", stratum.report.satisfied);
    json->Field("gap", stratum.report.max_gap);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

void WriteAuditFindings(JsonWriter* json, const AuditResult& result) {
  json->BeginObject();
  json->Field("all_satisfied", result.all_satisfied);

  json->Key("metrics");
  json->BeginArray();
  for (const metrics::MetricReport& metric : result.reports) {
    WriteMetricReport(json, metric);
  }
  json->EndArray();

  json->Key("conditional_metrics");
  json->BeginArray();
  for (const metrics::ConditionalReport& conditional :
       result.conditional_reports) {
    WriteConditionalReport(json, conditional);
  }
  json->EndArray();

  if (result.calibration.has_value()) {
    json->Key("calibration");
    WriteCalibrationReport(json, *result.calibration);
  }

  if (result.score_distribution.has_value()) {
    json->Key("score_distribution");
    WriteScoreDistributionReport(json, *result.score_distribution);
  }

  json->EndObject();
}

void WriteCalibrationReport(JsonWriter* json,
                            const metrics::CalibrationReport& report) {
  json->BeginObject();
  json->Field("satisfied", report.satisfied);
  json->Field("max_ece", report.max_ece);
  json->Field("ece_gap", report.ece_gap);
  json->Key("groups");
  json->BeginArray();
  for (const metrics::GroupCalibration& gc : report.groups) {
    json->BeginObject();
    json->Field("group", gc.group);
    json->Field("ece", gc.ece);
    json->Field("mean_score", gc.mean_score);
    json->Field("base_rate", gc.positive_rate);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

void WriteScoreDistributionReport(JsonWriter* json,
                                  const ScoreDistributionReport& report) {
  json->BeginObject();
  json->Field("satisfied", report.satisfied);
  json->Field("max_wasserstein1", report.max_wasserstein1);
  json->Field("max_ks", report.max_ks);
  json->Field("tolerance", report.tolerance);
  json->Field("approximate", report.approximate);
  json->Key("groups");
  json->BeginArray();
  for (const GroupScoreDistance& gd : report.groups) {
    json->BeginObject();
    json->Field("group", gd.group);
    json->Field("count", static_cast<int64_t>(gd.count));
    json->Field("wasserstein1", gd.wasserstein1);
    json->Field("ks", gd.ks);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

Result<std::string> AuditResultToJson(const AuditResult& result,
                                      const ReportEnvelopeOptions& options) {
  JsonWriter json;
  json.BeginObject();
  json.Field("schema_version", kReportSchemaVersion);
  json.Field("kind", options.kind);
  json.Key("findings");
  WriteAuditFindings(&json, result);
  if (!options.obs_counters.empty()) {
    json.Key("obs");
    json.BeginObject();
    for (const std::string& name : options.obs_counters) {
      json.Field(name, static_cast<int64_t>(obs::GetCounter(name)->Value()));
    }
    json.EndObject();
  }
  json.EndObject();
  return json.Finish();
}

void WriteErrorObject(JsonWriter* json, const Status& status) {
  json->Key("error");
  json->BeginObject();
  json->Field("code", std::string(StatusCodeToString(status.code())));
  json->Field("message", status.message());
  json->EndObject();
}

Result<std::string> ErrorEnvelopeJson(const Status& status) {
  JsonWriter json;
  json.BeginObject();
  json.Field("schema_version", kReportSchemaVersion);
  json.Field("kind", std::string("error"));
  WriteErrorObject(&json, status);
  json.EndObject();
  return json.Finish();
}

}  // namespace fairlaw::audit
