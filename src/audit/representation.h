#ifndef FAIRLAW_AUDIT_REPRESENTATION_H_
#define FAIRLAW_AUDIT_REPRESENTATION_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "data/table.h"

namespace fairlaw::audit {

// Representation-bias audit (§IV-F): "one can compare the distribution of
// a protected attribute in the general population against the
// distribution of the protected attribute in the training data. Then,
// bias detection involves calculating distances between two probability
// distributions." This module does exactly that: given population-wide
// reference shares (census-style marginals), it measures how far the
// training data's composition deviates, under the distances the paper
// names, and states how many samples the verdict is good for.

/// Per-group representation comparison.
struct GroupRepresentation {
  std::string group;
  int64_t count = 0;
  double data_share = 0.0;       // share in the audited dataset
  double reference_share = 0.0;  // share in the population reference
  /// data_share / reference_share; < 1 means under-represented.
  double representation_ratio = 1.0;
  bool under_represented = false;
};

struct RepresentationAuditOptions {
  /// A group is flagged when its representation ratio falls below this.
  double under_representation_threshold = 0.8;
  /// Distance above which the composition as a whole is flagged.
  double max_total_variation = 0.1;
};

struct RepresentationReport {
  std::vector<GroupRepresentation> groups;
  /// Distances between the dataset composition and the reference
  /// (aligned category order).
  double total_variation = 0.0;
  double hellinger = 0.0;
  double chi_square_p_value = 1.0;  // goodness-of-fit vs the reference
  bool composition_ok = true;       // TV within bounds, nobody flagged
  std::string detail;
};

/// Compares the composition of `column` in `table` against
/// `reference_shares` (group -> population share; missing groups in
/// either direction are errors, because silently dropping a category is
/// itself a representation failure). Shares are normalized internally.
FAIRLAW_NODISCARD Result<RepresentationReport> AuditRepresentation(
    const data::Table& table, const std::string& column,
    const std::map<std::string, double>& reference_shares,
    const RepresentationAuditOptions& options = {});

/// Minimum dataset size such that, for every group in `reference_shares`,
/// the expected group count reaches `min_group_count` — the §IV-F
/// "sample complexity of bias detection" turned into a data-collection
/// requirement.
FAIRLAW_NODISCARD Result<size_t> RequiredDatasetSize(
    const std::map<std::string, double>& reference_shares,
    size_t min_group_count);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_REPRESENTATION_H_
