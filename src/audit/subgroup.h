#ifndef FAIRLAW_AUDIT_SUBGROUP_H_
#define FAIRLAW_AUDIT_SUBGROUP_H_

#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "data/chunked.h"
#include "data/table.h"

namespace fairlaw::audit {

// Subgroup / fairness-gerrymandering audit (§IV-C; Kearns et al. [9]).
// A classifier can satisfy demographic parity on every marginal protected
// attribute while severely disadvantaging a conjunction such as
// (gender=female AND race=caucasian). This auditor enumerates
// conjunctions of attribute=value conditions up to a depth bound and
// scores each against the overall selection rate.

/// A conjunction of attribute=value conditions.
struct SubgroupDefinition {
  std::vector<std::pair<std::string, std::string>> conditions;

  /// Renders "gender=female & race=caucasian".
  std::string ToString() const;
};

/// One audited subgroup.
struct SubgroupFinding {
  SubgroupDefinition subgroup;
  size_t count = 0;
  double selection_rate = 0.0;
  double overall_rate = 0.0;
  /// |selection_rate - overall_rate|.
  double gap = 0.0;
  /// (count / n) * gap — Kearns et al.'s size-weighted violation score,
  /// which discounts tiny subgroups whose rates are noise (§IV-C's
  /// uncertainty concern).
  double weighted_gap = 0.0;
};

struct SubgroupAuditOptions {
  /// Maximum number of conditions per conjunction (1 audits marginals
  /// only). Enumeration cost grows exponentially with depth — the
  /// complexity the paper warns about; bench_e4 measures it.
  int max_depth = 2;
  /// Subgroups with fewer members are skipped.
  size_t min_support = 20;
  /// Gap above which a subgroup counts as a violation.
  double tolerance = 0.05;
  /// Worker threads for the lattice walk: 1 = serial (default), 0 = one
  /// per hardware thread. The walk is split at the first condition — each
  /// (attribute, value) root is an independent subtree — and subtree
  /// results are merged in canonical root order, so the findings are
  /// byte-identical for every thread count.
  size_t num_threads = 1;
  /// Rows per morsel for the chunked engine: with a nonzero value the
  /// table is split into chunks, each chunk is indexed independently
  /// (in parallel when num_threads != 1), and the lattice walk runs on
  /// chunk-spanning bitmaps whose counts sum to the whole-table counts —
  /// so the findings are byte-identical for every chunk size. 0
  /// (default) builds one contiguous index.
  size_t chunk_rows = 0;

  /// Checks the options before the lattice walk: max_depth >= 1 and
  /// tolerance in [0,1]. Both AuditSubgroups entry points call this
  /// first, mirroring AuditConfig::Validate.
  FAIRLAW_NODISCARD Status Validate() const;
};

/// Result of the subgroup audit: all findings (sorted by descending gap)
/// plus the number of conjunctions examined.
struct SubgroupAuditResult {
  std::vector<SubgroupFinding> findings;
  size_t subgroups_examined = 0;
  size_t subgroups_skipped_small = 0;
  bool any_violation = false;

  /// Findings whose gap exceeds the audit tolerance.
  std::vector<SubgroupFinding> Violations(double tolerance) const;
};

/// Enumerates all conjunctions over `attribute_columns` (their distinct
/// values) up to `options.max_depth` and scores each against the overall
/// selection rate of `prediction_column` (binary).
///
/// The enumerator runs on a data::GroupIndex built once per call:
/// narrowing a conjunction by one condition is a word-wise bitmap AND,
/// and the member/selected counts are fused popcounts. With
/// options.num_threads != 1 the first-condition subtrees run on a
/// base::ThreadPool; the output is identical to the serial walk.
FAIRLAW_NODISCARD Result<SubgroupAuditResult> AuditSubgroups(
    const data::Table& table,
    const std::vector<std::string>& attribute_columns,
    const std::string& prediction_column, const SubgroupAuditOptions& options);

/// Morsel-driven variant: indexes every chunk independently (one morsel
/// per chunk on a base::ThreadPool when options.num_threads != 1), merges
/// the per-chunk value dictionaries in chunk order — which reproduces the
/// whole-table first-seen value order — and walks the same conjunction
/// lattice over data::ChunkedBitmap AND/popcount kernels. Per-chunk
/// popcounts sum to the contiguous counts, so the findings (and the
/// kernel counters) are byte-identical to the contiguous path for every
/// chunk layout and thread count.
FAIRLAW_NODISCARD Result<SubgroupAuditResult> AuditSubgroups(
    const data::ChunkedTable& table,
    const std::vector<std::string>& attribute_columns,
    const std::string& prediction_column, const SubgroupAuditOptions& options);

/// Scalar reference implementation: per-row string compares over
/// std::vector<size_t> row lists, always serial. Kept as the equivalence
/// oracle for tests and the "before" side of bench_micro_subgroup's
/// kernel comparison; produces byte-identical results to AuditSubgroups.
FAIRLAW_NODISCARD Result<SubgroupAuditResult> AuditSubgroupsRowwise(
    const data::Table& table,
    const std::vector<std::string>& attribute_columns,
    const std::string& prediction_column, const SubgroupAuditOptions& options);

/// Number of conjunctions the exhaustive audit will examine for the given
/// per-attribute cardinalities and depth (the exponential the paper
/// references).
size_t CountConjunctions(const std::vector<size_t>& cardinalities,
                         int max_depth);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_SUBGROUP_H_
