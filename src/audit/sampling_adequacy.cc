#include "audit/sampling_adequacy.h"

#include <cmath>

#include "stats/hypothesis.h"

namespace fairlaw::audit {

Result<SamplingReport> AssessSamplingAdequacy(
    const metrics::MetricInput& input,
    const SamplingAdequacyOptions& options) {
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::Invalid("AssessSamplingAdequacy: confidence must lie in "
                           "(0,1)");
  }
  if (options.max_ci_halfwidth <= 0.0) {
    return Status::Invalid("AssessSamplingAdequacy: max_ci_halfwidth must be "
                           "> 0");
  }
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<metrics::GroupStats> stats,
                           metrics::ComputeGroupStats(input,
                                                      /*with_labels=*/false));
  FAIRLAW_ASSIGN_OR_RETURN(
      double z, stats::NormalQuantile(0.5 + options.confidence / 2.0));

  SamplingReport report;
  const double n = static_cast<double>(input.size());
  std::string inadequate;
  for (const metrics::GroupStats& gs : stats) {
    GroupSupport support;
    support.group = gs.group;
    support.count = static_cast<size_t>(gs.count);
    support.share = static_cast<double>(gs.count) / n;
    support.selection_rate = gs.selection_rate;
    double p = gs.selection_rate;
    support.ci_halfwidth =
        gs.count > 0
            ? z * std::sqrt(p * (1.0 - p) / static_cast<double>(gs.count))
            : 1.0;
    support.adequate = support.count >= options.min_count &&
                       support.ci_halfwidth <= options.max_ci_halfwidth;
    if (!support.adequate) {
      report.all_adequate = false;
      if (!inadequate.empty()) inadequate += ", ";
      inadequate += support.group;
    }
    report.groups.push_back(std::move(support));
  }
  if (!report.all_adequate) {
    report.detail = "groups with inadequate support: " + inadequate +
                    " — rate estimates for these groups are unreliable "
                    "(paper §IV-F)";
  }
  return report;
}

Result<size_t> RequiredSampleSize(double rate, double halfwidth,
                                  double confidence) {
  if (rate < 0.0 || rate > 1.0) {
    return Status::Invalid("RequiredSampleSize: rate must lie in [0,1]");
  }
  if (halfwidth <= 0.0) {
    return Status::Invalid("RequiredSampleSize: halfwidth must be > 0");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::Invalid("RequiredSampleSize: confidence must lie in (0,1)");
  }
  FAIRLAW_ASSIGN_OR_RETURN(double z,
                           stats::NormalQuantile(0.5 + confidence / 2.0));
  double variance = rate * (1.0 - rate);
  if (variance == 0.0) return static_cast<size_t>(1);
  return static_cast<size_t>(
      std::ceil(z * z * variance / (halfwidth * halfwidth)));
}

}  // namespace fairlaw::audit
