#ifndef FAIRLAW_AUDIT_MANIPULATION_H_
#define FAIRLAW_AUDIT_MANIPULATION_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "ml/feature_importance.h"
#include "metrics/fairness_metric.h"

namespace fairlaw::audit {

// Robustness-to-manipulation audit (§IV-E; Dimanov et al. [3]). A model
// owner can retrain a classifier so that explanation methods attribute
// ~nothing to the protected feature while the model keeps discriminating
// through correlated features. The defense: never accept an
// attribution-only fairness argument — cross-check it against the
// model's observed outcome rates.

/// Verdict of the cross-check.
struct ManipulationAuditReport {
  /// Share of total attribution mass assigned to the sensitive feature,
  /// in [0,1].
  double sensitive_attribution_share = 0.0;
  /// An attribution-based auditor would call the model fair when the
  /// sensitive share is below `attribution_threshold`.
  bool attribution_says_fair = false;
  /// Demographic-parity gap of the actual predictions.
  double outcome_gap = 0.0;
  /// An outcome-based auditor calls the model fair when the gap is within
  /// `outcome_tolerance`.
  bool outcome_says_fair = false;
  /// True when the attribution audit passes but the outcome audit fails —
  /// the signature of masked discrimination.
  bool masking_suspected = false;
  std::string detail;
};

struct ManipulationAuditOptions {
  /// Sensitive-attribution share below which an attribution audit would
  /// pass the model.
  double attribution_threshold = 0.05;
  /// Demographic-parity gap tolerance for the outcome audit.
  double outcome_tolerance = 0.05;
};

/// Runs the cross-check. `importances` comes from any attribution method
/// (ml::PermutationImportance, ml::LinearAttribution, ...);
/// `sensitive_feature` names the protected feature inside it; `outcomes`
/// carries the model's predictions and group memberships.
FAIRLAW_NODISCARD Result<ManipulationAuditReport> AuditManipulation(
    const std::vector<ml::FeatureImportance>& importances,
    const std::string& sensitive_feature,
    const metrics::MetricInput& outcomes,
    const ManipulationAuditOptions& options = {});

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_MANIPULATION_H_
