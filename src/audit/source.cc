#include "audit/source.h"

#include <algorithm>
#include <deque>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "audit/evaluate.h"
#include "audit/partials.h"
#include "base/thread_pool.h"
#include "obs/obs.h"

namespace fairlaw::audit {
namespace {

Result<AuditResult> RunChunked(const data::ChunkedTable& table,
                               const AuditConfig& config) {
  obs::TraceSpan run_span("run_audit");
  obs::GetCounter("audit.runs")->Increment();
  obs::GetCounter("audit.rows_audited")->Increment(table.num_rows());
  // Morsels may run on pool workers whose span stack is empty; capturing
  // the scheduling thread's path here and passing it to TraceSpan keeps
  // the exported span tree identical for every thread count.
  const std::string parent_path = obs::CurrentPath();

  if (table.num_chunks() == 0) {
    FAIRLAW_ASSIGN_OR_RETURN(data::Table empty, table.Materialize());
    return EmptyAuditError(empty, config);
  }

  obs::GetCounter("audit.morsels_scheduled")->Increment(table.num_chunks());
  std::vector<ChunkPartial> partials(table.num_chunks());
  if (config.num_threads == 1 || table.num_chunks() == 1) {
    for (size_t i = 0; i < table.num_chunks(); ++i) {
      partials[i] = ProcessChunk(table.chunk(i), config, parent_path);
    }
  } else {
    ThreadPool pool(config.num_threads == 0
                        ? 0
                        : std::min(config.num_threads, table.num_chunks()));
    pool.ParallelFor(table.num_chunks(),
                     [&partials, &table, &config, &parent_path](size_t i) {
                       partials[i] =
                           ProcessChunk(table.chunk(i), config, parent_path);
                     });
  }
  MergedPartials merged;
  for (ChunkPartial& partial : partials) merged.Fold(std::move(partial));
  return EvaluateMergedPartials(merged, config, parent_path);
}

Result<AuditResult> RunCsv(const AuditSource::CsvSpec& spec,
                           const AuditConfig& config) {
  obs::TraceSpan run_span("run_audit");
  obs::GetCounter("audit.runs")->Increment();
  const std::string parent_path = obs::CurrentPath();

  data::CsvChunkReader::Options reader_options;
  reader_options.csv = spec.options;
  reader_options.chunk_rows =
      config.chunk_rows == 0 ? data::kDefaultChunkRows : config.chunk_rows;
  FAIRLAW_ASSIGN_OR_RETURN(
      data::CsvChunkReader reader,
      data::CsvChunkReader::Make(spec.path, reader_options));
  obs::GetCounter("audit.rows_audited")->Increment(reader.num_rows());

  if (reader.num_rows() == 0) {
    data::TableBuilder builder(reader.schema());
    FAIRLAW_ASSIGN_OR_RETURN(data::Table empty, builder.Finish());
    return EmptyAuditError(empty, config);
  }

  MergedPartials merged;
  if (config.num_threads == 1) {
    // Serial streaming: read, tally, merge, drop — peak memory is one
    // chunk plus the merged accumulators.
    while (true) {
      FAIRLAW_ASSIGN_OR_RETURN(std::optional<data::Table> chunk,
                               reader.Next());
      if (!chunk.has_value()) break;
      obs::GetCounter("audit.morsels_scheduled")->Increment();
      merged.Fold(ProcessChunk(*chunk, config, parent_path));
    }
  } else {
    // Bounded in-flight window: the reader stays on this thread, workers
    // tally chunks, and the oldest in-flight chunk merges first — which
    // is chunk order, so the stream reproduces the in-memory result.
    // Deque slots are stable across push/pop at the ends, and the pool
    // is declared after the deque so its destructor joins the workers
    // before any slot they might still write goes away.
    struct InFlight {
      ChunkPartial partial;
      std::future<void> done;
    };
    std::deque<InFlight> in_flight;
    ThreadPool pool(config.num_threads);
    const size_t window = pool.num_threads() * 2;
    auto drain_front = [&merged, &in_flight] {
      in_flight.front().done.get();
      merged.Fold(std::move(in_flight.front().partial));
      in_flight.pop_front();
    };
    while (true) {
      FAIRLAW_ASSIGN_OR_RETURN(std::optional<data::Table> chunk,
                               reader.Next());
      if (!chunk.has_value()) break;
      if (in_flight.size() >= window) drain_front();
      in_flight.emplace_back();
      InFlight& slot = in_flight.back();
      obs::GetCounter("audit.morsels_scheduled")->Increment();
      slot.done = pool.Submit([&partial = slot.partial,
                               chunk = std::move(*chunk), &config,
                               &parent_path] {
        partial = ProcessChunk(chunk, config, parent_path);
      });
    }
    while (!in_flight.empty()) drain_front();
  }
  return EvaluateMergedPartials(merged, config, parent_path);
}

}  // namespace

Result<AuditResult> Auditor::Run(const AuditSource& source,
                                 const AuditConfig& config) {
  FAIRLAW_RETURN_NOT_OK(config.Validate());
  struct Dispatch {
    const AuditConfig& config;
    Result<AuditResult> operator()(const data::Table* table) const {
      FAIRLAW_ASSIGN_OR_RETURN(
          data::ChunkedTable chunked,
          data::ChunkedTable::FromTable(*table, config.chunk_rows));
      return RunChunked(chunked, config);
    }
    Result<AuditResult> operator()(const data::ChunkedTable* table) const {
      return RunChunked(*table, config);
    }
    Result<AuditResult> operator()(const AuditSource::CsvSpec& spec) const {
      return RunCsv(spec, config);
    }
    Result<AuditResult> operator()(const WindowedPartial* window) const {
      obs::TraceSpan run_span("run_audit");
      obs::GetCounter("audit.runs")->Increment();
      obs::GetCounter("audit.rows_audited")->Increment(window->num_rows);
      return RunWindowedAudit(*window, config, obs::CurrentPath());
    }
  };
  return std::visit(Dispatch{config}, source.value());
}

}  // namespace fairlaw::audit
