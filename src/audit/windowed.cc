#include "audit/windowed.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "audit/evaluate.h"
#include "obs/obs.h"
#include "stats/kll.h"

namespace fairlaw::audit {
namespace {

/// Sketch-based drift: each group's sketch against the merge of every
/// other group's sketch, folded in first-seen key order (the windowed
/// analogue of "pooled minus this group"; sketches cannot subtract, so
/// the rest is rebuilt by merging). O(G^2) sketch merges — G is the
/// number of protected groups, which is small.
Result<ScoreDistributionReport> SketchDriftAudit(
    const stats::GroupedSketches& sketches, const AuditConfig& config) {
  ScoreDistributionReport report;
  report.tolerance = config.score_distribution_tolerance;
  report.approximate = true;
  for (size_t g = 0; g < sketches.num_keys(); ++g) {
    const stats::KllSketch& mine = sketches.sketch(g);
    stats::KllSketch rest(sketches.options());
    for (size_t j = 0; j < sketches.num_keys(); ++j) {
      if (j != g) rest.Merge(sketches.sketch(j));
    }
    GroupScoreDistance distance;
    distance.group = sketches.keys()[g];
    distance.count = static_cast<size_t>(mine.count());
    if (!mine.empty() && !rest.empty()) {
      FAIRLAW_ASSIGN_OR_RETURN(distance.wasserstein1,
                               stats::Wasserstein1Sketch(mine, rest));
      FAIRLAW_ASSIGN_OR_RETURN(distance.ks,
                               stats::KolmogorovSmirnovSketch(mine, rest));
    }
    report.max_wasserstein1 =
        std::max(report.max_wasserstein1, distance.wasserstein1);
    report.max_ks = std::max(report.max_ks, distance.ks);
    report.groups.push_back(std::move(distance));
  }
  report.satisfied = report.max_ks <= report.tolerance;
  return report;
}

}  // namespace

void WindowedPartial::MergeFrom(const WindowedPartial& other) {
  counts.MergeFrom(other.counts);
  strata_counts.MergeFrom(other.strata_counts);
  sketches.MergeFrom(other.sketches);
  num_rows += other.num_rows;
}

Result<AuditResult> RunWindowedAudit(const WindowedPartial& window,
                                     const AuditConfig& config,
                                     const std::string& parent_path) {
  if (window.num_rows == 0) {
    return Status::Invalid("windowed audit: window holds no events");
  }
  obs::GetCounter("audit.windowed_runs")->Increment();
  EvaluateInputs inputs;
  inputs.counts = &window.counts;
  inputs.strata_counts =
      window.strata_counts.num_strata() > 0 ? &window.strata_counts : nullptr;
  inputs.score_series = nullptr;  // calibration needs row-level pairs
  inputs.has_labels = !config.label_column.empty();
  FAIRLAW_ASSIGN_OR_RETURN(AuditResult result,
                           EvaluateMetrics(inputs, config, parent_path));
  if (config.audit_score_distribution) {
    obs::TraceSpan span("metric/score_distribution_sketch", parent_path);
    FAIRLAW_ASSIGN_OR_RETURN(result.score_distribution,
                             SketchDriftAudit(window.sketches, config));
    result.all_satisfied =
        result.all_satisfied && result.score_distribution->satisfied;
  }
  return result;
}

}  // namespace fairlaw::audit
