#ifndef FAIRLAW_AUDIT_PARTIALS_H_
#define FAIRLAW_AUDIT_PARTIALS_H_

#include <string>
#include <vector>

#include "audit/auditor.h"
#include "base/result.h"
#include "data/table.h"
#include "stats/mergeable.h"

namespace fairlaw::audit {

/// Column extraction shared by the chunk tally and the MetricInput
/// entry points: a 0/1 integer column and a rendered-string key column.
FAIRLAW_NODISCARD Result<std::vector<int>> BinaryColumn(
    const data::Table& table, const std::string& name);
FAIRLAW_NODISCARD Result<std::vector<std::string>> StringKeys(
    const data::Table& table, const std::string& name);

/// Everything one morsel contributes to the audit: exact integer tallies
/// for the count metrics, row-ordered series for the order-sensitive
/// score paths, and one status per extraction step so the error that
/// wins after the merge is the one the serial whole-table pass would
/// have reported (the serial pass scans whole columns in a fixed order,
/// so a step's failure anywhere outranks any later step's failure).
struct ChunkPartial {
  Status protected_status;
  Status prediction_status;
  Status label_status;
  Status partition_status;
  Status score_status;
  Status strata_status;
  stats::GroupCountsAccumulator counts;
  stats::StratifiedCountsAccumulator strata_counts;
  stats::GroupedSeries score_series;
  std::vector<double> scores;
};

/// Extracts and tallies one chunk. Pure function of (chunk, config), so
/// it runs on pool workers without touching shared mutable state.
ChunkPartial ProcessChunk(const data::Table& chunk, const AuditConfig& config,
                          const std::string& parent_path);

/// Chunk partials folded in chunk order. Step statuses rank extraction
/// steps in the order the serial pass runs them; within a step the
/// earliest chunk wins (all of a step's failure messages are identical
/// anyway — none embeds a row number).
class MergedPartials {
 public:
  void Fold(ChunkPartial&& partial);

  FAIRLAW_NODISCARD Status FirstError() const;

  const stats::GroupCountsAccumulator& counts() const { return counts_; }
  const stats::StratifiedCountsAccumulator& strata_counts() const {
    return strata_counts_;
  }
  const stats::GroupedSeries& score_series() const { return score_series_; }
  const std::vector<double>& scores() const { return scores_; }

 private:
  static void RecordFirst(Status* slot, const Status& status) {
    if (slot->ok() && !status.ok()) *slot = status;
  }

  Status protected_status_;
  Status prediction_status_;
  Status label_status_;
  Status partition_status_;
  Status score_status_;
  Status strata_status_;
  stats::GroupCountsAccumulator counts_;
  stats::StratifiedCountsAccumulator strata_counts_;
  stats::GroupedSeries score_series_;
  std::vector<double> scores_;
};

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_PARTIALS_H_
