#ifndef FAIRLAW_AUDIT_EVALUATE_H_
#define FAIRLAW_AUDIT_EVALUATE_H_

#include <string>

#include "audit/auditor.h"
#include "audit/partials.h"
#include "base/result.h"
#include "data/table.h"
#include "stats/mergeable.h"

namespace fairlaw::audit {

/// Inputs to the shared metric-evaluation phase. The chunked engines
/// pass everything; the windowed (serve) path passes exact tallies plus
/// a null score_series — calibration needs row-level (score, label)
/// pairs that window buckets deliberately do not retain, so it is
/// skipped there and the drift audit runs on sketches instead (see
/// windowed.h).
struct EvaluateInputs {
  const stats::GroupCountsAccumulator* counts = nullptr;
  /// Null or empty to skip the conditional metrics.
  const stats::StratifiedCountsAccumulator* strata_counts = nullptr;
  /// Null to skip calibration (windowed path).
  const stats::GroupedSeries* score_series = nullptr;
  bool has_labels = false;
};

/// Runs one closure per metric over merged exact tallies, sequenced in
/// the canonical report order and assembled by sequence number, so the
/// result — including which error wins when several metrics fail — is
/// byte-identical for every thread count. Shared by the chunked table
/// engines and the serve window evaluator.
FAIRLAW_NODISCARD Result<AuditResult> EvaluateMetrics(
    const EvaluateInputs& inputs, const AuditConfig& config,
    const std::string& parent_path);

/// The full evaluation phase for the row-level engines: EvaluateMetrics
/// plus the exact score-distribution drift audit over the merged
/// row-ordered series.
FAIRLAW_NODISCARD Result<AuditResult> EvaluateMergedPartials(
    const MergedPartials& merged, const AuditConfig& config,
    const std::string& parent_path);

/// Reproduces the serial pass's error on a zero-row audit: a missing
/// column still reports the lookup failure, existing columns the
/// empty-input error.
FAIRLAW_NODISCARD Status EmptyAuditError(const data::Table& empty,
                                         const AuditConfig& config);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_EVALUATE_H_
