#include "audit/partials.h"

#include <cstdint>
#include <utility>

#include "metrics/fairness_metric.h"
#include "obs/obs.h"

namespace fairlaw::audit {

Result<std::vector<int>> BinaryColumn(const data::Table& table,
                                      const std::string& name) {
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column, table.GetColumn(name));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values, column->ToDoubles());
  std::vector<int> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0.0 && values[i] != 1.0) {
      return Status::Invalid("column '" + name + "' must be binary 0/1");
    }
    out[i] = values[i] == 1.0 ? 1 : 0;
  }
  return out;
}

Result<std::vector<std::string>> StringKeys(const data::Table& table,
                                            const std::string& name) {
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column, table.GetColumn(name));
  if (column->null_count() > 0) {
    return Status::Invalid("column '" + name + "' has nulls; audits require "
                           "explicit missing-value handling upstream");
  }
  std::vector<std::string> out(column->size());
  for (size_t i = 0; i < column->size(); ++i) {
    out[i] = column->ValueToString(i);
  }
  return out;
}

ChunkPartial ProcessChunk(const data::Table& chunk, const AuditConfig& config,
                          const std::string& parent_path) {
  obs::TraceSpan span("audit_chunk", parent_path);
  obs::GetCounter("audit.chunks_processed")->Increment();
  ChunkPartial partial;
  metrics::MetricInput input;
  {
    Result<std::vector<std::string>> groups =
        StringKeys(chunk, config.protected_column);
    partial.protected_status = groups.status();
    if (groups.status().ok()) input.groups = std::move(groups).ValueOrDie();
  }
  {
    Result<std::vector<int>> predictions =
        BinaryColumn(chunk, config.prediction_column);
    partial.prediction_status = predictions.status();
    if (predictions.status().ok()) {
      input.predictions = std::move(predictions).ValueOrDie();
    }
  }
  if (!config.label_column.empty()) {
    Result<std::vector<int>> labels = BinaryColumn(chunk, config.label_column);
    partial.label_status = labels.status();
    if (labels.status().ok()) input.labels = std::move(labels).ValueOrDie();
  }
  std::vector<double> scores;
  if (!config.score_column.empty()) {
    Result<const data::Column*> score_column =
        chunk.GetColumn(config.score_column);
    if (!score_column.status().ok()) {
      partial.score_status = score_column.status();
    } else {
      Result<std::vector<double>> values =
          std::move(score_column).ValueOrDie()->ToDoubles();
      partial.score_status = values.status();
      if (values.status().ok()) scores = std::move(values).ValueOrDie();
    }
  }
  std::vector<std::string> strata;
  if (!config.strata_columns.empty()) {
    Result<std::vector<std::string>> chunk_strata =
        StrataFromTable(chunk, config.strata_columns);
    partial.strata_status = chunk_strata.status();
    if (chunk_strata.status().ok()) {
      strata = std::move(chunk_strata).ValueOrDie();
    }
  }
  if (!partial.protected_status.ok() || !partial.prediction_status.ok() ||
      !partial.label_status.ok() || !partial.score_status.ok() ||
      !partial.strata_status.ok()) {
    return partial;
  }

  Result<metrics::GroupPartition> partition =
      metrics::GroupPartition::Build(input);
  partial.partition_status = partition.status();
  if (!partial.partition_status.ok()) return partial;
  metrics::AccumulateGroupCounts(std::move(partition).ValueOrDie(),
                                 !input.labels.empty(), &partial.counts);
  for (size_t i = 0; i < strata.size(); ++i) {
    stats::GroupCounts row;
    row.count = 1;
    row.positive_predictions = input.predictions[i];
    partial.strata_counts.Stratum(strata[i])->Add(input.groups[i], row);
  }
  if (!config.score_column.empty()) {
    for (size_t i = 0; i < scores.size(); ++i) {
      partial.score_series.Append(
          partial.score_series.KeyIndex(input.groups[i]), scores[i],
          static_cast<uint8_t>(input.labels[i]));
    }
    partial.scores = std::move(scores);
  }
  return partial;
}

void MergedPartials::Fold(ChunkPartial&& partial) {
  RecordFirst(&protected_status_, partial.protected_status);
  RecordFirst(&prediction_status_, partial.prediction_status);
  RecordFirst(&label_status_, partial.label_status);
  RecordFirst(&partition_status_, partial.partition_status);
  RecordFirst(&score_status_, partial.score_status);
  RecordFirst(&strata_status_, partial.strata_status);
  if (!FirstError().ok()) return;  // result discarded; skip the merge work
  counts_.MergeFrom(partial.counts);
  strata_counts_.MergeFrom(partial.strata_counts);
  score_series_.MergeFrom(partial.score_series);
  scores_.insert(scores_.end(), partial.scores.begin(),
                 partial.scores.end());
}

Status MergedPartials::FirstError() const {
  for (const Status* status :
       {&protected_status_, &prediction_status_, &label_status_,
        &partition_status_, &score_status_, &strata_status_}) {
    if (!status->ok()) return *status;
  }
  return Status::OK();
}

}  // namespace fairlaw::audit
