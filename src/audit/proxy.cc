#include "audit/proxy.h"

#include <algorithm>
#include <map>

#include "data/group_by.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"

namespace fairlaw::audit {
namespace {

/// Maps each row to a discrete bin index for the candidate feature:
/// categorical columns use their distinct values; numeric columns are cut
/// at quantile boundaries.
Result<std::pair<std::vector<size_t>, size_t>> DiscretizeColumn(
    const data::Table& table, const std::string& name, size_t bins) {
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column, table.GetColumn(name));
  if (column->null_count() > 0) {
    return Status::Invalid("DetectProxies: column '" + name + "' has nulls");
  }
  if (column->type() == data::DataType::kString ||
      column->type() == data::DataType::kBool) {
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<std::string> distinct,
                             data::DistinctValues(table, name));
    std::map<std::string, size_t> index_of;
    for (size_t i = 0; i < distinct.size(); ++i) index_of[distinct[i]] = i;
    std::vector<size_t> codes(column->size());
    for (size_t row = 0; row < column->size(); ++row) {
      codes[row] = index_of.at(column->ValueToString(row));
    }
    return std::make_pair(std::move(codes), distinct.size());
  }

  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values, column->ToDoubles());
  if (bins < 2) return Status::Invalid("DetectProxies: bins must be >= 2");
  // Quantile cut points; duplicates collapse for low-cardinality columns.
  std::vector<double> cuts;
  for (size_t b = 1; b < bins; ++b) {
    FAIRLAW_ASSIGN_OR_RETURN(
        double cut,
        stats::Quantile(values,
                        static_cast<double>(b) / static_cast<double>(bins)));
    cuts.push_back(cut);
  }
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<size_t> codes(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    codes[i] = static_cast<size_t>(
        std::upper_bound(cuts.begin(), cuts.end(), values[i]) - cuts.begin());
  }
  return std::make_pair(std::move(codes), cuts.size() + 1);
}

}  // namespace

Result<std::vector<std::vector<int64_t>>> ProxyContingencyTable(
    const data::Table& table, const std::string& feature_column,
    const std::string& protected_column, size_t bins) {
  FAIRLAW_ASSIGN_OR_RETURN(auto feature,
                           DiscretizeColumn(table, feature_column, bins));
  FAIRLAW_ASSIGN_OR_RETURN(auto protected_attr,
                           DiscretizeColumn(table, protected_column, bins));
  const auto& [feature_codes, feature_arity] = feature;
  const auto& [protected_codes, protected_arity] = protected_attr;
  std::vector<std::vector<int64_t>> contingency(
      feature_arity, std::vector<int64_t>(protected_arity, 0));
  for (size_t row = 0; row < feature_codes.size(); ++row) {
    ++contingency[feature_codes[row]][protected_codes[row]];
  }
  return contingency;
}

Result<std::vector<ProxyFinding>> DetectProxies(
    const data::Table& table, const std::string& protected_column,
    const std::vector<std::string>& candidate_columns,
    const ProxyDetectionOptions& options) {
  if (candidate_columns.empty()) {
    return Status::Invalid("DetectProxies: no candidate columns");
  }
  if (options.flag_threshold < 0.0 || options.flag_threshold > 1.0) {
    return Status::Invalid("DetectProxies: flag_threshold must lie in [0,1]");
  }

  std::vector<ProxyFinding> findings;
  findings.reserve(candidate_columns.size());
  for (const std::string& name : candidate_columns) {
    if (name == protected_column) {
      return Status::Invalid("DetectProxies: protected column listed among "
                             "candidates");
    }
    FAIRLAW_ASSIGN_OR_RETURN(
        auto contingency,
        ProxyContingencyTable(table, name, protected_column, options.bins));
    ProxyFinding finding;
    finding.feature = name;
    FAIRLAW_ASSIGN_OR_RETURN(finding.cramers_v, stats::CramersV(contingency));
    FAIRLAW_ASSIGN_OR_RETURN(finding.mutual_information,
                             stats::MutualInformation(contingency));

    // Predictability probe: guess the protected value as the majority
    // class within each feature bin; gain over the global majority.
    int64_t total = 0;
    std::vector<int64_t> protected_totals(contingency[0].size(), 0);
    int64_t per_bin_correct = 0;
    for (const auto& row : contingency) {
      int64_t best_in_bin = 0;
      for (size_t p = 0; p < row.size(); ++p) {
        protected_totals[p] += row[p];
        total += row[p];
        best_in_bin = std::max(best_in_bin, row[p]);
      }
      per_bin_correct += best_in_bin;
    }
    int64_t majority =
        *std::max_element(protected_totals.begin(), protected_totals.end());
    finding.predictability_gain =
        total > 0 ? (static_cast<double>(per_bin_correct) -
                     static_cast<double>(majority)) /
                        static_cast<double>(total)
                  : 0.0;
    finding.flagged = finding.cramers_v > options.flag_threshold;
    findings.push_back(std::move(finding));
  }
  std::sort(findings.begin(), findings.end(),
            [](const ProxyFinding& a, const ProxyFinding& b) {
              return a.cramers_v > b.cramers_v;
            });
  return findings;
}

}  // namespace fairlaw::audit
