#ifndef FAIRLAW_AUDIT_REPORT_IO_H_
#define FAIRLAW_AUDIT_REPORT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "base/json_writer.h"
#include "base/result.h"
#include "metrics/calibration_metric.h"
#include "metrics/conditional_metrics.h"
#include "metrics/fairness_metric.h"

namespace fairlaw::audit {

/// Version of the machine-readable report envelope shared by
/// `fairlaw_audit --json`, the core suite export, and every
/// `fairlaw_serve` response. Bump policy (DESIGN.md §15): additive
/// fields only within a version; any removal, rename, or semantic
/// change of an existing field bumps the version. Version 1 was the
/// analyzer artifact schema (PR 6); version 2 adds the audit/serve
/// envelope with `kind`, `findings`, and the optional `obs` snapshot.
inline constexpr int64_t kReportSchemaVersion = 2;

/// Writes one metric report object — the per-metric shape embedded in
/// both the audit findings and the core suite export, kept here so the
/// two emitters can never drift.
void WriteMetricReport(JsonWriter* json, const metrics::MetricReport& report);

/// Writes one conditional (stratified) metric report object.
void WriteConditionalReport(JsonWriter* json,
                            const metrics::ConditionalReport& report);

/// Writes the calibration-within-groups section object.
void WriteCalibrationReport(JsonWriter* json,
                            const metrics::CalibrationReport& report);

/// Writes the score-distribution drift section object (exact or
/// sketch-approximate — the `approximate` field says which).
void WriteScoreDistributionReport(JsonWriter* json,
                                  const ScoreDistributionReport& report);

/// Writes the findings object for an AuditResult: `all_satisfied`,
/// `metrics`, `conditional_metrics`, plus `calibration` and
/// `score_distribution` when the audit produced them.
void WriteAuditFindings(JsonWriter* json, const AuditResult& result);

/// Envelope controls for AuditResultToJson.
struct ReportEnvelopeOptions {
  /// The envelope's `kind` discriminator.
  std::string kind = "audit_report";
  /// Obs counters to snapshot into the envelope's `obs` object (name ->
  /// current value), in the given order; empty omits the object.
  /// Callers must list only schedule-invariant counters — anything that
  /// varies with batch size, chunk size, or thread count would break
  /// the byte-identity contract the envelope is diffed under.
  std::vector<std::string> obs_counters;
};

/// Serializes an AuditResult as the versioned envelope:
/// {"schema_version":2,"kind":...,"findings":{...},"obs":{...}}.
FAIRLAW_NODISCARD Result<std::string> AuditResultToJson(
    const AuditResult& result,
    const ReportEnvelopeOptions& options = ReportEnvelopeOptions{});

/// Serializes a non-OK status as the versioned error envelope:
/// {"schema_version":2,"kind":"error","error":{"code":...,"message":...}}.
/// OK statuses are a caller bug and render with code "ok" rather than
/// failing, so error paths cannot themselves error.
FAIRLAW_NODISCARD Result<std::string> ErrorEnvelopeJson(const Status& status);

/// Writes the same error envelope into an open writer (serve embeds it
/// in response frames that carry additional routing fields).
void WriteErrorObject(JsonWriter* json, const Status& status);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_REPORT_IO_H_
