#include "audit/auditor.h"

#include <string_view>
#include <utility>

#include "audit/partials.h"
#include "audit/source.h"
#include "base/string_util.h"

namespace fairlaw::audit {

Status AuditConfig::Validate() const {
  if (protected_column.empty()) {
    return Status::Invalid("AuditConfig: protected_column must be set");
  }
  if (prediction_column.empty()) {
    return Status::Invalid("AuditConfig: prediction_column must be set");
  }
  for (const std::string& column : strata_columns) {
    if (column.empty()) {
      return Status::Invalid(
          "AuditConfig: strata_columns contains an empty column name");
    }
  }
  if (tolerance < 0.0 || tolerance > 1.0) {
    return Status::Invalid("AuditConfig: tolerance must lie in [0,1], got " +
                           FormatDouble(tolerance, 4));
  }
  if (di_threshold <= 0.0 || di_threshold > 1.0) {
    return Status::Invalid(
        "AuditConfig: di_threshold must lie in (0,1], got " +
        FormatDouble(di_threshold, 4));
  }
  if (calibration_bins == 0) {
    return Status::Invalid("AuditConfig: calibration_bins must be > 0");
  }
  if (calibration_tolerance < 0.0 || calibration_tolerance > 1.0) {
    return Status::Invalid(
        "AuditConfig: calibration_tolerance must lie in [0,1], got " +
        FormatDouble(calibration_tolerance, 4));
  }
  if (audit_score_distribution && score_column.empty()) {
    return Status::Invalid(
        "AuditConfig: audit_score_distribution requires score_column");
  }
  if (score_distribution_tolerance < 0.0 || score_distribution_tolerance > 1.0) {
    return Status::Invalid(
        "AuditConfig: score_distribution_tolerance must lie in [0,1], got " +
        FormatDouble(score_distribution_tolerance, 4));
  }
  if (!score_column.empty() && label_column.empty()) {
    return Status::Invalid(
        "AuditConfig: score_column requires label_column (the calibration "
        "audit needs observed outcomes)");
  }
  if (min_stratum_size == 0) {
    return Status::Invalid("AuditConfig: min_stratum_size must be >= 1");
  }
  return Status::OK();
}

Result<metrics::MetricInput> MetricInputFromTable(
    const data::Table& table, const std::string& protected_column,
    const std::string& prediction_column, const std::string& label_column) {
  metrics::MetricInput input;
  FAIRLAW_ASSIGN_OR_RETURN(input.groups,
                           StringKeys(table, protected_column));
  FAIRLAW_ASSIGN_OR_RETURN(input.predictions,
                           BinaryColumn(table, prediction_column));
  if (!label_column.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(input.labels, BinaryColumn(table, label_column));
  }
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  return input;
}

Result<metrics::MetricInput> MetricInputFromTableMulti(
    const data::Table& table,
    const std::vector<std::string>& protected_columns,
    const std::string& prediction_column, const std::string& label_column) {
  if (protected_columns.empty()) {
    return Status::Invalid("MetricInputFromTableMulti: no protected "
                           "columns");
  }
  metrics::MetricInput input;
  FAIRLAW_ASSIGN_OR_RETURN(input.groups,
                           StrataFromTable(table, protected_columns));
  FAIRLAW_ASSIGN_OR_RETURN(input.predictions,
                           BinaryColumn(table, prediction_column));
  if (!label_column.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(input.labels, BinaryColumn(table, label_column));
  }
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  return input;
}

Result<std::vector<std::string>> StrataFromTable(
    const data::Table& table,
    const std::vector<std::string>& strata_columns) {
  if (strata_columns.empty()) {
    return Status::Invalid("StrataFromTable: no strata columns");
  }
  std::vector<std::vector<std::string>> keys;
  keys.reserve(strata_columns.size());
  for (const std::string& name : strata_columns) {
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<std::string> column_keys,
                             StringKeys(table, name));
    keys.push_back(std::move(column_keys));
  }
  std::vector<std::string> strata(table.num_rows());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::string key;
    for (size_t c = 0; c < keys.size(); ++c) {
      if (c > 0) key += "|";
      key += keys[c][row];
    }
    strata[row] = key;
  }
  return strata;
}

std::string AuditResult::Render() const {
  std::string out;
  out += "=== fairness audit: " +
         std::string(all_satisfied ? "ALL SATISFIED" : "VIOLATIONS FOUND") +
         " ===\n";
  for (const metrics::MetricReport& report : reports) {
    out += metrics::RenderReport(report);
  }
  for (const metrics::ConditionalReport& report : conditional_reports) {
    out += metrics::RenderConditionalReport(report);
  }
  if (calibration.has_value()) {
    out += "calibration_within_groups: " +
           std::string(calibration->satisfied ? "SATISFIED" : "VIOLATED") +
           " (max ECE " + FormatDouble(calibration->max_ece, 4) +
           ", gap " + FormatDouble(calibration->ece_gap, 4) + ")\n";
    for (const metrics::GroupCalibration& gc : calibration->groups) {
      out += "  " + gc.group + ": ece=" + FormatDouble(gc.ece, 4) +
             " mean_score=" + FormatDouble(gc.mean_score, 4) +
             " base_rate=" + FormatDouble(gc.positive_rate, 4) + "\n";
    }
  }
  if (score_distribution.has_value()) {
    out += "score_distribution_drift: " +
           std::string(score_distribution->satisfied ? "SATISFIED"
                                                     : "VIOLATED") +
           " (max KS " + FormatDouble(score_distribution->max_ks, 4) +
           " vs tolerance " + FormatDouble(score_distribution->tolerance, 4) +
           ", max W1 " + FormatDouble(score_distribution->max_wasserstein1, 4) +
           (score_distribution->approximate ? ", sketch-approximate" : "") +
           ")\n";
    for (const GroupScoreDistance& gd : score_distribution->groups) {
      out += "  " + gd.group + ": n=" + std::to_string(gd.count) +
             " w1=" + FormatDouble(gd.wasserstein1, 4) +
             " ks=" + FormatDouble(gd.ks, 4) + "\n";
    }
  }
  return out;
}

legal::AuditFindings AuditResult::ToLegalFindings() const {
  legal::AuditFindings findings;
  findings.reports = reports;
  findings.conditional_reports = conditional_reports;
  findings.all_satisfied = all_satisfied;
  return findings;
}

Result<const metrics::MetricReport*> AuditResult::Find(
    std::string_view name) const {
  for (const metrics::MetricReport& report : reports) {
    if (report.metric_name == name) return &report;
  }
  return Status::NotFound("audit has no metric named '" + std::string(name) +
                          "'");
}

Result<AuditResult> RunAudit(const data::Table& table,
                             const AuditConfig& config) {
  return Auditor::Run(AuditSource::FromTable(table), config);
}

Result<AuditResult> RunAudit(const data::ChunkedTable& table,
                             const AuditConfig& config) {
  return Auditor::Run(AuditSource::FromChunked(table), config);
}

Result<AuditResult> RunAuditCsv(const std::string& path,
                                const AuditConfig& config) {
  return Auditor::Run(AuditSource::FromCsv(path), config);
}

Result<AuditResult> RunAuditCsv(const std::string& path,
                                const AuditConfig& config,
                                const data::CsvOptions& csv_options) {
  return Auditor::Run(AuditSource::FromCsv(path, csv_options), config);
}

}  // namespace fairlaw::audit
