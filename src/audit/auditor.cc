#include "audit/auditor.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <string_view>
#include <utility>

#include <cmath>
#include <iterator>
#include <span>

#include "base/mutex.h"
#include "base/string_util.h"
#include "base/thread_annotations.h"
#include "base/thread_pool.h"
#include "metrics/group_metrics.h"
#include "obs/obs.h"
#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/mergeable.h"

namespace fairlaw::audit {
namespace {

Result<std::vector<int>> BinaryColumn(const data::Table& table,
                                      const std::string& name) {
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column, table.GetColumn(name));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values, column->ToDoubles());
  std::vector<int> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0.0 && values[i] != 1.0) {
      return Status::Invalid("column '" + name + "' must be binary 0/1");
    }
    out[i] = values[i] == 1.0 ? 1 : 0;
  }
  return out;
}

Result<std::vector<std::string>> StringKeys(const data::Table& table,
                                            const std::string& name) {
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column, table.GetColumn(name));
  if (column->null_count() > 0) {
    return Status::Invalid("column '" + name + "' has nulls; audits require "
                           "explicit missing-value handling upstream");
  }
  std::vector<std::string> out(column->size());
  for (size_t i = 0; i < column->size(); ++i) {
    out[i] = column->ValueToString(i);
  }
  return out;
}

/// Per-group score-distribution drift: each group's sorted scores against
/// the multiset difference of the sorted pooled scores (everyone else),
/// through the presorted W1/KS kernels — or the binned kernels when the
/// config asks for the O(n) fast path. Runs serially after the metric
/// jobs, so thread count cannot touch the result. `series` holds each
/// group's scores in global row order (the chunk-order merge guarantees
/// that), and `scores` is the full score column in row order, so the
/// sorts see exactly the sequences the old whole-table pass fed them.
Result<ScoreDistributionReport> ScoreDistributionAudit(
    const stats::GroupedSeries& series, std::span<const double> scores,
    const AuditConfig& config) {
  ScoreDistributionReport report;
  report.tolerance = config.score_distribution_tolerance;
  for (double s : scores) {
    if (!std::isfinite(s)) {
      return Status::Invalid("score distribution audit: non-finite score");
    }
  }
  std::vector<double> all_sorted(scores.begin(), scores.end());
  std::sort(all_sorted.begin(), all_sorted.end());
  const bool constant =
      !all_sorted.empty() && all_sorted.front() == all_sorted.back();
  for (size_t g = 0; g < series.num_keys(); ++g) {
    std::vector<double> group_scores = series.values(g);
    std::sort(group_scores.begin(), group_scores.end());
    // Everyone else = pooled minus this group, linear-time multiset
    // difference over the two sorted vectors.
    std::vector<double> rest;
    rest.reserve(all_sorted.size() - group_scores.size());
    std::set_difference(all_sorted.begin(), all_sorted.end(),
                        group_scores.begin(), group_scores.end(),
                        std::back_inserter(rest));
    GroupScoreDistance distance;
    distance.group = series.keys()[g];
    distance.count = group_scores.size();
    if (!rest.empty() && !group_scores.empty() && !constant) {
      if (config.score_distribution_bins > 0) {
        FAIRLAW_ASSIGN_OR_RETURN(
            stats::Histogram hp,
            stats::Histogram::Make(all_sorted.front(), all_sorted.back(),
                                   config.score_distribution_bins));
        FAIRLAW_ASSIGN_OR_RETURN(
            stats::Histogram hq,
            stats::Histogram::Make(all_sorted.front(), all_sorted.back(),
                                   config.score_distribution_bins));
        hp.AddAll(group_scores);
        hq.AddAll(rest);
        FAIRLAW_ASSIGN_OR_RETURN(distance.wasserstein1,
                                 stats::Wasserstein1Binned(hp, hq));
        FAIRLAW_ASSIGN_OR_RETURN(distance.ks,
                                 stats::KolmogorovSmirnovBinned(hp, hq));
      } else {
        FAIRLAW_ASSIGN_OR_RETURN(
            distance.wasserstein1,
            stats::Wasserstein1Presorted(group_scores, rest));
        FAIRLAW_ASSIGN_OR_RETURN(
            distance.ks,
            stats::KolmogorovSmirnovPresorted(group_scores, rest));
      }
    }
    report.max_wasserstein1 =
        std::max(report.max_wasserstein1, distance.wasserstein1);
    report.max_ks = std::max(report.max_ks, distance.ks);
    report.groups.push_back(std::move(distance));
  }
  report.satisfied = report.max_ks <= report.tolerance;
  return report;
}

/// Collects metric results completed on worker threads. Each result
/// carries the sequence number of its job in the canonical (serial)
/// evaluation order, so Finish() can assemble an AuditResult that is
/// byte-identical for any thread count — including which error wins when
/// several metrics fail at once.
class ResultAggregator {
 public:
  void AddMetric(size_t seq, Result<metrics::MetricReport> report)
      FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    metric_reports_.emplace_back(seq, std::move(report));
  }

  void AddConditional(size_t seq, Result<metrics::ConditionalReport> report)
      FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    conditional_reports_.emplace_back(seq, std::move(report));
  }

  void AddCalibration(size_t seq, Result<metrics::CalibrationReport> report)
      FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    calibration_.emplace(seq, std::move(report));
  }

  /// Deterministic assembly; call only after every job has completed.
  Result<AuditResult> Finish() FAIRLAW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto by_seq = [](const auto& a, const auto& b) {
      return a.first < b.first;
    };
    std::sort(metric_reports_.begin(), metric_reports_.end(), by_seq);
    std::sort(conditional_reports_.begin(), conditional_reports_.end(),
              by_seq);

    // Serial evaluation returns the error of the first failing job; keep
    // that contract by picking the non-OK status with the lowest seq.
    size_t first_error_seq = SIZE_MAX;
    const Status* first_error = nullptr;
    auto consider = [&](size_t seq, const Status& status) {
      if (!status.ok() && seq < first_error_seq) {
        first_error_seq = seq;
        first_error = &status;
      }
    };
    for (const auto& [seq, report] : metric_reports_) {
      consider(seq, report.status());
    }
    if (calibration_.has_value()) {
      consider(calibration_->first, calibration_->second.status());
    }
    for (const auto& [seq, report] : conditional_reports_) {
      consider(seq, report.status());
    }
    if (first_error != nullptr) return *first_error;

    AuditResult result;
    for (auto& [seq, report] : metric_reports_) {
      metrics::MetricReport r = std::move(report).ValueOrDie();
      result.all_satisfied = result.all_satisfied && r.satisfied;
      result.reports.push_back(std::move(r));
    }
    if (calibration_.has_value()) {
      metrics::CalibrationReport calibration =
          std::move(calibration_->second).ValueOrDie();
      result.all_satisfied = result.all_satisfied && calibration.satisfied;
      result.calibration = std::move(calibration);
    }
    for (auto& [seq, report] : conditional_reports_) {
      metrics::ConditionalReport r = std::move(report).ValueOrDie();
      result.all_satisfied = result.all_satisfied && r.satisfied;
      result.conditional_reports.push_back(std::move(r));
    }
    return result;
  }

 private:
  Mutex mu_;
  std::vector<std::pair<size_t, Result<metrics::MetricReport>>>
      metric_reports_ FAIRLAW_GUARDED_BY(mu_);
  std::vector<std::pair<size_t, Result<metrics::ConditionalReport>>>
      conditional_reports_ FAIRLAW_GUARDED_BY(mu_);
  std::optional<std::pair<size_t, Result<metrics::CalibrationReport>>>
      calibration_ FAIRLAW_GUARDED_BY(mu_);
};

/// Everything one morsel contributes to the audit: exact integer tallies
/// for the count metrics, row-ordered series for the order-sensitive
/// score paths, and one status per extraction step so the error that
/// wins after the merge is the one the serial whole-table pass would
/// have reported (the serial pass scans whole columns in a fixed order,
/// so a step's failure anywhere outranks any later step's failure).
struct ChunkPartial {
  Status protected_status;
  Status prediction_status;
  Status label_status;
  Status partition_status;
  Status score_status;
  Status strata_status;
  stats::GroupCountsAccumulator counts;
  stats::StratifiedCountsAccumulator strata_counts;
  stats::GroupedSeries score_series;
  std::vector<double> scores;
};

/// Extracts and tallies one chunk. Pure function of (chunk, config), so
/// it runs on pool workers without touching shared mutable state.
ChunkPartial ProcessChunk(const data::Table& chunk, const AuditConfig& config,
                          const std::string& parent_path) {
  obs::TraceSpan span("audit_chunk", parent_path);
  obs::GetCounter("audit.chunks_processed")->Increment();
  ChunkPartial partial;
  metrics::MetricInput input;
  {
    Result<std::vector<std::string>> groups =
        StringKeys(chunk, config.protected_column);
    partial.protected_status = groups.status();
    if (groups.status().ok()) input.groups = std::move(groups).ValueOrDie();
  }
  {
    Result<std::vector<int>> predictions =
        BinaryColumn(chunk, config.prediction_column);
    partial.prediction_status = predictions.status();
    if (predictions.status().ok()) {
      input.predictions = std::move(predictions).ValueOrDie();
    }
  }
  if (!config.label_column.empty()) {
    Result<std::vector<int>> labels = BinaryColumn(chunk, config.label_column);
    partial.label_status = labels.status();
    if (labels.status().ok()) input.labels = std::move(labels).ValueOrDie();
  }
  std::vector<double> scores;
  if (!config.score_column.empty()) {
    Result<const data::Column*> score_column =
        chunk.GetColumn(config.score_column);
    if (!score_column.status().ok()) {
      partial.score_status = score_column.status();
    } else {
      Result<std::vector<double>> values =
          std::move(score_column).ValueOrDie()->ToDoubles();
      partial.score_status = values.status();
      if (values.status().ok()) scores = std::move(values).ValueOrDie();
    }
  }
  std::vector<std::string> strata;
  if (!config.strata_columns.empty()) {
    Result<std::vector<std::string>> chunk_strata =
        StrataFromTable(chunk, config.strata_columns);
    partial.strata_status = chunk_strata.status();
    if (chunk_strata.status().ok()) {
      strata = std::move(chunk_strata).ValueOrDie();
    }
  }
  if (!partial.protected_status.ok() || !partial.prediction_status.ok() ||
      !partial.label_status.ok() || !partial.score_status.ok() ||
      !partial.strata_status.ok()) {
    return partial;
  }

  Result<metrics::GroupPartition> partition =
      metrics::GroupPartition::Build(input);
  partial.partition_status = partition.status();
  if (!partial.partition_status.ok()) return partial;
  metrics::AccumulateGroupCounts(std::move(partition).ValueOrDie(),
                                 !input.labels.empty(), &partial.counts);
  for (size_t i = 0; i < strata.size(); ++i) {
    stats::GroupCounts row;
    row.count = 1;
    row.positive_predictions = input.predictions[i];
    partial.strata_counts.Stratum(strata[i])->Add(input.groups[i], row);
  }
  if (!config.score_column.empty()) {
    for (size_t i = 0; i < scores.size(); ++i) {
      partial.score_series.Append(
          partial.score_series.KeyIndex(input.groups[i]), scores[i],
          static_cast<uint8_t>(input.labels[i]));
    }
    partial.scores = std::move(scores);
  }
  return partial;
}

/// Chunk partials folded in chunk order. Step statuses rank extraction
/// steps in the order the serial pass runs them; within a step the
/// earliest chunk wins (all of a step's failure messages are identical
/// anyway — none embeds a row number).
class MergedPartials {
 public:
  void Fold(ChunkPartial&& partial) {
    RecordFirst(&protected_status_, partial.protected_status);
    RecordFirst(&prediction_status_, partial.prediction_status);
    RecordFirst(&label_status_, partial.label_status);
    RecordFirst(&partition_status_, partial.partition_status);
    RecordFirst(&score_status_, partial.score_status);
    RecordFirst(&strata_status_, partial.strata_status);
    if (!FirstError().ok()) return;  // result discarded; skip the merge work
    counts_.MergeFrom(partial.counts);
    strata_counts_.MergeFrom(partial.strata_counts);
    score_series_.MergeFrom(partial.score_series);
    scores_.insert(scores_.end(), partial.scores.begin(),
                   partial.scores.end());
  }

  Status FirstError() const {
    for (const Status* status :
         {&protected_status_, &prediction_status_, &label_status_,
          &partition_status_, &score_status_, &strata_status_}) {
      if (!status->ok()) return *status;
    }
    return Status::OK();
  }

  const stats::GroupCountsAccumulator& counts() const { return counts_; }
  const stats::StratifiedCountsAccumulator& strata_counts() const {
    return strata_counts_;
  }
  const stats::GroupedSeries& score_series() const { return score_series_; }
  const std::vector<double>& scores() const { return scores_; }

 private:
  static void RecordFirst(Status* slot, const Status& status) {
    if (slot->ok() && !status.ok()) *slot = status;
  }

  Status protected_status_;
  Status prediction_status_;
  Status label_status_;
  Status partition_status_;
  Status score_status_;
  Status strata_status_;
  stats::GroupCountsAccumulator counts_;
  stats::StratifiedCountsAccumulator strata_counts_;
  stats::GroupedSeries score_series_;
  std::vector<double> scores_;
};

/// The evaluation phase shared by the in-memory and streaming engines:
/// one closure per metric over the merged partials, sequenced in the
/// canonical report order and assembled by sequence number.
Result<AuditResult> EvaluateMergedPartials(const MergedPartials& merged,
                                           const AuditConfig& config,
                                           const std::string& parent_path) {
  FAIRLAW_RETURN_NOT_OK(merged.FirstError());
  const stats::GroupCountsAccumulator& counts = merged.counts();

  ResultAggregator aggregator;
  std::vector<std::function<void()>> jobs;
  size_t seq = 0;
  auto add_metric =
      [&](std::string_view name,
          std::function<Result<metrics::MetricReport>()> compute) {
        jobs.push_back([&aggregator, &parent_path, seq,
                        name = "metric/" + std::string(name),
                        compute = std::move(compute)] {
          obs::TraceSpan span(name, parent_path);
          aggregator.AddMetric(seq, compute());
        });
        ++seq;
      };

  add_metric("demographic_parity", [&] {
    return metrics::DemographicParityFromStats(
        metrics::GroupStatsFromCounts(counts, /*with_labels=*/false),
        config.tolerance);
  });
  add_metric("demographic_disparity", [&] {
    return metrics::DemographicDisparityFromStats(
        metrics::GroupStatsFromCounts(counts, /*with_labels=*/false));
  });
  add_metric("disparate_impact_ratio", [&] {
    return metrics::DisparateImpactRatioFromStats(
        metrics::GroupStatsFromCounts(counts, /*with_labels=*/false),
        config.di_threshold);
  });
  if (!config.label_column.empty()) {
    add_metric("equal_opportunity", [&] {
      return metrics::EqualOpportunityFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
    add_metric("equalized_odds", [&] {
      return metrics::EqualizedOddsFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
    add_metric("predictive_parity", [&] {
      return metrics::PredictiveParityFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
    add_metric("accuracy_equality", [&] {
      return metrics::AccuracyEqualityFromStats(
          metrics::GroupStatsFromCounts(counts, /*with_labels=*/true),
          config.tolerance);
    });
  }
  if (!config.score_column.empty()) {
    jobs.push_back([&aggregator, &parent_path, seq, &merged, &config] {
      obs::TraceSpan span("metric/calibration_within_groups", parent_path);
      aggregator.AddCalibration(
          seq, metrics::CalibrationFromSeries(merged.score_series(),
                                              config.calibration_bins,
                                              config.calibration_tolerance));
    });
    ++seq;
  }
  if (!config.strata_columns.empty()) {
    auto add_conditional =
        [&](std::string_view name,
            std::function<Result<metrics::ConditionalReport>()> compute) {
          jobs.push_back([&aggregator, &parent_path, seq,
                          name = "metric/" + std::string(name),
                          compute = std::move(compute)] {
            obs::TraceSpan span(name, parent_path);
            aggregator.AddConditional(seq, compute());
          });
          ++seq;
        };
    add_conditional("conditional_statistical_parity", [&] {
      return metrics::ConditionalStatisticalParityFromCounts(
          merged.strata_counts(), config.tolerance, config.min_stratum_size);
    });
    add_conditional("conditional_demographic_disparity", [&] {
      return metrics::ConditionalDemographicDisparityFromCounts(
          merged.strata_counts(), config.min_stratum_size);
    });
  }

  if (config.num_threads == 1) {
    for (const std::function<void()>& job : jobs) job();
  } else {
    // num_threads == 0 sizes the pool to the hardware; otherwise never
    // spawn more workers than there are jobs.
    ThreadPool pool(config.num_threads == 0
                        ? 0
                        : std::min(config.num_threads, jobs.size()));
    pool.ParallelFor(jobs.size(), [&jobs](size_t i) { jobs[i](); });
  }
  FAIRLAW_ASSIGN_OR_RETURN(AuditResult result, aggregator.Finish());
  if (config.audit_score_distribution) {
    obs::TraceSpan span("metric/score_distribution", parent_path);
    FAIRLAW_ASSIGN_OR_RETURN(
        result.score_distribution,
        ScoreDistributionAudit(merged.score_series(), merged.scores(),
                               config));
    result.all_satisfied =
        result.all_satisfied && result.score_distribution->satisfied;
  }
  return result;
}

/// Reproduces the serial pass's error on a zero-row audit: a missing
/// column still reports the lookup failure, existing columns the
/// empty-input error.
Status EmptyAuditError(const data::Table& empty, const AuditConfig& config) {
  Status probe = MetricInputFromTable(empty, config.protected_column,
                                      config.prediction_column,
                                      config.label_column)
                     .status();
  if (!probe.ok()) return probe;
  return Status::Invalid("MetricInput: empty input");
}

}  // namespace

Status AuditConfig::Validate() const {
  if (protected_column.empty()) {
    return Status::Invalid("AuditConfig: protected_column must be set");
  }
  if (prediction_column.empty()) {
    return Status::Invalid("AuditConfig: prediction_column must be set");
  }
  for (const std::string& column : strata_columns) {
    if (column.empty()) {
      return Status::Invalid(
          "AuditConfig: strata_columns contains an empty column name");
    }
  }
  if (tolerance < 0.0 || tolerance > 1.0) {
    return Status::Invalid("AuditConfig: tolerance must lie in [0,1], got " +
                           FormatDouble(tolerance, 4));
  }
  if (di_threshold <= 0.0 || di_threshold > 1.0) {
    return Status::Invalid(
        "AuditConfig: di_threshold must lie in (0,1], got " +
        FormatDouble(di_threshold, 4));
  }
  if (calibration_bins == 0) {
    return Status::Invalid("AuditConfig: calibration_bins must be > 0");
  }
  if (calibration_tolerance < 0.0 || calibration_tolerance > 1.0) {
    return Status::Invalid(
        "AuditConfig: calibration_tolerance must lie in [0,1], got " +
        FormatDouble(calibration_tolerance, 4));
  }
  if (audit_score_distribution && score_column.empty()) {
    return Status::Invalid(
        "AuditConfig: audit_score_distribution requires score_column");
  }
  if (score_distribution_tolerance < 0.0 || score_distribution_tolerance > 1.0) {
    return Status::Invalid(
        "AuditConfig: score_distribution_tolerance must lie in [0,1], got " +
        FormatDouble(score_distribution_tolerance, 4));
  }
  if (!score_column.empty() && label_column.empty()) {
    return Status::Invalid(
        "AuditConfig: score_column requires label_column (the calibration "
        "audit needs observed outcomes)");
  }
  if (min_stratum_size == 0) {
    return Status::Invalid("AuditConfig: min_stratum_size must be >= 1");
  }
  return Status::OK();
}

Result<metrics::MetricInput> MetricInputFromTable(
    const data::Table& table, const std::string& protected_column,
    const std::string& prediction_column, const std::string& label_column) {
  metrics::MetricInput input;
  FAIRLAW_ASSIGN_OR_RETURN(input.groups,
                           StringKeys(table, protected_column));
  FAIRLAW_ASSIGN_OR_RETURN(input.predictions,
                           BinaryColumn(table, prediction_column));
  if (!label_column.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(input.labels, BinaryColumn(table, label_column));
  }
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  return input;
}

Result<metrics::MetricInput> MetricInputFromTableMulti(
    const data::Table& table,
    const std::vector<std::string>& protected_columns,
    const std::string& prediction_column, const std::string& label_column) {
  if (protected_columns.empty()) {
    return Status::Invalid("MetricInputFromTableMulti: no protected "
                           "columns");
  }
  metrics::MetricInput input;
  FAIRLAW_ASSIGN_OR_RETURN(input.groups,
                           StrataFromTable(table, protected_columns));
  FAIRLAW_ASSIGN_OR_RETURN(input.predictions,
                           BinaryColumn(table, prediction_column));
  if (!label_column.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(input.labels, BinaryColumn(table, label_column));
  }
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  return input;
}

Result<std::vector<std::string>> StrataFromTable(
    const data::Table& table,
    const std::vector<std::string>& strata_columns) {
  if (strata_columns.empty()) {
    return Status::Invalid("StrataFromTable: no strata columns");
  }
  std::vector<std::vector<std::string>> keys;
  keys.reserve(strata_columns.size());
  for (const std::string& name : strata_columns) {
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<std::string> column_keys,
                             StringKeys(table, name));
    keys.push_back(std::move(column_keys));
  }
  std::vector<std::string> strata(table.num_rows());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::string key;
    for (size_t c = 0; c < keys.size(); ++c) {
      if (c > 0) key += "|";
      key += keys[c][row];
    }
    strata[row] = key;
  }
  return strata;
}

std::string AuditResult::Render() const {
  std::string out;
  out += "=== fairness audit: " +
         std::string(all_satisfied ? "ALL SATISFIED" : "VIOLATIONS FOUND") +
         " ===\n";
  for (const metrics::MetricReport& report : reports) {
    out += metrics::RenderReport(report);
  }
  for (const metrics::ConditionalReport& report : conditional_reports) {
    out += metrics::RenderConditionalReport(report);
  }
  if (calibration.has_value()) {
    out += "calibration_within_groups: " +
           std::string(calibration->satisfied ? "SATISFIED" : "VIOLATED") +
           " (max ECE " + FormatDouble(calibration->max_ece, 4) +
           ", gap " + FormatDouble(calibration->ece_gap, 4) + ")\n";
    for (const metrics::GroupCalibration& gc : calibration->groups) {
      out += "  " + gc.group + ": ece=" + FormatDouble(gc.ece, 4) +
             " mean_score=" + FormatDouble(gc.mean_score, 4) +
             " base_rate=" + FormatDouble(gc.positive_rate, 4) + "\n";
    }
  }
  if (score_distribution.has_value()) {
    out += "score_distribution_drift: " +
           std::string(score_distribution->satisfied ? "SATISFIED"
                                                     : "VIOLATED") +
           " (max KS " + FormatDouble(score_distribution->max_ks, 4) +
           " vs tolerance " + FormatDouble(score_distribution->tolerance, 4) +
           ", max W1 " + FormatDouble(score_distribution->max_wasserstein1, 4) +
           ")\n";
    for (const GroupScoreDistance& gd : score_distribution->groups) {
      out += "  " + gd.group + ": n=" + std::to_string(gd.count) +
             " w1=" + FormatDouble(gd.wasserstein1, 4) +
             " ks=" + FormatDouble(gd.ks, 4) + "\n";
    }
  }
  return out;
}

legal::AuditFindings AuditResult::ToLegalFindings() const {
  legal::AuditFindings findings;
  findings.reports = reports;
  findings.conditional_reports = conditional_reports;
  findings.all_satisfied = all_satisfied;
  return findings;
}

Result<const metrics::MetricReport*> AuditResult::Find(
    std::string_view name) const {
  for (const metrics::MetricReport& report : reports) {
    if (report.metric_name == name) return &report;
  }
  return Status::NotFound("audit has no metric named '" + std::string(name) +
                          "'");
}

Result<AuditResult> RunAudit(const data::Table& table,
                             const AuditConfig& config) {
  FAIRLAW_RETURN_NOT_OK(config.Validate());
  FAIRLAW_ASSIGN_OR_RETURN(
      data::ChunkedTable chunked,
      data::ChunkedTable::FromTable(table, config.chunk_rows));
  return RunAudit(chunked, config);
}

Result<AuditResult> RunAudit(const data::ChunkedTable& table,
                             const AuditConfig& config) {
  FAIRLAW_RETURN_NOT_OK(config.Validate());
  obs::TraceSpan run_span("run_audit");
  obs::GetCounter("audit.runs")->Increment();
  obs::GetCounter("audit.rows_audited")->Increment(table.num_rows());
  // Morsels may run on pool workers whose span stack is empty; capturing
  // the scheduling thread's path here and passing it to TraceSpan keeps
  // the exported span tree identical for every thread count.
  const std::string parent_path = obs::CurrentPath();

  if (table.num_chunks() == 0) {
    FAIRLAW_ASSIGN_OR_RETURN(data::Table empty, table.Materialize());
    return EmptyAuditError(empty, config);
  }

  obs::GetCounter("audit.morsels_scheduled")->Increment(table.num_chunks());
  std::vector<ChunkPartial> partials(table.num_chunks());
  if (config.num_threads == 1 || table.num_chunks() == 1) {
    for (size_t i = 0; i < table.num_chunks(); ++i) {
      partials[i] = ProcessChunk(table.chunk(i), config, parent_path);
    }
  } else {
    ThreadPool pool(config.num_threads == 0
                        ? 0
                        : std::min(config.num_threads, table.num_chunks()));
    pool.ParallelFor(table.num_chunks(),
                     [&partials, &table, &config, &parent_path](size_t i) {
                       partials[i] =
                           ProcessChunk(table.chunk(i), config, parent_path);
                     });
  }
  MergedPartials merged;
  for (ChunkPartial& partial : partials) merged.Fold(std::move(partial));
  return EvaluateMergedPartials(merged, config, parent_path);
}

Result<AuditResult> RunAuditCsv(const std::string& path,
                                const AuditConfig& config) {
  return RunAuditCsv(path, config, data::CsvOptions{});
}

Result<AuditResult> RunAuditCsv(const std::string& path,
                                const AuditConfig& config,
                                const data::CsvOptions& csv_options) {
  FAIRLAW_RETURN_NOT_OK(config.Validate());
  obs::TraceSpan run_span("run_audit");
  obs::GetCounter("audit.runs")->Increment();
  const std::string parent_path = obs::CurrentPath();

  data::CsvChunkReader::Options reader_options;
  reader_options.csv = csv_options;
  reader_options.chunk_rows =
      config.chunk_rows == 0 ? data::kDefaultChunkRows : config.chunk_rows;
  FAIRLAW_ASSIGN_OR_RETURN(data::CsvChunkReader reader,
                           data::CsvChunkReader::Make(path, reader_options));
  obs::GetCounter("audit.rows_audited")->Increment(reader.num_rows());

  if (reader.num_rows() == 0) {
    data::TableBuilder builder(reader.schema());
    FAIRLAW_ASSIGN_OR_RETURN(data::Table empty, builder.Finish());
    return EmptyAuditError(empty, config);
  }

  MergedPartials merged;
  if (config.num_threads == 1) {
    // Serial streaming: read, tally, merge, drop — peak memory is one
    // chunk plus the merged accumulators.
    while (true) {
      FAIRLAW_ASSIGN_OR_RETURN(std::optional<data::Table> chunk,
                               reader.Next());
      if (!chunk.has_value()) break;
      obs::GetCounter("audit.morsels_scheduled")->Increment();
      merged.Fold(ProcessChunk(*chunk, config, parent_path));
    }
  } else {
    // Bounded in-flight window: the reader stays on this thread, workers
    // tally chunks, and the oldest in-flight chunk merges first — which
    // is chunk order, so the stream reproduces the in-memory result.
    // Deque slots are stable across push/pop at the ends, and the pool
    // is declared after the deque so its destructor joins the workers
    // before any slot they might still write goes away.
    struct InFlight {
      ChunkPartial partial;
      std::future<void> done;
    };
    std::deque<InFlight> in_flight;
    ThreadPool pool(config.num_threads);
    const size_t window = pool.num_threads() * 2;
    auto drain_front = [&merged, &in_flight] {
      in_flight.front().done.get();
      merged.Fold(std::move(in_flight.front().partial));
      in_flight.pop_front();
    };
    while (true) {
      FAIRLAW_ASSIGN_OR_RETURN(std::optional<data::Table> chunk,
                               reader.Next());
      if (!chunk.has_value()) break;
      if (in_flight.size() >= window) drain_front();
      in_flight.emplace_back();
      InFlight& slot = in_flight.back();
      obs::GetCounter("audit.morsels_scheduled")->Increment();
      slot.done = pool.Submit([&partial = slot.partial,
                               chunk = std::move(*chunk), &config,
                               &parent_path] {
        partial = ProcessChunk(chunk, config, parent_path);
      });
    }
    while (!in_flight.empty()) drain_front();
  }
  return EvaluateMergedPartials(merged, config, parent_path);
}

}  // namespace fairlaw::audit
