#include "audit/auditor.h"

#include "base/string_util.h"
#include "metrics/group_metrics.h"

namespace fairlaw::audit {
namespace {

Result<std::vector<int>> BinaryColumn(const data::Table& table,
                                      const std::string& name) {
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column, table.GetColumn(name));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values, column->ToDoubles());
  std::vector<int> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0.0 && values[i] != 1.0) {
      return Status::Invalid("column '" + name + "' must be binary 0/1");
    }
    out[i] = values[i] == 1.0 ? 1 : 0;
  }
  return out;
}

Result<std::vector<std::string>> StringKeys(const data::Table& table,
                                            const std::string& name) {
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column, table.GetColumn(name));
  if (column->null_count() > 0) {
    return Status::Invalid("column '" + name + "' has nulls; audits require "
                           "explicit missing-value handling upstream");
  }
  std::vector<std::string> out(column->size());
  for (size_t i = 0; i < column->size(); ++i) {
    out[i] = column->ValueToString(i);
  }
  return out;
}

}  // namespace

Result<metrics::MetricInput> MetricInputFromTable(
    const data::Table& table, const std::string& protected_column,
    const std::string& prediction_column, const std::string& label_column) {
  metrics::MetricInput input;
  FAIRLAW_ASSIGN_OR_RETURN(input.groups,
                           StringKeys(table, protected_column));
  FAIRLAW_ASSIGN_OR_RETURN(input.predictions,
                           BinaryColumn(table, prediction_column));
  if (!label_column.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(input.labels, BinaryColumn(table, label_column));
  }
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  return input;
}

Result<metrics::MetricInput> MetricInputFromTableMulti(
    const data::Table& table,
    const std::vector<std::string>& protected_columns,
    const std::string& prediction_column, const std::string& label_column) {
  if (protected_columns.empty()) {
    return Status::Invalid("MetricInputFromTableMulti: no protected "
                           "columns");
  }
  metrics::MetricInput input;
  FAIRLAW_ASSIGN_OR_RETURN(input.groups,
                           StrataFromTable(table, protected_columns));
  FAIRLAW_ASSIGN_OR_RETURN(input.predictions,
                           BinaryColumn(table, prediction_column));
  if (!label_column.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(input.labels, BinaryColumn(table, label_column));
  }
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  return input;
}

Result<std::vector<std::string>> StrataFromTable(
    const data::Table& table,
    const std::vector<std::string>& strata_columns) {
  if (strata_columns.empty()) {
    return Status::Invalid("StrataFromTable: no strata columns");
  }
  std::vector<std::vector<std::string>> keys;
  keys.reserve(strata_columns.size());
  for (const std::string& name : strata_columns) {
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<std::string> column_keys,
                             StringKeys(table, name));
    keys.push_back(std::move(column_keys));
  }
  std::vector<std::string> strata(table.num_rows());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::string key;
    for (size_t c = 0; c < keys.size(); ++c) {
      if (c > 0) key += "|";
      key += keys[c][row];
    }
    strata[row] = key;
  }
  return strata;
}

std::string AuditResult::Render() const {
  std::string out;
  out += "=== fairness audit: " +
         std::string(all_satisfied ? "ALL SATISFIED" : "VIOLATIONS FOUND") +
         " ===\n";
  for (const metrics::MetricReport& report : reports) {
    out += metrics::RenderReport(report);
  }
  for (const metrics::ConditionalReport& report : conditional_reports) {
    out += metrics::RenderConditionalReport(report);
  }
  if (calibration.has_value()) {
    out += "calibration_within_groups: " +
           std::string(calibration->satisfied ? "SATISFIED" : "VIOLATED") +
           " (max ECE " + FormatDouble(calibration->max_ece, 4) +
           ", gap " + FormatDouble(calibration->ece_gap, 4) + ")\n";
    for (const metrics::GroupCalibration& gc : calibration->groups) {
      out += "  " + gc.group + ": ece=" + FormatDouble(gc.ece, 4) +
             " mean_score=" + FormatDouble(gc.mean_score, 4) +
             " base_rate=" + FormatDouble(gc.positive_rate, 4) + "\n";
    }
  }
  return out;
}

Result<const metrics::MetricReport*> AuditResult::Find(
    const std::string& name) const {
  for (const metrics::MetricReport& report : reports) {
    if (report.metric_name == name) return &report;
  }
  return Status::NotFound("audit has no metric named '" + name + "'");
}

Result<AuditResult> RunAudit(const data::Table& table,
                             const AuditConfig& config) {
  FAIRLAW_ASSIGN_OR_RETURN(
      metrics::MetricInput input,
      MetricInputFromTable(table, config.protected_column,
                           config.prediction_column, config.label_column));

  AuditResult result;
  auto add = [&result](Result<metrics::MetricReport> report) -> Status {
    FAIRLAW_ASSIGN_OR_RETURN(metrics::MetricReport r, std::move(report));
    result.all_satisfied = result.all_satisfied && r.satisfied;
    result.reports.push_back(std::move(r));
    return Status::OK();
  };

  FAIRLAW_RETURN_NOT_OK(add(metrics::DemographicParity(input,
                                                       config.tolerance)));
  FAIRLAW_RETURN_NOT_OK(add(metrics::DemographicDisparity(input)));
  FAIRLAW_RETURN_NOT_OK(
      add(metrics::DisparateImpactRatio(input, config.di_threshold)));
  if (!config.label_column.empty()) {
    FAIRLAW_RETURN_NOT_OK(add(metrics::EqualOpportunity(input,
                                                        config.tolerance)));
    FAIRLAW_RETURN_NOT_OK(add(metrics::EqualizedOdds(input,
                                                     config.tolerance)));
    FAIRLAW_RETURN_NOT_OK(add(metrics::PredictiveParity(input,
                                                        config.tolerance)));
    FAIRLAW_RETURN_NOT_OK(add(metrics::AccuracyEquality(input,
                                                        config.tolerance)));
  }
  if (!config.score_column.empty()) {
    if (config.label_column.empty()) {
      return Status::Invalid("RunAudit: calibration audit requires a label "
                             "column alongside the score column");
    }
    FAIRLAW_ASSIGN_OR_RETURN(const data::Column* score_col,
                             table.GetColumn(config.score_column));
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> scores,
                             score_col->ToDoubles());
    FAIRLAW_ASSIGN_OR_RETURN(
        metrics::CalibrationReport calibration,
        metrics::CalibrationWithinGroups(input.groups, input.labels, scores,
                                         config.calibration_bins,
                                         config.calibration_tolerance));
    result.all_satisfied = result.all_satisfied && calibration.satisfied;
    result.calibration = std::move(calibration);
  }
  if (!config.strata_columns.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<std::string> strata,
                             StrataFromTable(table, config.strata_columns));
    FAIRLAW_ASSIGN_OR_RETURN(
        metrics::ConditionalReport csp,
        metrics::ConditionalStatisticalParity(input, strata, config.tolerance,
                                              config.min_stratum_size));
    result.all_satisfied = result.all_satisfied && csp.satisfied;
    result.conditional_reports.push_back(std::move(csp));
    FAIRLAW_ASSIGN_OR_RETURN(
        metrics::ConditionalReport cdd,
        metrics::ConditionalDemographicDisparity(input, strata,
                                                 config.min_stratum_size));
    result.all_satisfied = result.all_satisfied && cdd.satisfied;
    result.conditional_reports.push_back(std::move(cdd));
  }
  return result;
}

}  // namespace fairlaw::audit
