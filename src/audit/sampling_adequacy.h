#ifndef FAIRLAW_AUDIT_SAMPLING_ADEQUACY_H_
#define FAIRLAW_AUDIT_SAMPLING_ADEQUACY_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "metrics/fairness_metric.h"

namespace fairlaw::audit {

// Sampling-requirements audit (§IV-F): before trusting a per-group or
// per-subgroup rate estimate, check that the group carries enough samples
// for the estimate's confidence interval to be informative.

/// Per-group support assessment.
struct GroupSupport {
  std::string group;
  size_t count = 0;
  double share = 0.0;           // count / n
  double selection_rate = 0.0;
  /// Normal-approximation CI half-width of the selection rate at the
  /// configured confidence level.
  double ci_halfwidth = 0.0;
  bool adequate = false;
};

struct SamplingAdequacyOptions {
  /// Minimum group size for an estimate to count as adequate.
  size_t min_count = 30;
  /// Maximum acceptable CI half-width.
  double max_ci_halfwidth = 0.1;
  /// Two-sided confidence level for the interval (e.g. 0.95).
  double confidence = 0.95;
};

struct SamplingReport {
  std::vector<GroupSupport> groups;
  bool all_adequate = true;
  std::string detail;
};

/// Assesses sample support for every protected group in `input`.
FAIRLAW_NODISCARD Result<SamplingReport> AssessSamplingAdequacy(
    const metrics::MetricInput& input,
    const SamplingAdequacyOptions& options = {});

/// Sample size needed for a selection-rate CI of half-width `halfwidth`
/// at the given confidence when the underlying rate is `rate` (worst case
/// rate=0.5 if unknown).
FAIRLAW_NODISCARD Result<size_t> RequiredSampleSize(double rate, double halfwidth,
                                  double confidence);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_SAMPLING_ADEQUACY_H_
