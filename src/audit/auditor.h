#ifndef FAIRLAW_AUDIT_AUDITOR_H_
#define FAIRLAW_AUDIT_AUDITOR_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "data/chunked.h"
#include "data/csv.h"
#include "data/table.h"
#include "legal/report.h"
#include "metrics/calibration_metric.h"
#include "metrics/conditional_metrics.h"
#include "metrics/fairness_metric.h"

namespace fairlaw::audit {

/// Which metric families a table audit should run.
struct AuditConfig {
  /// Column holding the protected attribute A (any type; values are
  /// compared as rendered strings).
  std::string protected_column;
  /// Column holding the model decision R (int64/bool, values 0/1).
  std::string prediction_column;
  /// Column holding the actual outcome Y; empty to skip the
  /// label-dependent metrics (equal opportunity, equalized odds,
  /// predictive parity, accuracy equality).
  std::string label_column;
  /// Columns holding legitimate factors S for the conditional metrics;
  /// empty to skip them. Multiple columns stratify on their combination.
  std::vector<std::string> strata_columns;
  /// Column holding the model probability score in [0,1]; set together
  /// with label_column to add the calibration-within-groups audit (the
  /// calibration definition §V lists among the legally distinguished
  /// ones). Empty to skip.
  std::string score_column;

  /// Gap tolerance shared by the equality-style metrics.
  double tolerance = 0.05;
  /// Ratio threshold for disparate impact (EEOC four-fifths rule).
  double di_threshold = 0.8;
  /// Minimum rows per stratum for the conditional metrics.
  size_t min_stratum_size = 10;
  /// Bins and max per-group ECE for the calibration audit.
  size_t calibration_bins = 10;
  double calibration_tolerance = 0.05;
  /// Set true (together with score_column) to audit per-group score
  /// distribution drift: each group's scores against everyone else's,
  /// measured by Wasserstein-1 and Kolmogorov–Smirnov over cached sorted
  /// samples — the §IV-F distributional distances on the audit path.
  bool audit_score_distribution = false;
  /// Max per-group KS statistic for the drift audit to pass. KS is
  /// scale-free, so it gates the verdict; W1 is reported alongside.
  double score_distribution_tolerance = 0.1;
  /// Histogram bins for the O(n) binned drift fast path; 0 (default)
  /// uses the exact presorted path.
  size_t score_distribution_bins = 0;
  /// Worker threads for metric evaluation: 1 = serial (default), 0 = one
  /// per hardware thread. The audit output is byte-identical for every
  /// thread count — results are sequenced by metric, not by completion.
  size_t num_threads = 1;
  /// Rows per morsel for the chunked engine: the table is split into
  /// chunks of this many rows, each chunk produces mergeable partials
  /// (integer tallies, row-ordered series), and the partials merge in
  /// chunk order — so the audit output is byte-identical for every chunk
  /// size too. 0 (default) audits the whole table as one chunk.
  size_t chunk_rows = 0;

  /// Checks the configuration before any data is touched: required
  /// column names set (and no empty strata/score names), tolerance and
  /// di_threshold in range, calibration_bins > 0, score_column only
  /// alongside label_column. RunAudit calls this first, so a bad config
  /// fails with one config-shaped error instead of a column-lookup
  /// error half way through extraction.
  FAIRLAW_NODISCARD Status Validate() const;
};

/// Distances between one group's score distribution and the scores of
/// all other groups combined.
struct GroupScoreDistance {
  std::string group;
  size_t count = 0;
  double wasserstein1 = 0.0;
  double ks = 0.0;
};

/// Per-group score-distribution drift audit (groups in first-seen
/// order). `satisfied` holds iff max_ks <= tolerance.
struct ScoreDistributionReport {
  std::vector<GroupScoreDistance> groups;
  double max_wasserstein1 = 0.0;
  double max_ks = 0.0;
  double tolerance = 0.0;
  bool satisfied = true;
  /// True when the distances came from KLL sketches (the serve windowed
  /// path) rather than the exact row-level kernels: values carry O(1/k)
  /// rank error and must not be diffed against exact-path output.
  bool approximate = false;
};

/// Everything a table audit produced.
struct AuditResult {
  std::vector<metrics::MetricReport> reports;
  std::vector<metrics::ConditionalReport> conditional_reports;
  /// Present when a score column was configured.
  std::optional<metrics::CalibrationReport> calibration;
  /// Present when audit_score_distribution was enabled.
  std::optional<ScoreDistributionReport> score_distribution;
  bool all_satisfied = true;

  /// Renders the full audit as human-readable text.
  std::string Render() const;

  /// Looks up a report by metric name ("demographic_parity", ...).
  /// Takes a string_view so call sites with literals or substrings do
  /// not materialize a temporary std::string.
  FAIRLAW_NODISCARD Result<const metrics::MetricReport*> Find(std::string_view name) const;

  /// Copies the metric-level findings into the shape the legal layer's
  /// compliance report takes (legal depends on metrics, not on audit).
  legal::AuditFindings ToLegalFindings() const;
};

/// Extracts a MetricInput from table columns. `label_column` may be empty.
FAIRLAW_NODISCARD Result<metrics::MetricInput> MetricInputFromTable(
    const data::Table& table, const std::string& protected_column,
    const std::string& prediction_column, const std::string& label_column);

/// Intersectional variant: the group key is the combination of several
/// protected columns joined with '|' ("female|caucasian"), so all the
/// group metrics operate directly on §IV-C subpopulations.
FAIRLAW_NODISCARD Result<metrics::MetricInput> MetricInputFromTableMulti(
    const data::Table& table,
    const std::vector<std::string>& protected_columns,
    const std::string& prediction_column, const std::string& label_column);

/// Extracts the stratum key per row (values of `strata_columns` joined
/// with '|').
FAIRLAW_NODISCARD Result<std::vector<std::string>> StrataFromTable(
    const data::Table& table, const std::vector<std::string>& strata_columns);

/// DEPRECATED shims over the unified entry point — prefer
/// `Auditor::Run(AuditSource::FromTable(table), config)` and friends
/// (audit/source.h). Each forwards to the same morsel-driven engine, so
/// behaviour and byte-for-byte output are unchanged; the free functions
/// remain only so existing call sites migrate mechanically.
///
/// Runs the configured metric suite over `table`. Metrics that need
/// labels are skipped when `label_column` is empty; conditional metrics
/// are skipped when `strata_columns` is empty. The result is
/// byte-identical for every chunk size and thread count.
FAIRLAW_NODISCARD Result<AuditResult> RunAudit(const data::Table& table,
                             const AuditConfig& config);

/// DEPRECATED: use Auditor::Run(AuditSource::FromChunked(table), config).
FAIRLAW_NODISCARD Result<AuditResult> RunAudit(const data::ChunkedTable& table,
                             const AuditConfig& config);

/// DEPRECATED: use Auditor::Run(AuditSource::FromCsv(path), config).
/// Out-of-core audit: streams `path` through data::CsvChunkReader with a
/// bounded in-flight window; peak memory is O(window * chunk) +
/// O(groups) for the count metrics, and the result is byte-identical to
/// loading the whole file and calling RunAudit.
FAIRLAW_NODISCARD Result<AuditResult> RunAuditCsv(const std::string& path,
                                const AuditConfig& config);
FAIRLAW_NODISCARD Result<AuditResult> RunAuditCsv(const std::string& path,
                                const AuditConfig& config,
                                const data::CsvOptions& csv_options);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_AUDITOR_H_
