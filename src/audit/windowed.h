#ifndef FAIRLAW_AUDIT_WINDOWED_H_
#define FAIRLAW_AUDIT_WINDOWED_H_

#include <cstdint>
#include <string>

#include "audit/auditor.h"
#include "base/result.h"
#include "stats/kll.h"
#include "stats/mergeable.h"

namespace fairlaw::audit {

/// What one window bucket (or a merged window) accumulates instead of
/// rows: exact tallies for every count metric, stratified tallies for
/// drill-down and the conditional metrics, and per-group KLL sketches
/// standing in for the row-ordered score series. Memory is O(groups ×
/// sketch) regardless of how many events passed through — the property
/// that lets fairlaw_serve answer over unbounded history.
struct WindowedPartial {
  WindowedPartial() = default;
  explicit WindowedPartial(const stats::KllSketch::Options& sketch_options)
      : sketches(sketch_options) {}

  stats::GroupCountsAccumulator counts;
  stats::StratifiedCountsAccumulator strata_counts;
  stats::GroupedSketches sketches;
  uint64_t num_rows = 0;

  /// Folds `other` in. Same contract as every mergeable accumulator:
  /// folding bucket partials in ascending bucket order reproduces the
  /// single sequential pass over the window's events.
  void MergeFrom(const WindowedPartial& other);
};

/// Evaluates the audit metric suite over a merged window. The count and
/// conditional metrics are exact (integer tallies); calibration is
/// skipped (it needs row-level score/label pairs the window does not
/// retain); the score-distribution drift audit runs on the per-group
/// sketches — each group against the in-key-order merge of all other
/// groups' sketches — and is marked `approximate` in the report.
/// `config` names the logical columns ("group"/"pred"/...) only so the
/// shared evaluators know which metric families to run; no table is
/// touched.
FAIRLAW_NODISCARD Result<AuditResult> RunWindowedAudit(
    const WindowedPartial& window, const AuditConfig& config,
    const std::string& parent_path);

}  // namespace fairlaw::audit

#endif  // FAIRLAW_AUDIT_WINDOWED_H_
