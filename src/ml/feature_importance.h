#ifndef FAIRLAW_ML_FEATURE_IMPORTANCE_H_
#define FAIRLAW_ML_FEATURE_IMPORTANCE_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "ml/classifier.h"
#include "stats/rng.h"

namespace fairlaw::ml {

/// Importance score for one feature.
struct FeatureImportance {
  std::string feature;
  double importance = 0.0;
};

/// Permutation importance: the drop in accuracy on `data` when the values
/// of one feature are randomly permuted across examples, averaged over
/// `repeats` permutations. This is the attribution signal the §IV-E
/// manipulation experiment audits — an adversarially retrained model can
/// drive the sensitive feature's importance to ~0 while still
/// discriminating through proxies.
FAIRLAW_NODISCARD Result<std::vector<FeatureImportance>> PermutationImportance(
    const Classifier& model, const Dataset& data, int repeats,
    stats::Rng* rng);

/// Coefficient attributions for a linear model: |weight_j| * stddev of
/// feature j over `data` (the contribution scale of each feature to the
/// logit).
FAIRLAW_NODISCARD Result<std::vector<FeatureImportance>> LinearAttribution(
    const std::vector<double>& weights, const Dataset& data);

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_FEATURE_IMPORTANCE_H_
