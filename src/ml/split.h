#ifndef FAIRLAW_ML_SPLIT_H_
#define FAIRLAW_ML_SPLIT_H_

#include <vector>

#include "base/result.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace fairlaw::ml {

/// A train/test partition of a dataset.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
  std::vector<size_t> train_indices;  // row indices into the source dataset
  std::vector<size_t> test_indices;
};

/// Random shuffle split. `test_fraction` in (0,1); both sides are
/// guaranteed non-empty.
FAIRLAW_NODISCARD Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      double test_fraction, stats::Rng* rng);

/// K-fold partition: returns `k` folds of row indices covering the
/// dataset exactly once each (shuffled). Requires 2 <= k <= n.
FAIRLAW_NODISCARD Result<std::vector<std::vector<size_t>>> KFoldIndices(size_t n, size_t k,
                                                      stats::Rng* rng);

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_SPLIT_H_
