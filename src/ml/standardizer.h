#ifndef FAIRLAW_ML_STANDARDIZER_H_
#define FAIRLAW_ML_STANDARDIZER_H_

#include <vector>

#include "base/result.h"
#include "ml/dataset.h"

namespace fairlaw::ml {

/// Per-feature z-score standardization fitted on training data and
/// applied to train and test consistently. Features with zero variance
/// pass through unchanged (scale 1).
class Standardizer {
 public:
  /// Estimates per-feature mean and standard deviation.
  FAIRLAW_NODISCARD Status Fit(const std::vector<std::vector<double>>& rows);

  /// Transforms rows in place; fails before Fit or on width mismatch.
  FAIRLAW_NODISCARD Status Transform(std::vector<std::vector<double>>* rows) const;

  /// Fits on `data.features` and transforms them; convenience for
  /// training pipelines.
  FAIRLAW_NODISCARD Status FitTransform(Dataset* data);

  /// Applies the fitted transform to a dataset's features.
  FAIRLAW_NODISCARD Status TransformDataset(Dataset* data) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }
  bool fitted() const { return fitted_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
  bool fitted_ = false;
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_STANDARDIZER_H_
