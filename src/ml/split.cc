#include "ml/split.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::ml {

Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      double test_fraction, stats::Rng* rng) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::Invalid("SplitTrainTest: test_fraction must lie in (0,1)");
  }
  if (rng == nullptr) return Status::Invalid("SplitTrainTest: null rng");
  const size_t n = data.size();
  if (n < 2) return Status::Invalid("SplitTrainTest: need >= 2 examples");

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);

  size_t test_size = static_cast<size_t>(
      std::round(test_fraction * static_cast<double>(n)));
  test_size = std::clamp<size_t>(test_size, 1, n - 1);

  TrainTestSplit split;
  split.test_indices.assign(order.begin(),
                            order.begin() + static_cast<ptrdiff_t>(test_size));
  split.train_indices.assign(order.begin() + static_cast<ptrdiff_t>(test_size),
                             order.end());
  std::sort(split.test_indices.begin(), split.test_indices.end());
  std::sort(split.train_indices.begin(), split.train_indices.end());
  FAIRLAW_ASSIGN_OR_RETURN(split.train, data.Take(split.train_indices));
  FAIRLAW_ASSIGN_OR_RETURN(split.test, data.Take(split.test_indices));
  return split;
}

Result<std::vector<std::vector<size_t>>> KFoldIndices(size_t n, size_t k,
                                                      stats::Rng* rng) {
  if (k < 2) return Status::Invalid("KFoldIndices: k must be >= 2");
  if (k > n) return Status::Invalid("KFoldIndices: k exceeds sample count");
  if (rng == nullptr) return Status::Invalid("KFoldIndices: null rng");
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);
  std::vector<std::vector<size_t>> folds(k);
  for (size_t i = 0; i < n; ++i) {
    folds[i % k].push_back(order[i]);
  }
  for (std::vector<size_t>& fold : folds) {
    std::sort(fold.begin(), fold.end());
  }
  return folds;
}

}  // namespace fairlaw::ml
