#ifndef FAIRLAW_ML_CALIBRATION_H_
#define FAIRLAW_ML_CALIBRATION_H_

#include "stats/calibration.h"  // IWYU pragma: export

namespace fairlaw::ml {

/// Calibration diagnostics are descriptive statistics over (label, score)
/// pairs, so the implementation lives in stats/ where both the metrics
/// layer and the ml layer may reach it without an upward dependency.
/// These aliases keep the historical ml:: spellings working for model
/// evaluation code.
using stats::BrierScore;
using stats::ExpectedCalibrationError;
using stats::ReliabilityBin;
using stats::ReliabilityDiagram;

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_CALIBRATION_H_
