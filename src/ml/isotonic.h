#ifndef FAIRLAW_ML_ISOTONIC_H_
#define FAIRLAW_ML_ISOTONIC_H_

#include <vector>

#include "base/result.h"

namespace fairlaw::ml {

/// Isotonic regression calibrator: fits a monotone non-decreasing map
/// from raw scores to calibrated probabilities via the pool-adjacent-
/// violators (PAV) algorithm, then predicts by linear interpolation
/// between block means. The standard non-parametric probability
/// calibrator; fairlaw uses it per protected group to repair
/// calibration-within-groups violations.
class IsotonicCalibrator {
 public:
  /// Fits on (score, outcome) pairs with optional per-example weights
  /// (empty = 1.0). Outcomes need not be binary — any bounded target
  /// works — but probability calibration passes 0/1 labels.
  FAIRLAW_NODISCARD static Result<IsotonicCalibrator> Fit(
      const std::vector<double>& scores, const std::vector<double>& targets,
      const std::vector<double>& weights = {});

  /// Calibrated value at `score`: interpolates between fitted block
  /// centers; clamps outside the fitted range.
  double Predict(double score) const;

  /// Fitted block boundaries (score -> value), non-decreasing in both
  /// coordinates.
  const std::vector<double>& knot_scores() const { return knot_scores_; }
  const std::vector<double>& knot_values() const { return knot_values_; }

 private:
  IsotonicCalibrator(std::vector<double> knot_scores,
                     std::vector<double> knot_values)
      : knot_scores_(std::move(knot_scores)),
        knot_values_(std::move(knot_values)) {}

  std::vector<double> knot_scores_;
  std::vector<double> knot_values_;
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_ISOTONIC_H_
