#ifndef FAIRLAW_ML_DECISION_TREE_H_
#define FAIRLAW_ML_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairlaw::ml {

/// Training configuration for the CART tree.
struct DecisionTreeOptions {
  int max_depth = 8;
  double min_samples_leaf = 5.0;  // minimum total example weight per leaf
  double min_impurity_decrease = 1e-7;
};

/// CART binary decision tree with weighted Gini impurity, axis-aligned
/// threshold splits, and probability leaves (weighted positive fraction).
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {});

  std::string name() const override { return "decision_tree"; }
  FAIRLAW_NODISCARD Status Fit(const Dataset& data) override;
  FAIRLAW_NODISCARD Result<double> PredictProba(std::span<const double> x) const override;

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t num_nodes() const { return nodes_.size(); }
  /// Depth of the fitted tree (root = 0; 0 for a single-leaf tree).
  int depth() const { return depth_; }

 private:
  struct Node {
    bool is_leaf = true;
    double probability = 0.0;  // leaves: weighted P(y=1)
    size_t feature = 0;        // internal: split feature
    double threshold = 0.0;    // internal: go left when x[feature] <= t
    int left = -1;
    int right = -1;
  };

  int BuildNode(const Dataset& data, std::vector<size_t>& indices, int depth);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  size_t num_features_ = 0;
  int depth_ = 0;
  bool fitted_ = false;
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_DECISION_TREE_H_
