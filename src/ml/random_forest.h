#ifndef FAIRLAW_ML_RANDOM_FOREST_H_
#define FAIRLAW_ML_RANDOM_FOREST_H_

#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "stats/rng.h"

namespace fairlaw::ml {

/// Training configuration for the bagged forest.
struct RandomForestOptions {
  int num_trees = 25;
  DecisionTreeOptions tree;
  /// Bootstrap sample fraction per tree.
  double sample_fraction = 1.0;
  /// Seed for the internal bootstrap generator (forests own their
  /// randomness so Fit stays deterministic given options).
  uint64_t seed = 0x5eed;
};

/// Bagging ensemble of CART trees with probability averaging. A
/// non-linear reference model for the audits: unlike logistic
/// regression, it has no coefficient attributions, so permutation
/// importance is the only attribution channel (relevant to the §IV-E
/// manipulation discussion).
class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {});

  std::string name() const override { return "random_forest"; }
  FAIRLAW_NODISCARD Status Fit(const Dataset& data) override;
  FAIRLAW_NODISCARD Result<double> PredictProba(std::span<const double> x) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
  bool fitted_ = false;
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_RANDOM_FOREST_H_
