#ifndef FAIRLAW_ML_KNN_H_
#define FAIRLAW_ML_KNN_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairlaw::ml {

/// k-nearest-neighbors classifier with Euclidean distance and
/// weight-aware voting: PredictProba returns the example-weighted positive
/// fraction among the k nearest training points.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5);

  std::string name() const override { return "knn"; }
  FAIRLAW_NODISCARD Status Fit(const Dataset& data) override;
  FAIRLAW_NODISCARD Result<double> PredictProba(std::span<const double> x) const override;

 private:
  int k_;
  Dataset train_;
  bool fitted_ = false;
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_KNN_H_
