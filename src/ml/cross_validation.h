#ifndef FAIRLAW_ML_CROSS_VALIDATION_H_
#define FAIRLAW_ML_CROSS_VALIDATION_H_

#include <functional>
#include <string>
#include <vector>

#include "base/result.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace fairlaw::ml {

/// Builds a fresh untrained classifier for one CV fold.
using ModelFactory = std::function<std::unique_ptr<Classifier>()>;

/// Per-fold and aggregate cross-validation scores.
struct CrossValidationResult {
  std::vector<double> fold_accuracy;
  std::vector<double> fold_auc;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  double mean_auc = 0.0;
};

/// K-fold cross-validation: trains `factory()` models on k-1 folds and
/// scores accuracy (threshold 0.5) and AUC on the held-out fold.
/// Requires every validation fold to contain both classes for the AUC;
/// returns an error otherwise (shuffle with a different seed or reduce
/// k).
FAIRLAW_NODISCARD Result<CrossValidationResult> CrossValidate(const Dataset& data,
                                            const ModelFactory& factory,
                                            size_t folds, stats::Rng* rng);

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_CROSS_VALIDATION_H_
