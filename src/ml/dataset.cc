#include "ml/dataset.h"

namespace fairlaw::ml {

Status Dataset::Validate() const {
  if (features.empty()) return Status::Invalid("Dataset: no examples");
  if (labels.size() != features.size()) {
    return Status::Invalid("Dataset: labels/features size mismatch");
  }
  const size_t width = features[0].size();
  if (width == 0) return Status::Invalid("Dataset: zero-width features");
  if (!feature_names.empty() && feature_names.size() != width) {
    return Status::Invalid("Dataset: feature_names/width mismatch");
  }
  for (const std::vector<double>& row : features) {
    if (row.size() != width) {
      return Status::Invalid("Dataset: ragged feature matrix");
    }
  }
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::Invalid("Dataset: labels must be 0/1");
    }
  }
  if (!weights.empty()) {
    if (weights.size() != features.size()) {
      return Status::Invalid("Dataset: weights/features size mismatch");
    }
    for (double w : weights) {
      if (w < 0.0) return Status::Invalid("Dataset: negative weight");
    }
  }
  return Status::OK();
}

Result<Dataset> Dataset::Take(std::span<const size_t> indices) const {
  Dataset out;
  out.feature_names = feature_names;
  out.features.reserve(indices.size());
  out.labels.reserve(indices.size());
  if (!weights.empty()) out.weights.reserve(indices.size());
  for (size_t index : indices) {
    if (index >= features.size()) {
      return Status::OutOfRange("Dataset::Take: index out of range");
    }
    out.features.push_back(features[index]);
    out.labels.push_back(labels[index]);
    if (!weights.empty()) out.weights.push_back(weights[index]);
  }
  return out;
}

Result<std::vector<std::vector<double>>> FeaturesFromTable(
    const data::Table& table,
    const std::vector<std::string>& feature_columns) {
  if (feature_columns.empty()) {
    return Status::Invalid("FeaturesFromTable: no feature columns");
  }
  std::vector<std::vector<double>> column_values;
  column_values.reserve(feature_columns.size());
  for (const std::string& name : feature_columns) {
    FAIRLAW_ASSIGN_OR_RETURN(const data::Column* column,
                             table.GetColumn(name));
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values, column->ToDoubles());
    column_values.push_back(std::move(values));
  }
  std::vector<std::vector<double>> rows(
      table.num_rows(), std::vector<double>(feature_columns.size()));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < feature_columns.size(); ++c) {
      rows[r][c] = column_values[c][r];
    }
  }
  return rows;
}

Result<Dataset> DatasetFromTable(
    const data::Table& table, const std::vector<std::string>& feature_columns,
    const std::string& label_column) {
  Dataset dataset;
  dataset.feature_names = feature_columns;
  FAIRLAW_ASSIGN_OR_RETURN(dataset.features,
                           FeaturesFromTable(table, feature_columns));

  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* label_col,
                           table.GetColumn(label_column));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> raw_labels,
                           label_col->ToDoubles());
  dataset.labels.resize(raw_labels.size());
  for (size_t i = 0; i < raw_labels.size(); ++i) {
    if (raw_labels[i] != 0.0 && raw_labels[i] != 1.0) {
      return Status::Invalid("DatasetFromTable: label column '" +
                             label_column + "' has non-binary value");
    }
    dataset.labels[i] = raw_labels[i] == 1.0 ? 1 : 0;
  }
  FAIRLAW_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace fairlaw::ml
