#include "ml/logistic_regression.h"

#include <cmath>
#include <cstdio>

namespace fairlaw::ml {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

Status LogisticRegression::Fit(const Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (options_.learning_rate <= 0.0) {
    return Status::Invalid("LogisticRegression: learning_rate must be > 0");
  }
  if (options_.max_epochs <= 0) {
    return Status::Invalid("LogisticRegression: max_epochs must be > 0");
  }
  if (options_.l2 < 0.0) {
    return Status::Invalid("LogisticRegression: l2 must be >= 0");
  }

  const size_t n = data.size();
  const size_t d = data.num_features();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i) total_weight += data.weight(i);
  if (total_weight <= 0.0) {
    return Status::Invalid("LogisticRegression: total example weight is 0");
  }

  std::vector<double> gradient(d, 0.0);
  double previous_loss = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double bias_gradient = 0.0;
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const std::vector<double>& x = data.features[i];
      double z = bias_;
      for (size_t j = 0; j < d; ++j) z += weights_[j] * x[j];
      double p = Sigmoid(z);
      double w = data.weight(i);
      double error = p - static_cast<double>(data.labels[i]);
      for (size_t j = 0; j < d; ++j) gradient[j] += w * error * x[j];
      bias_gradient += w * error;
      // Weighted NLL with clamping to avoid log(0).
      double pc = std::clamp(p, 1e-12, 1.0 - 1e-12);
      loss -= w * (data.labels[i] == 1 ? std::log(pc) : std::log(1.0 - pc));
    }
    loss /= total_weight;
    for (size_t j = 0; j < d; ++j) {
      gradient[j] = gradient[j] / total_weight + options_.l2 * weights_[j];
      loss += 0.5 * options_.l2 * weights_[j] * weights_[j];
    }
    bias_gradient /= total_weight;

    for (size_t j = 0; j < d; ++j) {
      weights_[j] -= options_.learning_rate * gradient[j];
    }
    bias_ -= options_.learning_rate * bias_gradient;

    if (options_.verbose && epoch % 50 == 0) {
      std::fprintf(stderr, "epoch %d loss %.6f\n", epoch, loss);
    }
    final_loss_ = loss;
    if (std::fabs(previous_loss - loss) < options_.tolerance) break;
    previous_loss = loss;
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> LogisticRegression::PredictProba(
    std::span<const double> x) const {
  if (!fitted_) {
    return Status::FailedPrecondition("LogisticRegression: not fitted");
  }
  if (x.size() != weights_.size()) {
    return Status::Invalid("LogisticRegression: feature width " +
                           std::to_string(x.size()) + " != " +
                           std::to_string(weights_.size()));
  }
  double z = bias_;
  for (size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return Sigmoid(z);
}

void LogisticRegression::SetParameters(std::vector<double> weights,
                                       double bias) {
  weights_ = std::move(weights);
  bias_ = bias;
  fitted_ = true;
}

}  // namespace fairlaw::ml
