#include "ml/random_forest.h"

#include <cmath>

namespace fairlaw::ml {

RandomForest::RandomForest(RandomForestOptions options)
    : options_(options) {}

Status RandomForest::Fit(const Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (options_.num_trees <= 0) {
    return Status::Invalid("RandomForest: num_trees must be > 0");
  }
  if (options_.sample_fraction <= 0.0 || options_.sample_fraction > 1.0) {
    return Status::Invalid("RandomForest: sample_fraction must lie in "
                           "(0,1]");
  }
  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_trees));
  stats::Rng rng(options_.seed);
  const size_t bag_size = std::max<size_t>(
      1, static_cast<size_t>(std::llround(
             options_.sample_fraction * static_cast<double>(data.size()))));
  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<size_t> bag(bag_size);
    for (size_t& index : bag) index = rng.UniformInt(data.size());
    FAIRLAW_ASSIGN_OR_RETURN(Dataset bootstrap, data.Take(bag));
    DecisionTree tree(options_.tree);
    FAIRLAW_RETURN_NOT_OK(tree.Fit(bootstrap));
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> RandomForest::PredictProba(std::span<const double> x) const {
  if (!fitted_) return Status::FailedPrecondition("RandomForest: not fitted");
  double total = 0.0;
  for (const DecisionTree& tree : trees_) {
    FAIRLAW_ASSIGN_OR_RETURN(double p, tree.PredictProba(x));
    total += p;
  }
  return total / static_cast<double>(trees_.size());
}

}  // namespace fairlaw::ml
