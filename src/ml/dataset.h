#ifndef FAIRLAW_ML_DATASET_H_
#define FAIRLAW_ML_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "base/result.h"
#include "data/table.h"

namespace fairlaw::ml {

/// A supervised binary-classification dataset.
///
/// `features` is row-major (features[i] is example i); `labels` are 0/1
/// with 1 the favorable outcome throughout fairlaw (hire, loan granted,
/// promoted). `weights` is either empty (all weights 1) or per-example;
/// pre-processing mitigators such as reweighing express themselves purely
/// through these weights.
struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  std::vector<double> weights;

  size_t size() const { return features.size(); }
  size_t num_features() const {
    return features.empty() ? feature_names.size() : features[0].size();
  }

  /// Weight of example i (1.0 when weights is empty).
  double weight(size_t i) const { return weights.empty() ? 1.0 : weights[i]; }

  /// Structural validation: rectangular features, labels in {0,1},
  /// weights (if present) non-negative and aligned, at least one example.
  FAIRLAW_NODISCARD Status Validate() const;

  /// Returns the subset at `indices` (weights preserved).
  FAIRLAW_NODISCARD Result<Dataset> Take(std::span<const size_t> indices) const;
};

/// Builds a Dataset from a table: `feature_columns` become the feature
/// matrix (numeric or bool columns; int64 widened), `label_column` must be
/// an int64/bool column with values in {0,1}. Null cells anywhere in the
/// used columns are an error — callers must handle missingness explicitly
/// before modeling.
FAIRLAW_NODISCARD Result<Dataset> DatasetFromTable(const data::Table& table,
                                 const std::vector<std::string>& feature_columns,
                                 const std::string& label_column);

/// Extracts only the feature matrix (no labels) from a table.
FAIRLAW_NODISCARD Result<std::vector<std::vector<double>>> FeaturesFromTable(
    const data::Table& table, const std::vector<std::string>& feature_columns);

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_DATASET_H_
