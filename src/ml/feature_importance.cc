#include "ml/feature_importance.h"

#include <cmath>

#include "ml/model_eval.h"

namespace fairlaw::ml {

Result<std::vector<FeatureImportance>> PermutationImportance(
    const Classifier& model, const Dataset& data, int repeats,
    stats::Rng* rng) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (repeats <= 0) {
    return Status::Invalid("PermutationImportance: repeats must be > 0");
  }
  if (rng == nullptr) {
    return Status::Invalid("PermutationImportance: null rng");
  }

  FAIRLAW_ASSIGN_OR_RETURN(std::vector<int> base_predictions,
                           model.PredictBatch(data.features));
  FAIRLAW_ASSIGN_OR_RETURN(double base_accuracy,
                           Accuracy(data.labels, base_predictions));

  const size_t d = data.num_features();
  std::vector<FeatureImportance> importances(d);
  std::vector<std::vector<double>> permuted = data.features;
  for (size_t j = 0; j < d; ++j) {
    importances[j].feature =
        j < data.feature_names.size() ? data.feature_names[j]
                                      : std::string("f").append(std::to_string(j));
    double total_drop = 0.0;
    for (int r = 0; r < repeats; ++r) {
      // Permute column j.
      std::vector<size_t> order(data.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng->Shuffle(&order);
      for (size_t i = 0; i < data.size(); ++i) {
        permuted[i][j] = data.features[order[i]][j];
      }
      FAIRLAW_ASSIGN_OR_RETURN(std::vector<int> predictions,
                               model.PredictBatch(permuted));
      FAIRLAW_ASSIGN_OR_RETURN(double accuracy,
                               Accuracy(data.labels, predictions));
      total_drop += base_accuracy - accuracy;
    }
    importances[j].importance = total_drop / static_cast<double>(repeats);
    // Restore column j.
    for (size_t i = 0; i < data.size(); ++i) {
      permuted[i][j] = data.features[i][j];
    }
  }
  return importances;
}

Result<std::vector<FeatureImportance>> LinearAttribution(
    const std::vector<double>& weights, const Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (weights.size() != data.num_features()) {
    return Status::Invalid("LinearAttribution: weight/feature mismatch");
  }
  const size_t d = weights.size();
  const size_t n = data.size();
  std::vector<FeatureImportance> importances(d);
  for (size_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += data.features[i][j];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double diff = data.features[i][j] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(n);
    importances[j].feature =
        j < data.feature_names.size() ? data.feature_names[j]
                                      : std::string("f").append(std::to_string(j));
    importances[j].importance = std::fabs(weights[j]) * std::sqrt(var);
  }
  return importances;
}

}  // namespace fairlaw::ml
