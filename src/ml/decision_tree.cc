#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::ml {
namespace {

double GiniFromCounts(double positive, double total) {
  if (total <= 0.0) return 0.0;
  double p = positive / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeOptions options) : options_(options) {}

Status DecisionTree::Fit(const Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (options_.max_depth < 0) {
    return Status::Invalid("DecisionTree: max_depth must be >= 0");
  }
  if (options_.min_samples_leaf <= 0.0) {
    return Status::Invalid("DecisionTree: min_samples_leaf must be > 0");
  }
  nodes_.clear();
  depth_ = 0;
  num_features_ = data.num_features();
  std::vector<size_t> indices(data.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  BuildNode(data, indices, 0);
  fitted_ = true;
  return Status::OK();
}

int DecisionTree::BuildNode(const Dataset& data, std::vector<size_t>& indices,
                            int depth) {
  depth_ = std::max(depth_, depth);
  double total_weight = 0.0;
  double positive_weight = 0.0;
  for (size_t index : indices) {
    double w = data.weight(index);
    total_weight += w;
    if (data.labels[index] == 1) positive_weight += w;
  }

  Node node;
  node.probability = total_weight > 0.0 ? positive_weight / total_weight : 0.5;
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  const double parent_impurity = GiniFromCounts(positive_weight, total_weight);
  if (depth >= options_.max_depth || parent_impurity == 0.0 ||
      total_weight < 2.0 * options_.min_samples_leaf) {
    return node_id;
  }

  // Best weighted-Gini split across features; candidate thresholds are
  // midpoints between consecutive distinct sorted values.
  double best_gain = options_.min_impurity_decrease;
  size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<size_t> order(indices);
  for (size_t feature = 0; feature < num_features_; ++feature) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return data.features[a][feature] < data.features[b][feature];
    });
    double left_weight = 0.0;
    double left_positive = 0.0;
    for (size_t k = 0; k + 1 < order.size(); ++k) {
      size_t index = order[k];
      double w = data.weight(index);
      left_weight += w;
      if (data.labels[index] == 1) left_positive += w;
      double current = data.features[index][feature];
      double next = data.features[order[k + 1]][feature];
      if (current == next) continue;
      double right_weight = total_weight - left_weight;
      double right_positive = positive_weight - left_positive;
      if (left_weight < options_.min_samples_leaf ||
          right_weight < options_.min_samples_leaf) {
        continue;
      }
      double impurity =
          (left_weight * GiniFromCounts(left_positive, left_weight) +
           right_weight * GiniFromCounts(right_positive, right_weight)) /
          total_weight;
      double gain = parent_impurity - impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = 0.5 * (current + next);
      }
    }
  }
  if (best_gain <= options_.min_impurity_decrease) return node_id;

  std::vector<size_t> left_indices;
  std::vector<size_t> right_indices;
  for (size_t index : indices) {
    if (data.features[index][best_feature] <= best_threshold) {
      left_indices.push_back(index);
    } else {
      right_indices.push_back(index);
    }
  }
  if (left_indices.empty() || right_indices.empty()) return node_id;

  indices.clear();
  indices.shrink_to_fit();  // free before recursing

  int left_id = BuildNode(data, left_indices, depth + 1);
  int right_id = BuildNode(data, right_indices, depth + 1);
  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = left_id;
  nodes_[node_id].right = right_id;
  return node_id;
}

Result<double> DecisionTree::PredictProba(std::span<const double> x) const {
  if (!fitted_) return Status::FailedPrecondition("DecisionTree: not fitted");
  if (x.size() != num_features_) {
    return Status::Invalid("DecisionTree: feature width mismatch");
  }
  int node_id = 0;
  while (!nodes_[node_id].is_leaf) {
    const Node& node = nodes_[node_id];
    node_id = x[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[node_id].probability;
}

}  // namespace fairlaw::ml
