#ifndef FAIRLAW_ML_MODEL_EVAL_H_
#define FAIRLAW_ML_MODEL_EVAL_H_

#include <span>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::ml {

/// Binary confusion matrix. Convention: positive = label 1 (the favorable
/// outcome).
struct ConfusionMatrix {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  int64_t total() const { return tp + fp + tn + fn; }
  int64_t actual_positive() const { return tp + fn; }
  int64_t actual_negative() const { return tn + fp; }
  int64_t predicted_positive() const { return tp + fp; }

  double accuracy() const;
  /// TP / predicted positive; 0 when no positive predictions.
  double precision() const;
  /// True positive rate TP / actual positive; 0 when no actual positives.
  double recall() const;
  /// False positive rate FP / actual negative; 0 when no actual negatives.
  double false_positive_rate() const;
  /// Predicted-positive fraction (the "selection rate" of fairness
  /// metrics).
  double selection_rate() const;
  double f1() const;

  std::string ToString() const;
};

/// Builds a confusion matrix from aligned label / prediction vectors
/// (values must be 0/1).
FAIRLAW_NODISCARD Result<ConfusionMatrix> MakeConfusionMatrix(std::span<const int> labels,
                                            std::span<const int> predictions);

/// Area under the ROC curve from scores, handling ties by the
/// rank/Mann–Whitney formulation. Requires both classes present.
FAIRLAW_NODISCARD Result<double> AucRoc(std::span<const int> labels,
                      std::span<const double> scores);

/// Fraction of matching entries.
FAIRLAW_NODISCARD Result<double> Accuracy(std::span<const int> labels,
                        std::span<const int> predictions);

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_MODEL_EVAL_H_
