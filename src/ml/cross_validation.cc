#include "ml/cross_validation.h"

#include <algorithm>
#include <cmath>

#include "ml/model_eval.h"
#include "ml/split.h"
#include "stats/descriptive.h"

namespace fairlaw::ml {

Result<CrossValidationResult> CrossValidate(const Dataset& data,
                                            const ModelFactory& factory,
                                            size_t folds, stats::Rng* rng) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (!factory) return Status::Invalid("CrossValidate: null model factory");
  FAIRLAW_ASSIGN_OR_RETURN(auto fold_indices,
                           KFoldIndices(data.size(), folds, rng));

  CrossValidationResult result;
  for (const std::vector<size_t>& validation_rows : fold_indices) {
    std::vector<uint8_t> in_validation(data.size(), 0);
    for (size_t row : validation_rows) in_validation[row] = true;
    std::vector<size_t> train_rows;
    train_rows.reserve(data.size() - validation_rows.size());
    for (size_t row = 0; row < data.size(); ++row) {
      if (!in_validation[row]) train_rows.push_back(row);
    }
    FAIRLAW_ASSIGN_OR_RETURN(Dataset train, data.Take(train_rows));
    FAIRLAW_ASSIGN_OR_RETURN(Dataset validation, data.Take(validation_rows));

    std::unique_ptr<Classifier> model = factory();
    if (model == nullptr) {
      return Status::Invalid("CrossValidate: factory returned null");
    }
    FAIRLAW_RETURN_NOT_OK(model->Fit(train));

    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> scores,
                             model->PredictProbaBatch(validation.features));
    std::vector<int> predictions(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      predictions[i] = scores[i] >= 0.5 ? 1 : 0;
    }
    FAIRLAW_ASSIGN_OR_RETURN(double accuracy,
                             Accuracy(validation.labels, predictions));
    FAIRLAW_ASSIGN_OR_RETURN(double auc,
                             AucRoc(validation.labels, scores));
    result.fold_accuracy.push_back(accuracy);
    result.fold_auc.push_back(auc);
  }
  FAIRLAW_ASSIGN_OR_RETURN(result.mean_accuracy,
                           stats::Mean(result.fold_accuracy));
  if (result.fold_accuracy.size() >= 2) {
    FAIRLAW_ASSIGN_OR_RETURN(result.stddev_accuracy,
                             stats::StdDev(result.fold_accuracy));
  } else {
    result.stddev_accuracy = 0.0;
  }
  FAIRLAW_ASSIGN_OR_RETURN(result.mean_auc, stats::Mean(result.fold_auc));
  return result;
}

}  // namespace fairlaw::ml
