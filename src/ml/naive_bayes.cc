#include "ml/naive_bayes.h"

#include <cmath>
#include <numbers>

namespace fairlaw::ml {
namespace {

Status CheckBothClassesPresent(const Dataset& data) {
  double weight[2] = {0.0, 0.0};
  for (size_t i = 0; i < data.size(); ++i) {
    weight[data.labels[i]] += data.weight(i);
  }
  if (weight[0] <= 0.0 || weight[1] <= 0.0) {
    return Status::Invalid("naive Bayes: both classes must carry positive "
                           "weight in the training data");
  }
  return Status::OK();
}

}  // namespace

GaussianNaiveBayes::GaussianNaiveBayes(double var_floor)
    : var_floor_(var_floor) {}

Status GaussianNaiveBayes::Fit(const Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  FAIRLAW_RETURN_NOT_OK(CheckBothClassesPresent(data));
  if (var_floor_ <= 0.0) {
    return Status::Invalid("GaussianNaiveBayes: var_floor must be > 0");
  }
  const size_t d = data.num_features();
  double class_weight[2] = {0.0, 0.0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 0.0);
  }
  for (size_t i = 0; i < data.size(); ++i) {
    int c = data.labels[i];
    double w = data.weight(i);
    class_weight[c] += w;
    for (size_t j = 0; j < d; ++j) mean_[c][j] += w * data.features[i][j];
  }
  for (int c = 0; c < 2; ++c) {
    for (size_t j = 0; j < d; ++j) mean_[c][j] /= class_weight[c];
  }
  for (size_t i = 0; i < data.size(); ++i) {
    int c = data.labels[i];
    double w = data.weight(i);
    for (size_t j = 0; j < d; ++j) {
      double diff = data.features[i][j] - mean_[c][j];
      var_[c][j] += w * diff * diff;
    }
  }
  for (int c = 0; c < 2; ++c) {
    for (size_t j = 0; j < d; ++j) {
      var_[c][j] = std::max(var_[c][j] / class_weight[c], var_floor_);
    }
  }
  double total = class_weight[0] + class_weight[1];
  log_prior_[0] = std::log(class_weight[0] / total);
  log_prior_[1] = std::log(class_weight[1] / total);
  fitted_ = true;
  return Status::OK();
}

Result<double> GaussianNaiveBayes::PredictProba(
    std::span<const double> x) const {
  if (!fitted_) {
    return Status::FailedPrecondition("GaussianNaiveBayes: not fitted");
  }
  if (x.size() != mean_[0].size()) {
    return Status::Invalid("GaussianNaiveBayes: feature width mismatch");
  }
  double log_joint[2];
  for (int c = 0; c < 2; ++c) {
    double total = log_prior_[c];
    for (size_t j = 0; j < x.size(); ++j) {
      double diff = x[j] - mean_[c][j];
      total += -0.5 * std::log(2.0 * std::numbers::pi * var_[c][j]) -
               0.5 * diff * diff / var_[c][j];
    }
    log_joint[c] = total;
  }
  // P(1|x) via the log-sum-exp-stable ratio.
  double m = std::max(log_joint[0], log_joint[1]);
  double e0 = std::exp(log_joint[0] - m);
  double e1 = std::exp(log_joint[1] - m);
  return e1 / (e0 + e1);
}

BernoulliNaiveBayes::BernoulliNaiveBayes(double alpha) : alpha_(alpha) {}

Status BernoulliNaiveBayes::Fit(const Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  FAIRLAW_RETURN_NOT_OK(CheckBothClassesPresent(data));
  if (alpha_ <= 0.0) {
    return Status::Invalid("BernoulliNaiveBayes: alpha must be > 0");
  }
  const size_t d = data.num_features();
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      double v = data.features[i][j];
      if (v != 0.0 && v != 1.0) {
        return Status::Invalid("BernoulliNaiveBayes: features must be 0/1");
      }
    }
  }
  double class_weight[2] = {0.0, 0.0};
  for (int c = 0; c < 2; ++c) p_one_[c].assign(d, 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    int c = data.labels[i];
    double w = data.weight(i);
    class_weight[c] += w;
    for (size_t j = 0; j < d; ++j) {
      if (data.features[i][j] == 1.0) p_one_[c][j] += w;
    }
  }
  for (int c = 0; c < 2; ++c) {
    for (size_t j = 0; j < d; ++j) {
      p_one_[c][j] =
          (p_one_[c][j] + alpha_) / (class_weight[c] + 2.0 * alpha_);
    }
  }
  double total = class_weight[0] + class_weight[1];
  log_prior_[0] = std::log(class_weight[0] / total);
  log_prior_[1] = std::log(class_weight[1] / total);
  fitted_ = true;
  return Status::OK();
}

Result<double> BernoulliNaiveBayes::PredictProba(
    std::span<const double> x) const {
  if (!fitted_) {
    return Status::FailedPrecondition("BernoulliNaiveBayes: not fitted");
  }
  if (x.size() != p_one_[0].size()) {
    return Status::Invalid("BernoulliNaiveBayes: feature width mismatch");
  }
  double log_joint[2];
  for (int c = 0; c < 2; ++c) {
    double total = log_prior_[c];
    for (size_t j = 0; j < x.size(); ++j) {
      bool one = x[j] > 0.5;
      total += std::log(one ? p_one_[c][j] : 1.0 - p_one_[c][j]);
    }
    log_joint[c] = total;
  }
  double m = std::max(log_joint[0], log_joint[1]);
  double e0 = std::exp(log_joint[0] - m);
  double e1 = std::exp(log_joint[1] - m);
  return e1 / (e0 + e1);
}

}  // namespace fairlaw::ml
