#ifndef FAIRLAW_ML_LOGISTIC_REGRESSION_H_
#define FAIRLAW_ML_LOGISTIC_REGRESSION_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairlaw::ml {

/// Training configuration for logistic regression.
struct LogisticRegressionOptions {
  double learning_rate = 0.1;
  int max_epochs = 500;
  double l2 = 1e-4;           // ridge penalty on weights (not the bias)
  double tolerance = 1e-7;    // stop when the loss improvement drops below
  bool verbose = false;
};

/// L2-regularized logistic regression trained by full-batch gradient
/// descent, honoring per-example weights. The reference model of the
/// fairness literature: its coefficients double as exact feature
/// attributions, which the manipulation experiments (§IV-E) exploit.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  std::string name() const override { return "logistic_regression"; }
  FAIRLAW_NODISCARD Status Fit(const Dataset& data) override;
  FAIRLAW_NODISCARD Result<double> PredictProba(std::span<const double> x) const override;

  /// Fitted weights (feature order of the training set); empty before Fit.
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  bool fitted() const { return fitted_; }

  /// Overrides the fitted parameters (used by the adversarial retrainer
  /// and by tests). Width must stay consistent with later PredictProba
  /// calls.
  void SetParameters(std::vector<double> weights, double bias);

  /// Final training loss (weighted mean negative log-likelihood + L2).
  double final_loss() const { return final_loss_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
  double final_loss_ = 0.0;
};

/// Numerically-stable logistic sigmoid.
double Sigmoid(double z);

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_LOGISTIC_REGRESSION_H_
