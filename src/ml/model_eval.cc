#include "ml/model_eval.h"

#include <algorithm>

#include "base/string_util.h"

namespace fairlaw::ml {

double ConfusionMatrix::accuracy() const {
  return total() > 0
             ? static_cast<double>(tp + tn) / static_cast<double>(total())
             : 0.0;
}

double ConfusionMatrix::precision() const {
  int64_t pp = predicted_positive();
  return pp > 0 ? static_cast<double>(tp) / static_cast<double>(pp) : 0.0;
}

double ConfusionMatrix::recall() const {
  int64_t ap = actual_positive();
  return ap > 0 ? static_cast<double>(tp) / static_cast<double>(ap) : 0.0;
}

double ConfusionMatrix::false_positive_rate() const {
  int64_t an = actual_negative();
  return an > 0 ? static_cast<double>(fp) / static_cast<double>(an) : 0.0;
}

double ConfusionMatrix::selection_rate() const {
  return total() > 0 ? static_cast<double>(predicted_positive()) /
                           static_cast<double>(total())
                     : 0.0;
}

double ConfusionMatrix::f1() const {
  double p = precision();
  double r = recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

std::string ConfusionMatrix::ToString() const {
  return "tp=" + std::to_string(tp) + " fp=" + std::to_string(fp) +
         " tn=" + std::to_string(tn) + " fn=" + std::to_string(fn) +
         " acc=" + FormatDouble(accuracy(), 4);
}

Result<ConfusionMatrix> MakeConfusionMatrix(
    std::span<const int> labels, std::span<const int> predictions) {
  if (labels.size() != predictions.size()) {
    return Status::Invalid("MakeConfusionMatrix: size mismatch");
  }
  if (labels.empty()) {
    return Status::Invalid("MakeConfusionMatrix: empty input");
  }
  ConfusionMatrix cm;
  for (size_t i = 0; i < labels.size(); ++i) {
    if ((labels[i] != 0 && labels[i] != 1) ||
        (predictions[i] != 0 && predictions[i] != 1)) {
      return Status::Invalid("MakeConfusionMatrix: values must be 0/1");
    }
    if (labels[i] == 1) {
      predictions[i] == 1 ? ++cm.tp : ++cm.fn;
    } else {
      predictions[i] == 1 ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

Result<double> AucRoc(std::span<const int> labels,
                      std::span<const double> scores) {
  if (labels.size() != scores.size()) {
    return Status::Invalid("AucRoc: size mismatch");
  }
  size_t positives = 0;
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::Invalid("AucRoc: labels must be 0/1");
    }
    positives += label == 1 ? 1 : 0;
  }
  size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) {
    return Status::Invalid("AucRoc: both classes must be present");
  }

  // Mann–Whitney U via mid-ranks (correct under ties).
  std::vector<size_t> order(labels.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(labels.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    double mid_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                      1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid_rank;
    i = j + 1;
  }
  double rank_sum_positive = 0.0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) rank_sum_positive += rank[k];
  }
  double u = rank_sum_positive -
             static_cast<double>(positives) *
                 (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

Result<double> Accuracy(std::span<const int> labels,
                        std::span<const int> predictions) {
  FAIRLAW_ASSIGN_OR_RETURN(ConfusionMatrix cm,
                           MakeConfusionMatrix(labels, predictions));
  return cm.accuracy();
}

}  // namespace fairlaw::ml
