#include "ml/classifier.h"

namespace fairlaw::ml {

Result<int> Classifier::Predict(std::span<const double> x,
                                double threshold) const {
  FAIRLAW_ASSIGN_OR_RETURN(double p, PredictProba(x));
  return p >= threshold ? 1 : 0;
}

Result<std::vector<double>> Classifier::PredictProbaBatch(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> probs(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    FAIRLAW_ASSIGN_OR_RETURN(probs[i], PredictProba(rows[i]));
  }
  return probs;
}

Result<std::vector<int>> Classifier::PredictBatch(
    const std::vector<std::vector<double>>& rows, double threshold) const {
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> probs,
                           PredictProbaBatch(rows));
  std::vector<int> labels(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    labels[i] = probs[i] >= threshold ? 1 : 0;
  }
  return labels;
}

}  // namespace fairlaw::ml
