#ifndef FAIRLAW_ML_NAIVE_BAYES_H_
#define FAIRLAW_ML_NAIVE_BAYES_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairlaw::ml {

/// Gaussian naive Bayes: per-class, per-feature normal likelihoods with
/// weighted maximum-likelihood estimates and a variance floor for
/// numerical stability.
class GaussianNaiveBayes : public Classifier {
 public:
  /// `var_floor` is the minimum per-feature variance.
  explicit GaussianNaiveBayes(double var_floor = 1e-9);

  std::string name() const override { return "gaussian_naive_bayes"; }
  FAIRLAW_NODISCARD Status Fit(const Dataset& data) override;
  FAIRLAW_NODISCARD Result<double> PredictProba(std::span<const double> x) const override;

 private:
  double var_floor_;
  bool fitted_ = false;
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
};

/// Bernoulli naive Bayes for 0/1 features with Laplace smoothing.
/// Non-binary feature values are an error at Fit time; at prediction time
/// any value > 0.5 reads as 1.
class BernoulliNaiveBayes : public Classifier {
 public:
  /// `alpha` is the Laplace smoothing pseudo-count (> 0).
  explicit BernoulliNaiveBayes(double alpha = 1.0);

  std::string name() const override { return "bernoulli_naive_bayes"; }
  FAIRLAW_NODISCARD Status Fit(const Dataset& data) override;
  FAIRLAW_NODISCARD Result<double> PredictProba(std::span<const double> x) const override;

 private:
  double alpha_;
  bool fitted_ = false;
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> p_one_[2];  // P(feature=1 | class)
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_NAIVE_BAYES_H_
