#ifndef FAIRLAW_ML_CLASSIFIER_H_
#define FAIRLAW_ML_CLASSIFIER_H_

#include <span>
#include <string>
#include <vector>

#include "base/result.h"  // IWYU pragma: export
#include "ml/dataset.h"  // IWYU pragma: export

namespace fairlaw::ml {

/// Interface for binary probabilistic classifiers.
///
/// Implementations honor per-example weights in Fit (the contract the
/// reweighing mitigator depends on) and expose calibated-ish scores via
/// PredictProba so post-processing threshold optimizers can operate on
/// them.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Short human-readable model name ("logistic_regression", ...).
  virtual std::string name() const = 0;

  /// Trains on `data` (validated internally). Refitting replaces the
  /// previous model.
  FAIRLAW_NODISCARD virtual Status Fit(const Dataset& data) = 0;

  /// P(label = 1 | x). Fails if the model is not fitted or the feature
  /// width is wrong.
  FAIRLAW_NODISCARD virtual Result<double> PredictProba(std::span<const double> x) const = 0;

  /// Hard prediction at the given probability threshold.
  FAIRLAW_NODISCARD Result<int> Predict(std::span<const double> x, double threshold = 0.5) const;

  /// Batch variants.
  FAIRLAW_NODISCARD Result<std::vector<double>> PredictProbaBatch(
      const std::vector<std::vector<double>>& rows) const;
  FAIRLAW_NODISCARD Result<std::vector<int>> PredictBatch(
      const std::vector<std::vector<double>>& rows,
      double threshold = 0.5) const;
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_CLASSIFIER_H_
