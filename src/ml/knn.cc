#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::ml {

KnnClassifier::KnnClassifier(int k) : k_(k) {}

Status KnnClassifier::Fit(const Dataset& data) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (k_ <= 0) return Status::Invalid("KnnClassifier: k must be > 0");
  train_ = data;
  fitted_ = true;
  return Status::OK();
}

Result<double> KnnClassifier::PredictProba(std::span<const double> x) const {
  if (!fitted_) return Status::FailedPrecondition("KnnClassifier: not fitted");
  if (x.size() != train_.num_features()) {
    return Status::Invalid("KnnClassifier: feature width mismatch");
  }
  const size_t k = std::min(static_cast<size_t>(k_), train_.size());
  std::vector<std::pair<double, size_t>> distances(train_.size());
  for (size_t i = 0; i < train_.size(); ++i) {
    double total = 0.0;
    for (size_t j = 0; j < x.size(); ++j) {
      double diff = x[j] - train_.features[i][j];
      total += diff * diff;
    }
    distances[i] = {total, i};
  }
  std::nth_element(distances.begin(),
                   distances.begin() + static_cast<ptrdiff_t>(k - 1),
                   distances.end());
  double weight_total = 0.0;
  double weight_positive = 0.0;
  for (size_t i = 0; i < k; ++i) {
    size_t index = distances[i].second;
    double w = train_.weight(index);
    weight_total += w;
    if (train_.labels[index] == 1) weight_positive += w;
  }
  return weight_total > 0.0 ? weight_positive / weight_total : 0.5;
}

}  // namespace fairlaw::ml
