#include "ml/isotonic.h"

#include <algorithm>
#include <numeric>

namespace fairlaw::ml {

Result<IsotonicCalibrator> IsotonicCalibrator::Fit(
    const std::vector<double>& scores, const std::vector<double>& targets,
    const std::vector<double>& weights) {
  if (scores.empty()) {
    return Status::Invalid("IsotonicCalibrator: empty input");
  }
  if (targets.size() != scores.size()) {
    return Status::Invalid("IsotonicCalibrator: scores/targets size "
                           "mismatch");
  }
  if (!weights.empty() && weights.size() != scores.size()) {
    return Status::Invalid("IsotonicCalibrator: weights size mismatch");
  }
  for (double w : weights) {
    if (w < 0.0) {
      return Status::Invalid("IsotonicCalibrator: negative weight");
    }
  }

  // Sort by score.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Pool-adjacent-violators over weighted blocks.
  struct Block {
    double score_sum;
    double value_sum;  // weighted target sum
    double weight;
  };
  std::vector<Block> blocks;
  blocks.reserve(scores.size());
  for (size_t index : order) {
    double w = weights.empty() ? 1.0 : weights[index];
    if (w == 0.0) continue;
    blocks.push_back({scores[index] * w, targets[index] * w, w});
    // Merge while the monotonicity constraint is violated.
    while (blocks.size() >= 2) {
      const Block& prev = blocks[blocks.size() - 2];
      const Block& last = blocks.back();
      if (prev.value_sum / prev.weight <= last.value_sum / last.weight) {
        break;
      }
      Block merged{prev.score_sum + last.score_sum,
                   prev.value_sum + last.value_sum,
                   prev.weight + last.weight};
      blocks.pop_back();
      blocks.back() = merged;
    }
  }
  if (blocks.empty()) {
    return Status::Invalid("IsotonicCalibrator: all weights are zero");
  }

  std::vector<double> knot_scores;
  std::vector<double> knot_values;
  knot_scores.reserve(blocks.size());
  knot_values.reserve(blocks.size());
  for (const Block& block : blocks) {
    knot_scores.push_back(block.score_sum / block.weight);
    knot_values.push_back(block.value_sum / block.weight);
  }
  return IsotonicCalibrator(std::move(knot_scores), std::move(knot_values));
}

double IsotonicCalibrator::Predict(double score) const {
  if (score <= knot_scores_.front()) return knot_values_.front();
  if (score >= knot_scores_.back()) return knot_values_.back();
  auto it = std::upper_bound(knot_scores_.begin(), knot_scores_.end(),
                             score);
  size_t hi = static_cast<size_t>(it - knot_scores_.begin());
  size_t lo = hi - 1;
  double span = knot_scores_[hi] - knot_scores_[lo];
  if (span <= 0.0) return knot_values_[lo];
  double mix = (score - knot_scores_[lo]) / span;
  return knot_values_[lo] + mix * (knot_values_[hi] - knot_values_[lo]);
}

}  // namespace fairlaw::ml
