#include "ml/standardizer.h"

#include <cmath>

namespace fairlaw::ml {

Status Standardizer::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Status::Invalid("Standardizer: no rows");
  const size_t d = rows[0].size();
  if (d == 0) return Status::Invalid("Standardizer: zero-width rows");
  means_.assign(d, 0.0);
  scales_.assign(d, 1.0);
  for (const std::vector<double>& row : rows) {
    if (row.size() != d) return Status::Invalid("Standardizer: ragged rows");
    for (size_t j = 0; j < d; ++j) means_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) {
    means_[j] /= static_cast<double>(rows.size());
  }
  std::vector<double> sum_sq(d, 0.0);
  for (const std::vector<double>& row : rows) {
    for (size_t j = 0; j < d; ++j) {
      double diff = row[j] - means_[j];
      sum_sq[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    double var = sum_sq[j] / static_cast<double>(rows.size());
    scales_[j] = var > 0.0 ? std::sqrt(var) : 1.0;
  }
  fitted_ = true;
  return Status::OK();
}

Status Standardizer::Transform(std::vector<std::vector<double>>* rows) const {
  if (!fitted_) return Status::FailedPrecondition("Standardizer: not fitted");
  if (rows == nullptr) return Status::Invalid("Standardizer: null rows");
  for (std::vector<double>& row : *rows) {
    if (row.size() != means_.size()) {
      return Status::Invalid("Standardizer: width mismatch");
    }
    for (size_t j = 0; j < row.size(); ++j) {
      row[j] = (row[j] - means_[j]) / scales_[j];
    }
  }
  return Status::OK();
}

Status Standardizer::FitTransform(Dataset* data) {
  if (data == nullptr) return Status::Invalid("Standardizer: null dataset");
  FAIRLAW_RETURN_NOT_OK(Fit(data->features));
  return Transform(&data->features);
}

Status Standardizer::TransformDataset(Dataset* data) const {
  if (data == nullptr) return Status::Invalid("Standardizer: null dataset");
  return Transform(&data->features);
}

}  // namespace fairlaw::ml
