#ifndef FAIRLAW_BASE_RESULT_H_
#define FAIRLAW_BASE_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "base/status.h"  // IWYU pragma: export

namespace fairlaw {

/// Result<T> holds either a value of type T or a non-OK Status.
///
/// It is the value-returning counterpart of Status. Typical use:
///
///   Result<Table> table = CsvReader::ReadFile(path);
///   if (!table.ok()) return table.status();
///   Use(table.ValueOrDie());
///
/// or, inside a function that itself returns Status/Result:
///
///   FAIRLAW_ASSIGN_OR_RETURN(Table table, CsvReader::ReadFile(path));
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit so functions can
  /// `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit so functions can
  /// `return Status::Invalid(...);`). Aborts if `status` is OK: an OK
  /// Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) std::abort();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// Returns the status (OK when a value is held).
  FAIRLAW_NODISCARD const Status& status() const& { return status_; }
  FAIRLAW_NODISCARD Status status() && { return std::move(status_); }

  /// Returns the held value; aborts if !ok(). The *OrDie name signals the
  /// crash-on-error contract at the call site.
  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` when in error state.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// Dereference-style access; same contract as ValueOrDie().
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fairlaw

#define FAIRLAW_CONCAT_IMPL_(x, y) x##y
#define FAIRLAW_CONCAT_(x, y) FAIRLAW_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its Status
/// from the enclosing function, otherwise declares `lhs` initialized with
/// the moved value.
#define FAIRLAW_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  FAIRLAW_ASSIGN_OR_RETURN_IMPL_(                                         \
      FAIRLAW_CONCAT_(_fairlaw_result_, __LINE__), lhs, rexpr)

#define FAIRLAW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return std::move(tmp).status();        \
  lhs = std::move(tmp).ValueOrDie()

#endif  // FAIRLAW_BASE_RESULT_H_
