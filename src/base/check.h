#ifndef FAIRLAW_BASE_CHECK_H_
#define FAIRLAW_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These fire regardless of NDEBUG: a violated
/// invariant inside the library is a bug, and continuing would corrupt
/// results that downstream users may act on. User-facing validation must
/// use Status instead.
#define FAIRLAW_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIRLAW_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                            \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define FAIRLAW_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIRLAW_CHECK failed at %s:%d: %s (%s)\n",    \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // FAIRLAW_BASE_CHECK_H_
