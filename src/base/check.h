#ifndef FAIRLAW_BASE_CHECK_H_
#define FAIRLAW_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <source_location>

#include "base/status.h"

/// Internal-invariant checks. These fire regardless of NDEBUG: a violated
/// invariant inside the library is a bug, and continuing would corrupt
/// results that downstream users may act on. User-facing validation must
/// use Status instead — see the "CHECK vs Status" contract in README.md.
///
/// Every check carries a message so that a crash in a deployed audit names
/// the violated invariant, not just a stringified expression. The
/// fairlaw_lint pass enforces this: a bare FAIRLAW_CHECK(cond) in library
/// code is a lint violation; use FAIRLAW_CHECK_MSG.

namespace fairlaw::internal {

[[noreturn]] inline void CheckFailed(
    const char* kind, const char* condition, const char* message,
    const std::source_location& loc = std::source_location::current()) {
  std::fprintf(stderr, "%s failed at %s:%u in %s: %s (%s)\n", kind,
               loc.file_name(), loc.line(), loc.function_name(), condition,
               message);
  std::abort();
}

/// Bounds-checked index validation: aborts with file/line context when
/// `index >= size`. Used by FAIRLAW_BOUNDS_CHECK; kept as a function so the
/// cold failure path stays out of the caller's hot loop.
inline void CheckIndex(
    size_t index, size_t size,
    const std::source_location& loc = std::source_location::current()) {
  if (index >= size) {
    std::fprintf(stderr,
                 "FAIRLAW_BOUNDS_CHECK failed at %s:%u in %s: index %zu out "
                 "of range for size %zu\n",
                 loc.file_name(), loc.line(), loc.function_name(), index,
                 size);
    std::abort();
  }
}

}  // namespace fairlaw::internal

#define FAIRLAW_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::fairlaw::internal::CheckFailed("FAIRLAW_CHECK", #cond,            \
                                       "invariant violated");             \
    }                                                                     \
  } while (false)

#define FAIRLAW_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::fairlaw::internal::CheckFailed("FAIRLAW_CHECK", #cond, msg);      \
    }                                                                     \
  } while (false)

/// Aborts when a Status-returning expression is not OK. For call sites
/// where failure is impossible by construction and returning the Status
/// would only launder a library bug into a user error.
#define FAIRLAW_CHECK_OK(expr)                                            \
  do {                                                                    \
    ::fairlaw::Status _fairlaw_check_st = (expr);                         \
    if (!_fairlaw_check_st.ok()) {                                        \
      ::fairlaw::internal::CheckFailed(                                   \
          "FAIRLAW_CHECK_OK", #expr,                                      \
          _fairlaw_check_st.ToString().c_str());                          \
    }                                                                     \
  } while (false)

/// Marks a branch that is unreachable if the surrounding logic is correct
/// (e.g. the default of a switch over a closed enum). Always aborts.
#define FAIRLAW_NOTREACHED(msg)                                           \
  ::fairlaw::internal::CheckFailed("FAIRLAW_NOTREACHED", "unreachable",   \
                                   msg)

/// Debug-only invariant check: compiled out under NDEBUG. Use on hot paths
/// where the Release build cannot afford the branch but sanitizer/debug
/// builds should still verify the invariant.
#ifdef NDEBUG
#define FAIRLAW_DCHECK(cond, msg) \
  do {                            \
  } while (false)
#else
#define FAIRLAW_DCHECK(cond, msg) FAIRLAW_CHECK_MSG(cond, msg)
#endif

/// Debug-only OK-check: compiled out under NDEBUG, so `expr` is NOT
/// evaluated in release builds. Only wrap pure queries whose failure
/// would already be a bug; a fallible call with side effects inside
/// this macro silently vanishes from production — fairlaw_flowcheck
/// rule `dcheck-side-effect` rejects exactly that shape.
#ifdef NDEBUG
#define FAIRLAW_DCHECK_OK(expr) \
  do {                          \
  } while (false)
#else
#define FAIRLAW_DCHECK_OK(expr) FAIRLAW_CHECK_OK(expr)
#endif

/// Aborts unless `index < size`. Cheap enough for hot paths; reports the
/// offending index and container size with source location.
#define FAIRLAW_BOUNDS_CHECK(index, size)                                 \
  ::fairlaw::internal::CheckIndex(static_cast<size_t>(index),             \
                                  static_cast<size_t>(size))

#endif  // FAIRLAW_BASE_CHECK_H_
