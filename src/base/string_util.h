#ifndef FAIRLAW_BASE_STRING_UTIL_H_
#define FAIRLAW_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace fairlaw {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a decimal floating-point number. The whole (stripped) input must
/// be consumed; otherwise returns InvalidArgument.
FAIRLAW_NODISCARD Result<double> ParseDouble(std::string_view text);

/// Parses a decimal integer. The whole (stripped) input must be consumed;
/// otherwise returns InvalidArgument.
FAIRLAW_NODISCARD Result<int64_t> ParseInt64(std::string_view text);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// True if `text` equals "true"/"false" (case-insensitive) or "1"/"0".
FAIRLAW_NODISCARD Result<bool> ParseBool(std::string_view text);

/// Lowercases ASCII characters.
std::string AsciiToLower(std::string_view text);

}  // namespace fairlaw

#endif  // FAIRLAW_BASE_STRING_UTIL_H_
