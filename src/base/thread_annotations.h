#ifndef FAIRLAW_BASE_THREAD_ANNOTATIONS_H_
#define FAIRLAW_BASE_THREAD_ANNOTATIONS_H_

// Thread-safety annotations wrapping Clang's -Wthread-safety attribute
// set. Under Clang the annotations are compiler-checked: a member
// declared FAIRLAW_GUARDED_BY(mu) read or written without `mu` held is a
// build error in the thread-safety CI job. Under GCC (which has no
// thread-safety analysis) they expand to nothing, so annotated code
// stays portable while the Clang job keeps the claims honest.
//
// The macro names mirror Clang's capability vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a
// FAIRLAW_ prefix so the deps/lint passes can recognize them:
//
//   FAIRLAW_GUARDED_BY(mu)      data member requires `mu` held to access
//   FAIRLAW_PT_GUARDED_BY(mu)   pointee requires `mu` held to access
//   FAIRLAW_REQUIRES(mu)        function requires `mu` held by the caller
//   FAIRLAW_EXCLUDES(mu)        function must NOT be called with `mu` held
//   FAIRLAW_ACQUIRE(mu)         function acquires `mu` and does not release
//   FAIRLAW_RELEASE(mu)         function releases `mu`
//   FAIRLAW_CAPABILITY(name)    type is a lockable capability ("mutex")
//   FAIRLAW_SCOPED_CAPABILITY   RAII type that acquires in ctor/releases
//                               in dtor
//   FAIRLAW_NO_THREAD_SAFETY_ANALYSIS
//                               opt a function out of the analysis (rare;
//                               justify with a comment at each use)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FAIRLAW_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef FAIRLAW_THREAD_ANNOTATION_
#define FAIRLAW_THREAD_ANNOTATION_(x)
#endif

#define FAIRLAW_GUARDED_BY(x) FAIRLAW_THREAD_ANNOTATION_(guarded_by(x))
#define FAIRLAW_PT_GUARDED_BY(x) FAIRLAW_THREAD_ANNOTATION_(pt_guarded_by(x))
#define FAIRLAW_REQUIRES(...) \
  FAIRLAW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define FAIRLAW_EXCLUDES(...) \
  FAIRLAW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define FAIRLAW_ACQUIRE(...) \
  FAIRLAW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define FAIRLAW_RELEASE(...) \
  FAIRLAW_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define FAIRLAW_CAPABILITY(x) FAIRLAW_THREAD_ANNOTATION_(capability(x))
#define FAIRLAW_SCOPED_CAPABILITY FAIRLAW_THREAD_ANNOTATION_(scoped_lockable)
#define FAIRLAW_NO_THREAD_SAFETY_ANALYSIS \
  FAIRLAW_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FAIRLAW_BASE_THREAD_ANNOTATIONS_H_
