#include "base/json_writer.h"

#include <cmath>
#include <cstdio>

#include "base/check.h"

namespace fairlaw {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (!stack_.empty() && !expecting_value_) {
    if (has_items_.back()) out_ += ',';
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  expecting_value_ = false;
}

void JsonWriter::EndObject() {
  FAIRLAW_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                    "EndObject() without a matching BeginObject()");
  FAIRLAW_CHECK_MSG(!expecting_value_,
                    "EndObject() called while a key awaits its value");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  expecting_value_ = false;
}

void JsonWriter::EndArray() {
  FAIRLAW_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                    "EndArray() without a matching BeginArray()");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::Key(const std::string& key) {
  FAIRLAW_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                    "Key() called outside an open object");
  FAIRLAW_CHECK_MSG(!expecting_value_, "Key() called while a value is due");
  if (has_items_.back()) out_ += ',';
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  expecting_value_ = true;
}

void JsonWriter::String(const std::string& value) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Number(double value) {
  Separate();
  if (std::isfinite(value)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    out_ += buffer;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  if (!has_items_.empty()) has_items_.back() = true;
  expecting_value_ = false;
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  String(value);
}
void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  Number(value);
}
void JsonWriter::Field(const std::string& key, int64_t value) {
  Key(key);
  Int(value);
}
void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  Bool(value);
}

Result<std::string> JsonWriter::Finish() {
  if (!stack_.empty()) {
    return Status::FailedPrecondition("JsonWriter: " +
                                      std::to_string(stack_.size()) +
                                      " unclosed containers");
  }
  return out_;
}

}  // namespace fairlaw
