#include "base/status.h"

namespace fairlaw {
namespace {

const std::string& EmptyString() {
  static const std::string& empty = *new std::string;
  return empty;
}

}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += state_->message;
  return result;
}

}  // namespace fairlaw
