#ifndef FAIRLAW_BASE_MUTEX_H_
#define FAIRLAW_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

/// Annotated synchronization primitives.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so Clang's
/// -Wthread-safety analysis cannot check code that locks it directly.
/// These thin wrappers put the capability annotations on the fairlaw
/// side: declare shared state FAIRLAW_GUARDED_BY(mu_) and the Clang CI
/// job rejects any access path that does not hold the mutex. Concurrency
/// in fairlaw goes through these types — fairlaw_lint bans raw
/// std::thread and sleep-based synchronization outside base/.

namespace fairlaw {

/// Annotated exclusive lock over std::mutex.
class FAIRLAW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FAIRLAW_ACQUIRE() { mu_.lock(); }
  void Unlock() FAIRLAW_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the scoped-capability annotation lets the analysis treat
/// the guard's lifetime as the critical section.
class FAIRLAW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FAIRLAW_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FAIRLAW_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with fairlaw::Mutex. Wait atomically
/// releases and reacquires the mutex; as far as the thread-safety
/// analysis is concerned the capability is held across the call, which
/// matches how guarded state may be accessed around it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) FAIRLAW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the re-acquired mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fairlaw

#endif  // FAIRLAW_BASE_MUTEX_H_
