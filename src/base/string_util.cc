#include "base/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace fairlaw {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::Invalid("cannot parse empty string as double");
  }
  double value = 0.0;
  const char* first = stripped.data();
  const char* last = stripped.data() + stripped.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::Invalid("cannot parse '" + std::string(stripped) +
                           "' as double");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::Invalid("cannot parse empty string as int64");
  }
  int64_t value = 0;
  const char* first = stripped.data();
  const char* last = stripped.data() + stripped.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::Invalid("cannot parse '" + std::string(stripped) +
                           "' as int64");
  }
  return value;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

Result<bool> ParseBool(std::string_view text) {
  std::string lower = AsciiToLower(StripWhitespace(text));
  if (lower == "true" || lower == "1") return true;
  if (lower == "false" || lower == "0") return false;
  return Status::Invalid("cannot parse '" + std::string(text) + "' as bool");
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace fairlaw
