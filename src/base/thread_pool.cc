#include "base/thread_pool.h"

#include <exception>
#include <utility>

#include "base/check.h"

namespace fairlaw {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    MutexLock lock(mu_);
    FAIRLAW_CHECK_MSG(!shutting_down_,
                      "ThreadPool::Submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutting_down_) {
        work_available_.Wait(mu_);
      }
      if (queue_.empty()) return;  // shutting down and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception in its future
  }
}

}  // namespace fairlaw
