#ifndef FAIRLAW_BASE_STATUS_H_
#define FAIRLAW_BASE_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

/// Marks a Status/Result<T>-returning declaration so the compiler warns
/// when a caller drops the return value on the floor. Every fallible
/// declaration in src/** headers must carry it — fairlaw_flowcheck rule
/// `nodiscard-missing` enforces the sweep, and its `discarded-status`
/// rule catches the call sites the compiler cannot see (macro bodies,
/// cross-TU templates). Spelled as a macro rather than a bare attribute
/// so the analysis passes can match one canonical token.
#define FAIRLAW_NODISCARD [[nodiscard]]

namespace fairlaw {

/// Error category carried by a Status.
///
/// The set mirrors the categories used by columnar/storage libraries: a
/// small closed enum that callers can switch on, with the human-readable
/// detail carried separately in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kFailedPrecondition = 7,
  kInternal = 8,
};

/// Returns the canonical lowercase name of a status code ("invalid
/// argument", "io error", ...). Never fails; unknown codes map to
/// "unknown".
std::string_view StatusCodeToString(StatusCode code);

/// Operation outcome: either OK or an error code plus message.
///
/// fairlaw does not throw exceptions across public API boundaries;
/// every fallible operation returns a Status (or a Result<T>, which wraps
/// one). The OK state is represented by a null internal pointer so that
/// passing and returning OK statuses is free of allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be kOk; use the default constructor (or OK()) for success.
  Status(StatusCode code, std::string message);

  /// Returns an OK status.
  FAIRLAW_NODISCARD static Status OK() { return Status(); }

  FAIRLAW_NODISCARD static Status Invalid(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  FAIRLAW_NODISCARD static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  FAIRLAW_NODISCARD static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  FAIRLAW_NODISCARD static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  FAIRLAW_NODISCARD static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  FAIRLAW_NODISCARD static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  FAIRLAW_NODISCARD static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  FAIRLAW_NODISCARD static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  /// Returns the status code (kOk if ok()).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// Returns the error message, or an empty string if ok().
  const std::string& message() const;

  /// Renders "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns true if the code matches.
  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // null means OK
};

}  // namespace fairlaw

/// Evaluates `expr` (a Status expression); if it is not OK, returns it from
/// the enclosing function.
#define FAIRLAW_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::fairlaw::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // FAIRLAW_BASE_STATUS_H_
