#ifndef FAIRLAW_BASE_SIMD_H_
#define FAIRLAW_BASE_SIMD_H_

// The single sanctioned home for SIMD intrinsics in fairlaw.
//
// Backend selection happens at configure time via the FAIRLAW_SIMD cache
// variable (AUTO / AVX2 / NEON / OFF); CMake translates it into exactly one
// of the compile definitions FAIRLAW_SIMD_AVX2 / FAIRLAW_SIMD_NEON, or
// neither (scalar fallback). There is no runtime dispatch: every
// translation unit in a build sees the same backend, so a build's results
// are a pure function of its configuration.
//
// Contract:
//  * The word-popcount kernels are exact integer computations and return
//    byte-identical results on every backend — the SIMD and scalar builds
//    of the Bitmap fused kernels are interchangeable bit for bit.
//  * CosSum / CosSumAffine are floating-point reductions. Within one build
//    they are deterministic (fixed lane order, fixed tail handling), but
//    the vectorized polynomial cosine may differ from std::cos by a few
//    ulps, so cross-backend float results agree only to tolerance.
//  * The `scalar` nested namespace always provides the reference
//    implementations regardless of backend, for equivalence tests and
//    benchmark comparisons.
//
// fairlaw_lint rule 8 bans intrinsic identifiers (_mm*/__m*/v*q NEON
// names, <immintrin.h>, <arm_neon.h>) everywhere outside this header.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(FAIRLAW_SIMD_AVX2)
#include <immintrin.h>
#elif defined(FAIRLAW_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace fairlaw::simd {

#if defined(FAIRLAW_SIMD_AVX2)
inline constexpr const char* kBackendName = "avx2";
inline constexpr bool kVectorizedPopcount = true;
inline constexpr bool kVectorizedCos = true;
#elif defined(FAIRLAW_SIMD_NEON)
inline constexpr const char* kBackendName = "neon";
inline constexpr bool kVectorizedPopcount = true;
inline constexpr bool kVectorizedCos = false;
#else
inline constexpr const char* kBackendName = "scalar";
inline constexpr bool kVectorizedPopcount = false;
inline constexpr bool kVectorizedCos = false;
#endif

/// Reference implementations, always available on every backend. The
/// dispatching functions below must match these bit for bit on the integer
/// kernels; tests enforce it.
namespace scalar {

inline uint64_t PopcountWords(const uint64_t* a, size_t n) {
  uint64_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w]));
  }
  return count;
}

inline uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                 size_t n) {
  uint64_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

inline uint64_t And3PopcountWords(const uint64_t* a, const uint64_t* b,
                                  const uint64_t* c, size_t n) {
  uint64_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  }
  return count;
}

inline uint64_t AndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                    size_t n) {
  uint64_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & ~b[w]));
  }
  return count;
}

inline uint64_t AndAndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                       const uint64_t* c, size_t n) {
  uint64_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w] & ~c[w]));
  }
  return count;
}

inline uint64_t AndIntoPopcountWords(const uint64_t* a, const uint64_t* b,
                                     uint64_t* out, size_t n) {
  uint64_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    const uint64_t word = a[w] & b[w];
    out[w] = word;
    count += static_cast<uint64_t>(std::popcount(word));
  }
  return count;
}

/// Sum of cos(x[i]) over i in [0, n).
inline double CosSum(const double* x, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += std::cos(x[i]);
  return total;
}

/// Sum of cos(scale * x[i] + offset) over i in [0, n).
inline double CosSumAffine(const double* x, size_t n, double scale,
                           double offset) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += std::cos(scale * x[i] + offset);
  return total;
}

}  // namespace scalar

#if defined(FAIRLAW_SIMD_AVX2)

namespace internal {

/// Per-8-byte-group popcounts of v (Muła): nibble LUT via PSHUFB, then
/// PSADBW against zero sums the byte counts into the four 64-bit lanes.
inline __m256i PopcountLanes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline uint64_t HorizontalSumU64(__m256i acc) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

inline __m256i LoadWords(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

/// Vectorized cos over one 4-lane register: Cody–Waite range reduction
/// modulo 2*pi, then an even minimax-style polynomial in r^2 (degree 16,
/// max error a few 1e-10 at |r| = pi). FMA is guaranteed under this
/// backend (CMake adds -mfma with -mavx2).
inline __m256d CosLanes(__m256d arg) {
  const __m256d inv_two_pi = _mm256_set1_pd(0x1.45f306dc9c883p-3);
  // 2*pi split into a high part exact in 27 bits and two tails, so
  // arg - k*2pi keeps full precision for |k| up to ~2^26.
  const __m256d two_pi_hi = _mm256_set1_pd(0x1.921fb54p+2);
  const __m256d two_pi_mid = _mm256_set1_pd(0x1.10b46118p-28);
  const __m256d two_pi_lo = _mm256_set1_pd(0x1.313198a2e037p-59);
  const __m256d k = _mm256_round_pd(
      _mm256_mul_pd(arg, inv_two_pi),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(k, two_pi_hi, arg);
  r = _mm256_fnmadd_pd(k, two_pi_mid, r);
  r = _mm256_fnmadd_pd(k, two_pi_lo, r);
  const __m256d u = _mm256_mul_pd(r, r);
  // cos(r) = sum_{m=0..10} (-1)^m u^m / (2m)!  (Horner in u); the m=11
  // Taylor remainder at |r| = pi is below 1e-10.
  __m256d poly = _mm256_set1_pd(4.1103176233121648e-19);
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(-1.5619206968586225e-16));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(4.7794773323873853e-14));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(-1.1470745597729725e-11));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(2.0876756987868099e-9));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(-2.7557319223985891e-7));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(2.4801587301587302e-5));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(-1.3888888888888889e-3));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(4.1666666666666666e-2));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(-0.5));
  poly = _mm256_fmadd_pd(poly, u, _mm256_set1_pd(1.0));
  return poly;
}

}  // namespace internal

inline uint64_t PopcountWords(const uint64_t* a, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    acc = _mm256_add_epi64(acc, internal::PopcountLanes(
                                    internal::LoadWords(a + w)));
  }
  uint64_t count = internal::HorizontalSumU64(acc);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w]));
  }
  return count;
}

inline uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                 size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i word = _mm256_and_si256(internal::LoadWords(a + w),
                                          internal::LoadWords(b + w));
    acc = _mm256_add_epi64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = internal::HorizontalSumU64(acc);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

inline uint64_t And3PopcountWords(const uint64_t* a, const uint64_t* b,
                                  const uint64_t* c, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i word = _mm256_and_si256(
        _mm256_and_si256(internal::LoadWords(a + w),
                         internal::LoadWords(b + w)),
        internal::LoadWords(c + w));
    acc = _mm256_add_epi64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = internal::HorizontalSumU64(acc);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  }
  return count;
}

inline uint64_t AndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                    size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    // andnot computes ~first & second, so b goes first.
    const __m256i word = _mm256_andnot_si256(internal::LoadWords(b + w),
                                             internal::LoadWords(a + w));
    acc = _mm256_add_epi64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = internal::HorizontalSumU64(acc);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & ~b[w]));
  }
  return count;
}

inline uint64_t AndAndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                       const uint64_t* c, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i word = _mm256_andnot_si256(
        internal::LoadWords(c + w),
        _mm256_and_si256(internal::LoadWords(a + w),
                         internal::LoadWords(b + w)));
    acc = _mm256_add_epi64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = internal::HorizontalSumU64(acc);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w] & ~c[w]));
  }
  return count;
}

inline uint64_t AndIntoPopcountWords(const uint64_t* a, const uint64_t* b,
                                     uint64_t* out, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i word = _mm256_and_si256(internal::LoadWords(a + w),
                                          internal::LoadWords(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), word);
    acc = _mm256_add_epi64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = internal::HorizontalSumU64(acc);
  for (; w < n; ++w) {
    const uint64_t word = a[w] & b[w];
    out[w] = word;
    count += static_cast<uint64_t>(std::popcount(word));
  }
  return count;
}

inline double CosSum(const double* x, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, internal::CosLanes(_mm256_loadu_pd(x + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) total += std::cos(x[i]);
  return total;
}

inline double CosSumAffine(const double* x, size_t n, double scale,
                           double offset) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d voffset = _mm256_set1_pd(offset);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d arg =
        _mm256_fmadd_pd(vscale, _mm256_loadu_pd(x + i), voffset);
    acc = _mm256_add_pd(acc, internal::CosLanes(arg));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) total += std::cos(scale * x[i] + offset);
  return total;
}

#elif defined(FAIRLAW_SIMD_NEON)

namespace internal {

/// Popcount of one 16-byte register summed into a uint64x2_t.
inline uint64x2_t PopcountLanes(uint8x16_t v) {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))));
}

inline uint8x16_t LoadWords(const uint64_t* p) {
  return vreinterpretq_u8_u64(vld1q_u64(p));
}

}  // namespace internal

inline uint64_t PopcountWords(const uint64_t* a, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    acc = vaddq_u64(acc, internal::PopcountLanes(internal::LoadWords(a + w)));
  }
  uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w]));
  }
  return count;
}

inline uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                 size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const uint8x16_t word = vandq_u8(internal::LoadWords(a + w),
                                     internal::LoadWords(b + w));
    acc = vaddq_u64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

inline uint64_t And3PopcountWords(const uint64_t* a, const uint64_t* b,
                                  const uint64_t* c, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const uint8x16_t word =
        vandq_u8(vandq_u8(internal::LoadWords(a + w),
                          internal::LoadWords(b + w)),
                 internal::LoadWords(c + w));
    acc = vaddq_u64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  }
  return count;
}

inline uint64_t AndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                    size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const uint8x16_t word = vbicq_u8(internal::LoadWords(a + w),
                                     internal::LoadWords(b + w));
    acc = vaddq_u64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & ~b[w]));
  }
  return count;
}

inline uint64_t AndAndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                       const uint64_t* c, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const uint8x16_t word =
        vbicq_u8(vandq_u8(internal::LoadWords(a + w),
                          internal::LoadWords(b + w)),
                 internal::LoadWords(c + w));
    acc = vaddq_u64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; w < n; ++w) {
    count += static_cast<uint64_t>(std::popcount(a[w] & b[w] & ~c[w]));
  }
  return count;
}

inline uint64_t AndIntoPopcountWords(const uint64_t* a, const uint64_t* b,
                                     uint64_t* out, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const uint8x16_t word = vandq_u8(internal::LoadWords(a + w),
                                     internal::LoadWords(b + w));
    vst1q_u64(out + w, vreinterpretq_u64_u8(word));
    acc = vaddq_u64(acc, internal::PopcountLanes(word));
  }
  uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; w < n; ++w) {
    const uint64_t word = a[w] & b[w];
    out[w] = word;
    count += static_cast<uint64_t>(std::popcount(word));
  }
  return count;
}

// No vectorized cosine on NEON yet; the feature map falls back to the
// libm loop (counted by the stats fallback counter).
inline double CosSum(const double* x, size_t n) {
  return scalar::CosSum(x, n);
}
inline double CosSumAffine(const double* x, size_t n, double scale,
                           double offset) {
  return scalar::CosSumAffine(x, n, scale, offset);
}

#else  // scalar fallback

inline uint64_t PopcountWords(const uint64_t* a, size_t n) {
  return scalar::PopcountWords(a, n);
}
inline uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                 size_t n) {
  return scalar::AndPopcountWords(a, b, n);
}
inline uint64_t And3PopcountWords(const uint64_t* a, const uint64_t* b,
                                  const uint64_t* c, size_t n) {
  return scalar::And3PopcountWords(a, b, c, n);
}
inline uint64_t AndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                    size_t n) {
  return scalar::AndNotPopcountWords(a, b, n);
}
inline uint64_t AndAndNotPopcountWords(const uint64_t* a, const uint64_t* b,
                                       const uint64_t* c, size_t n) {
  return scalar::AndAndNotPopcountWords(a, b, c, n);
}
inline uint64_t AndIntoPopcountWords(const uint64_t* a, const uint64_t* b,
                                     uint64_t* out, size_t n) {
  return scalar::AndIntoPopcountWords(a, b, out, n);
}
inline double CosSum(const double* x, size_t n) {
  return scalar::CosSum(x, n);
}
inline double CosSumAffine(const double* x, size_t n, double scale,
                           double offset) {
  return scalar::CosSumAffine(x, n, scale, offset);
}

#endif

}  // namespace fairlaw::simd

#endif  // FAIRLAW_BASE_SIMD_H_
