#ifndef FAIRLAW_BASE_JSON_WRITER_H_
#define FAIRLAW_BASE_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw {

/// Minimal streaming JSON writer (objects, arrays, strings, numbers,
/// booleans). Used to export audit artifacts in a machine-readable form
/// so compliance pipelines can archive and diff them. It lives in base
/// (rank 0) because every report-emitting layer — audit's versioned
/// report envelope, the serve daemon's responses, core's suite export —
/// writes JSON; the serve request *parser* lives with the serve module,
/// since only the daemon consumes JSON.
class JsonWriter {
 public:
  /// Structural tokens. Misnested calls abort via FAIRLAW_CHECK — the
  /// writer is driven by library code, not user input.
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Keys inside objects; values everywhere a value is legal.
  void Key(const std::string& key);
  void String(const std::string& value);
  void Number(double value);
  void Int(int64_t value);
  void Bool(bool value);

  /// Shorthand: Key(key) + value.
  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, double value);
  void Field(const std::string& key, int64_t value);
  void Field(const std::string& key, bool value);

  /// Returns the document; fails unless all containers are closed.
  FAIRLAW_NODISCARD Result<std::string> Finish();

 private:
  enum class Scope { kObject, kArray };
  void Separate();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<uint8_t> has_items_;  // 0/1 per open scope
  bool expecting_value_ = false;  // a Key was just written
};

/// Escapes a string for inclusion in a JSON document (quotes, control
/// characters, backslashes).
std::string JsonEscape(const std::string& text);

}  // namespace fairlaw

#endif  // FAIRLAW_BASE_JSON_WRITER_H_
