#ifndef FAIRLAW_BASE_THREAD_POOL_H_
#define FAIRLAW_BASE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace fairlaw {

/// Fixed-size worker pool over a shared task queue.
///
/// This is the one place in fairlaw that owns std::thread (fairlaw_lint
/// enforces that); everything above base/ expresses parallelism as
/// Submit/ParallelFor so the audit pipeline stays deterministic and
/// TSan/-Wthread-safety checkable.
///
/// Semantics:
///   * Tasks run in FIFO submission order, each on whichever worker is
///     free; completion order is unspecified.
///   * The destructor drains the queue (already-submitted tasks run to
///     completion) and joins every worker.
///   * A task exception is captured in the task's future and rethrown by
///     future.get(); it never takes down a worker.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the returned future carries its completion or
  /// exception. Must not be called after the destructor has begun.
  std::future<void> Submit(std::function<void()> fn) FAIRLAW_EXCLUDES(mu_);

  /// Runs fn(0) ... fn(n-1) across the pool and blocks until every call
  /// finished. If calls throw, the exception of the lowest index is
  /// rethrown (the rest are discarded), so failure behavior does not
  /// depend on scheduling. Not reentrant: calling it from inside a pool
  /// task deadlocks a worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      FAIRLAW_EXCLUDES(mu_);

 private:
  void WorkerLoop() FAIRLAW_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  std::deque<std::packaged_task<void()>> queue_ FAIRLAW_GUARDED_BY(mu_);
  bool shutting_down_ FAIRLAW_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace fairlaw

#endif  // FAIRLAW_BASE_THREAD_POOL_H_
