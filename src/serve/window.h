#ifndef FAIRLAW_SERVE_WINDOW_H_
#define FAIRLAW_SERVE_WINDOW_H_

#include <cstdint>
#include <vector>

#include "audit/windowed.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "stats/kll.h"
#include "serve/api.h"

namespace fairlaw::serve {

/// Ring of time buckets holding the sliding window's mergeable state.
///
/// Bucketing is pure event time: bucket(e) = e.t / bucket_width; the
/// watermark is the highest bucket ever seen, and the window is the
/// `num_buckets` buckets ending at the watermark. Advancing the
/// watermark resets the ring slots the new buckets claim; events older
/// than the window are rejected (counted, never silently dropped into
/// a live bucket). No wall clock is involved anywhere, so the full
/// ring state — and every response derived from it — is a pure
/// function of the event sequence.
class WindowRing {
 public:
  explicit WindowRing(const ServeConfig& config);

  /// Folds one validated event into its bucket. OutOfRange when the
  /// event's bucket has already slid out of the window.
  FAIRLAW_NODISCARD Status Ingest(const Event& event);

  /// Highest bucket index seen; -1 before any event.
  int64_t watermark() const { return watermark_; }
  /// Events currently held across live buckets.
  uint64_t num_events() const;
  /// First bucket the window covers (max(0, watermark - num_buckets + 1)).
  int64_t window_start() const;

  /// Merges the live buckets, in ascending bucket order, into one
  /// WindowedPartial. Counts and strata merge serially (cheap integer
  /// folds); the per-group sketch chains fan out over `pool` when
  /// given — the canonical key order is fixed serially first, then each
  /// worker folds one group's buckets in ascending order into its own
  /// slot, so the result is identical for every thread count. Pass
  /// nullptr to run fully serial.
  audit::WindowedPartial Window(ThreadPool* pool) const;

 private:
  struct Slot {
    int64_t bucket_index = -1;  // absolute; -1 = never used
    audit::WindowedPartial partial;
  };

  /// Resets the slots claimed by advancing the watermark to `bucket`.
  void Advance(int64_t bucket);

  int64_t bucket_width_;
  int64_t num_buckets_;
  stats::KllSketch::Options sketch_options_;
  bool with_scores_;
  int64_t watermark_ = -1;
  std::vector<Slot> slots_;
};

}  // namespace fairlaw::serve

#endif  // FAIRLAW_SERVE_WINDOW_H_
