#include "serve/window.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "stats/mergeable.h"
#include "stats/kll.h"

namespace fairlaw::serve {

WindowRing::WindowRing(const ServeConfig& config)
    : bucket_width_(config.bucket_width),
      num_buckets_(static_cast<int64_t>(config.num_buckets)),
      with_scores_(config.with_scores) {
  sketch_options_.k = config.sketch_k;
  slots_.reserve(config.num_buckets);
  for (size_t i = 0; i < config.num_buckets; ++i) {
    Slot slot;
    slot.partial = audit::WindowedPartial(sketch_options_);
    slots_.push_back(std::move(slot));
  }
}

void WindowRing::Advance(int64_t bucket) {
  // Reset only the slots the new buckets claim: at most num_buckets_
  // of them, however far the watermark jumps.
  const int64_t first = std::max(watermark_ + 1, bucket - num_buckets_ + 1);
  for (int64_t index = first; index <= bucket; ++index) {
    Slot& slot = slots_[static_cast<size_t>(index % num_buckets_)];
    slot.bucket_index = index;
    slot.partial = audit::WindowedPartial(sketch_options_);
  }
  watermark_ = bucket;
}

Status WindowRing::Ingest(const Event& event) {
  const int64_t bucket = event.t / bucket_width_;
  if (bucket > watermark_) Advance(bucket);
  if (bucket <= watermark_ - num_buckets_) {
    return Status::OutOfRange(
        "event bucket " + std::to_string(bucket) +
        " is older than the window (watermark " +
        std::to_string(watermark_) + ", " + std::to_string(num_buckets_) +
        " buckets)");
  }
  Slot& slot = slots_[static_cast<size_t>(bucket % num_buckets_)];
  audit::WindowedPartial& partial = slot.partial;

  stats::GroupCounts row;
  row.count = 1;
  row.positive_predictions = event.pred;
  if (event.has_label) {
    row.actual_positives = event.label;
    row.true_positives = (event.label == 1 && event.pred == 1) ? 1 : 0;
  }
  partial.counts.Add(event.group, row);
  if (event.has_stratum) {
    stats::GroupCounts stratum_row;
    stratum_row.count = 1;
    stratum_row.positive_predictions = event.pred;
    partial.strata_counts.Stratum(event.stratum)
        ->Add(event.group, stratum_row);
  }
  if (event.has_score) {
    partial.sketches.Add(partial.sketches.KeyIndex(event.group),
                         event.score);
  }
  partial.num_rows += 1;
  return Status::OK();
}

uint64_t WindowRing::num_events() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot.bucket_index >= 0) total += slot.partial.num_rows;
  }
  return total;
}

int64_t WindowRing::window_start() const {
  return std::max<int64_t>(0, watermark_ - num_buckets_ + 1);
}

audit::WindowedPartial WindowRing::Window(ThreadPool* pool) const {
  audit::WindowedPartial merged(sketch_options_);
  if (watermark_ < 0) return merged;

  // Live buckets in ascending absolute order — the fixed fold order
  // every mergeable accumulator's determinism contract requires.
  std::vector<const audit::WindowedPartial*> buckets;
  buckets.reserve(static_cast<size_t>(num_buckets_));
  for (int64_t index = window_start(); index <= watermark_; ++index) {
    const Slot& slot = slots_[static_cast<size_t>(index % num_buckets_)];
    if (slot.bucket_index == index && slot.partial.num_rows > 0) {
      buckets.push_back(&slot.partial);
    }
  }
  obs::GetCounter("serve.window_merges")->Increment(buckets.size());

  // Counts and strata: cheap integer folds, merged serially.
  for (const audit::WindowedPartial* bucket : buckets) {
    merged.counts.MergeFrom(bucket->counts);
    merged.strata_counts.MergeFrom(bucket->strata_counts);
    merged.num_rows += bucket->num_rows;
  }

  if (!with_scores_) return merged;

  // Sketches: fix the canonical key order serially (first-seen across
  // buckets in ascending order — exactly what a serial MergeFrom chain
  // would produce), then fold each group's chain independently. Each
  // worker writes only its own slot, and a chain's merge order is the
  // same ascending bucket order regardless of scheduling, so the
  // merged sketches are identical for every thread count.
  for (const audit::WindowedPartial* bucket : buckets) {
    for (const std::string& key : bucket->sketches.keys()) {
      merged.sketches.KeyIndex(key);
    }
  }
  const std::vector<std::string>& keys = merged.sketches.keys();
  auto fold_group = [&merged, &buckets](size_t key_index) {
    stats::KllSketch* target = merged.sketches.mutable_sketch(key_index);
    const std::string& key = merged.sketches.keys()[key_index];
    for (const audit::WindowedPartial* bucket : buckets) {
      const size_t slot = bucket->sketches.FindKey(key);
      if (slot < bucket->sketches.num_keys()) {
        target->Merge(bucket->sketches.sketch(slot));
      }
    }
  };
  if (pool == nullptr || keys.size() <= 1) {
    for (size_t i = 0; i < keys.size(); ++i) fold_group(i);
  } else {
    pool->ParallelFor(keys.size(), fold_group);
  }
  return merged;
}

}  // namespace fairlaw::serve
