#include "serve/service.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "audit/auditor.h"
#include "audit/evaluate.h"
#include "audit/report_io.h"
#include "audit/source.h"
#include "audit/windowed.h"
#include "base/json_writer.h"
#include "metrics/fairness_metric.h"
#include "obs/obs.h"
#include "serve/json_value.h"
#include "stats/kll.h"
#include "stats/mergeable.h"

namespace fairlaw::serve {

namespace {

/// Obs names allowed inside query responses. These three are pure
/// functions of the event/query sequence (events accepted, events
/// rejected, buckets folded per query), so including them cannot break
/// the byte-identity contract. Batch-dependent telemetry
/// (serve.requests, latency histograms) is only reachable through the
/// stats op.
void WriteQueryObs(JsonWriter* json) {
  json->Key("obs");
  json->BeginObject();
  json->Field("serve.events_ingested",
              static_cast<int64_t>(
                  obs::GetCounter("serve.events_ingested")->Value()));
  json->Field("serve.events_rejected",
              static_cast<int64_t>(
                  obs::GetCounter("serve.events_rejected")->Value()));
  json->Field("serve.window_merges",
              static_cast<int64_t>(
                  obs::GetCounter("serve.window_merges")->Value()));
  json->EndObject();
}

/// Frame prelude shared by every query response: schema_version, op,
/// type, and the window span the answer was computed over (all pure
/// functions of the event sequence).
void BeginQueryFrame(JsonWriter* json, const std::string& type,
                     const WindowRing& ring) {
  json->BeginObject();
  json->Field("schema_version", audit::kReportSchemaVersion);
  json->Field("op", std::string("query"));
  json->Field("type", type);
  json->Key("window");
  json->BeginObject();
  json->Field("start_bucket", ring.window_start());
  json->Field("watermark", ring.watermark());
  json->Field("events", static_cast<int64_t>(ring.num_events()));
  json->EndObject();
}

std::string FinishFrame(JsonWriter* json) {
  json->EndObject();
  // flowcheck: allow-unchecked-result (handlers balance their scopes by construction; Finish only fails on unclosed containers)
  return json->Finish().ValueOrDie();
}

/// A recognized query that cannot be answered (empty window, unknown
/// group, ...). Keeps "op":"query" so the frame participates in the
/// batch-identity comparison — the same query against the same events
/// fails identically however the events were batched.
std::string QueryErrorFrame(const std::string& type, const WindowRing& ring,
                            const Status& status) {
  JsonWriter json;
  BeginQueryFrame(&json, type, ring);
  audit::WriteErrorObject(&json, status);
  WriteQueryObs(&json);
  return FinishFrame(&json);
}

/// A request that never made it to a handler (parse failure, unknown
/// op, schema mismatch). `op_label` echoes the request's op when it
/// could be recovered, else "error".
std::string RequestErrorFrame(const std::string& op_label,
                              const Status& status) {
  JsonWriter json;
  json.BeginObject();
  json.Field("schema_version", audit::kReportSchemaVersion);
  json.Field("op", op_label);
  audit::WriteErrorObject(&json, status);
  return FinishFrame(&json);
}

}  // namespace

Service::Service(const ServeConfig& config)
    : config_(config), ring_(config) {
  if (config_.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
}

std::string Service::HandleLine(std::string_view line) {
  const uint64_t start_ns = obs::MonotonicNowNs();
  obs::GetCounter("serve.requests")->Increment();

  std::string op_label = "error";
  std::string response;
  Result<JsonValue> doc = JsonValue::Parse(line);
  if (!doc.ok()) {
    response = RequestErrorFrame(op_label, doc.status());
  } else {
    // Recover the op for error frames and latency attribution even when
    // the request fails validation.
    if (doc.ValueOrDie().is_object()) {
      if (const JsonValue* op = doc.ValueOrDie().GetOrNull("op");
          op != nullptr && op->is_string()) {
        Result<std::string> name = op->AsString();
        // Only known ops name an error frame / latency series — an
        // arbitrary op string must not mint unbounded registry probes.
        if (name.ok() && (name.ValueOrDie() == "ingest" ||
                          name.ValueOrDie() == "query" ||
                          name.ValueOrDie() == "stats")) {
          op_label = name.ValueOrDie();
        }
      }
    }
    Result<Request> request = ParseRequest(doc.ValueOrDie(), config_);
    if (!request.ok()) {
      response = RequestErrorFrame(op_label, request.status());
    } else {
      switch (request.ValueOrDie().op) {
        case Request::Op::kIngest:
          response = HandleIngest(request.ValueOrDie().ingest);
          break;
        case Request::Op::kQuery:
          response = HandleQuery(request.ValueOrDie().query);
          break;
        case Request::Op::kStats:
          response = HandleStats();
          break;
      }
    }
  }
  obs::GetHistogram("serve.latency." + op_label + "_ns")
      ->Record(obs::MonotonicNowNs() - start_ns);
  return response;
}

std::string Service::HandleIngest(const IngestRequest& request) {
  obs::TraceSpan span("serve/ingest");
  int64_t accepted = 0;
  int64_t rejected = 0;
  for (const Event& event : request.events) {
    Status status = event.Validate(config_);
    if (status.ok()) status = ring_.Ingest(event);
    if (status.ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  obs::GetCounter("serve.events_ingested")
      ->Increment(static_cast<uint64_t>(accepted));
  obs::GetCounter("serve.events_rejected")
      ->Increment(static_cast<uint64_t>(rejected));

  // The ack legitimately depends on batching (per-batch counts), so it
  // is excluded from the byte-identity comparison.
  JsonWriter json;
  json.BeginObject();
  json.Field("schema_version", audit::kReportSchemaVersion);
  json.Field("op", std::string("ingest"));
  json.Field("accepted", accepted);
  json.Field("rejected", rejected);
  json.Field("watermark", ring_.watermark());
  return FinishFrame(&json);
}

std::string Service::HandleQuery(const QueryRequest& request) {
  obs::TraceSpan span("serve/query");
  const audit::WindowedPartial window = ring_.Window(pool_.get());
  const audit::AuditConfig audit_config = config_.ToAuditConfig();

  if (request.type == "audit" || request.type == "four_fifths" ||
      request.type == "drift") {
    Result<audit::AuditResult> result = audit::Auditor::Run(
        audit::AuditSource::FromWindow(window), audit_config);
    if (!result.ok()) {
      return QueryErrorFrame(request.type, ring_, result.status());
    }
    const audit::AuditResult& audit_result = result.ValueOrDie();
    JsonWriter json;
    BeginQueryFrame(&json, request.type, ring_);
    if (request.type == "audit") {
      json.Key("findings");
      audit::WriteAuditFindings(&json, audit_result);
    } else if (request.type == "four_fifths") {
      Result<const metrics::MetricReport*> report =
          audit_result.Find("disparate_impact_ratio");
      if (!report.ok()) {
        return QueryErrorFrame(request.type, ring_, report.status());
      }
      json.Key("four_fifths");
      audit::WriteMetricReport(&json, *report.ValueOrDie());
    } else {
      if (!audit_result.score_distribution.has_value()) {
        return QueryErrorFrame(
            request.type, ring_,
            Status::FailedPrecondition(
                "drift: the windowed audit produced no score-distribution "
                "report"));
      }
      json.Key("score_distribution");
      audit::WriteScoreDistributionReport(&json,
                                          *audit_result.score_distribution);
    }
    WriteQueryObs(&json);
    return FinishFrame(&json);
  }

  if (request.type == "drilldown") {
    const stats::StratifiedCountsAccumulator& strata = window.strata_counts;
    size_t index = strata.num_strata();
    for (size_t i = 0; i < strata.num_strata(); ++i) {
      if (strata.keys()[i] == request.stratum) {
        index = i;
        break;
      }
    }
    if (index == strata.num_strata()) {
      return QueryErrorFrame(
          request.type, ring_,
          Status::NotFound("drilldown: stratum '" + request.stratum +
                           "' not present in the window"));
    }
    // Stratum tallies only retain counts and positive predictions, so
    // the drill-down runs the prediction-only metric family — exactly
    // what a conditional metric would compute within this stratum.
    audit::EvaluateInputs inputs;
    inputs.counts = &strata.stratum(index);
    inputs.has_labels = false;
    Result<audit::AuditResult> result =
        audit::EvaluateMetrics(inputs, audit_config, obs::CurrentPath());
    if (!result.ok()) {
      return QueryErrorFrame(request.type, ring_, result.status());
    }
    JsonWriter json;
    BeginQueryFrame(&json, request.type, ring_);
    json.Field("stratum", request.stratum);
    json.Key("findings");
    audit::WriteAuditFindings(&json, result.ValueOrDie());
    WriteQueryObs(&json);
    return FinishFrame(&json);
  }

  // "quantiles" — QueryRequest::Validate admits nothing else.
  const size_t slot = window.sketches.FindKey(request.group);
  if (slot >= window.sketches.num_keys()) {
    return QueryErrorFrame(
        request.type, ring_,
        Status::NotFound("quantiles: group '" + request.group +
                         "' not present in the window"));
  }
  const stats::KllSketch& sketch = window.sketches.sketch(slot);
  JsonWriter json;
  BeginQueryFrame(&json, request.type, ring_);
  json.Field("group", request.group);
  json.Field("count", static_cast<int64_t>(sketch.count()));
  json.Key("quantiles");
  json.BeginArray();
  for (double q : request.quantiles) {
    Result<double> value = sketch.Quantile(q);
    if (!value.ok()) {
      return QueryErrorFrame(request.type, ring_, value.status());
    }
    json.BeginObject();
    json.Field("q", q);
    json.Field("value", value.ValueOrDie());
    json.EndObject();
  }
  json.EndArray();
  WriteQueryObs(&json);
  return FinishFrame(&json);
}

std::string Service::HandleStats() {
  obs::TraceSpan span("serve/stats");
  // Full telemetry — counters, histograms, span stats — straight from
  // the registry export (already a sorted-key JSON object). Carries
  // batch- and timing-dependent data by design, so stats responses are
  // excluded from identity comparisons.
  return "{\"schema_version\":" + std::to_string(audit::kReportSchemaVersion) +
         ",\"op\":\"stats\",\"obs\":" + obs::ExportJson() + "}";
}

}  // namespace fairlaw::serve
