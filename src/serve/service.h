#ifndef FAIRLAW_SERVE_SERVICE_H_
#define FAIRLAW_SERVE_SERVICE_H_

#include <memory>
#include <string>
#include <string_view>

#include "base/thread_pool.h"
#include "serve/api.h"
#include "serve/window.h"

namespace fairlaw::serve {

/// The serve daemon's request loop body: one Service per process,
/// handling line-delimited requests against one WindowRing.
///
/// Determinism contract (the serve analogue of the chunked auditor's
/// chunk-size/thread-count invariance, CI-gated the same way): for a
/// fixed event sequence and query sequence, every query response is
/// byte-identical regardless of how the events were batched into
/// ingest requests and of num_threads. Ingest acks legitimately vary
/// with batching (they report per-batch accepted counts) and stats
/// responses carry full telemetry (including per-request counters and
/// latency histograms), so identity comparisons filter to
/// '"op":"query"' lines.
class Service {
 public:
  /// `config` must already Validate(). A worker pool is spun up once
  /// when num_threads != 1 and reused across requests.
  explicit Service(const ServeConfig& config);

  /// Handles one request line, returning the response document
  /// (no trailing newline). Never fails: malformed input produces an
  /// error-envelope response.
  std::string HandleLine(std::string_view line);

  const ServeConfig& config() const { return config_; }
  const WindowRing& ring() const { return ring_; }

 private:
  std::string HandleIngest(const IngestRequest& request);
  std::string HandleQuery(const QueryRequest& request);
  std::string HandleStats();

  ServeConfig config_;
  WindowRing ring_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
};

}  // namespace fairlaw::serve

#endif  // FAIRLAW_SERVE_SERVICE_H_
