#ifndef FAIRLAW_SERVE_API_H_
#define FAIRLAW_SERVE_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/report_io.h"
#include "base/result.h"
#include "serve/json_value.h"

namespace fairlaw::serve {

/// The serve wire protocol: one JSON document per line in, one per
/// line out, every document carrying `schema_version` (the shared
/// report-envelope version from audit/report_io.h — requests and
/// responses version together). Versioning rules (DESIGN.md §15):
/// fields are only ever added within a version; a request without
/// `schema_version` is taken as current; a request from a newer version
/// than the daemon speaks is refused with NotImplemented rather than
/// half-understood.

/// Daemon configuration, fixed at startup. The ingest schema is
/// declared here — which optional event fields this daemon expects —
/// so every window bucket accumulates the same shape and responses
/// stay byte-identical however events are batched.
struct ServeConfig {
  /// Event-time units per window bucket (events carry integer `t`;
  /// the daemon never reads a wall clock on the data path).
  int64_t bucket_width = 1000;
  /// Ring size: the sliding window covers the last `num_buckets`
  /// buckets ending at the watermark (the highest bucket seen).
  size_t num_buckets = 60;
  /// Whether events must carry `label` (enables the label metrics).
  bool with_labels = true;
  /// Whether events must carry `score` (enables sketch drift and
  /// quantile queries). Requires with_labels, mirroring AuditConfig.
  bool with_scores = true;
  /// Whether events must carry `stratum` (enables the conditional
  /// metrics and drill-down queries).
  bool with_strata = false;
  /// Worker threads for window folds and metric evaluation: 1 = serial,
  /// 0 = one per hardware thread. Responses are byte-identical for
  /// every value.
  size_t num_threads = 1;
  /// KLL accuracy parameter for the per-group score sketches.
  uint32_t sketch_k = 200;

  /// Audit thresholds forwarded into the windowed AuditConfig.
  double tolerance = 0.05;
  double di_threshold = 0.8;
  double drift_tolerance = 0.1;
  size_t min_stratum_size = 10;

  FAIRLAW_NODISCARD Status Validate() const;

  /// The AuditConfig a window evaluation runs under. Column names are
  /// the protocol's logical field names ("group", "pred", ...) — no
  /// table exists, they only tell the shared evaluators which metric
  /// families to run.
  audit::AuditConfig ToAuditConfig() const;
};

/// One prediction/outcome event. `t` is event time in the caller's
/// units; bucketing uses t / bucket_width. Optional fields are present
/// iff the daemon's schema requires them (ServeConfig).
struct Event {
  int64_t t = 0;
  std::string group;
  int pred = 0;
  int label = 0;
  bool has_label = false;
  double score = 0.0;
  bool has_score = false;
  std::string stratum;
  bool has_stratum = false;

  /// Checks the event against the daemon's declared schema: required
  /// fields present, pred/label binary, score finite, t >= 0.
  FAIRLAW_NODISCARD Status Validate(const ServeConfig& config) const;
};

/// {"op":"ingest","events":[...]} — append a batch of events.
struct IngestRequest {
  std::vector<Event> events;
};

/// {"op":"query","type":...} — evaluate over the current window.
struct QueryRequest {
  /// "audit" (full windowed suite), "four_fifths", "drift",
  /// "drilldown" (group metrics within one stratum), or "quantiles"
  /// (per-group score quantiles from the sketches).
  std::string type;
  /// For "drilldown": the stratum key.
  std::string stratum;
  /// For "quantiles": the group key and the quantiles to evaluate.
  std::string group;
  std::vector<double> quantiles;

  FAIRLAW_NODISCARD Status Validate(const ServeConfig& config) const;
};

/// A parsed request line.
struct Request {
  enum class Op { kIngest, kQuery, kStats };
  Op op = Op::kIngest;
  IngestRequest ingest;
  QueryRequest query;
};

/// Parses and validates one request document against the daemon's
/// schema. Unknown fields are ignored (additive evolution); unknown
/// ops, missing required fields, and future schema_versions are errors.
FAIRLAW_NODISCARD Result<Request> ParseRequest(const JsonValue& doc,
                                               const ServeConfig& config);

}  // namespace fairlaw::serve

#endif  // FAIRLAW_SERVE_API_H_
