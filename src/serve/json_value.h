#ifndef FAIRLAW_SERVE_JSON_VALUE_H_
#define FAIRLAW_SERVE_JSON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace fairlaw::serve {

/// Parsed JSON value for the serve request path — the one place in the
/// tree that consumes JSON (the writers all stream through
/// base/json_writer.h). Deliberately minimal: single-document parse,
/// no streaming, objects keep their keys in a sorted map (requests are
/// field-addressed, never iterated, so map order cannot leak into
/// responses). Strings support the escapes JsonEscape emits plus
/// \uXXXX for the Basic Multilingual Plane.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  /// Parses exactly one JSON document from `text`; trailing non-space
  /// content is an error (the serve protocol is one document per line).
  FAIRLAW_NODISCARD static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; Invalid when the kind does not match.
  FAIRLAW_NODISCARD Result<bool> AsBool() const;
  FAIRLAW_NODISCARD Result<double> AsDouble() const;
  /// Numbers without a fraction/exponent that fit int64; Invalid
  /// otherwise (the protocol's timestamps and 0/1 fields come through
  /// here).
  FAIRLAW_NODISCARD Result<int64_t> AsInt64() const;
  FAIRLAW_NODISCARD Result<std::string> AsString() const;

  /// Object member access. Get: Invalid on non-objects, NotFound on a
  /// missing key. GetOrNull: null pointer when absent (optional fields).
  FAIRLAW_NODISCARD Result<const JsonValue*> Get(std::string_view key) const;
  const JsonValue* GetOrNull(std::string_view key) const;

  /// Array access.
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t index) const { return *array_[index]; }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool number_is_integral_ = false;
  int64_t integer_ = 0;
  std::string string_;
  std::map<std::string, std::unique_ptr<JsonValue>, std::less<>> object_;
  std::vector<std::unique_ptr<JsonValue>> array_;

  friend class JsonParser;
};

}  // namespace fairlaw::serve

#endif  // FAIRLAW_SERVE_JSON_VALUE_H_
