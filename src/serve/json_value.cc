#include "serve/json_value.h"

#include <cmath>
#include <utility>

#include "base/string_util.h"

namespace fairlaw::serve {

/// Recursive-descent parser over a string_view. Numbers are validated
/// against the JSON grammar here and then converted by
/// fairlaw::ParseDouble (std::from_chars underneath), so no locale or
/// banned C parsing function is involved.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipSpace();
    JsonValue value;
    FAIRLAW_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Invalid("json: trailing content at offset " +
                             std::to_string(pos_));
    }
    return value;
  }

 private:
  // Request documents are shallow; a depth cap turns pathological
  // nesting into an error instead of a stack overflow.
  static constexpr int kMaxDepth = 32;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Status::Invalid("json: nesting deeper than " +
                             std::to_string(kMaxDepth));
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::Invalid("json: unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (c == 't' || c == 'f') {
      out->kind_ = JsonValue::Kind::kBool;
      if (ConsumeWord("true")) {
        out->bool_ = true;
        return Status::OK();
      }
      if (ConsumeWord("false")) {
        out->bool_ = false;
        return Status::OK();
      }
      return Status::Invalid("json: bad literal at offset " +
                             std::to_string(pos_));
    }
    if (c == 'n') {
      if (ConsumeWord("null")) {
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      }
      return Status::Invalid("json: bad literal at offset " +
                             std::to_string(pos_));
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Status::Invalid("json: unexpected character '" +
                           std::string(1, c) + "' at offset " +
                           std::to_string(pos_));
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::Invalid("json: expected object key at offset " +
                               std::to_string(pos_));
      }
      std::string key;
      FAIRLAW_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) {
        return Status::Invalid("json: expected ':' at offset " +
                               std::to_string(pos_));
      }
      auto value = std::make_unique<JsonValue>();
      FAIRLAW_RETURN_NOT_OK(ParseValue(value.get(), depth + 1));
      if (!out->object_.insert_or_assign(std::move(key), std::move(value))
               .second) {
        // Duplicate keys: last one wins, matching common parsers; the
        // request validators never rely on duplicates.
      }
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Status::Invalid("json: expected ',' or '}' at offset " +
                             std::to_string(pos_));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      auto value = std::make_unique<JsonValue>();
      FAIRLAW_RETURN_NOT_OK(ParseValue(value.get(), depth + 1));
      out->array_.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Status::Invalid("json: expected ',' or ']' at offset " +
                             std::to_string(pos_));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::Invalid("json: unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_];
      ++pos_;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          FAIRLAW_RETURN_NOT_OK(AppendUnicodeEscape(out));
          break;
        }
        default:
          return Status::Invalid("json: bad escape '\\" +
                                 std::string(1, e) + "'");
      }
    }
    return Status::Invalid("json: unterminated string");
  }

  Status AppendUnicodeEscape(std::string* out) {
    if (pos_ + 4 > text_.size()) {
      return Status::Invalid("json: truncated \\u escape");
    }
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + i];
      uint32_t digit;
      if (h >= '0' && h <= '9') {
        digit = static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        digit = static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        digit = static_cast<uint32_t>(h - 'A' + 10);
      } else {
        return Status::Invalid("json: bad \\u escape digit");
      }
      code = code * 16 + digit;
    }
    pos_ += 4;
    if (code >= 0xD800 && code <= 0xDFFF) {
      return Status::Invalid("json: surrogate \\u escapes not supported");
    }
    // UTF-8 encode the BMP code point.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool integral = true;
    if (Consume('-')) {
    }
    // Integer part: '0' alone or a nonzero digit followed by digits.
    if (Consume('0')) {
    } else if (pos_ < text_.size() && text_[pos_] >= '1' &&
               text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return Status::Invalid("json: bad number at offset " +
                             std::to_string(start));
    }
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Status::Invalid("json: bad number at offset " +
                               std::to_string(start));
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Status::Invalid("json: bad number at offset " +
                               std::to_string(start));
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    out->kind_ = JsonValue::Kind::kNumber;
    FAIRLAW_ASSIGN_OR_RETURN(out->number_, ParseDouble(token));
    out->number_is_integral_ = integral;
    if (integral) {
      Result<int64_t> as_int = ParseInt64(token);
      if (as_int.ok()) {
        out->integer_ = as_int.ValueOrDie();
      } else {
        out->number_is_integral_ = false;  // out of int64 range
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

Result<bool> JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) return Status::Invalid("json: expected bool");
  return bool_;
}

Result<double> JsonValue::AsDouble() const {
  if (kind_ != Kind::kNumber) return Status::Invalid("json: expected number");
  return number_;
}

Result<int64_t> JsonValue::AsInt64() const {
  if (kind_ != Kind::kNumber || !number_is_integral_) {
    return Status::Invalid("json: expected integer");
  }
  return integer_;
}

Result<std::string> JsonValue::AsString() const {
  if (kind_ != Kind::kString) return Status::Invalid("json: expected string");
  return string_;
}

Result<const JsonValue*> JsonValue::Get(std::string_view key) const {
  if (kind_ != Kind::kObject) return Status::Invalid("json: expected object");
  auto it = object_.find(key);
  if (it == object_.end()) {
    return Status::NotFound("json: missing field '" + std::string(key) + "'");
  }
  return it->second.get();
}

const JsonValue* JsonValue::GetOrNull(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : it->second.get();
}

}  // namespace fairlaw::serve
