#include "serve/api.h"

#include <cmath>
#include <utility>

namespace fairlaw::serve {

Status ServeConfig::Validate() const {
  if (bucket_width <= 0) {
    return Status::Invalid("ServeConfig: bucket_width must be > 0");
  }
  if (num_buckets == 0) {
    return Status::Invalid("ServeConfig: num_buckets must be > 0");
  }
  if (with_scores && !with_labels) {
    return Status::Invalid(
        "ServeConfig: with_scores requires with_labels (mirrors the "
        "AuditConfig score/label coupling)");
  }
  if (sketch_k == 0) {
    return Status::Invalid("ServeConfig: sketch_k must be > 0");
  }
  // Threshold ranges are enforced by AuditConfig::Validate via
  // ToAuditConfig; check here too so the daemon refuses bad flags at
  // startup rather than at the first query.
  return ToAuditConfig().Validate();
}

audit::AuditConfig ServeConfig::ToAuditConfig() const {
  audit::AuditConfig config;
  config.protected_column = "group";
  config.prediction_column = "pred";
  if (with_labels) config.label_column = "label";
  if (with_scores) {
    config.score_column = "score";
    config.audit_score_distribution = true;
  }
  if (with_strata) config.strata_columns = {"stratum"};
  config.tolerance = tolerance;
  config.di_threshold = di_threshold;
  config.score_distribution_tolerance = drift_tolerance;
  config.min_stratum_size = min_stratum_size;
  config.num_threads = num_threads;
  return config;
}

Status Event::Validate(const ServeConfig& config) const {
  if (t < 0) return Status::Invalid("event: t must be >= 0");
  if (group.empty()) return Status::Invalid("event: group must be set");
  if (pred != 0 && pred != 1) {
    return Status::Invalid("event: pred must be 0 or 1");
  }
  if (config.with_labels != has_label) {
    return Status::Invalid(config.with_labels
                               ? "event: label required by daemon schema"
                               : "event: label not in daemon schema");
  }
  if (has_label && label != 0 && label != 1) {
    return Status::Invalid("event: label must be 0 or 1");
  }
  if (config.with_scores != has_score) {
    return Status::Invalid(config.with_scores
                               ? "event: score required by daemon schema"
                               : "event: score not in daemon schema");
  }
  if (has_score && !std::isfinite(score)) {
    return Status::Invalid("event: score must be finite");
  }
  if (config.with_strata != has_stratum) {
    return Status::Invalid(config.with_strata
                               ? "event: stratum required by daemon schema"
                               : "event: stratum not in daemon schema");
  }
  if (has_stratum && stratum.empty()) {
    return Status::Invalid("event: stratum must be non-empty");
  }
  return Status::OK();
}

Status QueryRequest::Validate(const ServeConfig& config) const {
  if (type == "audit" || type == "four_fifths") return Status::OK();
  if (type == "drift") {
    if (!config.with_scores) {
      return Status::Invalid("query: drift requires a daemon with scores");
    }
    return Status::OK();
  }
  if (type == "drilldown") {
    if (!config.with_strata) {
      return Status::Invalid(
          "query: drilldown requires a daemon with strata");
    }
    if (stratum.empty()) {
      return Status::Invalid("query: drilldown requires 'stratum'");
    }
    return Status::OK();
  }
  if (type == "quantiles") {
    if (!config.with_scores) {
      return Status::Invalid(
          "query: quantiles requires a daemon with scores");
    }
    if (group.empty()) {
      return Status::Invalid("query: quantiles requires 'group'");
    }
    if (quantiles.empty()) {
      return Status::Invalid("query: quantiles requires non-empty 'q'");
    }
    for (double q : quantiles) {
      if (!(q >= 0.0 && q <= 1.0)) {
        return Status::Invalid("query: quantiles must lie in [0,1]");
      }
    }
    return Status::OK();
  }
  return Status::Invalid("query: unknown type '" + type + "'");
}

namespace {

Result<Event> ParseEvent(const JsonValue& doc) {
  Event event;
  FAIRLAW_ASSIGN_OR_RETURN(const JsonValue* t, doc.Get("t"));
  FAIRLAW_ASSIGN_OR_RETURN(event.t, t->AsInt64());
  FAIRLAW_ASSIGN_OR_RETURN(const JsonValue* group, doc.Get("group"));
  FAIRLAW_ASSIGN_OR_RETURN(event.group, group->AsString());
  FAIRLAW_ASSIGN_OR_RETURN(const JsonValue* pred, doc.Get("pred"));
  FAIRLAW_ASSIGN_OR_RETURN(int64_t pred_value, pred->AsInt64());
  event.pred = static_cast<int>(pred_value);
  if (pred_value != 0 && pred_value != 1) {
    return Status::Invalid("event: pred must be 0 or 1");
  }
  if (const JsonValue* label = doc.GetOrNull("label"); label != nullptr) {
    FAIRLAW_ASSIGN_OR_RETURN(int64_t label_value, label->AsInt64());
    if (label_value != 0 && label_value != 1) {
      return Status::Invalid("event: label must be 0 or 1");
    }
    event.label = static_cast<int>(label_value);
    event.has_label = true;
  }
  if (const JsonValue* score = doc.GetOrNull("score"); score != nullptr) {
    FAIRLAW_ASSIGN_OR_RETURN(event.score, score->AsDouble());
    event.has_score = true;
  }
  if (const JsonValue* stratum = doc.GetOrNull("stratum");
      stratum != nullptr) {
    FAIRLAW_ASSIGN_OR_RETURN(event.stratum, stratum->AsString());
    event.has_stratum = true;
  }
  return event;
}

}  // namespace

Result<Request> ParseRequest(const JsonValue& doc,
                             const ServeConfig& config) {
  if (!doc.is_object()) {
    return Status::Invalid("request: expected a JSON object");
  }
  if (const JsonValue* version = doc.GetOrNull("schema_version");
      version != nullptr) {
    FAIRLAW_ASSIGN_OR_RETURN(int64_t v, version->AsInt64());
    if (v < 1) return Status::Invalid("request: schema_version must be >= 1");
    if (v > audit::kReportSchemaVersion) {
      return Status::NotImplemented(
          "request: schema_version " + std::to_string(v) +
          " is newer than this daemon (speaks " +
          std::to_string(audit::kReportSchemaVersion) + ")");
    }
  }
  FAIRLAW_ASSIGN_OR_RETURN(const JsonValue* op_value, doc.Get("op"));
  FAIRLAW_ASSIGN_OR_RETURN(std::string op, op_value->AsString());

  Request request;
  if (op == "ingest") {
    request.op = Request::Op::kIngest;
    FAIRLAW_ASSIGN_OR_RETURN(const JsonValue* events, doc.Get("events"));
    if (!events->is_array()) {
      return Status::Invalid("ingest: 'events' must be an array");
    }
    request.ingest.events.reserve(events->size());
    for (size_t i = 0; i < events->size(); ++i) {
      FAIRLAW_ASSIGN_OR_RETURN(Event event, ParseEvent(events->at(i)));
      request.ingest.events.push_back(std::move(event));
    }
    return request;
  }
  if (op == "query") {
    request.op = Request::Op::kQuery;
    FAIRLAW_ASSIGN_OR_RETURN(const JsonValue* type, doc.Get("type"));
    FAIRLAW_ASSIGN_OR_RETURN(request.query.type, type->AsString());
    if (const JsonValue* stratum = doc.GetOrNull("stratum");
        stratum != nullptr) {
      FAIRLAW_ASSIGN_OR_RETURN(request.query.stratum, stratum->AsString());
    }
    if (const JsonValue* group = doc.GetOrNull("group"); group != nullptr) {
      FAIRLAW_ASSIGN_OR_RETURN(request.query.group, group->AsString());
    }
    if (const JsonValue* q = doc.GetOrNull("q"); q != nullptr) {
      if (!q->is_array()) {
        return Status::Invalid("query: 'q' must be an array of numbers");
      }
      for (size_t i = 0; i < q->size(); ++i) {
        FAIRLAW_ASSIGN_OR_RETURN(double value, q->at(i).AsDouble());
        request.query.quantiles.push_back(value);
      }
    }
    FAIRLAW_RETURN_NOT_OK(request.query.Validate(config));
    return request;
  }
  if (op == "stats") {
    request.op = Request::Op::kStats;
    return request;
  }
  return Status::Invalid("request: unknown op '" + op + "'");
}

}  // namespace fairlaw::serve
