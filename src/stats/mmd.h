#ifndef FAIRLAW_STATS_MMD_H_
#define FAIRLAW_STATS_MMD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// A point in d-dimensional feature space.
using Point = std::vector<double>;

/// RBF (Gaussian) kernel exp(-||x-y||^2 / (2 sigma^2)).
double RbfKernel(const Point& x, const Point& y, double sigma);

/// Median heuristic bandwidth: the median pairwise Euclidean distance over
/// the pooled sample. When the pooled sample has more than `max_pairs`
/// pairs, the median is taken over `max_pairs` pairs drawn from
/// counter-based SplitMix64 streams (pair k draws from its own seeded
/// stream), so the result depends only on the input — never on iteration
/// scheduling or hidden state. Returns a strictly positive value; falls
/// back to 1.0 when all points coincide.
double MedianHeuristicBandwidth(std::span<const Point> x,
                                std::span<const Point> y,
                                size_t max_pairs = 100000);

/// Options for the exact O(n^2) MMD estimators. The kernel sums are
/// accumulated per fixed-size row block and merged in block order, so the
/// result is bit-identical for every `num_threads` value (1 = serial,
/// 0 = hardware concurrency).
struct MmdExactOptions {
  size_t num_threads = 1;
};

/// Options for the linear-time random-Fourier-feature estimator.
struct MmdRffOptions {
  /// Number of random features D. Estimation error on top of the exact
  /// estimator decays as O(1/sqrt(D)); D = 256 lands within ~0.05 of the
  /// exact value on unit-scale data.
  size_t num_features = 256;
  /// Base seed of the counter-based feature streams: feature j draws its
  /// frequency and phase from Rng(SplitMix64(seed ^ SplitMix64(j))), so
  /// the estimate is a pure function of (inputs, sigma, D, seed) for any
  /// thread count and any feature-block schedule.
  uint64_t seed = 0x52ff5eedULL;
  /// Threads for the feature-block fan-out (1 = serial, 0 = hardware).
  size_t num_threads = 1;
};

/// Unbiased estimator of squared Maximum Mean Discrepancy between samples
/// x and y under the RBF kernel with bandwidth sigma. Requires at least 2
/// points per sample. The estimator may be slightly negative for close
/// distributions; callers wanting a distance should clamp at 0.
FAIRLAW_NODISCARD Result<double> MmdSquaredUnbiased(
    std::span<const Point> x, std::span<const Point> y, double sigma,
    const MmdExactOptions& options = {});

/// Biased (V-statistic) estimator of squared MMD; always >= 0.
FAIRLAW_NODISCARD Result<double> MmdSquaredBiased(
    std::span<const Point> x, std::span<const Point> y, double sigma,
    const MmdExactOptions& options = {});

/// Linear-time O(n * D) estimator of squared MMD via random Fourier
/// features (Rahimi–Recht): the RBF kernel's spectral measure is sampled
/// D times, each sample contributing one cosine feature, and MMD^2 is the
/// squared distance between the mean feature vectors. Converges to the
/// biased exact estimator as D grows; always >= 0. The exact estimators
/// above remain the oracle — use them to validate tolerances.
FAIRLAW_NODISCARD Result<double> MmdSquaredRff(
    std::span<const Point> x, std::span<const Point> y, double sigma,
    const MmdRffOptions& options = {});

/// Convenience overloads for 1-D samples. The RFF variant runs the
/// feature map directly over the contiguous input (SIMD fast path).
FAIRLAW_NODISCARD Result<double> MmdSquaredUnbiased1d(
    std::span<const double> x, std::span<const double> y, double sigma,
    const MmdExactOptions& options = {});
FAIRLAW_NODISCARD Result<double> MmdSquaredBiased1d(
    std::span<const double> x, std::span<const double> y, double sigma,
    const MmdExactOptions& options = {});
FAIRLAW_NODISCARD Result<double> MmdSquaredRff1d(
    std::span<const double> x, std::span<const double> y, double sigma,
    const MmdRffOptions& options = {});

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_MMD_H_
