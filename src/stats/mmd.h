#ifndef FAIRLAW_STATS_MMD_H_
#define FAIRLAW_STATS_MMD_H_

#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// A point in d-dimensional feature space.
using Point = std::vector<double>;

/// RBF (Gaussian) kernel exp(-||x-y||^2 / (2 sigma^2)).
double RbfKernel(const Point& x, const Point& y, double sigma);

/// Median heuristic bandwidth: the median pairwise Euclidean distance over
/// the pooled sample (subsampled to at most `max_pairs` pairs for large
/// inputs). Returns a strictly positive value; falls back to 1.0 when all
/// points coincide.
double MedianHeuristicBandwidth(std::span<const Point> x,
                                std::span<const Point> y,
                                size_t max_pairs = 100000);

/// Unbiased estimator of squared Maximum Mean Discrepancy between samples
/// x and y under the RBF kernel with bandwidth sigma. Requires at least 2
/// points per sample. The estimator may be slightly negative for close
/// distributions; callers wanting a distance should clamp at 0.
FAIRLAW_NODISCARD Result<double> MmdSquaredUnbiased(std::span<const Point> x,
                                  std::span<const Point> y, double sigma);

/// Biased (V-statistic) estimator of squared MMD; always >= 0.
FAIRLAW_NODISCARD Result<double> MmdSquaredBiased(std::span<const Point> x,
                                std::span<const Point> y, double sigma);

/// Convenience overloads for 1-D samples.
FAIRLAW_NODISCARD Result<double> MmdSquaredUnbiased1d(std::span<const double> x,
                                    std::span<const double> y, double sigma);
FAIRLAW_NODISCARD Result<double> MmdSquaredBiased1d(std::span<const double> x,
                                  std::span<const double> y, double sigma);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_MMD_H_
