#ifndef FAIRLAW_STATS_BOOTSTRAP_H_
#define FAIRLAW_STATS_BOOTSTRAP_H_

#include <functional>
#include <span>
#include <vector>

#include "base/result.h"
#include "stats/rng.h"

namespace fairlaw::stats {

/// A two-sided confidence interval with its point estimate.
struct ConfidenceInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.0;  // e.g. 0.95
};

/// Statistic evaluated on a resampled dataset.
using Statistic = std::function<double(std::span<const double>)>;

/// Statistic evaluated on two resampled datasets (e.g. a rate gap between
/// two protected groups).
using TwoSampleStatistic =
    std::function<double(std::span<const double>, std::span<const double>)>;

/// Percentile bootstrap CI for `statistic` on `sample`. `replicates` must
/// be >= 2 and `level` in (0, 1).
Result<ConfidenceInterval> BootstrapCi(std::span<const double> sample,
                                       const Statistic& statistic,
                                       int replicates, double level, Rng* rng);

/// Percentile bootstrap CI for a two-sample statistic; the two samples are
/// resampled independently.
Result<ConfidenceInterval> BootstrapCiTwoSample(
    std::span<const double> sample_a, std::span<const double> sample_b,
    const TwoSampleStatistic& statistic, int replicates, double level,
    Rng* rng);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_BOOTSTRAP_H_
