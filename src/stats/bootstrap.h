#ifndef FAIRLAW_STATS_BOOTSTRAP_H_
#define FAIRLAW_STATS_BOOTSTRAP_H_

#include <functional>
#include <span>
#include <vector>

#include "base/result.h"
#include "stats/rng.h"

namespace fairlaw::stats {

/// A two-sided confidence interval with its point estimate.
struct ConfidenceInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.0;  // e.g. 0.95
};

/// Statistic evaluated on a resampled dataset.
using Statistic = std::function<double(std::span<const double>)>;

/// Statistic evaluated on two resampled datasets (e.g. a rate gap between
/// two protected groups).
using TwoSampleStatistic =
    std::function<double(std::span<const double>, std::span<const double>)>;

/// Percentile bootstrap CI for `statistic` on `sample`. `replicates` must
/// be >= 2, `level` in (0, 1), and `sample` must have >= 2 elements (a
/// single observation resamples to itself, which would silently yield a
/// zero-width interval).
///
/// Replicates draw from counter-based RNG streams: one base value is
/// taken from `rng`, and replicate r seeds its own generator from
/// (base, r). With `num_threads` != 1 (0 = one per hardware thread) the
/// replicates run on a base::ThreadPool; because each stream depends only
/// on (base, r), the interval is bit-identical for every thread count.
FAIRLAW_NODISCARD Result<ConfidenceInterval> BootstrapCi(std::span<const double> sample,
                                       const Statistic& statistic,
                                       int replicates, double level, Rng* rng,
                                       size_t num_threads = 1);

/// Percentile bootstrap CI for a two-sample statistic; the two samples
/// are resampled independently. Fails when both samples are single
/// observations (every replicate would be identical — a zero-width
/// interval that looks like certainty). Same deterministic parallelism
/// as BootstrapCi.
FAIRLAW_NODISCARD Result<ConfidenceInterval> BootstrapCiTwoSample(
    std::span<const double> sample_a, std::span<const double> sample_b,
    const TwoSampleStatistic& statistic, int replicates, double level,
    Rng* rng, size_t num_threads = 1);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_BOOTSTRAP_H_
