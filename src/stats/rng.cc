#include "stats/rng.h"

#include <cmath>
#include <numbers>

#include "base/check.h"

namespace fairlaw::stats {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(sm);
    sm += 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  FAIRLAW_CHECK_MSG(lo <= hi, "Uniform: lo must not exceed hi");
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  FAIRLAW_CHECK_MSG(n > 0, "UniformInt: n must be positive");
  const uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so the log is finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  FAIRLAW_CHECK_MSG(stddev >= 0.0, "Normal: stddev must be >= 0");
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

int64_t Rng::Binomial(int64_t n, double p) {
  FAIRLAW_CHECK_MSG(n >= 0, "Binomial: n must be >= 0");
  int64_t successes = 0;
  for (int64_t i = 0; i < n; ++i) successes += Bernoulli(p) ? 1 : 0;
  return successes;
}

double Rng::Exponential(double rate) {
  FAIRLAW_CHECK_MSG(rate > 0.0, "Exponential: rate must be positive");
  return -std::log(1.0 - Uniform()) / rate;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  FAIRLAW_CHECK_MSG(!weights.empty(), "Categorical: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    FAIRLAW_CHECK_MSG(w >= 0.0, "Categorical: weights must be >= 0");
    total += w;
  }
  if (total <= 0.0) return static_cast<size_t>(UniformInt(weights.size()));
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  FAIRLAW_CHECK_MSG(k <= n, "SampleWithoutReplacement: k must not exceed n");
  // Partial Fisher–Yates over an index vector; O(n) memory is fine at the
  // population sizes fairlaw works with.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace fairlaw::stats
