#include "stats/calibration.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::stats {
namespace {

Status CheckInputs(std::span<const int> labels,
                   std::span<const double> scores) {
  if (labels.size() != scores.size()) {
    return Status::Invalid("calibration: size mismatch");
  }
  if (labels.empty()) return Status::Invalid("calibration: empty input");
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::Invalid("calibration: labels must be 0/1");
    }
    if (scores[i] < 0.0 || scores[i] > 1.0 || !std::isfinite(scores[i])) {
      return Status::Invalid("calibration: scores must lie in [0,1]");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<ReliabilityBin>> ReliabilityDiagram(
    std::span<const int> labels, std::span<const double> scores,
    size_t num_bins) {
  FAIRLAW_RETURN_NOT_OK(CheckInputs(labels, scores));
  if (num_bins == 0) {
    return Status::Invalid("ReliabilityDiagram: num_bins must be >= 1");
  }
  std::vector<ReliabilityBin> bins(num_bins);
  std::vector<double> score_sum(num_bins, 0.0);
  std::vector<size_t> positives(num_bins, 0);
  for (size_t b = 0; b < num_bins; ++b) {
    bins[b].lower = static_cast<double>(b) / static_cast<double>(num_bins);
    bins[b].upper =
        static_cast<double>(b + 1) / static_cast<double>(num_bins);
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    size_t b = std::min(
        static_cast<size_t>(scores[i] * static_cast<double>(num_bins)),
        num_bins - 1);
    ++bins[b].count;
    score_sum[b] += scores[i];
    positives[b] += labels[i] == 1 ? 1 : 0;
  }
  for (size_t b = 0; b < num_bins; ++b) {
    if (bins[b].count > 0) {
      bins[b].mean_score = score_sum[b] / static_cast<double>(bins[b].count);
      bins[b].positive_rate = static_cast<double>(positives[b]) /
                              static_cast<double>(bins[b].count);
    }
  }
  return bins;
}

Result<double> ExpectedCalibrationError(std::span<const int> labels,
                                        std::span<const double> scores,
                                        size_t num_bins) {
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<ReliabilityBin> bins,
                           ReliabilityDiagram(labels, scores, num_bins));
  double ece = 0.0;
  const double n = static_cast<double>(labels.size());
  for (const ReliabilityBin& bin : bins) {
    if (bin.count == 0) continue;
    ece += static_cast<double>(bin.count) / n *
           std::fabs(bin.mean_score - bin.positive_rate);
  }
  return ece;
}

Result<double> BrierScore(std::span<const int> labels,
                          std::span<const double> scores) {
  FAIRLAW_RETURN_NOT_OK(CheckInputs(labels, scores));
  double total = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    double diff = scores[i] - static_cast<double>(labels[i]);
    total += diff * diff;
  }
  return total / static_cast<double>(labels.size());
}

}  // namespace fairlaw::stats
