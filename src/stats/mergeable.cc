#include "stats/mergeable.h"

namespace fairlaw::stats {

size_t GroupCountsAccumulator::KeyIndex(std::string_view key) {
  auto [it, inserted] = index_.try_emplace(std::string(key), keys_.size());
  if (inserted) {
    keys_.emplace_back(key);
    counts_.emplace_back();
  }
  return it->second;
}

void GroupCountsAccumulator::Add(std::string_view key,
                                 const GroupCounts& counts) {
  counts_[KeyIndex(key)] += counts;
}

void GroupCountsAccumulator::MergeFrom(const GroupCountsAccumulator& other) {
  for (size_t i = 0; i < other.keys_.size(); ++i) {
    counts_[KeyIndex(other.keys_[i])] += other.counts_[i];
  }
}

GroupCountsAccumulator* StratifiedCountsAccumulator::Stratum(
    std::string_view stratum) {
  auto [it, inserted] = index_.try_emplace(std::string(stratum), keys_.size());
  if (inserted) {
    keys_.emplace_back(stratum);
    strata_.emplace_back();
  }
  return &strata_[it->second];
}

void StratifiedCountsAccumulator::MergeFrom(
    const StratifiedCountsAccumulator& other) {
  for (size_t i = 0; i < other.keys_.size(); ++i) {
    Stratum(other.keys_[i])->MergeFrom(other.strata_[i]);
  }
}

size_t GroupedSeries::KeyIndex(std::string_view key) {
  auto [it, inserted] = index_.try_emplace(std::string(key), keys_.size());
  if (inserted) {
    keys_.emplace_back(key);
    values_.emplace_back();
    tags_.emplace_back();
  }
  return it->second;
}

void GroupedSeries::Append(size_t key_index, double value, uint8_t tag) {
  values_[key_index].push_back(value);
  tags_[key_index].push_back(tag);
}

void GroupedSeries::MergeFrom(const GroupedSeries& other) {
  for (size_t i = 0; i < other.keys_.size(); ++i) {
    const size_t slot = KeyIndex(other.keys_[i]);
    values_[slot].insert(values_[slot].end(), other.values_[i].begin(),
                         other.values_[i].end());
    tags_[slot].insert(tags_[slot].end(), other.tags_[i].begin(),
                       other.tags_[i].end());
  }
}

size_t GroupedSketches::KeyIndex(std::string_view key) {
  auto [it, inserted] = index_.try_emplace(std::string(key), keys_.size());
  if (inserted) {
    keys_.emplace_back(key);
    sketches_.emplace_back(options_);
  }
  return it->second;
}

size_t GroupedSketches::FindKey(std::string_view key) const {
  auto it = index_.find(key);
  return it == index_.end() ? keys_.size() : it->second;
}

void GroupedSketches::Add(size_t key_index, double value) {
  sketches_[key_index].Add(value);
}

void GroupedSketches::MergeFrom(const GroupedSketches& other) {
  for (size_t i = 0; i < other.keys_.size(); ++i) {
    sketches_[KeyIndex(other.keys_[i])].Merge(other.sketches_[i]);
  }
}

}  // namespace fairlaw::stats
