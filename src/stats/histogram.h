#ifndef FAIRLAW_STATS_HISTOGRAM_H_
#define FAIRLAW_STATS_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// Equal-width histogram over [lo, hi] with a fixed bin count.
///
/// Values outside [lo, hi] are clamped into the first/last bin so that a
/// histogram built from a sample always accounts for every observation —
/// bias-detection distances must compare full distributions, not trimmed
/// ones.
class Histogram {
 public:
  /// Creates an empty histogram. Requires lo < hi and bins >= 1.
  FAIRLAW_NODISCARD static Result<Histogram> Make(double lo, double hi, size_t bins);

  /// Creates a histogram spanning the min/max of `values` and adds them.
  /// Requires a non-empty, non-constant sample.
  FAIRLAW_NODISCARD static Result<Histogram> FromValues(std::span<const double> values,
                                      size_t bins);

  /// Adds one observation (clamped into range) with the given weight.
  void Add(double value, double weight = 1.0);

  /// Adds every value in `values` with weight 1.
  void AddAll(std::span<const double> values);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double total_weight() const { return total_weight_; }

  /// Weight accumulated in bin `i`.
  double count(size_t i) const { return counts_[i]; }

  /// Bin probabilities (counts normalized to sum 1). Returns a uniform
  /// vector when the histogram is empty so that distance computations
  /// remain well defined.
  std::vector<double> Probabilities() const;

  /// Midpoint of bin `i`.
  double BinCenter(size_t i) const;

  /// Index of the bin receiving `value`.
  size_t BinIndex(double value) const;

 private:
  Histogram(double lo, double hi, size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0.0) {}

  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_weight_ = 0.0;
};

/// Frequency table over categorical values identified by string labels.
class CategoricalHistogram {
 public:
  /// Adds one observation of `category` with the given weight.
  void Add(const std::string& category, double weight = 1.0);

  /// Categories in first-seen order.
  const std::vector<std::string>& categories() const { return categories_; }

  /// Weight for `category` (0 if unseen).
  double count(const std::string& category) const;

  double total_weight() const { return total_weight_; }

  /// Probabilities aligned with categories(). Uniform when empty.
  std::vector<double> Probabilities() const;

  /// Probabilities aligned with an externally supplied category order;
  /// unseen categories get probability 0.
  std::vector<double> ProbabilitiesFor(
      const std::vector<std::string>& order) const;

 private:
  std::vector<std::string> categories_;
  std::vector<double> counts_;
  double total_weight_ = 0.0;
};

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_HISTOGRAM_H_
