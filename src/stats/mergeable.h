#ifndef FAIRLAW_STATS_MERGEABLE_H_
#define FAIRLAW_STATS_MERGEABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stats/kll.h"

namespace fairlaw::stats {

/// Chunk-mergeable accumulators for the morsel-driven audit engine.
///
/// The determinism contract (DESIGN.md §14): every morsel produces one of
/// these over its own rows, and the scheduler merges them in
/// sequence-numbered chunk order. Because the payloads are exact integer
/// tallies (or row-ordered series), a merge in chunk order reconstructs
/// exactly what a single sequential pass over the whole table would have
/// produced — which is what makes audit output byte-identical for any
/// thread count and any chunk size. Keys keep first-seen order under the
/// same rule: a key's position is where the first row holding it appears
/// in global row order.
///
/// Layering note: this lives in stats (below data/metrics) on purpose —
/// it is plain keyed arithmetic with no table or bitmap dependencies, and
/// the planned `fairlaw_serve` sketches merge through the same interface.

/// Exact integer tallies for one group. The four stored fields are the
/// popcount outputs of the metric kernels; everything else a group metric
/// needs (negatives, FP, rates) derives from them after the merge.
struct GroupCounts {
  int64_t count = 0;
  int64_t positive_predictions = 0;
  int64_t actual_positives = 0;
  int64_t true_positives = 0;

  GroupCounts& operator+=(const GroupCounts& other) {
    count += other.count;
    positive_predictions += other.positive_predictions;
    actual_positives += other.actual_positives;
    true_positives += other.true_positives;
    return *this;
  }
  friend bool operator==(const GroupCounts& a, const GroupCounts& b) = default;
};

/// First-seen-ordered map from group key to GroupCounts, mergeable in
/// chunk order.
class GroupCountsAccumulator {
 public:
  /// Returns the slot index for `key`, inserting (zeroed, at the end of
  /// the first-seen order) when absent.
  size_t KeyIndex(std::string_view key);

  /// Adds `counts` into `key`'s slot.
  void Add(std::string_view key, const GroupCounts& counts);

  /// Folds `other` in: other's keys are appended in their first-seen
  /// order, existing keys accumulate. Calling MergeFrom over chunk
  /// partials in ascending chunk order reproduces the whole-table pass.
  void MergeFrom(const GroupCountsAccumulator& other);

  size_t num_keys() const { return keys_.size(); }
  const std::vector<std::string>& keys() const { return keys_; }
  const GroupCounts& counts(size_t key_index) const {
    return counts_[key_index];
  }

 private:
  std::vector<std::string> keys_;
  std::vector<GroupCounts> counts_;
  std::map<std::string, size_t, std::less<>> index_;
};

/// Two-level accumulator: stratum -> per-group tallies, both levels in
/// first-seen order, merged stratum-by-stratum in chunk order. Feeds the
/// conditional (stratified) metrics.
class StratifiedCountsAccumulator {
 public:
  /// The per-group accumulator for `stratum`, inserting an empty one (at
  /// the end of the first-seen order) when absent.
  GroupCountsAccumulator* Stratum(std::string_view stratum);

  void MergeFrom(const StratifiedCountsAccumulator& other);

  size_t num_strata() const { return keys_.size(); }
  const std::vector<std::string>& keys() const { return keys_; }
  const GroupCountsAccumulator& stratum(size_t index) const {
    return strata_[index];
  }

 private:
  std::vector<std::string> keys_;
  std::vector<GroupCountsAccumulator> strata_;
  std::map<std::string, size_t, std::less<>> index_;
};

/// Row-ordered per-key series: each key holds parallel (value, tag)
/// vectors in global row order. Merging chunk partials in chunk order
/// concatenates each key's rows in row order, so order-sensitive floating
/// point consumers (calibration's running sums, score-distribution
/// sorts) see exactly the sequence a sequential pass would have fed them.
class GroupedSeries {
 public:
  size_t KeyIndex(std::string_view key);

  /// Appends one row to `key_index`'s series.
  void Append(size_t key_index, double value, uint8_t tag);

  void MergeFrom(const GroupedSeries& other);

  size_t num_keys() const { return keys_.size(); }
  const std::vector<std::string>& keys() const { return keys_; }
  const std::vector<double>& values(size_t key_index) const {
    return values_[key_index];
  }
  const std::vector<uint8_t>& tags(size_t key_index) const {
    return tags_[key_index];
  }

 private:
  std::vector<std::string> keys_;
  std::vector<std::vector<double>> values_;
  std::vector<std::vector<uint8_t>> tags_;
  std::map<std::string, size_t, std::less<>> index_;
};

/// First-seen-ordered map from group key to a KLL quantile sketch — the
/// bounded-memory counterpart of GroupedSeries for the serve daemon's
/// window buckets, where score series cannot grow with history. Same
/// merge contract as the other accumulators: MergeFrom in ascending
/// bucket order reproduces the single sequential pass (the sketch's own
/// coin stream is counter-based, so state is a pure function of the
/// operation sequence).
class GroupedSketches {
 public:
  explicit GroupedSketches(const KllSketch::Options& options = {})
      : options_(options) {}

  /// Slot index for `key`, inserting an empty sketch (at the end of the
  /// first-seen order) when absent.
  size_t KeyIndex(std::string_view key);

  /// Read-only lookup: the slot index for `key`, or num_keys() when
  /// absent (serve's window fold probes buckets without mutating them).
  size_t FindKey(std::string_view key) const;

  /// Adds one score into `key_index`'s sketch.
  void Add(size_t key_index, double value);

  /// Folds other's sketches in: other's keys append in their first-seen
  /// order; sketches for shared keys merge self-first.
  void MergeFrom(const GroupedSketches& other);

  size_t num_keys() const { return keys_.size(); }
  const std::vector<std::string>& keys() const { return keys_; }
  const KllSketch& sketch(size_t key_index) const {
    return sketches_[key_index];
  }
  /// Mutable slot access for parallel window folds: the caller
  /// establishes the canonical key order serially via KeyIndex, then
  /// workers each fill one distinct slot (serve's per-group merge
  /// chains) — indexed writes, never shared-state compound updates.
  KllSketch* mutable_sketch(size_t key_index) {
    return &sketches_[key_index];
  }
  const KllSketch::Options& options() const { return options_; }

  friend bool operator==(const GroupedSketches& a, const GroupedSketches& b) {
    return a.keys_ == b.keys_ && a.sketches_ == b.sketches_;
  }

 private:
  KllSketch::Options options_;
  std::vector<std::string> keys_;
  std::vector<KllSketch> sketches_;
  std::map<std::string, size_t, std::less<>> index_;
};

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_MERGEABLE_H_
