#include "stats/ot.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairlaw::stats {
namespace {

constexpr double kMassEpsilon = 1e-12;

Status ValidateInputs(std::span<const double> p, std::span<const double> q,
                      const std::vector<std::vector<double>>& cost) {
  if (p.empty() || q.empty()) {
    return Status::Invalid("optimal transport: empty distribution");
  }
  if (cost.size() != p.size()) {
    return Status::Invalid("optimal transport: cost matrix row count != |p|");
  }
  for (const auto& row : cost) {
    if (row.size() != q.size()) {
      return Status::Invalid(
          "optimal transport: cost matrix column count != |q|");
    }
    for (double c : row) {
      if (c < 0.0 || !std::isfinite(c)) {
        return Status::Invalid("optimal transport: costs must be finite and "
                               "non-negative");
      }
    }
  }
  double sum_p = 0.0;
  double sum_q = 0.0;
  for (double v : p) {
    if (v < 0.0) return Status::Invalid("optimal transport: negative mass");
    sum_p += v;
  }
  for (double v : q) {
    if (v < 0.0) return Status::Invalid("optimal transport: negative mass");
    sum_q += v;
  }
  if (sum_p <= 0.0 || sum_q <= 0.0) {
    return Status::Invalid("optimal transport: zero total mass");
  }
  if (std::fabs(sum_p - sum_q) > 1e-6 * std::max(sum_p, sum_q)) {
    return Status::Invalid("optimal transport: masses must balance");
  }
  return Status::OK();
}

}  // namespace

Result<TransportPlan> ExactTransport(
    std::span<const double> p, std::span<const double> q,
    const std::vector<std::vector<double>>& cost) {
  FAIRLAW_RETURN_NOT_OK(ValidateInputs(p, q, cost));
  const size_t n = p.size();
  const size_t m = q.size();

  // Normalize so both sides sum to exactly 1.
  double sum_p = 0.0;
  for (double v : p) sum_p += v;
  double sum_q = 0.0;
  for (double v : q) sum_q += v;
  std::vector<double> supply(p.begin(), p.end());
  std::vector<double> demand(q.begin(), q.end());
  for (double& v : supply) v /= sum_p;
  for (double& v : demand) v /= sum_q;

  TransportPlan result;
  result.plan.assign(n, std::vector<double>(m, 0.0));

  // Successive shortest augmenting paths on the bipartite residual graph
  // with Johnson potentials: Dijkstra over reduced costs
  // c'(u,v) = c(u,v) + phi(u) - phi(v), which stay non-negative when every
  // augmentation follows a shortest path. Nodes: sources 0..n-1, targets
  // n..n+m-1.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> potential(n + m, 0.0);
  while (true) {
    // Multi-source Dijkstra from every source with remaining supply.
    std::vector<double> dist(n + m, kInf);
    std::vector<int> parent(n + m, -1);
    std::vector<uint8_t> done(n + m, 0);
    for (size_t i = 0; i < n; ++i) {
      if (supply[i] > kMassEpsilon) dist[i] = 0.0;
    }
    for (size_t iter = 0; iter < n + m; ++iter) {
      int u = -1;
      double best = kInf;
      for (size_t v = 0; v < n + m; ++v) {
        if (!done[v] && dist[v] < best) {
          best = dist[v];
          u = static_cast<int>(v);
        }
      }
      if (u < 0) break;
      done[u] = true;
      if (u < static_cast<int>(n)) {
        // Forward edges source u -> every target j.
        for (size_t j = 0; j < m; ++j) {
          double reduced = cost[u][j] + potential[u] - potential[n + j];
          if (reduced < 0.0) reduced = 0.0;  // clamp rounding residue
          double nd = dist[u] + reduced;
          if (nd < dist[n + j]) {
            dist[n + j] = nd;
            parent[n + j] = u;
          }
        }
      } else {
        // Residual edges target (u-n) -> source i where plan[i][u-n] > 0.
        size_t j = static_cast<size_t>(u) - n;
        for (size_t i = 0; i < n; ++i) {
          if (result.plan[i][j] <= kMassEpsilon) continue;
          double reduced = -cost[i][j] + potential[u] - potential[i];
          if (reduced < 0.0) reduced = 0.0;
          double nd = dist[u] + reduced;
          if (nd < dist[i]) {
            dist[i] = nd;
            parent[i] = u;
          }
        }
      }
    }

    // Pick the reachable target with remaining demand at minimum distance.
    int best_target = -1;
    double best_dist = kInf;
    for (size_t j = 0; j < m; ++j) {
      if (demand[j] > kMassEpsilon && dist[n + j] < best_dist) {
        best_dist = dist[n + j];
        best_target = static_cast<int>(j);
      }
    }
    if (best_target < 0) break;  // all demand satisfied (or unreachable)

    // Trace the path back and find the bottleneck mass. Parent pointers
    // form a tree under Dijkstra, so the walk terminates.
    double bottleneck = demand[best_target];
    int node = static_cast<int>(n) + best_target;
    while (parent[node] >= 0) {
      int prev = parent[node];
      if (node < static_cast<int>(n)) {
        // Residual edge prev(target) -> node(source): bounded by flow.
        bottleneck = std::min(bottleneck,
                              result.plan[node][prev - static_cast<int>(n)]);
      }
      node = prev;
    }
    bottleneck = std::min(bottleneck, supply[node]);
    if (bottleneck <= kMassEpsilon) break;  // numerically exhausted

    // Apply the augmentation.
    node = static_cast<int>(n) + best_target;
    while (parent[node] >= 0) {
      int prev = parent[node];
      if (node >= static_cast<int>(n)) {
        result.plan[prev][node - static_cast<int>(n)] += bottleneck;
      } else {
        result.plan[node][prev - static_cast<int>(n)] -= bottleneck;
      }
      node = prev;
    }
    supply[node] -= bottleneck;
    demand[best_target] -= bottleneck;

    // Update potentials so future reduced costs stay non-negative.
    for (size_t v = 0; v < n + m; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }
  }

  result.cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      result.cost += result.plan[i][j] * cost[i][j];
    }
  }
  return result;
}

Result<TransportPlan> SinkhornTransport(
    std::span<const double> p, std::span<const double> q,
    const std::vector<std::vector<double>>& cost, double epsilon,
    int max_iters, double tolerance) {
  FAIRLAW_RETURN_NOT_OK(ValidateInputs(p, q, cost));
  if (epsilon <= 0.0) {
    return Status::Invalid("Sinkhorn: epsilon must be positive");
  }
  const size_t n = p.size();
  const size_t m = q.size();

  double sum_p = 0.0;
  for (double v : p) sum_p += v;
  double sum_q = 0.0;
  for (double v : q) sum_q += v;
  std::vector<double> a(p.begin(), p.end());
  std::vector<double> b(q.begin(), q.end());
  for (double& v : a) v /= sum_p;
  for (double& v : b) v /= sum_q;

  // Gibbs kernel K = exp(-cost/eps).
  std::vector<std::vector<double>> kernel(n, std::vector<double>(m));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      kernel[i][j] = std::exp(-cost[i][j] / epsilon);
    }
  }

  std::vector<double> u(n, 1.0);
  std::vector<double> v(m, 1.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    // u = a ./ (K v)
    for (size_t i = 0; i < n; ++i) {
      double kv = 0.0;
      for (size_t j = 0; j < m; ++j) kv += kernel[i][j] * v[j];
      u[i] = kv > 0.0 ? a[i] / kv : 0.0;
    }
    // v = b ./ (K^T u)
    double max_violation = 0.0;
    for (size_t j = 0; j < m; ++j) {
      double ku = 0.0;
      for (size_t i = 0; i < n; ++i) ku += kernel[i][j] * u[i];
      double new_v = ku > 0.0 ? b[j] / ku : 0.0;
      max_violation = std::max(max_violation, std::fabs(new_v * ku - b[j]));
      v[j] = new_v;
    }
    // Check the row-marginal violation of the current plan.
    double row_violation = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (size_t j = 0; j < m; ++j) row += u[i] * kernel[i][j] * v[j];
      row_violation = std::max(row_violation, std::fabs(row - a[i]));
    }
    if (row_violation < tolerance) break;
  }

  TransportPlan result;
  result.plan.assign(n, std::vector<double>(m, 0.0));
  result.cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      result.plan[i][j] = u[i] * kernel[i][j] * v[j];
      result.cost += result.plan[i][j] * cost[i][j];
    }
  }
  return result;
}

Result<std::vector<double>> BarycentricProjection(
    const TransportPlan& plan, std::span<const double> source,
    std::span<const double> target) {
  if (plan.plan.size() != source.size()) {
    return Status::Invalid("BarycentricProjection: plan rows != |source|");
  }
  std::vector<double> projected(source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    if (plan.plan[i].size() != target.size()) {
      return Status::Invalid("BarycentricProjection: plan cols != |target|");
    }
    double mass = 0.0;
    double weighted = 0.0;
    for (size_t j = 0; j < target.size(); ++j) {
      mass += plan.plan[i][j];
      weighted += plan.plan[i][j] * target[j];
    }
    projected[i] = mass > kMassEpsilon ? weighted / mass : source[i];
  }
  return projected;
}

}  // namespace fairlaw::stats
