#ifndef FAIRLAW_STATS_HYPOTHESIS_H_
#define FAIRLAW_STATS_HYPOTHESIS_H_

#include <cstdint>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// Outcome of a hypothesis test.
struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
  /// True when p_value < the significance level the caller supplied.
  bool significant = false;
};

/// Standard normal CDF (via erfc).
double NormalCdf(double z);

/// Standard normal quantile (inverse CDF) for p in (0,1), via Acklam's
/// rational approximation refined by one Halley step (|error| < 1e-9).
FAIRLAW_NODISCARD Result<double> NormalQuantile(double p);

/// Two-proportion z-test: H0 says the success probabilities behind
/// (successes_a / n_a) and (successes_b / n_b) are equal; two-sided
/// p-value from the pooled estimator. Used to test whether a selection-
/// rate gap between two protected groups is statistically significant.
FAIRLAW_NODISCARD Result<TestResult> TwoProportionZTest(int64_t successes_a, int64_t n_a,
                                      int64_t successes_b, int64_t n_b,
                                      double alpha = 0.05);

/// Pearson chi-square test of independence on an r x c contingency table
/// of counts. P-value via the chi-square survival function (continued-
/// fraction incomplete gamma).
FAIRLAW_NODISCARD Result<TestResult> ChiSquareIndependence(
    const std::vector<std::vector<int64_t>>& table, double alpha = 0.05);

/// Upper regularized incomplete gamma Q(s, x) = Γ(s,x)/Γ(s); the survival
/// function of a Gamma(s,1) variable. Exposed for reuse by tests.
double RegularizedGammaQ(double s, double x);

/// Cramér's V effect size for an r x c contingency table: sqrt(chi2 / (n *
/// (min(r,c)-1))). Range [0, 1]; the proxy detector uses it to score the
/// association between a candidate proxy and the protected attribute.
FAIRLAW_NODISCARD Result<double> CramersV(const std::vector<std::vector<int64_t>>& table);

/// Mutual information (nats) of the joint distribution given by the
/// contingency table.
FAIRLAW_NODISCARD Result<double> MutualInformation(
    const std::vector<std::vector<int64_t>>& table);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_HYPOTHESIS_H_
