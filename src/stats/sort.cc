#include "stats/sort.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

namespace fairlaw::stats {
namespace {

constexpr uint64_t kSignBit = uint64_t{1} << 63;

/// Maps a double to a uint64 whose unsigned order matches the double's
/// numeric order: non-negatives get the sign bit set (so they sort above
/// negatives), negatives are bit-inverted (so more-negative sorts lower).
inline uint64_t KeyFromDouble(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return (bits & kSignBit) != 0 ? ~bits : bits ^ kSignBit;
}

inline double DoubleFromKey(uint64_t key) {
  const uint64_t bits = (key & kSignBit) != 0 ? key ^ kSignBit : ~key;
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void RadixSortDoubles(std::span<double> values) {
  const size_t n = values.size();
  if (n < 2) return;
  std::vector<uint64_t> keys(n);
  std::vector<uint64_t> scratch(n);
  for (size_t i = 0; i < n; ++i) keys[i] = KeyFromDouble(values[i]);

  uint64_t* source = keys.data();
  uint64_t* target = scratch.data();
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    std::array<size_t, 256> counts{};
    for (size_t i = 0; i < n; ++i) {
      ++counts[(source[i] >> shift) & 0xff];
    }
    // A pass whose keys all share one digit is the identity permutation.
    if (counts[(source[0] >> shift) & 0xff] == n) continue;
    size_t offset = 0;
    std::array<size_t, 256> starts{};
    for (size_t digit = 0; digit < 256; ++digit) {
      starts[digit] = offset;
      offset += counts[digit];
    }
    for (size_t i = 0; i < n; ++i) {
      target[starts[(source[i] >> shift) & 0xff]++] = source[i];
    }
    std::swap(source, target);
  }
  for (size_t i = 0; i < n; ++i) values[i] = DoubleFromKey(source[i]);
}

void SortDoubles(std::span<double> values) {
  if (values.size() >= kRadixSortMinSize) {
    RadixSortDoubles(values);
    return;
  }
  std::sort(values.begin(), values.end());
}

}  // namespace fairlaw::stats
