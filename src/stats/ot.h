#ifndef FAIRLAW_STATS_OT_H_
#define FAIRLAW_STATS_OT_H_

#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// A transport plan between two discrete distributions: plan[i][j] is the
/// mass moved from source atom i to target atom j.
struct TransportPlan {
  std::vector<std::vector<double>> plan;
  double cost = 0.0;  // total transport cost under the supplied cost matrix
};

/// Exact discrete optimal transport between source masses `p` and target
/// masses `q` under `cost` (cost[i][j] >= 0), solved by successive
/// shortest augmenting paths on the bipartite residual graph.
///
/// `p` and `q` must each sum to the same positive total (tolerance 1e-9;
/// they are normalized internally). Intended for small/medium supports
/// (up to a few hundred atoms), which covers the discrete protected-
/// attribute and quantile-bin use cases in fairness repair.
FAIRLAW_NODISCARD Result<TransportPlan> ExactTransport(
    std::span<const double> p, std::span<const double> q,
    const std::vector<std::vector<double>>& cost);

/// Entropy-regularized OT via Sinkhorn–Knopp iterations. Faster and
/// smoother than the exact solver; `epsilon` is the entropic regularization
/// strength (> 0), `max_iters` bounds the iteration count and `tolerance`
/// is the marginal violation at which iteration stops.
FAIRLAW_NODISCARD Result<TransportPlan> SinkhornTransport(
    std::span<const double> p, std::span<const double> q,
    const std::vector<std::vector<double>>& cost, double epsilon,
    int max_iters = 1000, double tolerance = 1e-9);

/// Barycentric projection of a transport plan: for each source atom i,
/// the cost-weighted average target location sum_j plan[i][j]*target[j] /
/// sum_j plan[i][j]. Source atoms with no outgoing mass keep their own
/// location from `source`.
FAIRLAW_NODISCARD Result<std::vector<double>> BarycentricProjection(
    const TransportPlan& plan, std::span<const double> source,
    std::span<const double> target);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_OT_H_
