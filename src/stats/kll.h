#ifndef FAIRLAW_STATS_KLL_H_
#define FAIRLAW_STATS_KLL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// Deterministic double-valued KLL quantile sketch (Karnin–Lang–Liberty).
///
/// The sketch keeps a ladder of levels; an item retained at level h
/// stands for 2^h input items. Level capacities decay geometrically
/// (ratio 2/3) from `k` at the top, so total retained items stay O(k)
/// and the rank error of any quantile query is O(1/k) with high
/// probability — independent of how many items streamed through.
///
/// Determinism contract (the serve daemon's byte-identity guarantee
/// rides on this): every compaction coin flip is drawn from the
/// counter-based stream SplitMix64(seed ^ compaction_index), never from
/// global entropy, so the full sketch state is a pure function of the
/// operation sequence (the interleaving of Add and Merge calls and
/// their arguments). Two sketches fed the same items in the same order
/// are equal member-for-member; batch boundaries cannot matter because
/// Add is per-item. Window queries merge per-bucket sketches in fixed
/// ascending bucket order, which pins the one remaining degree of
/// freedom (Merge is deliberately order-sensitive, like every other
/// chunk-order merge in the engine — see stats/mergeable.h).
class KllSketch {
 public:
  struct Options {
    /// Accuracy parameter: the top-level capacity. Retained items total
    /// ~3k; rank error is O(1/k). 200 gives ~1% rank error.
    uint32_t k = 200;
    /// Seed of the compaction coin stream.
    uint64_t seed = 0x9e3779b97f4a7c15ULL;
  };

  /// Default options. (A defaulted `options` argument would need
  /// Options complete inside its own enclosing class — ill-formed — so
  /// the zero-argument form is its own constructor.)
  KllSketch();
  explicit KllSketch(const Options& options);

  /// Inserts one finite value. Non-finite values are the caller's
  /// problem; the serve ingest path rejects them before they get here.
  void Add(double value);

  /// Folds `other` into this sketch: per level, other's retained items
  /// append after ours, then over-full levels compact bottom-up. The
  /// result represents the union of both inputs. Deterministic given
  /// the two states, but not commutative — callers must merge in a
  /// fixed order (the window ring merges ascending bucket order).
  void Merge(const KllSketch& other);

  /// Total weight (number of items ever inserted, including through
  /// merges).
  uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Number of retained (value, weight) items across all levels.
  size_t num_retained() const;

  /// Value at quantile `q` in [0,1]: the smallest retained value whose
  /// estimated rank reaches q*count(). Invalid on an empty sketch or
  /// q outside [0,1].
  FAIRLAW_NODISCARD Result<double> Quantile(double q) const;

  /// Estimated fraction of inserted items <= x. Invalid on an empty
  /// sketch.
  FAIRLAW_NODISCARD Result<double> Cdf(double x) const;

  /// Retained items as a weight-sorted support: (value, weight) pairs
  /// in ascending value order. The empirical CDF over these points is
  /// the sketch's distribution estimate; the sketch distance kernels
  /// below sweep it directly.
  struct WeightedItem {
    double value = 0.0;
    uint64_t weight = 0;
    friend bool operator==(const WeightedItem&, const WeightedItem&) =
        default;
  };
  std::vector<WeightedItem> SortedItems() const;

  /// Member-for-member equality — the byte-identity oracle the batch-
  /// permutation and thread-determinism tests compare with.
  friend bool operator==(const KllSketch& a, const KllSketch& b) {
    return a.k_ == b.k_ && a.seed_ == b.seed_ && a.n_ == b.n_ &&
           a.compactions_ == b.compactions_ && a.levels_ == b.levels_;
  }

 private:
  /// Capacity of level h given the current ladder height.
  size_t LevelCapacity(size_t level) const;
  size_t TotalCapacity() const;
  size_t TotalRetained() const;
  /// Compacts the lowest over-full (or, failing that, lowest
  /// compactable) level once; returns false when nothing can compact.
  bool CompactOnce();
  /// Counter-based coin: SplitMix64(seed ^ compaction index) & 1.
  bool NextCoin();

  uint32_t k_;
  uint64_t seed_;
  uint64_t n_ = 0;
  uint64_t compactions_ = 0;
  /// levels_[h] holds items of weight 2^h, unsorted between compactions.
  std::vector<std::vector<double>> levels_;
};

/// Kolmogorov–Smirnov statistic between the distribution estimates of
/// two sketches: max |F_p - F_q| over the union of their retained
/// supports. Error is bounded by the sum of the sketches' rank errors
/// (O(1/k) each). Invalid when either sketch is empty.
FAIRLAW_NODISCARD Result<double> KolmogorovSmirnovSketch(const KllSketch& p,
                                                         const KllSketch& q);

/// Wasserstein-1 distance between the sketch distribution estimates:
/// the integral of |F_p - F_q| over the union support, evaluated
/// exactly on the two step functions. Error is O(range/k). Invalid
/// when either sketch is empty.
FAIRLAW_NODISCARD Result<double> Wasserstein1Sketch(const KllSketch& p,
                                                    const KllSketch& q);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_KLL_H_
