#include "stats/histogram.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace fairlaw::stats {

Result<Histogram> Histogram::Make(double lo, double hi, size_t bins) {
  if (!(lo < hi)) return Status::Invalid("Histogram: requires lo < hi");
  if (bins == 0) return Status::Invalid("Histogram: requires bins >= 1");
  return Histogram(lo, hi, bins);
}

Result<Histogram> Histogram::FromValues(std::span<const double> values,
                                        size_t bins) {
  FAIRLAW_ASSIGN_OR_RETURN(double lo, Min(values));
  FAIRLAW_ASSIGN_OR_RETURN(double hi, Max(values));
  if (lo == hi) {
    return Status::Invalid("Histogram::FromValues: constant sample");
  }
  FAIRLAW_ASSIGN_OR_RETURN(Histogram hist, Make(lo, hi, bins));
  hist.AddAll(values);
  return hist;
}

size_t Histogram::BinIndex(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  double fraction = (value - lo_) / (hi_ - lo_);
  size_t index = static_cast<size_t>(fraction *
                                     static_cast<double>(counts_.size()));
  return std::min(index, counts_.size() - 1);
}

void Histogram::Add(double value, double weight) {
  counts_[BinIndex(value)] += weight;
  total_weight_ += weight;
}

void Histogram::AddAll(std::span<const double> values) {
  for (double v : values) Add(v);
}

std::vector<double> Histogram::Probabilities() const {
  std::vector<double> probs(counts_.size());
  if (total_weight_ <= 0.0) {
    std::fill(probs.begin(), probs.end(),
              1.0 / static_cast<double>(counts_.size()));
    return probs;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    probs[i] = counts_[i] / total_weight_;
  }
  return probs;
}

double Histogram::BinCenter(size_t i) const {
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

void CategoricalHistogram::Add(const std::string& category, double weight) {
  for (size_t i = 0; i < categories_.size(); ++i) {
    if (categories_[i] == category) {
      counts_[i] += weight;
      total_weight_ += weight;
      return;
    }
  }
  categories_.push_back(category);
  counts_.push_back(weight);
  total_weight_ += weight;
}

double CategoricalHistogram::count(const std::string& category) const {
  for (size_t i = 0; i < categories_.size(); ++i) {
    if (categories_[i] == category) return counts_[i];
  }
  return 0.0;
}

std::vector<double> CategoricalHistogram::Probabilities() const {
  std::vector<double> probs(counts_.size());
  if (total_weight_ <= 0.0) {
    std::fill(probs.begin(), probs.end(),
              counts_.empty() ? 0.0 : 1.0 / static_cast<double>(counts_.size()));
    return probs;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    probs[i] = counts_[i] / total_weight_;
  }
  return probs;
}

std::vector<double> CategoricalHistogram::ProbabilitiesFor(
    const std::vector<std::string>& order) const {
  std::vector<double> probs(order.size(), 0.0);
  if (total_weight_ <= 0.0) return probs;
  for (size_t i = 0; i < order.size(); ++i) {
    probs[i] = count(order[i]) / total_weight_;
  }
  return probs;
}

}  // namespace fairlaw::stats
