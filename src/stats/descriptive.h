#ifndef FAIRLAW_STATS_DESCRIPTIVE_H_
#define FAIRLAW_STATS_DESCRIPTIVE_H_

#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// Arithmetic mean. Returns InvalidArgument on empty input.
FAIRLAW_NODISCARD Result<double> Mean(std::span<const double> values);

/// Unbiased sample variance (denominator n-1). Requires n >= 2.
FAIRLAW_NODISCARD Result<double> Variance(std::span<const double> values);

/// Unbiased sample standard deviation. Requires n >= 2.
FAIRLAW_NODISCARD Result<double> StdDev(std::span<const double> values);

/// Weighted mean with non-negative weights summing to a positive total.
FAIRLAW_NODISCARD Result<double> WeightedMean(std::span<const double> values,
                            std::span<const double> weights);

/// Smallest / largest element. Returns InvalidArgument on empty input.
FAIRLAW_NODISCARD Result<double> Min(std::span<const double> values);
FAIRLAW_NODISCARD Result<double> Max(std::span<const double> values);

/// Empirical quantile with linear interpolation between order statistics
/// (type-7, the numpy default). `q` must lie in [0, 1]; input need not be
/// sorted.
FAIRLAW_NODISCARD Result<double> Quantile(std::span<const double> values, double q);

/// Median (Quantile at 0.5).
FAIRLAW_NODISCARD Result<double> Median(std::span<const double> values);

/// Pearson correlation of two equal-length series. Requires n >= 2 and
/// non-zero variance on both sides.
FAIRLAW_NODISCARD Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y);

/// Point-biserial correlation between a binary indicator and a continuous
/// variable (equals Pearson of the 0/1 coding with the values).
FAIRLAW_NODISCARD Result<double> PointBiserialCorrelation(std::span<const uint8_t> indicator,
                                        std::span<const double> values);

/// Covariance (denominator n-1). Requires n >= 2.
FAIRLAW_NODISCARD Result<double> Covariance(std::span<const double> x,
                          std::span<const double> y);

/// Summary of a univariate sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // 0 when count < 2
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

/// Computes the full summary. Returns InvalidArgument on empty input.
FAIRLAW_NODISCARD Result<Summary> Summarize(std::span<const double> values);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_DESCRIPTIVE_H_
