#ifndef FAIRLAW_STATS_EMPIRICAL_H_
#define FAIRLAW_STATS_EMPIRICAL_H_

#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// Empirical distribution of a univariate continuous sample.
///
/// Stores the sorted sample and answers CDF / quantile queries; this is
/// the common substrate for the 1-D Wasserstein distance, the
/// Kolmogorov–Smirnov statistic, and quantile-based repair methods.
class EmpiricalDistribution {
 public:
  /// Builds from a non-empty sample (copied and sorted).
  FAIRLAW_NODISCARD static Result<EmpiricalDistribution> Make(std::span<const double> values);

  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// Right-continuous empirical CDF: fraction of sample <= x.
  double Cdf(double x) const;

  /// Empirical quantile with linear interpolation (type-7). q in [0,1] is
  /// clamped.
  double Quantile(double q) const;

  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

 private:
  explicit EmpiricalDistribution(std::vector<double> sorted)
      : sorted_(std::move(sorted)) {}

  std::vector<double> sorted_;
};

/// Discrete probability distribution over categories 0..k-1.
class DiscreteDistribution {
 public:
  /// Builds from non-negative masses with a positive total; masses are
  /// normalized to sum to 1.
  FAIRLAW_NODISCARD static Result<DiscreteDistribution> FromMasses(
      std::span<const double> masses);

  /// Builds from integer counts.
  FAIRLAW_NODISCARD static Result<DiscreteDistribution> FromCounts(
      std::span<const int64_t> counts);

  size_t size() const { return probs_.size(); }
  double prob(size_t i) const { return probs_[i]; }
  const std::vector<double>& probs() const { return probs_; }

 private:
  explicit DiscreteDistribution(std::vector<double> probs)
      : probs_(std::move(probs)) {}

  std::vector<double> probs_;
};

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_EMPIRICAL_H_
