#ifndef FAIRLAW_STATS_CALIBRATION_H_
#define FAIRLAW_STATS_CALIBRATION_H_

#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

/// One bin of a reliability diagram.
struct ReliabilityBin {
  double lower = 0.0;        // score bin [lower, upper)
  double upper = 0.0;
  size_t count = 0;          // examples whose score fell in the bin
  double mean_score = 0.0;   // average predicted probability
  double positive_rate = 0.0;  // empirical P(y=1) in the bin
};

/// Bins predictions into `num_bins` equal-width score bins over [0,1] and
/// computes the empirical positive rate per bin. Scores outside [0,1] are
/// an error.
FAIRLAW_NODISCARD Result<std::vector<ReliabilityBin>> ReliabilityDiagram(
    std::span<const int> labels, std::span<const double> scores,
    size_t num_bins = 10);

/// Expected calibration error: sum over bins of
/// (bin count / n) * |mean_score - positive_rate|.
FAIRLAW_NODISCARD Result<double> ExpectedCalibrationError(std::span<const int> labels,
                                        std::span<const double> scores,
                                        size_t num_bins = 10);

/// Brier score: mean squared error of probabilistic predictions.
FAIRLAW_NODISCARD Result<double> BrierScore(std::span<const int> labels,
                          std::span<const double> scores);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_CALIBRATION_H_
