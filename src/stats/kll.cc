#include "stats/kll.h"

#include <algorithm>
#include <cmath>

#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

// Floor for the geometric capacity decay: levels never shrink below
// this, so small sketches still compact in sensible steps.
constexpr size_t kMinLevelCapacity = 8;

}  // namespace

KllSketch::KllSketch() : KllSketch(Options()) {}

KllSketch::KllSketch(const Options& options)
    : k_(options.k == 0 ? 1 : options.k), seed_(options.seed) {
  levels_.emplace_back();
}

size_t KllSketch::LevelCapacity(size_t level) const {
  // cap(h) = max(min, ceil(k * (2/3)^(H-1-h))): the top level holds k
  // items, each level below two-thirds of the one above.
  const size_t height = levels_.size();
  double cap = static_cast<double>(k_);
  for (size_t h = height - 1; h > level; --h) cap *= 2.0 / 3.0;
  const auto rounded = static_cast<size_t>(std::ceil(cap));
  return std::max(kMinLevelCapacity, rounded);
}

size_t KllSketch::TotalCapacity() const {
  size_t total = 0;
  for (size_t h = 0; h < levels_.size(); ++h) total += LevelCapacity(h);
  return total;
}

size_t KllSketch::TotalRetained() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

bool KllSketch::NextCoin() {
  ++compactions_;
  return (SplitMix64(seed_ ^ compactions_) & 1) != 0;
}

bool KllSketch::CompactOnce() {
  // Compact the lowest level holding at least two items, preferring the
  // lowest over-capacity one. Compacting low levels first keeps the
  // cheap-to-recreate items churning and the heavy top items stable.
  size_t target = levels_.size();
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() > LevelCapacity(h)) {
      target = h;
      break;
    }
  }
  if (target == levels_.size()) {
    for (size_t h = 0; h < levels_.size(); ++h) {
      if (levels_[h].size() >= 2) {
        target = h;
        break;
      }
    }
  }
  if (target == levels_.size()) return false;

  // Grow the ladder before taking references: emplace_back may
  // reallocate levels_ and would invalidate them.
  if (target + 1 == levels_.size()) levels_.emplace_back();
  auto& level = levels_[target];
  if (level.size() < 2) return false;
  std::sort(level.begin(), level.end());

  std::vector<double> keep;
  size_t start = 0;
  if (level.size() % 2 == 1) {
    // Odd count: the first (smallest) item stays behind so the promoted
    // pairs cover an even count.
    keep.push_back(level[0]);
    start = 1;
  }
  const bool coin = NextCoin();
  auto& above = levels_[target + 1];
  for (size_t i = start + (coin ? 1 : 0); i < level.size(); i += 2) {
    above.push_back(level[i]);
  }
  level = std::move(keep);
  return true;
}

void KllSketch::Add(double value) {
  levels_[0].push_back(value);
  ++n_;
  while (TotalRetained() > TotalCapacity()) {
    if (!CompactOnce()) break;
  }
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.n_ == 0) return;
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  // Self's retained items come first at every level — merge order is
  // part of the deterministic contract, so callers must fold buckets in
  // ascending index order.
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  n_ += other.n_;
  while (TotalRetained() > TotalCapacity()) {
    if (!CompactOnce()) break;
  }
}

size_t KllSketch::num_retained() const { return TotalRetained(); }

std::vector<KllSketch::WeightedItem> KllSketch::SortedItems() const {
  std::vector<WeightedItem> items;
  items.reserve(TotalRetained());
  for (size_t h = 0; h < levels_.size(); ++h) {
    const auto weight = static_cast<uint64_t>(1) << h;
    for (double value : levels_[h]) items.push_back({value, weight});
  }
  std::sort(items.begin(), items.end(),
            [](const WeightedItem& a, const WeightedItem& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.weight < b.weight;
            });
  return items;
}

Result<double> KllSketch::Quantile(double q) const {
  if (n_ == 0) {
    return Status::Invalid("KllSketch::Quantile on empty sketch");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::Invalid("quantile must lie in [0, 1]");
  }
  const auto items = SortedItems();
  // Total retained weight can differ from n_ when compactions dropped
  // odd items; rank against the retained mass so q=1 hits the max.
  uint64_t total_weight = 0;
  for (const auto& item : items) total_weight += item.weight;
  const double target = q * static_cast<double>(total_weight);
  double cumulative = 0.0;
  for (const auto& item : items) {
    cumulative += static_cast<double>(item.weight);
    if (cumulative >= target) return item.value;
  }
  return items.back().value;
}

Result<double> KllSketch::Cdf(double x) const {
  if (n_ == 0) {
    return Status::Invalid("KllSketch::Cdf on empty sketch");
  }
  const auto items = SortedItems();
  uint64_t total_weight = 0;
  uint64_t at_or_below = 0;
  for (const auto& item : items) {
    total_weight += item.weight;
    if (item.value <= x) at_or_below += item.weight;
  }
  return static_cast<double>(at_or_below) /
         static_cast<double>(total_weight);
}

namespace {

// Two-pointer sweep over the union support of two weight-sorted item
// lists, invoking `visit(x, gap_to_next, fp, fq)` at every distinct
// union value with the CDFs evaluated just after x. Shared by the KS
// (max gap) and W1 (integrated gap) kernels below.
template <typename Visit>
Status SweepSketchCdfs(const KllSketch& p, const KllSketch& q,
                       Visit&& visit) {
  if (p.empty() || q.empty()) {
    return Status::Invalid(
        "sketch distance requires two non-empty sketches");
  }
  const auto items_p = p.SortedItems();
  const auto items_q = q.SortedItems();
  uint64_t total_p = 0;
  uint64_t total_q = 0;
  for (const auto& item : items_p) total_p += item.weight;
  for (const auto& item : items_q) total_q += item.weight;

  size_t i = 0;
  size_t j = 0;
  uint64_t mass_p = 0;
  uint64_t mass_q = 0;
  while (i < items_p.size() || j < items_q.size()) {
    double x;
    if (j >= items_q.size()) {
      x = items_p[i].value;
    } else if (i >= items_p.size()) {
      x = items_q[j].value;
    } else {
      x = std::min(items_p[i].value, items_q[j].value);
    }
    while (i < items_p.size() && items_p[i].value == x) {
      mass_p += items_p[i].weight;
      ++i;
    }
    while (j < items_q.size() && items_q[j].value == x) {
      mass_q += items_q[j].weight;
      ++j;
    }
    double next = x;
    if (i < items_p.size()) next = items_p[i].value;
    if (j < items_q.size()) {
      next = (i < items_p.size()) ? std::min(next, items_q[j].value)
                                  : items_q[j].value;
    }
    const double fp =
        static_cast<double>(mass_p) / static_cast<double>(total_p);
    const double fq =
        static_cast<double>(mass_q) / static_cast<double>(total_q);
    visit(x, next - x, fp, fq);
  }
  return Status::OK();
}

}  // namespace

Result<double> KolmogorovSmirnovSketch(const KllSketch& p,
                                       const KllSketch& q) {
  double ks = 0.0;
  Status status =
      SweepSketchCdfs(p, q, [&ks](double, double, double fp, double fq) {
        ks = std::max(ks, std::abs(fp - fq));
      });
  if (!status.ok()) return status;
  return ks;
}

Result<double> Wasserstein1Sketch(const KllSketch& p, const KllSketch& q) {
  double w1 = 0.0;
  Status status =
      SweepSketchCdfs(p, q, [&w1](double, double gap, double fp, double fq) {
        w1 += gap * std::abs(fp - fq);
      });
  if (!status.ok()) return status;
  return w1;
}

}  // namespace fairlaw::stats
