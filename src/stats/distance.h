#ifndef FAIRLAW_STATS_DISTANCE_H_
#define FAIRLAW_STATS_DISTANCE_H_

#include <span>
#include <vector>

#include "base/result.h"
#include "stats/histogram.h"

namespace fairlaw::stats {

// Distances between probability distributions. These are the estimators
// §IV-F of the paper enumerates as the substrate of bias detection
// ("Hellinger, Total Variation (TV), Wasserstein (OT), Maximum Mean
// Discrepancy (MMD), etc."). Discrete variants operate on aligned
// probability vectors (same category order, each summing to ~1);
// continuous variants operate directly on samples.

/// Total variation distance: (1/2) * sum_i |p_i - q_i|. Range [0, 1].
FAIRLAW_NODISCARD Result<double> TotalVariation(std::span<const double> p,
                              std::span<const double> q);

/// Hellinger distance: sqrt(1 - sum_i sqrt(p_i q_i)) via the Bhattacharyya
/// coefficient, clamped for numerical safety. Range [0, 1].
FAIRLAW_NODISCARD Result<double> Hellinger(std::span<const double> p, std::span<const double> q);

/// Kullback–Leibler divergence KL(p || q) in nats. Infinite (returns
/// InvalidArgument) if q_i = 0 < p_i for some i.
FAIRLAW_NODISCARD Result<double> KlDivergence(std::span<const double> p,
                            std::span<const double> q);

/// Jensen–Shannon divergence (symmetrized, bounded by ln 2).
FAIRLAW_NODISCARD Result<double> JensenShannon(std::span<const double> p,
                             std::span<const double> q);

/// Chi-square divergence sum_i (p_i - q_i)^2 / q_i; requires q_i > 0
/// wherever p_i > 0 or p_i != q_i.
FAIRLAW_NODISCARD Result<double> ChiSquareDivergence(std::span<const double> p,
                                   std::span<const double> q);

/// Exact 1-D Wasserstein-1 (earth mover's) distance between two samples:
/// the integral of |F_x^{-1} - F_y^{-1}| over [0,1], computed from the
/// sorted samples. Samples may have different sizes.
FAIRLAW_NODISCARD Result<double> Wasserstein1Samples(std::span<const double> x,
                                   std::span<const double> y);

/// Wasserstein1Samples for inputs the caller has already sorted ascending
/// (cached sorted samples, repeated windowed comparisons). Skips the
/// per-call copy + sort; returns Status::Invalid when either input is
/// empty or out of order. Exactly equals Wasserstein1Samples on the same
/// data.
FAIRLAW_NODISCARD Result<double> Wasserstein1Presorted(
    std::span<const double> x_sorted, std::span<const double> y_sorted);

/// Wasserstein-1 between two histograms over the same [lo, hi] range with
/// the same bin count, treating each bin's mass as sitting at its center.
/// An O(bins) approximation of the sample distance — error is bounded by
/// one bin width — for monitoring paths that already maintain histograms.
FAIRLAW_NODISCARD Result<double> Wasserstein1Binned(const Histogram& p,
                                                    const Histogram& q);

/// Wasserstein-1 between two discrete distributions on the real line with
/// the given support points (strictly increasing) and probabilities.
FAIRLAW_NODISCARD Result<double> Wasserstein1Discrete(std::span<const double> support_p,
                                    std::span<const double> p,
                                    std::span<const double> support_q,
                                    std::span<const double> q);

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F_x - F_y|.
FAIRLAW_NODISCARD Result<double> KolmogorovSmirnov(std::span<const double> x,
                                 std::span<const double> y);

/// KolmogorovSmirnov for inputs already sorted ascending; same contract
/// as Wasserstein1Presorted.
FAIRLAW_NODISCARD Result<double> KolmogorovSmirnovPresorted(
    std::span<const double> x_sorted, std::span<const double> y_sorted);

/// KS statistic between two aligned histograms (same range and bin
/// count): the max CDF gap at bin granularity.
FAIRLAW_NODISCARD Result<double> KolmogorovSmirnovBinned(const Histogram& p,
                                                         const Histogram& q);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_DISTANCE_H_
