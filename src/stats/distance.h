#ifndef FAIRLAW_STATS_DISTANCE_H_
#define FAIRLAW_STATS_DISTANCE_H_

#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::stats {

// Distances between probability distributions. These are the estimators
// §IV-F of the paper enumerates as the substrate of bias detection
// ("Hellinger, Total Variation (TV), Wasserstein (OT), Maximum Mean
// Discrepancy (MMD), etc."). Discrete variants operate on aligned
// probability vectors (same category order, each summing to ~1);
// continuous variants operate directly on samples.

/// Total variation distance: (1/2) * sum_i |p_i - q_i|. Range [0, 1].
FAIRLAW_NODISCARD Result<double> TotalVariation(std::span<const double> p,
                              std::span<const double> q);

/// Hellinger distance: sqrt(1 - sum_i sqrt(p_i q_i)) via the Bhattacharyya
/// coefficient, clamped for numerical safety. Range [0, 1].
FAIRLAW_NODISCARD Result<double> Hellinger(std::span<const double> p, std::span<const double> q);

/// Kullback–Leibler divergence KL(p || q) in nats. Infinite (returns
/// InvalidArgument) if q_i = 0 < p_i for some i.
FAIRLAW_NODISCARD Result<double> KlDivergence(std::span<const double> p,
                            std::span<const double> q);

/// Jensen–Shannon divergence (symmetrized, bounded by ln 2).
FAIRLAW_NODISCARD Result<double> JensenShannon(std::span<const double> p,
                             std::span<const double> q);

/// Chi-square divergence sum_i (p_i - q_i)^2 / q_i; requires q_i > 0
/// wherever p_i > 0 or p_i != q_i.
FAIRLAW_NODISCARD Result<double> ChiSquareDivergence(std::span<const double> p,
                                   std::span<const double> q);

/// Exact 1-D Wasserstein-1 (earth mover's) distance between two samples:
/// the integral of |F_x^{-1} - F_y^{-1}| over [0,1], computed from the
/// sorted samples. Samples may have different sizes.
FAIRLAW_NODISCARD Result<double> Wasserstein1Samples(std::span<const double> x,
                                   std::span<const double> y);

/// Wasserstein-1 between two discrete distributions on the real line with
/// the given support points (strictly increasing) and probabilities.
FAIRLAW_NODISCARD Result<double> Wasserstein1Discrete(std::span<const double> support_p,
                                    std::span<const double> p,
                                    std::span<const double> support_q,
                                    std::span<const double> q);

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F_x - F_y|.
FAIRLAW_NODISCARD Result<double> KolmogorovSmirnov(std::span<const double> x,
                                 std::span<const double> y);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_DISTANCE_H_
