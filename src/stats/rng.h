#ifndef FAIRLAW_STATS_RNG_H_
#define FAIRLAW_STATS_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fairlaw::stats {

/// One splitmix64 mixing step: maps x to a well-scrambled 64-bit value.
/// The building block for counter-based RNG streams — replicate r of a
/// parallel computation seeds its own Rng from SplitMix64(base ^ f(r)),
/// so the draw sequence depends only on (base, r), never on which thread
/// runs the replicate.
uint64_t SplitMix64(uint64_t x);

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// All randomized components of fairlaw (generators, bootstrap, model
/// initialization, simulators) draw from an explicitly passed Rng so that
/// every experiment is reproducible from a single seed. The engine is
/// xoshiro256++ seeded through splitmix64, which has a 2^256-1 period and
/// passes BigCrush; the standard library engines are avoided because their
/// distributions are implementation-defined and would make results differ
/// across platforms.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal deviate (Box–Muller with caching).
  double Normal();

  /// Normal deviate with the given mean and standard deviation
  /// (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Binomial draw as n Bernoulli trials (fine for the n used here).
  int64_t Binomial(int64_t n, double p);

  /// Exponential deviate with the given rate (> 0).
  double Exponential(double rate);

  /// Draws an index in [0, weights.size()) proportionally to non-negative
  /// `weights`. If all weights are zero, draws uniformly.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Returns k distinct indices sampled uniformly from [0, n). Requires
  /// k <= n. Result order is random.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_RNG_H_
