#include "stats/distance.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "stats/sort.h"

namespace fairlaw::stats {
namespace {

Status CheckAligned(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    return Status::Invalid("distributions have different support sizes");
  }
  if (p.empty()) return Status::Invalid("empty distributions");
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0 || q[i] < 0.0) {
      return Status::Invalid("negative probability mass");
    }
  }
  return Status::OK();
}

Status CheckSorted(std::span<const double> v, const char* fn,
                   const char* which) {
  if (v.empty()) {
    return Status::Invalid(std::string(fn) + ": empty sample");
  }
  if (!std::is_sorted(v.begin(), v.end())) {
    return Status::Invalid(std::string(fn) + ": " + which +
                           " is not sorted ascending");
  }
  return Status::OK();
}

Status CheckAlignedHistograms(const Histogram& p, const Histogram& q,
                              const char* fn) {
  if (p.num_bins() != q.num_bins() || p.lo() != q.lo() || p.hi() != q.hi()) {
    return Status::Invalid(std::string(fn) + ": histograms must share the "
                           "same range and bin count");
  }
  return Status::OK();
}

/// Merged-quantile sweep over two ascending samples: the integral of
/// |F_x^{-1}(u) - F_y^{-1}(u)| du. Each sample point owns a block of
/// quantile mass, and on the intersection of two blocks both inverse CDFs
/// are constant.
double Wasserstein1SortedCore(std::span<const double> xs,
                              std::span<const double> ys) {
  const double nx = static_cast<double>(xs.size());
  const double ny = static_cast<double>(ys.size());
  size_t i = 0;
  size_t j = 0;
  double cursor = 0.0;  // current quantile level
  double total = 0.0;
  while (i < xs.size() && j < ys.size()) {
    double next_x = static_cast<double>(i + 1) / nx;
    double next_y = static_cast<double>(j + 1) / ny;
    double next = std::min(next_x, next_y);
    total += (next - cursor) * std::fabs(xs[i] - ys[j]);
    cursor = next;
    if (next_x <= next) ++i;
    if (next_y <= next) ++j;
  }
  return total;
}

/// CDF sweep over two ascending samples: sup_t |F_x(t) - F_y(t)|.
double KolmogorovSmirnovSortedCore(std::span<const double> xs,
                                   std::span<const double> ys) {
  const double nx = static_cast<double>(xs.size());
  const double ny = static_cast<double>(ys.size());
  size_t i = 0;
  size_t j = 0;
  double best = 0.0;
  while (i < xs.size() && j < ys.size()) {
    double t = std::min(xs[i], ys[j]);
    while (i < xs.size() && xs[i] <= t) ++i;
    while (j < ys.size() && ys[j] <= t) ++j;
    best = std::max(best, std::fabs(static_cast<double>(i) / nx -
                                    static_cast<double>(j) / ny));
  }
  return best;
}

}  // namespace

Result<double> TotalVariation(std::span<const double> p,
                              std::span<const double> q) {
  FAIRLAW_RETURN_NOT_OK(CheckAligned(p, q));
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) total += std::fabs(p[i] - q[i]);
  return 0.5 * total;
}

Result<double> Hellinger(std::span<const double> p,
                         std::span<const double> q) {
  FAIRLAW_RETURN_NOT_OK(CheckAligned(p, q));
  double bhattacharyya = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    bhattacharyya += std::sqrt(p[i] * q[i]);
  }
  // Clamp: rounding can push the coefficient slightly above 1.
  return std::sqrt(std::max(0.0, 1.0 - std::min(1.0, bhattacharyya)));
}

Result<double> KlDivergence(std::span<const double> p,
                            std::span<const double> q) {
  FAIRLAW_RETURN_NOT_OK(CheckAligned(p, q));
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) {
      return Status::Invalid("KL divergence is infinite: q has a zero where "
                             "p has mass");
    }
    total += p[i] * std::log(p[i] / q[i]);
  }
  return total;
}

Result<double> JensenShannon(std::span<const double> p,
                             std::span<const double> q) {
  FAIRLAW_RETURN_NOT_OK(CheckAligned(p, q));
  std::vector<double> mid(p.size());
  for (size_t i = 0; i < p.size(); ++i) mid[i] = 0.5 * (p[i] + q[i]);
  // The midpoint dominates both inputs, so the KL terms are finite.
  FAIRLAW_ASSIGN_OR_RETURN(double kl_p, KlDivergence(p, mid));
  FAIRLAW_ASSIGN_OR_RETURN(double kl_q, KlDivergence(q, mid));
  return 0.5 * kl_p + 0.5 * kl_q;
}

Result<double> ChiSquareDivergence(std::span<const double> p,
                                   std::span<const double> q) {
  FAIRLAW_RETURN_NOT_OK(CheckAligned(p, q));
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double diff = p[i] - q[i];
    if (diff == 0.0) continue;
    if (q[i] == 0.0) {
      return Status::Invalid("chi-square divergence undefined: q has a zero "
                             "where p differs");
    }
    total += diff * diff / q[i];
  }
  return total;
}

Result<double> Wasserstein1Samples(std::span<const double> x,
                                   std::span<const double> y) {
  if (x.empty() || y.empty()) {
    return Status::Invalid("Wasserstein1Samples: empty sample");
  }
  obs::TraceSpan span("distance/wasserstein1");
  std::vector<double> xs(x.begin(), x.end());
  std::vector<double> ys(y.begin(), y.end());
  SortDoubles(xs);
  SortDoubles(ys);
  return Wasserstein1SortedCore(xs, ys);
}

Result<double> Wasserstein1Presorted(std::span<const double> x_sorted,
                                     std::span<const double> y_sorted) {
  FAIRLAW_RETURN_NOT_OK(CheckSorted(x_sorted, "Wasserstein1Presorted", "x"));
  FAIRLAW_RETURN_NOT_OK(CheckSorted(y_sorted, "Wasserstein1Presorted", "y"));
  obs::TraceSpan span("distance/wasserstein1_presorted");
  return Wasserstein1SortedCore(x_sorted, y_sorted);
}

Result<double> Wasserstein1Binned(const Histogram& p, const Histogram& q) {
  FAIRLAW_RETURN_NOT_OK(CheckAlignedHistograms(p, q, "Wasserstein1Binned"));
  obs::TraceSpan span("distance/wasserstein1_binned");
  // W1 on the line = integral of |F_p - F_q| dt; with all mass at bin
  // centers both CDFs are constant between consecutive centers, which for
  // equal-width bins are one bin width apart.
  const std::vector<double> pp = p.Probabilities();
  const std::vector<double> qq = q.Probabilities();
  const double width = (p.hi() - p.lo()) / static_cast<double>(p.num_bins());
  double cdf_p = 0.0;
  double cdf_q = 0.0;
  double total = 0.0;
  for (size_t b = 0; b + 1 < pp.size(); ++b) {
    cdf_p += pp[b];
    cdf_q += qq[b];
    total += std::fabs(cdf_p - cdf_q) * width;
  }
  return total;
}

Result<double> Wasserstein1Discrete(std::span<const double> support_p,
                                    std::span<const double> p,
                                    std::span<const double> support_q,
                                    std::span<const double> q) {
  if (support_p.size() != p.size() || support_q.size() != q.size()) {
    return Status::Invalid("Wasserstein1Discrete: support/probability size "
                           "mismatch");
  }
  if (p.empty() || q.empty()) {
    return Status::Invalid("Wasserstein1Discrete: empty distribution");
  }
  for (size_t i = 1; i < support_p.size(); ++i) {
    if (support_p[i] <= support_p[i - 1]) {
      return Status::Invalid("Wasserstein1Discrete: support_p not strictly "
                             "increasing");
    }
  }
  for (size_t i = 1; i < support_q.size(); ++i) {
    if (support_q[i] <= support_q[i - 1]) {
      return Status::Invalid("Wasserstein1Discrete: support_q not strictly "
                             "increasing");
    }
  }
  // W1 on the line = integral over t of |F_p(t) - F_q(t)| dt; sweep the
  // merged support.
  std::vector<double> grid;
  grid.reserve(support_p.size() + support_q.size());
  grid.insert(grid.end(), support_p.begin(), support_p.end());
  grid.insert(grid.end(), support_q.begin(), support_q.end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  double total = 0.0;
  double cdf_p = 0.0;
  double cdf_q = 0.0;
  size_t ip = 0;
  size_t iq = 0;
  for (size_t g = 0; g + 1 < grid.size(); ++g) {
    while (ip < support_p.size() && support_p[ip] <= grid[g]) {
      cdf_p += p[ip++];
    }
    while (iq < support_q.size() && support_q[iq] <= grid[g]) {
      cdf_q += q[iq++];
    }
    total += std::fabs(cdf_p - cdf_q) * (grid[g + 1] - grid[g]);
  }
  return total;
}

Result<double> KolmogorovSmirnov(std::span<const double> x,
                                 std::span<const double> y) {
  if (x.empty() || y.empty()) {
    return Status::Invalid("KolmogorovSmirnov: empty sample");
  }
  obs::TraceSpan span("distance/kolmogorov_smirnov");
  std::vector<double> xs(x.begin(), x.end());
  std::vector<double> ys(y.begin(), y.end());
  SortDoubles(xs);
  SortDoubles(ys);
  return KolmogorovSmirnovSortedCore(xs, ys);
}

Result<double> KolmogorovSmirnovPresorted(std::span<const double> x_sorted,
                                          std::span<const double> y_sorted) {
  FAIRLAW_RETURN_NOT_OK(
      CheckSorted(x_sorted, "KolmogorovSmirnovPresorted", "x"));
  FAIRLAW_RETURN_NOT_OK(
      CheckSorted(y_sorted, "KolmogorovSmirnovPresorted", "y"));
  obs::TraceSpan span("distance/kolmogorov_smirnov_presorted");
  return KolmogorovSmirnovSortedCore(x_sorted, y_sorted);
}

Result<double> KolmogorovSmirnovBinned(const Histogram& p,
                                       const Histogram& q) {
  FAIRLAW_RETURN_NOT_OK(
      CheckAlignedHistograms(p, q, "KolmogorovSmirnovBinned"));
  obs::TraceSpan span("distance/kolmogorov_smirnov_binned");
  const std::vector<double> pp = p.Probabilities();
  const std::vector<double> qq = q.Probabilities();
  double cdf_p = 0.0;
  double cdf_q = 0.0;
  double best = 0.0;
  for (size_t b = 0; b < pp.size(); ++b) {
    cdf_p += pp[b];
    cdf_q += qq[b];
    best = std::max(best, std::fabs(cdf_p - cdf_q));
  }
  return best;
}

}  // namespace fairlaw::stats
