#include "stats/bootstrap.h"

#include <algorithm>

#include "base/thread_pool.h"
#include "obs/obs.h"
#include "stats/descriptive.h"

namespace fairlaw::stats {
namespace {

std::vector<double> Resample(std::span<const double> sample, Rng* rng) {
  std::vector<double> out(sample.size());
  for (double& v : out) {
    v = sample[rng->UniformInt(sample.size())];
  }
  return out;
}

Result<ConfidenceInterval> PercentileInterval(std::vector<double> replicas,
                                              double estimate, double level) {
  std::sort(replicas.begin(), replicas.end());
  const double alpha = (1.0 - level) / 2.0;
  ConfidenceInterval ci;
  ci.estimate = estimate;
  ci.level = level;
  FAIRLAW_ASSIGN_OR_RETURN(ci.lower, Quantile(replicas, alpha));
  FAIRLAW_ASSIGN_OR_RETURN(ci.upper, Quantile(replicas, 1.0 - alpha));
  return ci;
}

/// Cheap parameter checks shared by both entry points; runs before any
/// sample inspection or allocation so a bad replicate count or level is
/// reported first regardless of the sample contents.
Status CheckBootstrapArgs(int replicates, double level, const Rng* rng,
                          const char* fn) {
  if (replicates < 2) {
    return Status::Invalid(std::string(fn) + ": need >= 2 replicates");
  }
  if (level <= 0.0 || level >= 1.0) {
    return Status::Invalid(std::string(fn) + ": level must lie in (0,1)");
  }
  if (rng == nullptr) return Status::Invalid(std::string(fn) + ": null rng");
  return Status::OK();
}

/// The seed of replicate r's private stream. Mixing the counter before
/// xoring decorrelates streams even though the counters are sequential.
uint64_t ReplicateSeed(uint64_t stream_base, size_t r) {
  return SplitMix64(stream_base ^ SplitMix64(static_cast<uint64_t>(r)));
}

/// Runs fn(0..n-1), serially or on a pool. Every fn(r) writes only state
/// owned by replicate r, so no lock is needed and the outcome cannot
/// depend on scheduling.
void ForEachReplicate(size_t n, size_t num_threads,
                      const std::function<void(size_t)>& fn) {
  if (num_threads == 1 || n <= 1) {
    for (size_t r = 0; r < n; ++r) fn(r);
    return;
  }
  ThreadPool pool(num_threads == 0 ? 0 : std::min(num_threads, n));
  pool.ParallelFor(n, fn);
}

}  // namespace

Result<ConfidenceInterval> BootstrapCi(std::span<const double> sample,
                                       const Statistic& statistic,
                                       int replicates, double level, Rng* rng,
                                       size_t num_threads) {
  obs::TraceSpan span("bootstrap_ci");
  FAIRLAW_RETURN_NOT_OK(
      CheckBootstrapArgs(replicates, level, rng, "BootstrapCi"));
  if (sample.empty()) return Status::Invalid("BootstrapCi: empty sample");
  if (sample.size() == 1) {
    return Status::Invalid("BootstrapCi: sample of size 1 resamples to "
                           "itself; the interval would be zero-width");
  }
  // One draw from the caller's rng anchors all replicate streams, so the
  // whole computation stays reproducible from the caller's seed.
  const uint64_t stream_base = rng->Next();
  std::vector<double> replicas(static_cast<size_t>(replicates));
  ForEachReplicate(replicas.size(), num_threads, [&](size_t r) {
    Rng replicate_rng(ReplicateSeed(stream_base, r));
    std::vector<double> resampled = Resample(sample, &replicate_rng);
    replicas[r] = statistic(resampled);
  });
  obs::GetHistogram("bootstrap.replicates")->Record(replicas.size());
  return PercentileInterval(std::move(replicas), statistic(sample), level);
}

Result<ConfidenceInterval> BootstrapCiTwoSample(
    std::span<const double> sample_a, std::span<const double> sample_b,
    const TwoSampleStatistic& statistic, int replicates, double level,
    Rng* rng, size_t num_threads) {
  obs::TraceSpan span("bootstrap_ci_two_sample");
  FAIRLAW_RETURN_NOT_OK(
      CheckBootstrapArgs(replicates, level, rng, "BootstrapCiTwoSample"));
  if (sample_a.empty() || sample_b.empty()) {
    return Status::Invalid("BootstrapCiTwoSample: empty sample");
  }
  if (sample_a.size() == 1 && sample_b.size() == 1) {
    return Status::Invalid("BootstrapCiTwoSample: both samples have size 1; "
                           "every replicate is identical and the interval "
                           "would be zero-width");
  }
  const uint64_t stream_base = rng->Next();
  std::vector<double> replicas(static_cast<size_t>(replicates));
  ForEachReplicate(replicas.size(), num_threads, [&](size_t r) {
    Rng replicate_rng(ReplicateSeed(stream_base, r));
    std::vector<double> ra = Resample(sample_a, &replicate_rng);
    std::vector<double> rb = Resample(sample_b, &replicate_rng);
    replicas[r] = statistic(ra, rb);
  });
  obs::GetHistogram("bootstrap.replicates")->Record(replicas.size());
  return PercentileInterval(std::move(replicas),
                            statistic(sample_a, sample_b), level);
}

}  // namespace fairlaw::stats
