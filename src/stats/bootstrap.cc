#include "stats/bootstrap.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace fairlaw::stats {
namespace {

std::vector<double> Resample(std::span<const double> sample, Rng* rng) {
  std::vector<double> out(sample.size());
  for (double& v : out) {
    v = sample[rng->UniformInt(sample.size())];
  }
  return out;
}

Result<ConfidenceInterval> PercentileInterval(std::vector<double> replicas,
                                              double estimate, double level) {
  std::sort(replicas.begin(), replicas.end());
  const double alpha = (1.0 - level) / 2.0;
  ConfidenceInterval ci;
  ci.estimate = estimate;
  ci.level = level;
  FAIRLAW_ASSIGN_OR_RETURN(ci.lower, Quantile(replicas, alpha));
  FAIRLAW_ASSIGN_OR_RETURN(ci.upper, Quantile(replicas, 1.0 - alpha));
  return ci;
}

}  // namespace

Result<ConfidenceInterval> BootstrapCi(std::span<const double> sample,
                                       const Statistic& statistic,
                                       int replicates, double level,
                                       Rng* rng) {
  if (sample.empty()) return Status::Invalid("BootstrapCi: empty sample");
  if (replicates < 2) {
    return Status::Invalid("BootstrapCi: need >= 2 replicates");
  }
  if (level <= 0.0 || level >= 1.0) {
    return Status::Invalid("BootstrapCi: level must lie in (0,1)");
  }
  if (rng == nullptr) return Status::Invalid("BootstrapCi: null rng");
  std::vector<double> replicas(replicates);
  for (int r = 0; r < replicates; ++r) {
    std::vector<double> resampled = Resample(sample, rng);
    replicas[r] = statistic(resampled);
  }
  return PercentileInterval(std::move(replicas), statistic(sample), level);
}

Result<ConfidenceInterval> BootstrapCiTwoSample(
    std::span<const double> sample_a, std::span<const double> sample_b,
    const TwoSampleStatistic& statistic, int replicates, double level,
    Rng* rng) {
  if (sample_a.empty() || sample_b.empty()) {
    return Status::Invalid("BootstrapCiTwoSample: empty sample");
  }
  if (replicates < 2) {
    return Status::Invalid("BootstrapCiTwoSample: need >= 2 replicates");
  }
  if (level <= 0.0 || level >= 1.0) {
    return Status::Invalid("BootstrapCiTwoSample: level must lie in (0,1)");
  }
  if (rng == nullptr) return Status::Invalid("BootstrapCiTwoSample: null rng");
  std::vector<double> replicas(replicates);
  for (int r = 0; r < replicates; ++r) {
    std::vector<double> ra = Resample(sample_a, rng);
    std::vector<double> rb = Resample(sample_b, rng);
    replicas[r] = statistic(ra, rb);
  }
  return PercentileInterval(std::move(replicas),
                            statistic(sample_a, sample_b), level);
}

}  // namespace fairlaw::stats
