#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace fairlaw::stats {
namespace {

// Series expansion of the lower regularized incomplete gamma P(s, x);
// converges for x < s + 1. (Numerical Recipes "gser".)
double GammaPSeries(double s, double x) {
  double ap = s;
  double sum = 1.0 / s;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + s * std::log(x) - std::lgamma(s));
}

// Continued fraction for the upper regularized incomplete gamma Q(s, x);
// converges for x >= s + 1. (Numerical Recipes "gcf".)
double GammaQContinuedFraction(double s, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + s * std::log(x) - std::lgamma(s)) * h;
}

}  // namespace

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

Result<double> NormalQuantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    return Status::Invalid("NormalQuantile: p must lie in (0,1)");
  }
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the exact CDF.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double RegularizedGammaQ(double s, double x) {
  if (x < 0.0 || s <= 0.0) return 1.0;
  if (x == 0.0) return 1.0;
  if (x < s + 1.0) return 1.0 - GammaPSeries(s, x);
  return GammaQContinuedFraction(s, x);
}

Result<TestResult> TwoProportionZTest(int64_t successes_a, int64_t n_a,
                                      int64_t successes_b, int64_t n_b,
                                      double alpha) {
  if (n_a <= 0 || n_b <= 0) {
    return Status::Invalid("TwoProportionZTest: group sizes must be positive");
  }
  if (successes_a < 0 || successes_a > n_a || successes_b < 0 ||
      successes_b > n_b) {
    return Status::Invalid("TwoProportionZTest: successes out of range");
  }
  const double pa = static_cast<double>(successes_a) /
                    static_cast<double>(n_a);
  const double pb = static_cast<double>(successes_b) /
                    static_cast<double>(n_b);
  const double pooled = static_cast<double>(successes_a + successes_b) /
                        static_cast<double>(n_a + n_b);
  const double se = std::sqrt(pooled * (1.0 - pooled) *
                              (1.0 / static_cast<double>(n_a) +
                               1.0 / static_cast<double>(n_b)));
  TestResult result;
  if (se == 0.0) {
    // Degenerate pooled rate (all successes or all failures): the samples
    // are indistinguishable under H0.
    result.statistic = 0.0;
    result.p_value = 1.0;
    result.significant = false;
    return result;
  }
  result.statistic = (pa - pb) / se;
  result.p_value = 2.0 * (1.0 - NormalCdf(std::fabs(result.statistic)));
  result.significant = result.p_value < alpha;
  return result;
}

namespace {

struct TableTotals {
  std::vector<double> row;
  std::vector<double> col;
  double total = 0.0;
};

Result<TableTotals> ComputeTotals(
    const std::vector<std::vector<int64_t>>& table) {
  if (table.empty() || table[0].empty()) {
    return Status::Invalid("contingency table is empty");
  }
  const size_t cols = table[0].size();
  TableTotals totals;
  totals.row.assign(table.size(), 0.0);
  totals.col.assign(cols, 0.0);
  for (size_t r = 0; r < table.size(); ++r) {
    if (table[r].size() != cols) {
      return Status::Invalid("contingency table is ragged");
    }
    for (size_t c = 0; c < cols; ++c) {
      if (table[r][c] < 0) {
        return Status::Invalid("contingency table has negative count");
      }
      double v = static_cast<double>(table[r][c]);
      totals.row[r] += v;
      totals.col[c] += v;
      totals.total += v;
    }
  }
  if (totals.total <= 0.0) {
    return Status::Invalid("contingency table has zero total");
  }
  return totals;
}

}  // namespace

Result<TestResult> ChiSquareIndependence(
    const std::vector<std::vector<int64_t>>& table, double alpha) {
  FAIRLAW_ASSIGN_OR_RETURN(TableTotals totals, ComputeTotals(table));
  const size_t rows = table.size();
  const size_t cols = table[0].size();
  double chi2 = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      double expected = totals.row[r] * totals.col[c] / totals.total;
      if (expected == 0.0) continue;  // empty row/col contributes nothing
      double diff = static_cast<double>(table[r][c]) - expected;
      chi2 += diff * diff / expected;
    }
  }
  // Degrees of freedom count only non-empty rows/columns.
  size_t eff_rows = 0;
  for (double rt : totals.row) eff_rows += rt > 0.0 ? 1 : 0;
  size_t eff_cols = 0;
  for (double ct : totals.col) eff_cols += ct > 0.0 ? 1 : 0;
  if (eff_rows < 2 || eff_cols < 2) {
    return Status::Invalid("chi-square test needs >= 2 non-empty rows and "
                           "columns");
  }
  const double df = static_cast<double>((eff_rows - 1) * (eff_cols - 1));
  TestResult result;
  result.statistic = chi2;
  result.p_value = RegularizedGammaQ(df / 2.0, chi2 / 2.0);
  result.significant = result.p_value < alpha;
  return result;
}

Result<double> CramersV(const std::vector<std::vector<int64_t>>& table) {
  FAIRLAW_ASSIGN_OR_RETURN(TestResult chi, ChiSquareIndependence(table));
  FAIRLAW_ASSIGN_OR_RETURN(TableTotals totals, ComputeTotals(table));
  size_t eff_rows = 0;
  for (double rt : totals.row) eff_rows += rt > 0.0 ? 1 : 0;
  size_t eff_cols = 0;
  for (double ct : totals.col) eff_cols += ct > 0.0 ? 1 : 0;
  const double k = static_cast<double>(std::min(eff_rows, eff_cols));
  return std::sqrt(chi.statistic / (totals.total * (k - 1.0)));
}

Result<double> MutualInformation(
    const std::vector<std::vector<int64_t>>& table) {
  FAIRLAW_ASSIGN_OR_RETURN(TableTotals totals, ComputeTotals(table));
  double mi = 0.0;
  for (size_t r = 0; r < table.size(); ++r) {
    for (size_t c = 0; c < table[0].size(); ++c) {
      double joint = static_cast<double>(table[r][c]) / totals.total;
      if (joint == 0.0) continue;
      double pr = totals.row[r] / totals.total;
      double pc = totals.col[c] / totals.total;
      mi += joint * std::log(joint / (pr * pc));
    }
  }
  return std::max(0.0, mi);
}

}  // namespace fairlaw::stats
