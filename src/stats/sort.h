#ifndef FAIRLAW_STATS_SORT_H_
#define FAIRLAW_STATS_SORT_H_

#include <cstddef>
#include <span>

namespace fairlaw::stats {

/// Below this size the branch-light comparison sort wins; above it the
/// LSD radix sort's O(n) passes beat std::sort's O(n log n) compares.
/// (DESIGN.md §13: tier selection must never change results, only speed.)
inline constexpr size_t kRadixSortMinSize = 2048;

/// Sorts doubles ascending via an 8-pass LSD radix sort on the
/// order-preserving IEEE-754 key transform (flip the sign bit of
/// non-negatives, invert all bits of negatives). The resulting order
/// agrees with std::sort's operator< everywhere it is defined, and is
/// additionally total and deterministic on the edge cases comparison
/// sorts mishandle: -0.0 sorts (bitwise) before +0.0, and NaNs land
/// deterministically at the ends (negative NaNs first, positive NaNs
/// last) instead of triggering the undefined behavior std::sort has on
/// unordered values.
void RadixSortDoubles(std::span<double> values);

/// Tiered entry: radix at or above kRadixSortMinSize, std::sort below.
/// Used by the unsorted Wasserstein-1/KS paths; the presorted tier is the
/// equality oracle for both branches.
void SortDoubles(std::span<double> values);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_SORT_H_
