#ifndef FAIRLAW_STATS_SAMPLE_COMPLEXITY_H_
#define FAIRLAW_STATS_SAMPLE_COMPLEXITY_H_

#include <functional>
#include <string>
#include <vector>

#include "base/result.h"
#include "stats/rng.h"

namespace fairlaw::stats {

// Empirical sample-complexity measurement for bias-detection distances
// (§IV-F): how fast does the estimated distance between two sampled
// distributions converge to the population value as n grows, and what does
// each estimate cost to compute?

/// Draws one sample of size n from a population.
using Sampler = std::function<std::vector<double>(size_t n, Rng* rng)>;

/// Computes a distance estimate from two samples.
using DistanceEstimator = std::function<Result<double>(
    const std::vector<double>& x, const std::vector<double>& y)>;

/// One row of the sweep: estimation error statistics at a sample size.
struct ComplexityPoint {
  size_t n = 0;
  double mean_estimate = 0.0;
  double mean_abs_error = 0.0;   // vs the supplied true distance
  double stddev_estimate = 0.0;  // spread across repetitions
  double mean_runtime_us = 0.0;  // wall time per estimate, microseconds
};

struct ComplexityCurve {
  std::string name;
  double true_distance = 0.0;
  std::vector<ComplexityPoint> points;
  /// Least-squares slope of log(mean_abs_error) vs log(n); roughly -0.5
  /// for root-n estimators.
  double error_rate_exponent = 0.0;
};

/// Runs the sweep: for each n in `sample_sizes`, draws `repetitions`
/// sample pairs from the two populations, computes the estimator, and
/// records error and runtime against `true_distance`.
FAIRLAW_NODISCARD Result<ComplexityCurve> MeasureSampleComplexity(
    const std::string& name, const Sampler& sampler_p,
    const Sampler& sampler_q, const DistanceEstimator& estimator,
    double true_distance, const std::vector<size_t>& sample_sizes,
    int repetitions, Rng* rng);

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_SAMPLE_COMPLEXITY_H_
