#include "stats/sample_complexity.h"

#include <cmath>
#include <cstdint>

#include "obs/obs.h"
#include "stats/descriptive.h"

namespace fairlaw::stats {

Result<ComplexityCurve> MeasureSampleComplexity(
    const std::string& name, const Sampler& sampler_p,
    const Sampler& sampler_q, const DistanceEstimator& estimator,
    double true_distance, const std::vector<size_t>& sample_sizes,
    int repetitions, Rng* rng) {
  if (sample_sizes.empty()) {
    return Status::Invalid("MeasureSampleComplexity: no sample sizes");
  }
  if (repetitions < 2) {
    return Status::Invalid("MeasureSampleComplexity: need >= 2 repetitions");
  }
  if (rng == nullptr) {
    return Status::Invalid("MeasureSampleComplexity: null rng");
  }

  ComplexityCurve curve;
  curve.name = name;
  curve.true_distance = true_distance;

  for (size_t n : sample_sizes) {
    if (n < 2) {
      return Status::Invalid("MeasureSampleComplexity: sample size must be "
                             ">= 2");
    }
    std::vector<double> estimates;
    estimates.reserve(repetitions);
    double total_us = 0.0;
    for (int r = 0; r < repetitions; ++r) {
      std::vector<double> x = sampler_p(n, rng);
      std::vector<double> y = sampler_q(n, rng);
      const uint64_t start_ns = obs::MonotonicNowNs();
      FAIRLAW_ASSIGN_OR_RETURN(double est, estimator(x, y));
      total_us +=
          static_cast<double>(obs::MonotonicNowNs() - start_ns) / 1000.0;
      estimates.push_back(est);
    }
    ComplexityPoint point;
    point.n = n;
    FAIRLAW_ASSIGN_OR_RETURN(point.mean_estimate, Mean(estimates));
    double abs_error = 0.0;
    for (double est : estimates) abs_error += std::fabs(est - true_distance);
    point.mean_abs_error = abs_error / static_cast<double>(estimates.size());
    FAIRLAW_ASSIGN_OR_RETURN(point.stddev_estimate, StdDev(estimates));
    point.mean_runtime_us = total_us / static_cast<double>(repetitions);
    curve.points.push_back(point);
  }

  // Fit log(error) = a + b log(n) by least squares over points with
  // positive error; b is the convergence exponent.
  std::vector<double> log_n;
  std::vector<double> log_err;
  for (const ComplexityPoint& point : curve.points) {
    if (point.mean_abs_error > 0.0) {
      log_n.push_back(std::log(static_cast<double>(point.n)));
      log_err.push_back(std::log(point.mean_abs_error));
    }
  }
  if (log_n.size() >= 2) {
    FAIRLAW_ASSIGN_OR_RETURN(double mean_x, Mean(log_n));
    FAIRLAW_ASSIGN_OR_RETURN(double mean_y, Mean(log_err));
    double sxy = 0.0;
    double sxx = 0.0;
    for (size_t i = 0; i < log_n.size(); ++i) {
      sxy += (log_n[i] - mean_x) * (log_err[i] - mean_y);
      sxx += (log_n[i] - mean_x) * (log_n[i] - mean_x);
    }
    curve.error_rate_exponent = sxx > 0.0 ? sxy / sxx : 0.0;
  }
  return curve;
}

}  // namespace fairlaw::stats
