#include "stats/empirical.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::stats {

Result<EmpiricalDistribution> EmpiricalDistribution::Make(
    std::span<const double> values) {
  if (values.empty()) {
    return Status::Invalid("EmpiricalDistribution requires a non-empty sample");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return EmpiricalDistribution(std::move(sorted));
}

double EmpiricalDistribution::Cdf(double x) const {
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted_.size() - 1);
  const size_t lower = static_cast<size_t>(std::floor(position));
  const size_t upper = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lower);
  return sorted_[lower] + fraction * (sorted_[upper] - sorted_[lower]);
}

Result<DiscreteDistribution> DiscreteDistribution::FromMasses(
    std::span<const double> masses) {
  if (masses.empty()) {
    return Status::Invalid("DiscreteDistribution requires >= 1 category");
  }
  double total = 0.0;
  for (double m : masses) {
    if (m < 0.0) {
      return Status::Invalid("DiscreteDistribution: negative mass");
    }
    total += m;
  }
  if (total <= 0.0) {
    return Status::Invalid("DiscreteDistribution: total mass is zero");
  }
  std::vector<double> probs(masses.size());
  for (size_t i = 0; i < masses.size(); ++i) probs[i] = masses[i] / total;
  return DiscreteDistribution(std::move(probs));
}

Result<DiscreteDistribution> DiscreteDistribution::FromCounts(
    std::span<const int64_t> counts) {
  std::vector<double> masses(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < 0) {
      return Status::Invalid("DiscreteDistribution: negative count");
    }
    masses[i] = static_cast<double>(counts[i]);
  }
  return FromMasses(masses);
}

}  // namespace fairlaw::stats
