#include "stats/mmd.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "base/check.h"
#include "base/simd.h"
#include "base/thread_pool.h"
#include "obs/obs.h"
#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Row-block width of the tiled exact path and feature-block width of the
/// RFF fan-out. Fixed constants (not thread-count-derived) so the
/// summation grouping — and therefore the float result — is identical for
/// every schedule.
constexpr size_t kRowBlock = 256;
constexpr size_t kFeatureBlock = 32;

double SquaredDistance(const Point& x, const Point& y) {
  FAIRLAW_CHECK_MSG(x.size() == y.size(), "kernel rows must have equal dimension");
  double total = 0.0;
  for (size_t d = 0; d < x.size(); ++d) {
    double diff = x[d] - y[d];
    total += diff * diff;
  }
  return total;
}

std::vector<Point> Lift(std::span<const double> values) {
  std::vector<Point> points(values.size());
  for (size_t i = 0; i < values.size(); ++i) points[i] = {values[i]};
  return points;
}

/// The seed of stream k (a sampled pair, a random feature). Mixing the
/// counter before xoring decorrelates streams even though the counters
/// are sequential — the same discipline as the bootstrap replicates.
uint64_t StreamSeed(uint64_t base, size_t k) {
  return SplitMix64(base ^ SplitMix64(static_cast<uint64_t>(k)));
}

/// Runs fn(0..n-1), serially or on a pool. Every fn(t) writes only state
/// owned by task t, so no lock is needed and the outcome cannot depend on
/// scheduling; the serial path visits tasks in the same order the merge
/// reads them.
void ForEachTask(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (num_threads == 1 || n <= 1) {
    for (size_t t = 0; t < n; ++t) fn(t);
    return;
  }
  ThreadPool pool(num_threads == 0 ? 0 : std::min(num_threads, n));
  pool.ParallelFor(n, fn);
}

size_t BlocksFor(size_t n) { return (n + kRowBlock - 1) / kRowBlock; }

struct KernelSums {
  double kxx = 0.0;
  double kyy = 0.0;
  double kxy = 0.0;
};

/// Raw kernel sums over all (i, j) pairs — kxx and kyy optionally without
/// the diagonal — block-tiled over rows. Task t < blocks_x owns x-row
/// block t and accumulates its kxx and kxy contributions; the remaining
/// tasks own y-row blocks and accumulate kyy. Partials merge in block
/// order, so the sums are bit-identical for every thread count.
KernelSums TiledKernelSums(std::span<const Point> x, std::span<const Point> y,
                           double sigma, bool exclude_diagonal,
                           size_t num_threads) {
  const size_t blocks_x = BlocksFor(x.size());
  const size_t blocks_y = BlocksFor(y.size());
  std::vector<double> partial_xx(blocks_x, 0.0);
  std::vector<double> partial_xy(blocks_x, 0.0);
  std::vector<double> partial_yy(blocks_y, 0.0);
  ForEachTask(blocks_x + blocks_y, num_threads, [&](size_t t) {
    if (t < blocks_x) {
      const size_t begin = t * kRowBlock;
      const size_t end = std::min(x.size(), begin + kRowBlock);
      double acc_xx = 0.0;
      double acc_xy = 0.0;
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = 0; j < x.size(); ++j) {
          if (exclude_diagonal && i == j) continue;
          acc_xx += RbfKernel(x[i], x[j], sigma);
        }
        for (size_t j = 0; j < y.size(); ++j) {
          acc_xy += RbfKernel(x[i], y[j], sigma);
        }
      }
      partial_xx[t] = acc_xx;
      partial_xy[t] = acc_xy;
    } else {
      const size_t b = t - blocks_x;
      const size_t begin = b * kRowBlock;
      const size_t end = std::min(y.size(), begin + kRowBlock);
      double acc_yy = 0.0;
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = 0; j < y.size(); ++j) {
          if (exclude_diagonal && i == j) continue;
          acc_yy += RbfKernel(y[i], y[j], sigma);
        }
      }
      partial_yy[b] = acc_yy;
    }
  });
  KernelSums sums;
  for (double p : partial_xx) sums.kxx += p;
  for (double p : partial_yy) sums.kyy += p;
  for (double p : partial_xy) sums.kxy += p;
  return sums;
}

Status CheckRffArgs(size_t nx, size_t ny, double sigma,
                    const MmdRffOptions& options) {
  if (nx == 0 || ny == 0) {
    return Status::Invalid("MmdSquaredRff: needs non-empty samples");
  }
  if (sigma <= 0.0) return Status::Invalid("MMD: sigma must be positive");
  if (options.num_features == 0) {
    return Status::Invalid("MmdSquaredRff: num_features must be >= 1");
  }
  return Status::OK();
}

/// Sum over features j of diff(j)^2, fanned out over fixed-size feature
/// blocks with per-slot partials merged in block order.
template <typename FeatureDiff>
double SumFeatureDiffSquared(size_t num_features, size_t num_threads,
                             const FeatureDiff& feature_diff) {
  const size_t num_blocks = (num_features + kFeatureBlock - 1) / kFeatureBlock;
  std::vector<double> partial(num_blocks, 0.0);
  ForEachTask(num_blocks, num_threads, [&](size_t blk) {
    const size_t begin = blk * kFeatureBlock;
    const size_t end = std::min(num_features, begin + kFeatureBlock);
    double acc = 0.0;
    for (size_t j = begin; j < end; ++j) {
      const double diff = feature_diff(j);
      acc += diff * diff;
    }
    partial[blk] = acc;
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

void RecordRffProbes(const MmdRffOptions& options) {
  obs::GetCounter("stats.mmd.rff_calls")->Increment();
  obs::GetCounter("stats.mmd.rff_features")
      ->Increment(static_cast<uint64_t>(options.num_features));
  if (!simd::kVectorizedCos) {
    obs::GetCounter("stats.simd.scalar_fallback")->Increment();
  }
}

/// RFF core over contiguous 1-D samples (validated by the caller).
/// Feature j draws its frequency w ~ N(0, 1/sigma^2) and phase
/// b ~ U[0, 2pi) from its own counter-seeded stream, then the feature-map
/// means are cosine sums over the raw inputs — one affine cosine sweep
/// per sample, vectorized where the backend allows.
double Rff1dCore(std::span<const double> x, std::span<const double> y,
                 double sigma, const MmdRffOptions& options) {
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());
  const double total = SumFeatureDiffSquared(
      options.num_features, options.num_threads, [&](size_t j) {
        Rng rng(StreamSeed(options.seed, j));
        const double w = rng.Normal() / sigma;
        const double b = rng.Uniform() * kTwoPi;
        const double sum_x = simd::CosSumAffine(x.data(), x.size(), w, b);
        const double sum_y = simd::CosSumAffine(y.data(), y.size(), w, b);
        return sum_x / nx - sum_y / ny;
      });
  return 2.0 * total / static_cast<double>(options.num_features);
}

}  // namespace

double RbfKernel(const Point& x, const Point& y, double sigma) {
  return std::exp(-SquaredDistance(x, y) / (2.0 * sigma * sigma));
}

double MedianHeuristicBandwidth(std::span<const Point> x,
                                std::span<const Point> y, size_t max_pairs) {
  std::vector<const Point*> pooled;
  pooled.reserve(x.size() + y.size());
  for (const Point& p : x) pooled.push_back(&p);
  for (const Point& p : y) pooled.push_back(&p);
  if (pooled.size() < 2) return 1.0;

  const size_t n = pooled.size();
  const size_t total_pairs = n * (n - 1) / 2;
  std::vector<double> distances;
  if (total_pairs <= std::max<size_t>(max_pairs, 1)) {
    // Small input: exact median over every pair.
    distances.reserve(total_pairs);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        distances.push_back(
            std::sqrt(SquaredDistance(*pooled[i], *pooled[j])));
      }
    }
  } else {
    // Large input: median over max_pairs sampled pairs. Pair k draws its
    // endpoints from its own counter-seeded stream, so the subsample — and
    // the bandwidth — is a pure function of the input, independent of any
    // iteration order, and costs O(max_pairs) instead of an O(n^2) sweep.
    const size_t draws = std::max<size_t>(max_pairs, 1);
    constexpr uint64_t kPairStreamBase = 0x6d65646961ULL;
    distances.reserve(draws);
    for (size_t k = 0; k < draws; ++k) {
      Rng rng(StreamSeed(kPairStreamBase, k));
      const size_t i = static_cast<size_t>(rng.UniformInt(n));
      size_t j = static_cast<size_t>(rng.UniformInt(n - 1));
      if (j >= i) ++j;  // uniform over the n-1 partners of i
      distances.push_back(std::sqrt(SquaredDistance(*pooled[i], *pooled[j])));
    }
  }
  if (distances.empty()) return 1.0;
  std::nth_element(distances.begin(),
                   distances.begin() + distances.size() / 2, distances.end());
  double median = distances[distances.size() / 2];
  return median > 0.0 ? median : 1.0;
}

Result<double> MmdSquaredUnbiased(std::span<const Point> x,
                                  std::span<const Point> y, double sigma,
                                  const MmdExactOptions& options) {
  if (x.size() < 2 || y.size() < 2) {
    return Status::Invalid("MMD unbiased estimator needs >= 2 points per "
                           "sample");
  }
  if (sigma <= 0.0) return Status::Invalid("MMD: sigma must be positive");
  obs::TraceSpan span("mmd/exact_unbiased");
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());
  const KernelSums sums = TiledKernelSums(x, y, sigma, /*exclude_diagonal=*/
                                          true, options.num_threads);
  return sums.kxx / (nx * (nx - 1.0)) + sums.kyy / (ny * (ny - 1.0)) -
         2.0 * sums.kxy / (nx * ny);
}

Result<double> MmdSquaredBiased(std::span<const Point> x,
                                std::span<const Point> y, double sigma,
                                const MmdExactOptions& options) {
  if (x.empty() || y.empty()) {
    return Status::Invalid("MMD biased estimator needs non-empty samples");
  }
  if (sigma <= 0.0) return Status::Invalid("MMD: sigma must be positive");
  obs::TraceSpan span("mmd/exact_biased");
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());
  const KernelSums sums = TiledKernelSums(x, y, sigma, /*exclude_diagonal=*/
                                          false, options.num_threads);
  return std::max(0.0, sums.kxx / (nx * nx) + sums.kyy / (ny * ny) -
                           2.0 * sums.kxy / (nx * ny));
}

Result<double> MmdSquaredRff(std::span<const Point> x,
                             std::span<const Point> y, double sigma,
                             const MmdRffOptions& options) {
  FAIRLAW_RETURN_NOT_OK(CheckRffArgs(x.size(), y.size(), sigma, options));
  const size_t dim = x[0].size();
  if (dim == 0) return Status::Invalid("MmdSquaredRff: zero-dimensional points");
  for (const Point& p : x) {
    if (p.size() != dim) {
      return Status::Invalid("MmdSquaredRff: inconsistent point dimensions");
    }
  }
  for (const Point& p : y) {
    if (p.size() != dim) {
      return Status::Invalid("MmdSquaredRff: inconsistent point dimensions");
    }
  }
  obs::TraceSpan span("mmd/rff");
  RecordRffProbes(options);
  if (dim == 1) {
    // Contiguous fast path: the feature map reduces to one affine cosine
    // sweep per sample.
    std::vector<double> xs(x.size());
    std::vector<double> ys(y.size());
    for (size_t i = 0; i < x.size(); ++i) xs[i] = x[i][0];
    for (size_t i = 0; i < y.size(); ++i) ys[i] = y[i][0];
    return Rff1dCore(xs, ys, sigma, options);
  }
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());
  const double total = SumFeatureDiffSquared(
      options.num_features, options.num_threads, [&](size_t j) {
        Rng rng(StreamSeed(options.seed, j));
        std::vector<double> w(dim);
        for (double& wd : w) wd = rng.Normal() / sigma;
        const double b = rng.Uniform() * kTwoPi;
        std::vector<double> args(std::max(x.size(), y.size()));
        for (size_t i = 0; i < x.size(); ++i) {
          double dot = b;
          for (size_t d = 0; d < dim; ++d) dot += w[d] * x[i][d];
          args[i] = dot;
        }
        const double sum_x = simd::CosSum(args.data(), x.size());
        for (size_t i = 0; i < y.size(); ++i) {
          double dot = b;
          for (size_t d = 0; d < dim; ++d) dot += w[d] * y[i][d];
          args[i] = dot;
        }
        const double sum_y = simd::CosSum(args.data(), y.size());
        return sum_x / nx - sum_y / ny;
      });
  return 2.0 * total / static_cast<double>(options.num_features);
}

Result<double> MmdSquaredUnbiased1d(std::span<const double> x,
                                    std::span<const double> y, double sigma,
                                    const MmdExactOptions& options) {
  std::vector<Point> px = Lift(x);
  std::vector<Point> py = Lift(y);
  return MmdSquaredUnbiased(px, py, sigma, options);
}

Result<double> MmdSquaredBiased1d(std::span<const double> x,
                                  std::span<const double> y, double sigma,
                                  const MmdExactOptions& options) {
  std::vector<Point> px = Lift(x);
  std::vector<Point> py = Lift(y);
  return MmdSquaredBiased(px, py, sigma, options);
}

Result<double> MmdSquaredRff1d(std::span<const double> x,
                               std::span<const double> y, double sigma,
                               const MmdRffOptions& options) {
  FAIRLAW_RETURN_NOT_OK(CheckRffArgs(x.size(), y.size(), sigma, options));
  obs::TraceSpan span("mmd/rff");
  RecordRffProbes(options);
  return Rff1dCore(x, y, sigma, options);
}

}  // namespace fairlaw::stats
