#include "stats/mmd.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace fairlaw::stats {
namespace {

double SquaredDistance(const Point& x, const Point& y) {
  FAIRLAW_CHECK_MSG(x.size() == y.size(), "kernel rows must have equal dimension");
  double total = 0.0;
  for (size_t d = 0; d < x.size(); ++d) {
    double diff = x[d] - y[d];
    total += diff * diff;
  }
  return total;
}

std::vector<Point> Lift(std::span<const double> values) {
  std::vector<Point> points(values.size());
  for (size_t i = 0; i < values.size(); ++i) points[i] = {values[i]};
  return points;
}

}  // namespace

double RbfKernel(const Point& x, const Point& y, double sigma) {
  return std::exp(-SquaredDistance(x, y) / (2.0 * sigma * sigma));
}

double MedianHeuristicBandwidth(std::span<const Point> x,
                                std::span<const Point> y, size_t max_pairs) {
  std::vector<const Point*> pooled;
  pooled.reserve(x.size() + y.size());
  for (const Point& p : x) pooled.push_back(&p);
  for (const Point& p : y) pooled.push_back(&p);
  if (pooled.size() < 2) return 1.0;

  // Deterministic subsampling by striding so the heuristic stays cheap on
  // large pooled samples.
  const size_t n = pooled.size();
  const size_t total_pairs = n * (n - 1) / 2;
  size_t stride = 1;
  if (total_pairs > max_pairs) {
    stride = total_pairs / max_pairs + 1;
  }
  std::vector<double> distances;
  distances.reserve(std::min(total_pairs, max_pairs) + 1);
  size_t counter = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (counter++ % stride != 0) continue;
      distances.push_back(std::sqrt(SquaredDistance(*pooled[i], *pooled[j])));
    }
  }
  if (distances.empty()) return 1.0;
  std::nth_element(distances.begin(),
                   distances.begin() + distances.size() / 2, distances.end());
  double median = distances[distances.size() / 2];
  return median > 0.0 ? median : 1.0;
}

Result<double> MmdSquaredUnbiased(std::span<const Point> x,
                                  std::span<const Point> y, double sigma) {
  if (x.size() < 2 || y.size() < 2) {
    return Status::Invalid("MMD unbiased estimator needs >= 2 points per "
                           "sample");
  }
  if (sigma <= 0.0) return Status::Invalid("MMD: sigma must be positive");
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());

  double kxx = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    for (size_t j = 0; j < x.size(); ++j) {
      if (i == j) continue;
      kxx += RbfKernel(x[i], x[j], sigma);
    }
  }
  kxx /= nx * (nx - 1.0);

  double kyy = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    for (size_t j = 0; j < y.size(); ++j) {
      if (i == j) continue;
      kyy += RbfKernel(y[i], y[j], sigma);
    }
  }
  kyy /= ny * (ny - 1.0);

  double kxy = 0.0;
  for (const Point& a : x) {
    for (const Point& b : y) kxy += RbfKernel(a, b, sigma);
  }
  kxy /= nx * ny;

  return kxx + kyy - 2.0 * kxy;
}

Result<double> MmdSquaredBiased(std::span<const Point> x,
                                std::span<const Point> y, double sigma) {
  if (x.empty() || y.empty()) {
    return Status::Invalid("MMD biased estimator needs non-empty samples");
  }
  if (sigma <= 0.0) return Status::Invalid("MMD: sigma must be positive");
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());

  double kxx = 0.0;
  for (const Point& a : x) {
    for (const Point& b : x) kxx += RbfKernel(a, b, sigma);
  }
  kxx /= nx * nx;

  double kyy = 0.0;
  for (const Point& a : y) {
    for (const Point& b : y) kyy += RbfKernel(a, b, sigma);
  }
  kyy /= ny * ny;

  double kxy = 0.0;
  for (const Point& a : x) {
    for (const Point& b : y) kxy += RbfKernel(a, b, sigma);
  }
  kxy /= nx * ny;

  return std::max(0.0, kxx + kyy - 2.0 * kxy);
}

Result<double> MmdSquaredUnbiased1d(std::span<const double> x,
                                    std::span<const double> y, double sigma) {
  std::vector<Point> px = Lift(x);
  std::vector<Point> py = Lift(y);
  return MmdSquaredUnbiased(px, py, sigma);
}

Result<double> MmdSquaredBiased1d(std::span<const double> x,
                                  std::span<const double> y, double sigma) {
  std::vector<Point> px = Lift(x);
  std::vector<Point> py = Lift(y);
  return MmdSquaredBiased(px, py, sigma);
}

}  // namespace fairlaw::stats
