#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::stats {

Result<double> Mean(std::span<const double> values) {
  if (values.empty()) return Status::Invalid("Mean of empty sample");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

Result<double> Variance(std::span<const double> values) {
  if (values.size() < 2) {
    return Status::Invalid("Variance requires at least 2 samples");
  }
  FAIRLAW_ASSIGN_OR_RETURN(double mean, Mean(values));
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size() - 1);
}

Result<double> StdDev(std::span<const double> values) {
  FAIRLAW_ASSIGN_OR_RETURN(double var, Variance(values));
  return std::sqrt(var);
}

Result<double> WeightedMean(std::span<const double> values,
                            std::span<const double> weights) {
  if (values.size() != weights.size()) {
    return Status::Invalid("WeightedMean: size mismatch");
  }
  if (values.empty()) return Status::Invalid("WeightedMean of empty sample");
  double total = 0.0;
  double weight_sum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (weights[i] < 0.0) {
      return Status::Invalid("WeightedMean: negative weight");
    }
    total += values[i] * weights[i];
    weight_sum += weights[i];
  }
  if (weight_sum <= 0.0) {
    return Status::Invalid("WeightedMean: weights sum to zero");
  }
  return total / weight_sum;
}

Result<double> Min(std::span<const double> values) {
  if (values.empty()) return Status::Invalid("Min of empty sample");
  return *std::min_element(values.begin(), values.end());
}

Result<double> Max(std::span<const double> values) {
  if (values.empty()) return Status::Invalid("Max of empty sample");
  return *std::max_element(values.begin(), values.end());
}

Result<double> Quantile(std::span<const double> values, double q) {
  if (values.empty()) return Status::Invalid("Quantile of empty sample");
  if (q < 0.0 || q > 1.0) {
    return Status::Invalid("Quantile level must lie in [0,1]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const size_t lower = static_cast<size_t>(std::floor(position));
  const size_t upper = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

Result<double> Median(std::span<const double> values) {
  return Quantile(values, 0.5);
}

Result<double> Covariance(std::span<const double> x,
                          std::span<const double> y) {
  if (x.size() != y.size()) return Status::Invalid("Covariance: size mismatch");
  if (x.size() < 2) {
    return Status::Invalid("Covariance requires at least 2 samples");
  }
  FAIRLAW_ASSIGN_OR_RETURN(double mx, Mean(x));
  FAIRLAW_ASSIGN_OR_RETURN(double my, Mean(y));
  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) total += (x[i] - mx) * (y[i] - my);
  return total / static_cast<double>(x.size() - 1);
}

Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y) {
  FAIRLAW_ASSIGN_OR_RETURN(double cov, Covariance(x, y));
  FAIRLAW_ASSIGN_OR_RETURN(double sx, StdDev(x));
  FAIRLAW_ASSIGN_OR_RETURN(double sy, StdDev(y));
  if (sx == 0.0 || sy == 0.0) {
    return Status::Invalid("PearsonCorrelation: zero variance");
  }
  return cov / (sx * sy);
}

Result<double> PointBiserialCorrelation(std::span<const uint8_t> indicator,
                                        std::span<const double> values) {
  std::vector<double> coded(indicator.size());
  for (size_t i = 0; i < indicator.size(); ++i) {
    coded[i] = indicator[i] != 0 ? 1.0 : 0.0;
  }
  return PearsonCorrelation(coded, values);
}

Result<Summary> Summarize(std::span<const double> values) {
  if (values.empty()) return Status::Invalid("Summarize of empty sample");
  Summary summary;
  summary.count = values.size();
  FAIRLAW_ASSIGN_OR_RETURN(summary.mean, Mean(values));
  if (values.size() >= 2) {
    FAIRLAW_ASSIGN_OR_RETURN(summary.stddev, StdDev(values));
  } else {
    summary.stddev = 0.0;
  }
  FAIRLAW_ASSIGN_OR_RETURN(summary.min, Min(values));
  FAIRLAW_ASSIGN_OR_RETURN(summary.q25, Quantile(values, 0.25));
  FAIRLAW_ASSIGN_OR_RETURN(summary.median, Quantile(values, 0.5));
  FAIRLAW_ASSIGN_OR_RETURN(summary.q75, Quantile(values, 0.75));
  FAIRLAW_ASSIGN_OR_RETURN(summary.max, Max(values));
  return summary;
}

}  // namespace fairlaw::stats
