#ifndef FAIRLAW_DATA_BITMAP_H_
#define FAIRLAW_DATA_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "base/result.h"

namespace fairlaw::data {

/// Fixed-size bitset packed into 64-bit words — the kernel type behind
/// subgroup enumeration and the group-metric confusion counts.
///
/// A row set over an n-row table is one bit per row, so intersecting two
/// row sets is a word-wise AND (64 rows per instruction) and counting the
/// members is std::popcount per word. That replaces the per-row
/// std::vector<size_t> / string-compare loops that used to dominate the
/// audit hot path.
///
/// Invariant: bits at positions >= size() are always zero (tail-word
/// masking). Every mutating operation preserves it, so Count() and the
/// fused kernels never need to special-case the last word.
class Bitmap {
 public:
  /// Empty bitmap (size 0).
  Bitmap() = default;

  /// All-zero bitmap of `size` bits.
  explicit Bitmap(size_t size);

  /// All-one bitmap of `size` bits (tail word masked).
  static Bitmap AllSet(size_t size);

  /// Builds from a 0/1 byte vector (b[i] != 0 sets bit i).
  static Bitmap FromBytes(std::span<const uint8_t> bits);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_words() const { return words_.size(); }
  std::span<const uint64_t> words() const { return words_; }

  /// Single-bit access. Callers index rows they obtained from the same
  /// table, so out-of-range is a programming error (DCHECK), not a Status.
  void Set(size_t i);
  void Reset(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits (word-wise popcount).
  size_t Count() const;

  /// Word-wise a & b. Sizes must match; mismatch is a Status::Invalid —
  /// two row sets of different tables can never be meaningfully combined.
  FAIRLAW_NODISCARD Result<Bitmap> And(const Bitmap& other) const;

  /// Word-wise a & ~b (set difference). Sizes must match.
  FAIRLAW_NODISCARD Result<Bitmap> AndNot(const Bitmap& other) const;

  /// In-place a &= b for pre-validated same-size bitmaps (hot path).
  void AndInPlace(const Bitmap& other);

  /// Writes a & b into *out (resized as needed) and returns the popcount
  /// of the result in one pass. The workhorse of the subgroup enumerator:
  /// narrowing a member set by one condition and learning its support is a
  /// single sweep over the words.
  static size_t AndInto(const Bitmap& a, const Bitmap& b, Bitmap* out);

  /// Fused popcount kernels: |a & b|, |a & b & c|, |a & ~b|, |a & b & ~c|
  /// without materializing the intersection. These produce the confusion
  /// counts (TP/FP/FN/TN per group) directly from packed prediction/label
  /// bitmaps.
  static size_t AndCount(const Bitmap& a, const Bitmap& b);
  static size_t AndCount3(const Bitmap& a, const Bitmap& b, const Bitmap& c);
  static size_t AndNotCount(const Bitmap& a, const Bitmap& b);
  static size_t AndAndNotCount(const Bitmap& a, const Bitmap& b,
                               const Bitmap& c);

  /// Unpacks to ascending row indices (for interop with index-based APIs).
  std::vector<size_t> ToIndices() const;

  bool operator==(const Bitmap& other) const = default;

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_BITMAP_H_
