#ifndef FAIRLAW_DATA_COLUMN_H_
#define FAIRLAW_DATA_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "base/result.h"
#include "data/bitmap.h"
#include "data/schema.h"

namespace fairlaw::data {

/// A single cell value (without nullness); the variant alternative must
/// match the column type.
using Cell = std::variant<double, int64_t, std::string, bool>;

/// Renders a cell for CSV output / previews.
std::string CellToString(const Cell& cell);

/// One typed column with a validity mask.
///
/// Storage is dense: every row slot exists in the value vector, and
/// `valid_[i]` says whether the slot holds data or is null. Analytical
/// accessors (mean, group keys, ...) are expected to either require
/// null-free columns or handle nulls explicitly; the audit entry points
/// surface nulls as Status errors rather than silently dropping rows,
/// because silently dropping protected-group rows is itself a bias risk.
class Column {
 public:
  /// Creates an empty column of the given type.
  explicit Column(DataType type);

  /// Convenience factories from dense (all-valid) values. Bool columns
  /// take and expose 0/1 bytes: std::vector<bool> is banned tree-wide
  /// (fairlaw_lint hot-path rule) because its proxy references defeat
  /// spans, simd, and sane iteration.
  static Column FromDoubles(std::vector<double> values);
  static Column FromInt64s(std::vector<int64_t> values);
  static Column FromStrings(std::vector<std::string> values);
  static Column FromBools(std::vector<uint8_t> values);

  DataType type() const { return type_; }
  size_t size() const { return valid_.size(); }
  bool empty() const { return valid_.empty(); }

  /// Number of null slots.
  size_t null_count() const { return null_count_; }
  bool IsValid(size_t row) const { return valid_[row] != 0; }

  /// Appends a typed value. The overload must match type(); a mismatch is
  /// a programming error and aborts.
  void AppendDouble(double value);
  void AppendInt64(int64_t value);
  void AppendString(std::string value);
  void AppendBool(bool value);
  void AppendNull();

  /// Appends `cell`, which must match type().
  FAIRLAW_NODISCARD Status AppendCell(const Cell& cell);

  /// Typed scalar access; fails on type mismatch, row out of range, or
  /// null slot.
  FAIRLAW_NODISCARD Result<double> GetDouble(size_t row) const;
  FAIRLAW_NODISCARD Result<int64_t> GetInt64(size_t row) const;
  FAIRLAW_NODISCARD Result<std::string> GetString(size_t row) const;
  FAIRLAW_NODISCARD Result<bool> GetBool(size_t row) const;

  /// Cell access (type-erased); fails on out-of-range or null.
  FAIRLAW_NODISCARD Result<Cell> GetCell(size_t row) const;

  /// Dense typed views. Fail unless the column has the right type and no
  /// nulls.
  FAIRLAW_NODISCARD Result<std::span<const double>> Doubles() const;
  FAIRLAW_NODISCARD Result<std::span<const int64_t>> Int64s() const;
  FAIRLAW_NODISCARD Result<const std::vector<std::string>*> Strings() const;
  FAIRLAW_NODISCARD Result<std::span<const uint8_t>> Bools() const;

  /// Returns the column converted to double values (int64 and bool are
  /// widened; string fails). Requires no nulls.
  FAIRLAW_NODISCARD Result<std::vector<double>> ToDoubles() const;

  /// Returns a copy containing only the rows in `indices` (in order).
  FAIRLAW_NODISCARD Result<Column> Take(std::span<const size_t> indices) const;

  /// Returns a copy of rows [offset, offset+length) without materializing
  /// an index vector — the chunk-slicing fast path.
  FAIRLAW_NODISCARD Result<Column> Slice(size_t offset, size_t length) const;

  /// Packs the validity mask into a bitmap (bit i set iff row i is
  /// non-null), so chunk-level null queries run on the fused popcount
  /// kernels instead of byte loops.
  Bitmap ValidityBitmap() const;

  /// Renders the value at `row` ("null" for null slots) for previews.
  std::string ValueToString(size_t row) const;

 private:
  DataType type_;
  std::vector<uint8_t> valid_;  // 0/1 bytes, one per row slot
  size_t null_count_ = 0;
  std::vector<double> doubles_;
  std::vector<int64_t> int64s_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;  // 0/1 bytes

};

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_COLUMN_H_
