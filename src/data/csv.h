#ifndef FAIRLAW_DATA_CSV_H_
#define FAIRLAW_DATA_CSV_H_

#include <memory>
#include <optional>
#include <string>

#include "base/result.h"
#include "data/chunked.h"
#include "data/table.h"

namespace fairlaw::data {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// When true the first row provides column names; otherwise columns are
  /// named c0, c1, ...
  bool has_header = true;
  /// Strings that read as null (after whitespace stripping).
  std::vector<std::string> null_tokens = {"", "NA", "null", "NULL"};
};

/// Parses CSV text into a table. Column types are inferred from the data:
/// a column is int64 if every non-null cell parses as an integer, else
/// double if every non-null cell parses as a number, else bool if every
/// non-null cell is true/false, else string. Quoted fields ("a,b" with
/// embedded delimiters and "" escapes) are supported.
FAIRLAW_NODISCARD Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = {});

/// Reads and parses a CSV file.
FAIRLAW_NODISCARD Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table to CSV text (header row + data rows; nulls render
/// as empty fields; strings containing the delimiter, quotes, or newlines
/// are quoted).
FAIRLAW_NODISCARD Result<std::string> WriteCsvString(const Table& table,
                                   const CsvOptions& options = {});

/// Writes a table to a CSV file.
FAIRLAW_NODISCARD Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Streams a CSV file chunk-at-a-time so ingestion is out-of-core: peak
/// memory is bounded by the chunk size, never the file size.
///
/// Open() makes a flags-only inference pass over the whole file (O(columns)
/// state: per-column all-int/all-double/all-bool trackers plus the ragged-
/// row check), so the resulting schema — and therefore every parsed cell —
/// is byte-identical to what ReadCsvFile would produce for the same file.
/// Next() then re-streams the file, emitting tables of at most
/// `chunk_rows` rows until the file is exhausted.
class CsvChunkReader {
 public:
  struct Options {
    CsvOptions csv;
    /// Rows per emitted chunk; 0 falls back to kDefaultChunkRows.
    size_t chunk_rows = kDefaultChunkRows;
  };

  /// Opens `path` and runs the inference pass. Fails on IO errors, ragged
  /// rows, unterminated quotes, or an empty file — the same failures (and
  /// messages) ReadCsvFile reports.
  FAIRLAW_NODISCARD static Result<CsvChunkReader> Make(
      const std::string& path, const Options& options);
  FAIRLAW_NODISCARD static Result<CsvChunkReader> Make(const std::string& path);

  CsvChunkReader(CsvChunkReader&&) noexcept;
  CsvChunkReader& operator=(CsvChunkReader&&) noexcept;
  ~CsvChunkReader();

  /// The inferred schema (identical to ReadCsvFile's).
  const Schema& schema() const;

  /// Total data rows in the file (known after the inference pass).
  size_t num_rows() const;

  /// Data rows emitted by Next() so far.
  size_t rows_read() const;

  /// Parses and returns the next chunk (1..chunk_rows rows), or nullopt
  /// once the file is exhausted.
  FAIRLAW_NODISCARD Result<std::optional<Table>> Next();

 private:
  CsvChunkReader();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Reads a whole CSV file through the streaming reader into a
/// ChunkedTable — the in-memory counterpart of driving CsvChunkReader by
/// hand, used where the chunk layout matters but the data fits in RAM.
FAIRLAW_NODISCARD Result<ChunkedTable> ReadCsvFileChunked(
    const std::string& path,
    const CsvChunkReader::Options& options = CsvChunkReader::Options{});

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_CSV_H_
