#ifndef FAIRLAW_DATA_CSV_H_
#define FAIRLAW_DATA_CSV_H_

#include <string>

#include "base/result.h"
#include "data/table.h"

namespace fairlaw::data {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// When true the first row provides column names; otherwise columns are
  /// named c0, c1, ...
  bool has_header = true;
  /// Strings that read as null (after whitespace stripping).
  std::vector<std::string> null_tokens = {"", "NA", "null", "NULL"};
};

/// Parses CSV text into a table. Column types are inferred from the data:
/// a column is int64 if every non-null cell parses as an integer, else
/// double if every non-null cell parses as a number, else bool if every
/// non-null cell is true/false, else string. Quoted fields ("a,b" with
/// embedded delimiters and "" escapes) are supported.
FAIRLAW_NODISCARD Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = {});

/// Reads and parses a CSV file.
FAIRLAW_NODISCARD Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table to CSV text (header row + data rows; nulls render
/// as empty fields; strings containing the delimiter, quotes, or newlines
/// are quoted).
FAIRLAW_NODISCARD Result<std::string> WriteCsvString(const Table& table,
                                   const CsvOptions& options = {});

/// Writes a table to a CSV file.
FAIRLAW_NODISCARD Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_CSV_H_
