#ifndef FAIRLAW_DATA_SCHEMA_H_
#define FAIRLAW_DATA_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace fairlaw::data {

/// Physical type of a column.
enum class DataType {
  kDouble,
  kInt64,
  kString,
  kBool,
};

/// Canonical lowercase name of a data type ("double", "int64", ...).
std::string_view DataTypeToString(DataType type);

/// A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// Ordered collection of uniquely named fields.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails if two fields share a name.
  FAIRLAW_NODISCARD static Result<Schema> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound. Takes a string_view
  /// so lookups with literals or substrings do not materialize a
  /// temporary std::string.
  FAIRLAW_NODISCARD Result<size_t> FieldIndex(std::string_view name) const;

  /// True if a field named `name` exists.
  bool HasField(std::string_view name) const;

  /// Returns a new schema with `field` appended; fails on duplicate name.
  FAIRLAW_NODISCARD Result<Schema> AddField(Field field) const;

  /// Returns a new schema without the field named `name`.
  FAIRLAW_NODISCARD Result<Schema> RemoveField(const std::string& name) const;

  /// Renders "name:type, name:type, ...".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  std::vector<Field> fields_;
};

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_SCHEMA_H_
