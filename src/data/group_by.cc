#include "data/group_by.h"

#include <map>

namespace fairlaw::data {

std::string Group::KeyString(const std::vector<std::string>& columns) const {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ",";
    if (i < columns.size()) {
      out += columns[i];
      out += "=";
    }
    out += key[i];
  }
  return out;
}

Result<std::vector<Group>> GroupBy(const Table& table,
                                   const std::vector<std::string>& columns) {
  if (columns.empty()) return Status::Invalid("GroupBy: no grouping columns");
  std::vector<const Column*> group_columns;
  group_columns.reserve(columns.size());
  for (const std::string& name : columns) {
    FAIRLAW_ASSIGN_OR_RETURN(const Column* column, table.GetColumn(name));
    group_columns.push_back(column);
  }

  std::vector<Group> groups;
  std::map<std::vector<std::string>, size_t> index_of;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::vector<std::string> key(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      key[c] = group_columns[c]->ValueToString(row);
    }
    auto [it, inserted] = index_of.try_emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{key, {}});
    }
    groups[it->second].rows.push_back(row);
  }
  return groups;
}

Result<std::vector<std::string>> DistinctValues(const Table& table,
                                                const std::string& column) {
  FAIRLAW_ASSIGN_OR_RETURN(auto groups, GroupBy(table, {column}));
  std::vector<std::string> values;
  values.reserve(groups.size());
  for (const Group& group : groups) values.push_back(group.key[0]);
  return values;
}

Result<std::vector<int64_t>> ValueCounts(const Table& table,
                                         const std::string& column) {
  FAIRLAW_ASSIGN_OR_RETURN(auto groups, GroupBy(table, {column}));
  std::vector<int64_t> counts;
  counts.reserve(groups.size());
  for (const Group& group : groups) {
    counts.push_back(static_cast<int64_t>(group.rows.size()));
  }
  return counts;
}

}  // namespace fairlaw::data
