#include "data/column.h"

#include "base/check.h"
#include "base/string_util.h"

namespace fairlaw::data {

std::string CellToString(const Cell& cell) {
  switch (cell.index()) {
    case 0:
      return FormatDouble(std::get<double>(cell), 6);
    case 1:
      return std::to_string(std::get<int64_t>(cell));
    case 2:
      return std::get<std::string>(cell);
    case 3:
      return std::get<bool>(cell) ? "true" : "false";
  }
  return "";
}

Column::Column(DataType type) : type_(type) {}

Column Column::FromDoubles(std::vector<double> values) {
  Column column(DataType::kDouble);
  column.doubles_ = std::move(values);
  column.valid_.assign(column.doubles_.size(), true);
  return column;
}

Column Column::FromInt64s(std::vector<int64_t> values) {
  Column column(DataType::kInt64);
  column.int64s_ = std::move(values);
  column.valid_.assign(column.int64s_.size(), true);
  return column;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column column(DataType::kString);
  column.strings_ = std::move(values);
  column.valid_.assign(column.strings_.size(), true);
  return column;
}

Column Column::FromBools(std::vector<uint8_t> values) {
  Column column(DataType::kBool);
  column.bools_ = std::move(values);
  column.valid_.assign(column.bools_.size(), true);
  return column;
}

void Column::AppendDouble(double value) {
  FAIRLAW_CHECK_MSG(type_ == DataType::kDouble,
                    "column accessed as double but holds another type");
  doubles_.push_back(value);
  valid_.push_back(true);
}

void Column::AppendInt64(int64_t value) {
  FAIRLAW_CHECK_MSG(type_ == DataType::kInt64,
                    "column accessed as int64 but holds another type");
  int64s_.push_back(value);
  valid_.push_back(true);
}

void Column::AppendString(std::string value) {
  FAIRLAW_CHECK_MSG(type_ == DataType::kString,
                    "column accessed as string but holds another type");
  strings_.push_back(std::move(value));
  valid_.push_back(true);
}

void Column::AppendBool(bool value) {
  FAIRLAW_CHECK_MSG(type_ == DataType::kBool,
                    "column accessed as bool but holds another type");
  bools_.push_back(value ? 1 : 0);
  valid_.push_back(true);
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kInt64:
      int64s_.push_back(0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(false);
      break;
  }
  valid_.push_back(false);
  ++null_count_;
}

Status Column::AppendCell(const Cell& cell) {
  switch (type_) {
    case DataType::kDouble:
      if (!std::holds_alternative<double>(cell)) {
        return Status::Invalid("AppendCell: expected double");
      }
      AppendDouble(std::get<double>(cell));
      return Status::OK();
    case DataType::kInt64:
      if (!std::holds_alternative<int64_t>(cell)) {
        return Status::Invalid("AppendCell: expected int64");
      }
      AppendInt64(std::get<int64_t>(cell));
      return Status::OK();
    case DataType::kString:
      if (!std::holds_alternative<std::string>(cell)) {
        return Status::Invalid("AppendCell: expected string");
      }
      AppendString(std::get<std::string>(cell));
      return Status::OK();
    case DataType::kBool:
      if (!std::holds_alternative<bool>(cell)) {
        return Status::Invalid("AppendCell: expected bool");
      }
      AppendBool(std::get<bool>(cell));
      return Status::OK();
  }
  FAIRLAW_NOTREACHED("AppendCell: unknown column type");
}

namespace {

Status CheckAccess(const Column& column, size_t row, DataType expected) {
  if (column.type() != expected) {
    return Status::Invalid(
        std::string("column type is ") +
        std::string(DataTypeToString(column.type())) + ", expected " +
        std::string(DataTypeToString(expected)));
  }
  if (row >= column.size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range (size " +
                              std::to_string(column.size()) + ")");
  }
  if (!column.IsValid(row)) {
    return Status::Invalid("row " + std::to_string(row) + " is null");
  }
  return Status::OK();
}

}  // namespace

Result<double> Column::GetDouble(size_t row) const {
  FAIRLAW_RETURN_NOT_OK(CheckAccess(*this, row, DataType::kDouble));
  return doubles_[row];
}

Result<int64_t> Column::GetInt64(size_t row) const {
  FAIRLAW_RETURN_NOT_OK(CheckAccess(*this, row, DataType::kInt64));
  return int64s_[row];
}

Result<std::string> Column::GetString(size_t row) const {
  FAIRLAW_RETURN_NOT_OK(CheckAccess(*this, row, DataType::kString));
  return strings_[row];
}

Result<bool> Column::GetBool(size_t row) const {
  FAIRLAW_RETURN_NOT_OK(CheckAccess(*this, row, DataType::kBool));
  return bools_[row] != 0;
}

Result<Cell> Column::GetCell(size_t row) const {
  if (row >= size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  if (!valid_[row]) {
    return Status::Invalid("row " + std::to_string(row) + " is null");
  }
  switch (type_) {
    case DataType::kDouble:
      return Cell(doubles_[row]);
    case DataType::kInt64:
      return Cell(int64s_[row]);
    case DataType::kString:
      return Cell(strings_[row]);
    case DataType::kBool:
      return Cell(bools_[row] != 0);
  }
  return Status::Internal("GetCell: unknown column type");
}

namespace {

Status CheckDenseView(const Column& column, DataType expected) {
  if (column.type() != expected) {
    return Status::Invalid(
        std::string("column type is ") +
        std::string(DataTypeToString(column.type())) + ", expected " +
        std::string(DataTypeToString(expected)));
  }
  if (column.null_count() > 0) {
    return Status::Invalid("column has " +
                           std::to_string(column.null_count()) +
                           " nulls; dense view requires none");
  }
  return Status::OK();
}

}  // namespace

Result<std::span<const double>> Column::Doubles() const {
  FAIRLAW_RETURN_NOT_OK(CheckDenseView(*this, DataType::kDouble));
  return std::span<const double>(doubles_);
}

Result<std::span<const int64_t>> Column::Int64s() const {
  FAIRLAW_RETURN_NOT_OK(CheckDenseView(*this, DataType::kInt64));
  return std::span<const int64_t>(int64s_);
}

Result<const std::vector<std::string>*> Column::Strings() const {
  FAIRLAW_RETURN_NOT_OK(CheckDenseView(*this, DataType::kString));
  return &strings_;
}

Result<std::span<const uint8_t>> Column::Bools() const {
  FAIRLAW_RETURN_NOT_OK(CheckDenseView(*this, DataType::kBool));
  return std::span<const uint8_t>(bools_);
}

Result<std::vector<double>> Column::ToDoubles() const {
  if (null_count_ > 0) {
    return Status::Invalid("ToDoubles: column has nulls");
  }
  std::vector<double> out(size());
  switch (type_) {
    case DataType::kDouble:
      out = doubles_;
      return out;
    case DataType::kInt64:
      for (size_t i = 0; i < size(); ++i) {
        out[i] = static_cast<double>(int64s_[i]);
      }
      return out;
    case DataType::kBool:
      for (size_t i = 0; i < size(); ++i) {
        out[i] = bools_[i] != 0 ? 1.0 : 0.0;
      }
      return out;
    case DataType::kString:
      return Status::Invalid("ToDoubles: cannot convert string column");
  }
  return Status::Internal("ToDoubles: unknown column type");
}

Result<Column> Column::Take(std::span<const size_t> indices) const {
  Column out(type_);
  for (size_t index : indices) {
    if (index >= size()) {
      return Status::OutOfRange("Take: index " + std::to_string(index) +
                                " out of range");
    }
    if (!valid_[index]) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kDouble:
        out.AppendDouble(doubles_[index]);
        break;
      case DataType::kInt64:
        out.AppendInt64(int64s_[index]);
        break;
      case DataType::kString:
        out.AppendString(strings_[index]);
        break;
      case DataType::kBool:
        out.AppendBool(bools_[index] != 0);
        break;
    }
  }
  return out;
}

Result<Column> Column::Slice(size_t offset, size_t length) const {
  if (offset > size() || length > size() - offset) {
    return Status::OutOfRange("Slice: [" + std::to_string(offset) + ", " +
                              std::to_string(offset + length) +
                              ") exceeds column size " +
                              std::to_string(size()));
  }
  const auto begin = static_cast<ptrdiff_t>(offset);
  const auto end = static_cast<ptrdiff_t>(offset + length);
  Column out(type_);
  out.valid_.assign(valid_.begin() + begin, valid_.begin() + end);
  for (uint8_t v : out.valid_) {
    if (v == 0) ++out.null_count_;
  }
  switch (type_) {
    case DataType::kDouble:
      out.doubles_.assign(doubles_.begin() + begin, doubles_.begin() + end);
      break;
    case DataType::kInt64:
      out.int64s_.assign(int64s_.begin() + begin, int64s_.begin() + end);
      break;
    case DataType::kString:
      out.strings_.assign(strings_.begin() + begin, strings_.begin() + end);
      break;
    case DataType::kBool:
      out.bools_.assign(bools_.begin() + begin, bools_.begin() + end);
      break;
  }
  return out;
}

Bitmap Column::ValidityBitmap() const { return Bitmap::FromBytes(valid_); }

std::string Column::ValueToString(size_t row) const {
  if (row >= size() || !valid_[row]) return "null";
  // flowcheck: allow-unchecked-result (row bound and validity checked above)
  return CellToString(GetCell(row).ValueOrDie());
}

}  // namespace fairlaw::data
