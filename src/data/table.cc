#include "data/table.h"

#include <algorithm>
#include <optional>

namespace fairlaw::data {

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::Invalid("Table::Make: schema has " +
                           std::to_string(schema.num_fields()) +
                           " fields but " + std::to_string(columns.size()) +
                           " columns were given");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(i).type) {
      return Status::Invalid("Table::Make: column '" + schema.field(i).name +
                             "' type mismatch");
    }
    if (columns[i].size() != columns[0].size()) {
      return Status::Invalid("Table::Make: column '" + schema.field(i).name +
                             "' has length " +
                             std::to_string(columns[i].size()) +
                             ", expected " +
                             std::to_string(columns[0].size()));
    }
  }
  return Table(std::move(schema), std::move(columns));
}

Result<const Column*> Table::GetColumn(std::string_view name) const {
  FAIRLAW_ASSIGN_OR_RETURN(size_t index, schema_.FieldIndex(name));
  return &columns_[index];
}

Result<Table> Table::AddColumn(const std::string& name, Column column) const {
  if (num_columns() > 0 && column.size() != num_rows()) {
    return Status::Invalid("AddColumn: column length " +
                           std::to_string(column.size()) +
                           " != table rows " + std::to_string(num_rows()));
  }
  FAIRLAW_ASSIGN_OR_RETURN(Schema schema,
                           schema_.AddField(Field{name, column.type()}));
  std::vector<Column> columns = columns_;
  columns.push_back(std::move(column));
  return Table(std::move(schema), std::move(columns));
}

Result<Table> Table::RemoveColumn(const std::string& name) const {
  FAIRLAW_ASSIGN_OR_RETURN(size_t index, schema_.FieldIndex(name));
  FAIRLAW_ASSIGN_OR_RETURN(Schema schema, schema_.RemoveField(name));
  std::vector<Column> columns = columns_;
  columns.erase(columns.begin() + static_cast<ptrdiff_t>(index));
  return Table(std::move(schema), std::move(columns));
}

Result<Table> Table::ReplaceColumn(const std::string& name,
                                   Column column) const {
  FAIRLAW_ASSIGN_OR_RETURN(size_t index, schema_.FieldIndex(name));
  if (column.size() != num_rows()) {
    return Status::Invalid("ReplaceColumn: length mismatch");
  }
  std::vector<Field> fields = schema_.fields();
  fields[index].type = column.type();
  FAIRLAW_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  std::vector<Column> columns = columns_;
  columns[index] = std::move(column);
  return Table(std::move(schema), std::move(columns));
}

Result<Table> Table::Take(std::span<const size_t> indices) const {
  std::vector<Column> columns;
  columns.reserve(columns_.size());
  for (const Column& column : columns_) {
    FAIRLAW_ASSIGN_OR_RETURN(Column taken, column.Take(indices));
    columns.push_back(std::move(taken));
  }
  return Table(schema_, std::move(columns));
}

Result<Table> Table::Filter(
    const std::function<bool(size_t)>& predicate) const {
  std::vector<size_t> indices;
  for (size_t row = 0; row < num_rows(); ++row) {
    if (predicate(row)) indices.push_back(row);
  }
  return Take(indices);
}

Result<Table> Table::Slice(size_t offset, size_t length) const {
  if (offset > num_rows() || offset + length > num_rows()) {
    return Status::OutOfRange("Slice: [" + std::to_string(offset) + ", " +
                              std::to_string(offset + length) +
                              ") exceeds row count " +
                              std::to_string(num_rows()));
  }
  std::vector<Column> columns;
  // Per-column Slice re-checks bounds, but the table-level check above
  // also covers the zero-column table.
  columns.reserve(columns_.size());
  for (const Column& column : columns_) {
    FAIRLAW_ASSIGN_OR_RETURN(Column sliced, column.Slice(offset, length));
    columns.push_back(std::move(sliced));
  }
  return Table(schema_, std::move(columns));
}

Result<std::vector<size_t>> Table::RowsWhereEquals(
    const std::string& column_name, const std::string& value) const {
  FAIRLAW_ASSIGN_OR_RETURN(const Column* column, GetColumn(column_name));
  if (column->type() != DataType::kString) {
    return Status::Invalid("RowsWhereEquals: column '" + column_name +
                           "' is not a string column");
  }
  std::vector<size_t> indices;
  for (size_t row = 0; row < column->size(); ++row) {
    if (!column->IsValid(row)) continue;
    FAIRLAW_ASSIGN_OR_RETURN(std::string cell, column->GetString(row));
    if (cell == value) indices.push_back(row);
  }
  return indices;
}

std::string Table::Preview(size_t max_rows) const {
  // Column widths sized to header and shown cells.
  std::vector<size_t> widths(num_columns());
  const size_t rows = std::min(max_rows, num_rows());
  for (size_t c = 0; c < num_columns(); ++c) {
    widths[c] = schema_.field(c).name.size();
    for (size_t r = 0; r < rows; ++r) {
      widths[c] = std::max(widths[c], columns_[c].ValueToString(r).size());
    }
  }
  std::string out;
  for (size_t c = 0; c < num_columns(); ++c) {
    std::string cell = schema_.field(c).name;
    cell.resize(widths[c], ' ');
    out += cell;
    out += c + 1 < num_columns() ? "  " : "\n";
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      std::string cell = columns_[c].ValueToString(r);
      cell.resize(widths[c], ' ');
      out += cell;
      out += c + 1 < num_columns() ? "  " : "\n";
    }
  }
  if (rows < num_rows()) {
    out += "... (" + std::to_string(num_rows() - rows) + " more rows)\n";
  }
  return out;
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

Status TableBuilder::AppendRow(const std::vector<Cell>& cells) {
  if (cells.size() != schema_.num_fields()) {
    return Status::Invalid("AppendRow: expected " +
                           std::to_string(schema_.num_fields()) +
                           " cells, got " + std::to_string(cells.size()));
  }
  // Validate the whole row before mutating so a failed append leaves the
  // builder consistent.
  for (size_t i = 0; i < cells.size(); ++i) {
    bool matches = false;
    switch (schema_.field(i).type) {
      case DataType::kDouble:
        matches = std::holds_alternative<double>(cells[i]);
        break;
      case DataType::kInt64:
        matches = std::holds_alternative<int64_t>(cells[i]);
        break;
      case DataType::kString:
        matches = std::holds_alternative<std::string>(cells[i]);
        break;
      case DataType::kBool:
        matches = std::holds_alternative<bool>(cells[i]);
        break;
    }
    if (!matches) {
      return Status::Invalid("AppendRow: cell " + std::to_string(i) +
                             " does not match field '" +
                             schema_.field(i).name + "'");
    }
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    FAIRLAW_RETURN_NOT_OK(columns_[i].AppendCell(cells[i]));
  }
  return Status::OK();
}

Status TableBuilder::AppendRowWithNulls(
    const std::vector<std::optional<Cell>>& cells) {
  if (cells.size() != schema_.num_fields()) {
    return Status::Invalid("AppendRowWithNulls: arity mismatch");
  }
  std::vector<Cell> present;
  present.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].has_value()) present.push_back(*cells[i]);
  }
  // Validate typed cells up front (cheap second pass keeps atomicity).
  size_t k = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].has_value()) continue;
    Column probe(schema_.field(i).type);
    FAIRLAW_RETURN_NOT_OK(probe.AppendCell(present[k++]));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].has_value()) {
      FAIRLAW_RETURN_NOT_OK(columns_[i].AppendCell(*cells[i]));
    } else {
      columns_[i].AppendNull();
    }
  }
  return Status::OK();
}

Result<Table> TableBuilder::Finish() {
  Schema schema = schema_;
  std::vector<Column> columns = std::move(columns_);
  columns_.clear();
  columns_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
  return Table::Make(std::move(schema), std::move(columns));
}

}  // namespace fairlaw::data
