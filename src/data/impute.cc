#include "data/impute.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/descriptive.h"

namespace fairlaw::data {
namespace {

/// Non-null values of a numeric column as doubles.
Result<std::vector<double>> NonNullNumeric(const Column& column) {
  std::vector<double> values;
  values.reserve(column.size() - column.null_count());
  for (size_t row = 0; row < column.size(); ++row) {
    if (!column.IsValid(row)) continue;
    switch (column.type()) {
      case DataType::kDouble: {
        FAIRLAW_ASSIGN_OR_RETURN(double value, column.GetDouble(row));
        values.push_back(value);
        break;
      }
      case DataType::kInt64: {
        FAIRLAW_ASSIGN_OR_RETURN(int64_t value, column.GetInt64(row));
        values.push_back(static_cast<double>(value));
        break;
      }
      case DataType::kBool: {
        FAIRLAW_ASSIGN_OR_RETURN(bool value, column.GetBool(row));
        values.push_back(value ? 1.0 : 0.0);
        break;
      }
      case DataType::kString:
        return Status::Invalid("numeric imputation on string column");
    }
  }
  if (values.empty()) {
    return Status::Invalid("imputation: column has no non-null values");
  }
  return values;
}

/// The fill cell for one column under one strategy.
Result<Cell> FillCell(const Column& column, const ImputeSpec& spec) {
  switch (spec.strategy) {
    case ImputeStrategy::kConstant:
      return spec.constant;
    case ImputeStrategy::kMean: {
      FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values,
                               NonNullNumeric(column));
      FAIRLAW_ASSIGN_OR_RETURN(double mean, stats::Mean(values));
      if (column.type() == DataType::kInt64) {
        return Cell(static_cast<int64_t>(std::llround(mean)));
      }
      if (column.type() == DataType::kBool) return Cell(mean >= 0.5);
      return Cell(mean);
    }
    case ImputeStrategy::kMedian: {
      FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values,
                               NonNullNumeric(column));
      FAIRLAW_ASSIGN_OR_RETURN(double median, stats::Median(values));
      if (column.type() == DataType::kInt64) {
        return Cell(static_cast<int64_t>(std::llround(median)));
      }
      if (column.type() == DataType::kBool) return Cell(median >= 0.5);
      return Cell(median);
    }
    case ImputeStrategy::kMode: {
      std::map<std::string, size_t> counts;
      std::map<std::string, Cell> representative;
      for (size_t row = 0; row < column.size(); ++row) {
        if (!column.IsValid(row)) continue;
        FAIRLAW_ASSIGN_OR_RETURN(Cell cell, column.GetCell(row));
        std::string key = CellToString(cell);
        ++counts[key];
        representative.emplace(key, cell);
      }
      if (counts.empty()) {
        return Status::Invalid("imputation: column has no non-null values");
      }
      auto best = std::max_element(
          counts.begin(), counts.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      return representative.at(best->first);
    }
  }
  return Status::Internal("unknown imputation strategy");
}

}  // namespace

Result<Table> ImputeNulls(const Table& table,
                          const std::vector<ImputeSpec>& specs) {
  if (specs.empty()) return Status::Invalid("ImputeNulls: no columns named");
  Table result = table;
  for (const ImputeSpec& spec : specs) {
    FAIRLAW_ASSIGN_OR_RETURN(const Column* column,
                             result.GetColumn(spec.column));
    if (column->null_count() == 0) continue;
    FAIRLAW_ASSIGN_OR_RETURN(Cell fill, FillCell(*column, spec));
    Column replacement(column->type());
    for (size_t row = 0; row < column->size(); ++row) {
      if (column->IsValid(row)) {
        FAIRLAW_ASSIGN_OR_RETURN(Cell cell, column->GetCell(row));
        FAIRLAW_RETURN_NOT_OK(replacement.AppendCell(cell));
      } else {
        FAIRLAW_RETURN_NOT_OK(replacement.AppendCell(fill));
      }
    }
    FAIRLAW_ASSIGN_OR_RETURN(result, result.ReplaceColumn(spec.column,
                                                          replacement));
  }
  return result;
}

Result<DropNullsReport> DropNullRows(const Table& table,
                                     const std::vector<std::string>& columns,
                                     const std::string& group_column) {
  std::vector<const Column*> checked;
  if (columns.empty()) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      checked.push_back(&table.column(c));
    }
  } else {
    for (const std::string& name : columns) {
      FAIRLAW_ASSIGN_OR_RETURN(const Column* column, table.GetColumn(name));
      checked.push_back(column);
    }
  }
  const Column* group = nullptr;
  if (!group_column.empty()) {
    FAIRLAW_ASSIGN_OR_RETURN(group, table.GetColumn(group_column));
  }

  std::vector<size_t> keep;
  std::map<std::string, size_t> dropped;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    bool has_null = false;
    for (const Column* column : checked) {
      if (!column->IsValid(row)) {
        has_null = true;
        break;
      }
    }
    if (has_null) {
      if (group != nullptr) ++dropped[group->ValueToString(row)];
    } else {
      keep.push_back(row);
    }
  }
  DropNullsReport report;
  FAIRLAW_ASSIGN_OR_RETURN(report.table, table.Take(keep));
  report.rows_dropped = table.num_rows() - keep.size();
  report.dropped_per_group.assign(dropped.begin(), dropped.end());
  return report;
}

}  // namespace fairlaw::data
