#ifndef FAIRLAW_DATA_IMPUTE_H_
#define FAIRLAW_DATA_IMPUTE_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "data/table.h"

namespace fairlaw::data {

// Explicit missing-value handling. fairlaw's audits refuse columns with
// nulls by design — silently dropping rows distorts exactly the
// group compositions an audit is supposed to measure. These helpers are
// the sanctioned alternatives: impute with a visible strategy, or drop
// rows *with a report of what was dropped per group* so the analyst can
// check the missingness itself is not group-correlated (missingness as a
// §IV-B proxy channel).

/// Imputation strategy for one column.
enum class ImputeStrategy {
  kMean,      // numeric columns: mean of non-null values
  kMedian,    // numeric columns: median of non-null values
  kMode,      // any column: most frequent non-null value
  kConstant,  // caller-supplied fill value
};

/// Per-column imputation request.
struct ImputeSpec {
  std::string column;
  ImputeStrategy strategy = ImputeStrategy::kMean;
  /// Fill cell for kConstant (type must match the column).
  Cell constant = 0.0;
};

/// Returns a new table with the requested columns' nulls filled. Columns
/// not named keep their nulls. Fails if a numeric strategy is applied to
/// a string column or a column has no non-null values to estimate from.
FAIRLAW_NODISCARD Result<Table> ImputeNulls(const Table& table,
                          const std::vector<ImputeSpec>& specs);

/// Result of dropping null rows.
struct DropNullsReport {
  Table table;
  size_t rows_dropped = 0;
  /// Rendered value of `group_column` -> rows dropped from that group;
  /// populated when a group column was supplied. Skewed counts mean the
  /// missingness itself carries protected information.
  std::vector<std::pair<std::string, size_t>> dropped_per_group;
};

/// Returns the table restricted to rows with no nulls in `columns`
/// (all columns when empty). `group_column` (optional, may be empty)
/// attributes the dropped rows to protected groups for the missingness
/// report.
FAIRLAW_NODISCARD Result<DropNullsReport> DropNullRows(const Table& table,
                                     const std::vector<std::string>& columns,
                                     const std::string& group_column = "");

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_IMPUTE_H_
