#ifndef FAIRLAW_DATA_GROUP_INDEX_H_
#define FAIRLAW_DATA_GROUP_INDEX_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "data/bitmap.h"
#include "data/table.h"

namespace fairlaw::data {

/// Bitmap partition of one attribute column: every distinct value (in
/// first-seen row order, matching DistinctValues) with the bitmap of the
/// rows holding it. The bitmaps are disjoint and cover all rows.
struct AttributeIndex {
  std::string name;
  std::vector<std::string> values;
  std::vector<Bitmap> bitmaps;  // aligned with `values`

  /// Index into `values` for `value`; NotFound when absent.
  FAIRLAW_NODISCARD Result<size_t> IndexOf(const std::string& value) const;
};

/// Columnar bitmap index over a table: per-attribute-value row bitmaps
/// plus (optionally) packed 0/1 prediction and label bitmaps.
///
/// Built once per table, then every subgroup / metric question becomes
/// word-wise AND + popcount:
///   members of (gender=f & race=c)  = bm(gender=f) & bm(race=c)
///   selected in that subgroup       = popcount(members & predictions)
///   TP in that subgroup             = popcount(members & pred & labels)
/// The audit layers cache one GroupIndex per run so no metric re-derives
/// a partition from string columns.
class GroupIndex {
 public:
  /// Indexes `attribute_columns` of `table` (values are compared as
  /// rendered strings, nulls render as "null", matching GroupBy).
  FAIRLAW_NODISCARD static Result<GroupIndex> Build(
      const Table& table, const std::vector<std::string>& attribute_columns);

  size_t num_rows() const { return num_rows_; }
  const std::vector<AttributeIndex>& attributes() const { return attributes_; }

  /// The indexed attribute named `name`; NotFound when absent.
  FAIRLAW_NODISCARD Result<const AttributeIndex*> Attribute(const std::string& name) const;

  /// Packs a 0/1 column (double/int64/bool) into a bitmap; Invalid on
  /// non-binary values or nulls. Usable standalone for prediction/label
  /// columns.
  FAIRLAW_NODISCARD static Result<Bitmap> BinaryColumnBitmap(const Table& table,
                                           const std::string& column);

 private:
  size_t num_rows_ = 0;
  std::vector<AttributeIndex> attributes_;
};

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_GROUP_INDEX_H_
