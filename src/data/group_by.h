#ifndef FAIRLAW_DATA_GROUP_BY_H_
#define FAIRLAW_DATA_GROUP_BY_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "data/table.h"

namespace fairlaw::data {

/// One group produced by GroupBy: the key values (aligned with the
/// grouping columns) and the member row indices.
struct Group {
  std::vector<std::string> key;
  std::vector<size_t> rows;

  /// Renders "col=a,col2=b" given the grouping column names.
  std::string KeyString(const std::vector<std::string>& columns) const;
};

/// Partitions table rows by the combination of values in `columns`
/// (rendered to strings; null cells render as "null"). Groups appear in
/// first-seen row order, members in ascending row order. Any column type
/// may be used, but fairness audits typically group by protected
/// attributes stored as strings.
FAIRLAW_NODISCARD Result<std::vector<Group>> GroupBy(const Table& table,
                                   const std::vector<std::string>& columns);

/// Distinct values of one column in first-seen order (nulls rendered as
/// "null").
FAIRLAW_NODISCARD Result<std::vector<std::string>> DistinctValues(const Table& table,
                                                const std::string& column);

/// Counts of each distinct value of `column`, aligned with
/// DistinctValues.
FAIRLAW_NODISCARD Result<std::vector<int64_t>> ValueCounts(const Table& table,
                                         const std::string& column);

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_GROUP_BY_H_
