#include "data/schema.h"

#include <unordered_set>

namespace fairlaw::data {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "double";
    case DataType::kInt64:
      return "int64";
    case DataType::kString:
      return "string";
    case DataType::kBool:
      return "bool";
  }
  return "unknown";
}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const Field& field : fields) {
    if (field.name.empty()) {
      return Status::Invalid("Schema: field name must be non-empty");
    }
    if (!seen.insert(field.name).second) {
      return Status::Invalid("Schema: duplicate field name '" + field.name +
                             "'");
    }
  }
  return Schema(std::move(fields));
}

Result<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("Schema: no field named '" + std::string(name) +
                          "'");
}

bool Schema::HasField(std::string_view name) const {
  return FieldIndex(name).ok();
}

Result<Schema> Schema::AddField(Field field) const {
  std::vector<Field> fields = fields_;
  fields.push_back(std::move(field));
  return Make(std::move(fields));
}

Result<Schema> Schema::RemoveField(const std::string& name) const {
  FAIRLAW_ASSIGN_OR_RETURN(size_t index, FieldIndex(name));
  std::vector<Field> fields = fields_;
  fields.erase(fields.begin() + static_cast<ptrdiff_t>(index));
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace fairlaw::data
