#ifndef FAIRLAW_DATA_CHUNKED_H_
#define FAIRLAW_DATA_CHUNKED_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "base/result.h"
#include "data/bitmap.h"
#include "data/table.h"

namespace fairlaw::data {

/// Default morsel size for the chunked audit engine: 64k rows keeps a
/// chunk's bitmaps (1k words) and numeric columns L2-resident while still
/// amortizing per-morsel scheduling overhead.
inline constexpr size_t kDefaultChunkRows = 65536;

/// A table split into fixed-size row chunks sharing one schema.
///
/// Each chunk is a plain `Table` (contiguous columns + per-chunk validity
/// masks), so every existing per-table kernel — `GroupIndex`, fused
/// bitmap popcounts, dense column views — runs unmodified per chunk. The
/// audit engine schedules one morsel per chunk and merges per-chunk
/// partials in chunk order, which is what keeps output byte-identical for
/// any thread count and any chunk size (DESIGN.md §14).
///
/// Invariants: every chunk has the same schema and at least one row (a
/// zero-row source table yields zero chunks), and `num_rows()` is the sum
/// of chunk sizes.
class ChunkedTable {
 public:
  /// Empty chunked table (no schema, no rows).
  ChunkedTable() = default;

  /// Splits `table` into chunks of `chunk_rows` rows (the last chunk may
  /// be shorter). `chunk_rows` == 0 means "one chunk for the whole
  /// table". Copies the sliced rows; callers that already hold chunked
  /// data should use FromChunks.
  FAIRLAW_NODISCARD static Result<ChunkedTable> FromTable(const Table& table,
                                                          size_t chunk_rows);

  /// Adopts pre-built chunks. All chunks must share a schema and be
  /// non-empty (an empty vector makes an empty chunked table).
  FAIRLAW_NODISCARD static Result<ChunkedTable> FromChunks(
      std::vector<Table> chunks);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_chunks() const { return chunks_.size(); }
  const Table& chunk(size_t i) const { return chunks_[i]; }
  const std::vector<Table>& chunks() const { return chunks_; }

  /// Calls `fn(chunk, chunk_index, row_offset)` for every chunk in row
  /// order — the chunk-aware replacement for contiguous span views
  /// (`Column::Doubles()` etc. stay valid per chunk, never across
  /// chunks). Stops at and returns the first non-OK status.
  FAIRLAW_NODISCARD Status ForEachChunk(
      const std::function<Status(const Table&, size_t, size_t)>& fn) const;

  /// Concatenates the chunks back into one contiguous table.
  FAIRLAW_NODISCARD Result<Table> Materialize() const;

 private:
  Schema schema_;
  std::vector<Table> chunks_;
  size_t num_rows_ = 0;
};

/// A row set over a chunked table: one bitmap per chunk, combined with
/// the same fused AND/popcount kernels as the contiguous `Bitmap` —
/// per-chunk counts simply sum, so chunk-spanning kernels return exactly
/// the numbers the whole-table kernels would.
class ChunkedBitmap {
 public:
  ChunkedBitmap() = default;

  /// Adopts per-chunk bitmaps (sized to their chunks).
  explicit ChunkedBitmap(std::vector<Bitmap> chunks);

  /// All-zero bitmap laid out over the given chunk sizes.
  static ChunkedBitmap AllZero(std::span<const size_t> chunk_sizes);

  size_t num_chunks() const { return chunks_.size(); }
  const Bitmap& chunk(size_t i) const { return chunks_[i]; }
  Bitmap* mutable_chunk(size_t i) { return &chunks_[i]; }

  /// Total bits / total set bits across all chunks.
  size_t size() const;
  size_t Count() const;

  /// Writes a & b into *out chunk by chunk and returns the total
  /// popcount — the chunk-spanning analogue of Bitmap::AndInto. The
  /// operands must have identical chunk layouts (programming error
  /// otherwise, matching the Bitmap kernel contract).
  static size_t AndInto(const ChunkedBitmap& a, const ChunkedBitmap& b,
                        ChunkedBitmap* out);

  /// Fused |a & b| without materializing the intersection.
  static size_t AndCount(const ChunkedBitmap& a, const ChunkedBitmap& b);

  bool operator==(const ChunkedBitmap& other) const = default;

 private:
  std::vector<Bitmap> chunks_;
};

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_CHUNKED_H_
