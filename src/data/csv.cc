#include "data/csv.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "base/string_util.h"
#include "obs/obs.h"

namespace fairlaw::data {
namespace {

/// Splits raw CSV text into rows of fields honoring quoting. Returns an
/// error on an unterminated quote.
Result<std::vector<std::vector<std::string>>> Tokenize(
    const std::string& text, char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      row_has_content = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      row.push_back(std::move(field));
      field.clear();
      row_has_content = true;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      if (row_has_content || !field.empty()) {
        row.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(row));
        row.clear();
        row_has_content = false;
      }
      ++i;
      continue;
    }
    field += c;
    row_has_content = true;
    ++i;
  }
  if (in_quotes) return Status::Invalid("CSV: unterminated quoted field");
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

bool IsNullToken(const std::string& raw, const CsvOptions& options) {
  std::string stripped(StripWhitespace(raw));
  for (const std::string& token : options.null_tokens) {
    if (stripped == token) return true;
  }
  return false;
}

DataType InferColumnType(const std::vector<std::vector<std::string>>& rows,
                         size_t column, size_t first_data_row,
                         const CsvOptions& options) {
  bool all_int = true;
  bool all_double = true;
  bool all_bool = true;
  bool any_value = false;
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    if (column >= rows[r].size()) continue;
    const std::string& raw = rows[r][column];
    if (IsNullToken(raw, options)) continue;
    any_value = true;
    if (all_int && !ParseInt64(raw).ok()) all_int = false;
    if (all_double && !ParseDouble(raw).ok()) all_double = false;
    if (all_bool && !ParseBool(raw).ok()) all_bool = false;
    if (!all_int && !all_double && !all_bool) return DataType::kString;
  }
  if (!any_value) return DataType::kString;
  if (all_int) return DataType::kInt64;
  if (all_double) return DataType::kDouble;
  if (all_bool) return DataType::kBool;
  return DataType::kString;
}

Result<std::optional<Cell>> ParseCell(const std::string& raw, DataType type,
                                      const CsvOptions& options) {
  if (IsNullToken(raw, options)) return std::optional<Cell>();
  switch (type) {
    case DataType::kDouble: {
      FAIRLAW_ASSIGN_OR_RETURN(double v, ParseDouble(raw));
      return std::optional<Cell>(Cell(v));
    }
    case DataType::kInt64: {
      FAIRLAW_ASSIGN_OR_RETURN(int64_t v, ParseInt64(raw));
      return std::optional<Cell>(Cell(v));
    }
    case DataType::kBool: {
      FAIRLAW_ASSIGN_OR_RETURN(bool v, ParseBool(raw));
      return std::optional<Cell>(Cell(v));
    }
    case DataType::kString:
      return std::optional<Cell>(Cell(raw));
  }
  return Status::Internal("ParseCell: unknown type");
}

std::string EscapeField(const std::string& value, char delimiter) {
  bool needs_quotes = value.find(delimiter) != std::string::npos ||
                      value.find('"') != std::string::npos ||
                      value.find('\n') != std::string::npos ||
                      value.find('\r') != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  obs::TraceSpan span("read_csv");
  obs::GetCounter("csv.bytes_read")->Increment(text.size());
  FAIRLAW_ASSIGN_OR_RETURN(auto rows, Tokenize(text, options.delimiter));
  if (rows.empty()) return Status::Invalid("CSV: input has no rows");

  const size_t num_columns = rows[0].size();
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != num_columns) {
      return Status::Invalid("CSV: row " + std::to_string(r) + " has " +
                             std::to_string(rows[r].size()) +
                             " fields, expected " +
                             std::to_string(num_columns));
    }
  }

  std::vector<std::string> names(num_columns);
  size_t first_data_row = 0;
  if (options.has_header) {
    for (size_t c = 0; c < num_columns; ++c) {
      names[c] = std::string(StripWhitespace(rows[0][c]));
    }
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < num_columns; ++c) {
      names[c] = std::string("c").append(std::to_string(c));
    }
  }

  std::vector<Field> fields(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    fields[c] = Field{names[c],
                      InferColumnType(rows, c, first_data_row, options)};
  }
  FAIRLAW_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));

  TableBuilder builder(schema);
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    std::vector<std::optional<Cell>> cells(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      FAIRLAW_ASSIGN_OR_RETURN(
          cells[c], ParseCell(rows[r][c], schema.field(c).type, options));
    }
    FAIRLAW_RETURN_NOT_OK(builder.AppendRowWithNulls(cells));
  }
  obs::GetCounter("csv.rows_loaded")->Increment(rows.size() - first_data_row);
  return builder.Finish();
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream input(path, std::ios::binary);
  if (!input) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << input.rdbuf();
  if (input.bad()) return Status::IOError("error reading '" + path + "'");
  return ReadCsvString(buffer.str(), options);
}

Result<std::string> WriteCsvString(const Table& table,
                                   const CsvOptions& options) {
  std::string out;
  const std::string delimiter(1, options.delimiter);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += delimiter;
    out += EscapeField(table.schema().field(c).name, options.delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      const Column& column = table.column(c);
      if (!column.IsValid(r)) continue;  // null renders as empty field
      FAIRLAW_ASSIGN_OR_RETURN(Cell cell, column.GetCell(r));
      out += EscapeField(CellToString(cell), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  FAIRLAW_ASSIGN_OR_RETURN(std::string text, WriteCsvString(table, options));
  std::ofstream output(path, std::ios::binary);
  if (!output) return Status::IOError("cannot open '" + path +
                                      "' for writing");
  output << text;
  if (!output) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

}  // namespace fairlaw::data
