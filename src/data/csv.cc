#include "data/csv.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "base/string_util.h"
#include "obs/obs.h"

namespace fairlaw::data {
namespace {

/// Incremental CSV row scanner over a stream: pulls one row per call with
/// a fixed-size read buffer, honoring quoting ("" escapes), CR/LF/CRLF
/// newlines, and blank-line skipping. This is the single tokenizer behind
/// both the whole-table readers and the streaming CsvChunkReader, so the
/// two ingestion paths cannot drift apart.
class RowScanner {
 public:
  RowScanner(std::istream* input, char delimiter)
      : input_(input), delimiter_(delimiter) {}

  /// Scans the next row into *row (cleared first). Returns true when a
  /// row was produced, false at clean end of input; Invalid on an
  /// unterminated quote, IOError on a read failure.
  FAIRLAW_NODISCARD Result<bool> NextRow(std::vector<std::string>* row) {
    row->clear();
    std::string field;
    bool in_quotes = false;
    bool row_has_content = false;
    for (;;) {
      const int ci = TakeByte();
      if (ci < 0) {
        if (input_->bad()) return Status::IOError("error reading CSV stream");
        if (in_quotes) return Status::Invalid("CSV: unterminated quoted field");
        if (row_has_content || !field.empty()) {
          row->push_back(std::move(field));
          return true;
        }
        return false;
      }
      const char c = static_cast<char>(ci);
      if (in_quotes) {
        if (c == '"') {
          if (PeekByte() == '"') {
            field += '"';
            (void)TakeByte();
            continue;
          }
          in_quotes = false;
          continue;
        }
        field += c;
        continue;
      }
      if (c == '"') {
        in_quotes = true;
        row_has_content = true;
        continue;
      }
      if (c == delimiter_) {
        row->push_back(std::move(field));
        field.clear();
        row_has_content = true;
        continue;
      }
      if (c == '\n' || c == '\r') {
        if (c == '\r' && PeekByte() == '\n') (void)TakeByte();
        if (row_has_content || !field.empty()) {
          row->push_back(std::move(field));
          return true;
        }
        continue;  // blank line: keep scanning
      }
      field += c;
      row_has_content = true;
    }
  }

  /// Bytes consumed from the stream so far.
  size_t bytes_consumed() const { return bytes_consumed_; }

 private:
  static constexpr size_t kBufferSize = size_t{1} << 16;

  int TakeByte() {
    if (pos_ >= len_ && !Fill()) return -1;
    ++bytes_consumed_;
    return static_cast<unsigned char>(buffer_[pos_++]);
  }

  int PeekByte() {
    if (pos_ >= len_ && !Fill()) return -1;
    return static_cast<unsigned char>(buffer_[pos_]);
  }

  bool Fill() {
    if (at_end_) return false;
    input_->read(buffer_.data(), static_cast<std::streamsize>(kBufferSize));
    len_ = static_cast<size_t>(input_->gcount());
    pos_ = 0;
    if (len_ == 0) {
      at_end_ = true;
      return false;
    }
    return true;
  }

  std::istream* input_;
  char delimiter_;
  std::vector<char> buffer_ = std::vector<char>(kBufferSize);
  size_t pos_ = 0;
  size_t len_ = 0;
  size_t bytes_consumed_ = 0;
  bool at_end_ = false;
};

/// Scans every row of `input` (used by the whole-table readers; the
/// streaming reader drives RowScanner chunk by chunk instead).
Result<std::vector<std::vector<std::string>>> ScanAllRows(std::istream* input,
                                                          char delimiter) {
  RowScanner scanner(input, delimiter);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  for (;;) {
    FAIRLAW_ASSIGN_OR_RETURN(bool has_row, scanner.NextRow(&row));
    if (!has_row) break;
    rows.push_back(std::move(row));
  }
  return rows;
}

bool IsNullToken(const std::string& raw, const CsvOptions& options) {
  std::string stripped(StripWhitespace(raw));
  for (const std::string& token : options.null_tokens) {
    if (stripped == token) return true;
  }
  return false;
}

/// O(1)-memory column type tracker: the streaming inference pass keeps one
/// of these per column instead of the token matrix, and the whole-table
/// reader folds its rows through the same flags, so both ingestion paths
/// infer identical schemas by construction. Priority: int64 > double >
/// bool > string; a column with no non-null values is string.
struct ColumnTypeFlags {
  bool all_int = true;
  bool all_double = true;
  bool all_bool = true;
  bool any_value = false;

  void Observe(const std::string& raw) {
    any_value = true;
    if (all_int && !ParseInt64(raw).ok()) all_int = false;
    if (all_double && !ParseDouble(raw).ok()) all_double = false;
    if (all_bool && !ParseBool(raw).ok()) all_bool = false;
  }

  DataType Resolve() const {
    if (!any_value) return DataType::kString;
    if (all_int) return DataType::kInt64;
    if (all_double) return DataType::kDouble;
    if (all_bool) return DataType::kBool;
    return DataType::kString;
  }
};

DataType InferColumnType(const std::vector<std::vector<std::string>>& rows,
                         size_t column, size_t first_data_row,
                         const CsvOptions& options) {
  ColumnTypeFlags flags;
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    if (column >= rows[r].size()) continue;
    const std::string& raw = rows[r][column];
    if (IsNullToken(raw, options)) continue;
    flags.Observe(raw);
    if (!flags.all_int && !flags.all_double && !flags.all_bool) break;
  }
  return flags.Resolve();
}

Result<std::optional<Cell>> ParseCell(const std::string& raw, DataType type,
                                      const CsvOptions& options) {
  if (IsNullToken(raw, options)) return std::optional<Cell>();
  switch (type) {
    case DataType::kDouble: {
      FAIRLAW_ASSIGN_OR_RETURN(double v, ParseDouble(raw));
      return std::optional<Cell>(Cell(v));
    }
    case DataType::kInt64: {
      FAIRLAW_ASSIGN_OR_RETURN(int64_t v, ParseInt64(raw));
      return std::optional<Cell>(Cell(v));
    }
    case DataType::kBool: {
      FAIRLAW_ASSIGN_OR_RETURN(bool v, ParseBool(raw));
      return std::optional<Cell>(Cell(v));
    }
    case DataType::kString:
      return std::optional<Cell>(Cell(raw));
  }
  return Status::Internal("ParseCell: unknown type");
}

std::string EscapeField(const std::string& value, char delimiter) {
  bool needs_quotes = value.find(delimiter) != std::string::npos ||
                      value.find('"') != std::string::npos ||
                      value.find('\n') != std::string::npos ||
                      value.find('\r') != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  obs::TraceSpan span("read_csv");
  obs::GetCounter("csv.bytes_read")->Increment(text.size());
  std::istringstream input(text);
  FAIRLAW_ASSIGN_OR_RETURN(auto rows,
                           ScanAllRows(&input, options.delimiter));
  if (rows.empty()) return Status::Invalid("CSV: input has no rows");

  const size_t num_columns = rows[0].size();
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != num_columns) {
      return Status::Invalid("CSV: row " + std::to_string(r) + " has " +
                             std::to_string(rows[r].size()) +
                             " fields, expected " +
                             std::to_string(num_columns));
    }
  }

  std::vector<std::string> names(num_columns);
  size_t first_data_row = 0;
  if (options.has_header) {
    for (size_t c = 0; c < num_columns; ++c) {
      names[c] = std::string(StripWhitespace(rows[0][c]));
    }
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < num_columns; ++c) {
      names[c] = std::string("c").append(std::to_string(c));
    }
  }

  std::vector<Field> fields(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    fields[c] = Field{names[c],
                      InferColumnType(rows, c, first_data_row, options)};
  }
  FAIRLAW_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));

  TableBuilder builder(schema);
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    std::vector<std::optional<Cell>> cells(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      FAIRLAW_ASSIGN_OR_RETURN(
          cells[c], ParseCell(rows[r][c], schema.field(c).type, options));
    }
    FAIRLAW_RETURN_NOT_OK(builder.AppendRowWithNulls(cells));
  }
  obs::GetCounter("csv.rows_loaded")->Increment(rows.size() - first_data_row);
  return builder.Finish();
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream input(path, std::ios::binary);
  if (!input) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << input.rdbuf();
  if (input.bad()) return Status::IOError("error reading '" + path + "'");
  return ReadCsvString(buffer.str(), options);
}

Result<std::string> WriteCsvString(const Table& table,
                                   const CsvOptions& options) {
  std::string out;
  const std::string delimiter(1, options.delimiter);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += delimiter;
    out += EscapeField(table.schema().field(c).name, options.delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      const Column& column = table.column(c);
      if (!column.IsValid(r)) continue;  // null renders as empty field
      FAIRLAW_ASSIGN_OR_RETURN(Cell cell, column.GetCell(r));
      out += EscapeField(CellToString(cell), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  FAIRLAW_ASSIGN_OR_RETURN(std::string text, WriteCsvString(table, options));
  std::ofstream output(path, std::ios::binary);
  if (!output) return Status::IOError("cannot open '" + path +
                                      "' for writing");
  output << text;
  if (!output) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

struct CsvChunkReader::Impl {
  CsvChunkReader::Options options;
  size_t chunk_rows = kDefaultChunkRows;
  Schema schema;
  size_t num_rows = 0;   // data rows in the file
  size_t rows_read = 0;  // data rows emitted so far
  std::ifstream input;   // pass-2 stream; scanner points into it
  std::unique_ptr<RowScanner> scanner;
};

CsvChunkReader::CsvChunkReader() : impl_(std::make_unique<Impl>()) {}
CsvChunkReader::CsvChunkReader(CsvChunkReader&&) noexcept = default;
CsvChunkReader& CsvChunkReader::operator=(CsvChunkReader&&) noexcept =
    default;
CsvChunkReader::~CsvChunkReader() = default;

const Schema& CsvChunkReader::schema() const { return impl_->schema; }
size_t CsvChunkReader::num_rows() const { return impl_->num_rows; }
size_t CsvChunkReader::rows_read() const { return impl_->rows_read; }

Result<CsvChunkReader> CsvChunkReader::Make(const std::string& path) {
  return Make(path, Options{});
}

Result<CsvChunkReader> CsvChunkReader::Make(const std::string& path,
                                            const Options& options) {
  obs::TraceSpan span("csv_open_stream");
  CsvChunkReader reader;
  Impl& impl = *reader.impl_;
  impl.options = options;
  impl.chunk_rows =
      options.chunk_rows == 0 ? kDefaultChunkRows : options.chunk_rows;

  // Pass 1: flags-only inference sweep. Holds one row of tokens plus
  // O(columns) type flags, never the file.
  std::ifstream infer_input(path, std::ios::binary);
  if (!infer_input) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  RowScanner infer_scanner(&infer_input, options.csv.delimiter);
  std::vector<std::string> row;
  std::vector<std::string> names;
  std::vector<ColumnTypeFlags> flags;
  size_t num_columns = 0;
  size_t row_index = 0;
  size_t data_rows = 0;
  for (;;) {
    FAIRLAW_ASSIGN_OR_RETURN(bool has_row, infer_scanner.NextRow(&row));
    if (!has_row) break;
    if (row_index == 0) {
      num_columns = row.size();
      flags.assign(num_columns, ColumnTypeFlags{});
      names.resize(num_columns);
      for (size_t c = 0; c < num_columns; ++c) {
        names[c] = options.csv.has_header
                       ? std::string(StripWhitespace(row[c]))
                       : std::string("c").append(std::to_string(c));
      }
    }
    if (row.size() != num_columns) {
      return Status::Invalid("CSV: row " + std::to_string(row_index) +
                             " has " + std::to_string(row.size()) +
                             " fields, expected " +
                             std::to_string(num_columns));
    }
    if (!(options.csv.has_header && row_index == 0)) {
      ++data_rows;
      for (size_t c = 0; c < num_columns; ++c) {
        if (IsNullToken(row[c], options.csv)) continue;
        flags[c].Observe(row[c]);
      }
    }
    ++row_index;
  }
  if (row_index == 0) return Status::Invalid("CSV: input has no rows");
  obs::GetCounter("csv.bytes_read")
      ->Increment(infer_scanner.bytes_consumed());

  std::vector<Field> fields(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    fields[c] = Field{names[c], flags[c].Resolve()};
  }
  FAIRLAW_ASSIGN_OR_RETURN(impl.schema, Schema::Make(std::move(fields)));
  impl.num_rows = data_rows;

  // Pass 2 setup: reopen and pre-consume the header so Next() starts at
  // the first data row.
  impl.input.open(path, std::ios::binary);
  if (!impl.input) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  impl.scanner =
      std::make_unique<RowScanner>(&impl.input, options.csv.delimiter);
  if (options.csv.has_header) {
    FAIRLAW_ASSIGN_OR_RETURN(bool has_row, impl.scanner->NextRow(&row));
    if (!has_row) {
      return Status::IOError("CSV: file shrank between inference and "
                             "read passes");
    }
  }
  return reader;
}

Result<std::optional<Table>> CsvChunkReader::Next() {
  Impl& impl = *impl_;
  if (impl.rows_read >= impl.num_rows) return std::optional<Table>();
  obs::TraceSpan span("csv_chunk");
  TableBuilder builder(impl.schema);
  std::vector<std::string> row;
  std::vector<std::optional<Cell>> cells(impl.schema.num_fields());
  const size_t header_offset = impl.options.csv.has_header ? 1 : 0;
  size_t in_chunk = 0;
  while (in_chunk < impl.chunk_rows && impl.rows_read < impl.num_rows) {
    FAIRLAW_ASSIGN_OR_RETURN(bool has_row, impl.scanner->NextRow(&row));
    if (!has_row) {
      return Status::IOError("CSV: file shrank between inference and "
                             "read passes");
    }
    if (row.size() != impl.schema.num_fields()) {
      return Status::Invalid(
          "CSV: row " + std::to_string(impl.rows_read + header_offset) +
          " has " + std::to_string(row.size()) + " fields, expected " +
          std::to_string(impl.schema.num_fields()));
    }
    for (size_t c = 0; c < row.size(); ++c) {
      FAIRLAW_ASSIGN_OR_RETURN(
          cells[c],
          ParseCell(row[c], impl.schema.field(c).type, impl.options.csv));
    }
    FAIRLAW_RETURN_NOT_OK(builder.AppendRowWithNulls(cells));
    ++in_chunk;
    ++impl.rows_read;
  }
  obs::GetCounter("csv.rows_loaded")->Increment(in_chunk);
  obs::GetCounter("csv.chunks_streamed")->Increment();
  FAIRLAW_ASSIGN_OR_RETURN(Table chunk, builder.Finish());
  return std::optional<Table>(std::move(chunk));
}

Result<ChunkedTable> ReadCsvFileChunked(const std::string& path,
                                        const CsvChunkReader::Options& options) {
  FAIRLAW_ASSIGN_OR_RETURN(CsvChunkReader reader,
                           CsvChunkReader::Make(path, options));
  std::vector<Table> chunks;
  for (;;) {
    FAIRLAW_ASSIGN_OR_RETURN(std::optional<Table> chunk, reader.Next());
    if (!chunk.has_value()) break;
    chunks.push_back(std::move(*chunk));
  }
  if (chunks.empty()) {
    // Header-only file: a zero-chunk table that still carries the schema.
    TableBuilder builder(reader.schema());
    FAIRLAW_ASSIGN_OR_RETURN(Table empty, builder.Finish());
    return ChunkedTable::FromTable(empty, options.chunk_rows);
  }
  return ChunkedTable::FromChunks(std::move(chunks));
}

}  // namespace fairlaw::data
