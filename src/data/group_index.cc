#include "data/group_index.h"

#include <map>
#include <utility>

namespace fairlaw::data {

Result<size_t> AttributeIndex::IndexOf(const std::string& value) const {
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] == value) return i;
  }
  return Status::NotFound("attribute '" + name + "' has no value '" + value +
                          "'");
}

Result<GroupIndex> GroupIndex::Build(
    const Table& table, const std::vector<std::string>& attribute_columns) {
  if (attribute_columns.empty()) {
    return Status::Invalid("GroupIndex::Build: no attribute columns");
  }
  GroupIndex index;
  index.num_rows_ = table.num_rows();
  index.attributes_.reserve(attribute_columns.size());
  for (const std::string& name : attribute_columns) {
    FAIRLAW_ASSIGN_OR_RETURN(const Column* column, table.GetColumn(name));
    AttributeIndex attribute;
    attribute.name = name;
    std::map<std::string, size_t> index_of;
    for (size_t row = 0; row < column->size(); ++row) {
      std::string value = column->ValueToString(row);
      auto [it, inserted] = index_of.try_emplace(std::move(value),
                                                 attribute.values.size());
      if (inserted) {
        attribute.values.push_back(it->first);
        attribute.bitmaps.emplace_back(index.num_rows_);
      }
      attribute.bitmaps[it->second].Set(row);
    }
    index.attributes_.push_back(std::move(attribute));
  }
  return index;
}

Result<const AttributeIndex*> GroupIndex::Attribute(
    const std::string& name) const {
  for (const AttributeIndex& attribute : attributes_) {
    if (attribute.name == name) return &attribute;
  }
  return Status::NotFound("GroupIndex has no attribute '" + name + "'");
}

Result<Bitmap> GroupIndex::BinaryColumnBitmap(const Table& table,
                                              const std::string& column) {
  FAIRLAW_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(column));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> values, col->ToDoubles());
  Bitmap bitmap(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0.0 && values[i] != 1.0) {
      return Status::Invalid("column '" + column + "' must be binary 0/1");
    }
    if (values[i] == 1.0) bitmap.Set(i);
  }
  return bitmap;
}

}  // namespace fairlaw::data
