#include "data/chunked.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace fairlaw::data {

Result<ChunkedTable> ChunkedTable::FromTable(const Table& table,
                                             size_t chunk_rows) {
  ChunkedTable out;
  out.schema_ = table.schema();
  const size_t total = table.num_rows();
  const size_t step = chunk_rows == 0 ? std::max<size_t>(total, 1) : chunk_rows;
  for (size_t offset = 0; offset < total; offset += step) {
    const size_t length = std::min(step, total - offset);
    FAIRLAW_ASSIGN_OR_RETURN(Table chunk, table.Slice(offset, length));
    out.chunks_.push_back(std::move(chunk));
  }
  out.num_rows_ = total;
  return out;
}

Result<ChunkedTable> ChunkedTable::FromChunks(std::vector<Table> chunks) {
  ChunkedTable out;
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].num_rows() == 0) {
      return Status::Invalid("ChunkedTable: chunk " + std::to_string(i) +
                             " is empty");
    }
    if (i == 0) {
      out.schema_ = chunks[i].schema();
    } else if (!(chunks[i].schema() == out.schema_)) {
      return Status::Invalid("ChunkedTable: chunk " + std::to_string(i) +
                             " schema differs from chunk 0");
    }
    out.num_rows_ += chunks[i].num_rows();
  }
  out.chunks_ = std::move(chunks);
  return out;
}

Status ChunkedTable::ForEachChunk(
    const std::function<Status(const Table&, size_t, size_t)>& fn) const {
  size_t row_offset = 0;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    FAIRLAW_RETURN_NOT_OK(fn(chunks_[i], i, row_offset));
    row_offset += chunks_[i].num_rows();
  }
  return Status::OK();
}

Result<Table> ChunkedTable::Materialize() const {
  TableBuilder builder(schema_);
  for (const Table& chunk : chunks_) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      std::vector<std::optional<Cell>> cells(chunk.num_columns());
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        if (!chunk.column(c).IsValid(r)) continue;
        FAIRLAW_ASSIGN_OR_RETURN(cells[c], chunk.column(c).GetCell(r));
      }
      FAIRLAW_RETURN_NOT_OK(builder.AppendRowWithNulls(cells));
    }
  }
  return builder.Finish();
}

ChunkedBitmap::ChunkedBitmap(std::vector<Bitmap> chunks)
    : chunks_(std::move(chunks)) {}

ChunkedBitmap ChunkedBitmap::AllZero(std::span<const size_t> chunk_sizes) {
  std::vector<Bitmap> chunks;
  chunks.reserve(chunk_sizes.size());
  for (size_t size : chunk_sizes) chunks.emplace_back(size);
  return ChunkedBitmap(std::move(chunks));
}

size_t ChunkedBitmap::size() const {
  size_t total = 0;
  for (const Bitmap& chunk : chunks_) total += chunk.size();
  return total;
}

size_t ChunkedBitmap::Count() const {
  size_t total = 0;
  for (const Bitmap& chunk : chunks_) total += chunk.Count();
  return total;
}

size_t ChunkedBitmap::AndInto(const ChunkedBitmap& a, const ChunkedBitmap& b,
                              ChunkedBitmap* out) {
  FAIRLAW_DCHECK(a.num_chunks() == b.num_chunks(),
                 "ChunkedBitmap::AndInto: chunk layout mismatch");
  out->chunks_.resize(a.num_chunks());
  size_t count = 0;
  for (size_t i = 0; i < a.chunks_.size(); ++i) {
    count += Bitmap::AndInto(a.chunks_[i], b.chunks_[i], &out->chunks_[i]);
  }
  return count;
}

size_t ChunkedBitmap::AndCount(const ChunkedBitmap& a, const ChunkedBitmap& b) {
  FAIRLAW_DCHECK(a.num_chunks() == b.num_chunks(),
                 "ChunkedBitmap::AndCount: chunk layout mismatch");
  size_t count = 0;
  for (size_t i = 0; i < a.chunks_.size(); ++i) {
    count += Bitmap::AndCount(a.chunks_[i], b.chunks_[i]);
  }
  return count;
}

}  // namespace fairlaw::data
