#include "data/bitmap.h"

#include <bit>

#include "base/check.h"
#include "base/simd.h"

namespace fairlaw::data {
namespace {

constexpr size_t kWordBits = 64;

size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }

/// Mask with ones in the positions the last word actually uses; ~0 when
/// the size is an exact multiple of 64 (no partial tail word).
uint64_t TailMask(size_t size) {
  const size_t rem = size % kWordBits;
  return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
}

}  // namespace

Bitmap::Bitmap(size_t size) : size_(size), words_(WordsFor(size), 0) {}

Bitmap Bitmap::AllSet(size_t size) {
  Bitmap bitmap(size);
  if (size == 0) return bitmap;
  for (uint64_t& word : bitmap.words_) word = ~uint64_t{0};
  bitmap.words_.back() &= TailMask(size);
  return bitmap;
}

Bitmap Bitmap::FromBytes(std::span<const uint8_t> bits) {
  Bitmap bitmap(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0) bitmap.Set(i);
  }
  return bitmap;
}

void Bitmap::Set(size_t i) {
  FAIRLAW_DCHECK(i < size_, "Bitmap::Set: index out of range");
  words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

void Bitmap::Reset(size_t i) {
  FAIRLAW_DCHECK(i < size_, "Bitmap::Reset: index out of range");
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

bool Bitmap::Test(size_t i) const {
  FAIRLAW_DCHECK(i < size_, "Bitmap::Test: index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

size_t Bitmap::Count() const {
  return static_cast<size_t>(
      simd::PopcountWords(words_.data(), words_.size()));
}

Result<Bitmap> Bitmap::And(const Bitmap& other) const {
  if (size_ != other.size_) {
    return Status::Invalid("Bitmap::And: size mismatch (" +
                           std::to_string(size_) + " vs " +
                           std::to_string(other.size_) + ")");
  }
  Bitmap out(size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = words_[w] & other.words_[w];
  }
  return out;
}

Result<Bitmap> Bitmap::AndNot(const Bitmap& other) const {
  if (size_ != other.size_) {
    return Status::Invalid("Bitmap::AndNot: size mismatch (" +
                           std::to_string(size_) + " vs " +
                           std::to_string(other.size_) + ")");
  }
  // a's tail bits are zero by invariant, so a & ~b needs no extra masking.
  Bitmap out(size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = words_[w] & ~other.words_[w];
  }
  return out;
}

void Bitmap::AndInPlace(const Bitmap& other) {
  FAIRLAW_DCHECK(size_ == other.size_, "Bitmap::AndInPlace: size mismatch");
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
}

size_t Bitmap::AndInto(const Bitmap& a, const Bitmap& b, Bitmap* out) {
  FAIRLAW_DCHECK(a.size_ == b.size_, "Bitmap::AndInto: size mismatch");
  out->size_ = a.size_;
  out->words_.resize(a.words_.size());
  return static_cast<size_t>(simd::AndIntoPopcountWords(
      a.words_.data(), b.words_.data(), out->words_.data(),
      a.words_.size()));
}

size_t Bitmap::AndCount(const Bitmap& a, const Bitmap& b) {
  FAIRLAW_DCHECK(a.size_ == b.size_, "Bitmap::AndCount: size mismatch");
  return static_cast<size_t>(simd::AndPopcountWords(
      a.words_.data(), b.words_.data(), a.words_.size()));
}

size_t Bitmap::AndCount3(const Bitmap& a, const Bitmap& b, const Bitmap& c) {
  FAIRLAW_DCHECK(a.size_ == b.size_ && b.size_ == c.size_,
                 "Bitmap::AndCount3: size mismatch");
  return static_cast<size_t>(simd::And3PopcountWords(
      a.words_.data(), b.words_.data(), c.words_.data(), a.words_.size()));
}

size_t Bitmap::AndNotCount(const Bitmap& a, const Bitmap& b) {
  FAIRLAW_DCHECK(a.size_ == b.size_, "Bitmap::AndNotCount: size mismatch");
  return static_cast<size_t>(simd::AndNotPopcountWords(
      a.words_.data(), b.words_.data(), a.words_.size()));
}

size_t Bitmap::AndAndNotCount(const Bitmap& a, const Bitmap& b,
                              const Bitmap& c) {
  FAIRLAW_DCHECK(a.size_ == b.size_ && b.size_ == c.size_,
                 "Bitmap::AndAndNotCount: size mismatch");
  return static_cast<size_t>(simd::AndAndNotPopcountWords(
      a.words_.data(), b.words_.data(), c.words_.data(), a.words_.size()));
}

std::vector<size_t> Bitmap::ToIndices() const {
  std::vector<size_t> indices;
  indices.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      indices.push_back(w * kWordBits + static_cast<size_t>(bit));
      word &= word - 1;  // clear lowest set bit
    }
  }
  return indices;
}

}  // namespace fairlaw::data
