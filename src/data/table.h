#ifndef FAIRLAW_DATA_TABLE_H_
#define FAIRLAW_DATA_TABLE_H_

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "data/column.h"  // IWYU pragma: export
#include "data/schema.h"  // IWYU pragma: export

namespace fairlaw::data {

/// In-memory columnar table: a schema plus equally sized columns.
///
/// Tables are value types (copyable); audits and mitigations never mutate
/// a caller's table in place — transformations return new tables so an
/// audit trail of "data before repair / after repair" is always available.
class Table {
 public:
  /// Creates an empty table with no columns.
  Table() = default;

  /// Builds a table from a schema and matching columns (same count and
  /// per-column type; all columns the same length).
  FAIRLAW_NODISCARD static Result<Table> Make(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  /// Column access by index / name. The name lookup takes a string_view
  /// so call sites with literals or substrings do not materialize a
  /// temporary std::string.
  const Column& column(size_t i) const { return columns_[i]; }
  FAIRLAW_NODISCARD Result<const Column*> GetColumn(std::string_view name) const;

  /// Returns a new table with `column` appended under `name`. The column
  /// length must equal num_rows() (any length is accepted when the table
  /// has no columns yet).
  FAIRLAW_NODISCARD Result<Table> AddColumn(const std::string& name, Column column) const;

  /// Returns a new table without the named column.
  FAIRLAW_NODISCARD Result<Table> RemoveColumn(const std::string& name) const;

  /// Returns a new table with the named column replaced (same type not
  /// required; the schema entry is updated).
  FAIRLAW_NODISCARD Result<Table> ReplaceColumn(const std::string& name, Column column) const;

  /// Returns the rows whose index appears in `indices`, in order.
  FAIRLAW_NODISCARD Result<Table> Take(std::span<const size_t> indices) const;

  /// Returns the rows for which `predicate` is true. The predicate
  /// receives the row index.
  FAIRLAW_NODISCARD Result<Table> Filter(const std::function<bool(size_t)>& predicate) const;

  /// Returns rows [offset, offset+length).
  FAIRLAW_NODISCARD Result<Table> Slice(size_t offset, size_t length) const;

  /// Row indices where the named string column equals `value`.
  FAIRLAW_NODISCARD Result<std::vector<size_t>> RowsWhereEquals(const std::string& column,
                                              const std::string& value) const;

  /// Renders the first `max_rows` rows as an aligned text preview.
  std::string Preview(size_t max_rows = 10) const;

 private:
  Table(Schema schema, std::vector<Column> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {}

  Schema schema_;
  std::vector<Column> columns_;
};

/// Incremental row-oriented builder used by the CSV reader and the
/// synthetic generators.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row; `cells` must match the schema arity and types.
  FAIRLAW_NODISCARD Status AppendRow(const std::vector<Cell>& cells);

  /// Appends one row where individual cells may be missing (null).
  FAIRLAW_NODISCARD Status AppendRowWithNulls(const std::vector<std::optional<Cell>>& cells);

  /// Finalizes into a table; the builder is left empty.
  FAIRLAW_NODISCARD Result<Table> Finish();

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_TABLE_H_
