#ifndef FAIRLAW_METRICS_IMPOSSIBILITY_H_
#define FAIRLAW_METRICS_IMPOSSIBILITY_H_

#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::metrics {

// The impossibility theorems behind the paper's §V observation that
// "no one-size-fits-all fairness definitions exist". Chouldechova (2017)
// / Kleinberg et al. (2017): when group base rates differ, a non-perfect
// classifier cannot simultaneously satisfy calibration (equal PPV/FOR),
// equal false positive rates, and equal false negative rates. The
// binding identity per group is
//     FPR = p/(1-p) * (1-PPV)/PPV * TPR,
// with p the group base rate: fixing equal TPR/FPR across groups with
// different p forces PPV to differ, and vice versa. This checker makes
// the theorem operational: it measures all three families on real
// decisions and reports which are satisfied, the base-rate difference
// that makes them jointly unattainable, and the identity's residual (a
// consistency check on the audit itself).

/// Per-group quantities entering the theorem.
struct ImpossibilityGroupStats {
  std::string group;
  double base_rate = 0.0;  // P(Y=1 | A=a)
  double tpr = 0.0;
  double fpr = 0.0;
  double ppv = 0.0;
  /// | FPR - p/(1-p) * (1-PPV)/PPV * TPR | — zero up to rounding for any
  /// confusion matrix; reported as a self-check.
  double identity_residual = 0.0;
};

struct ImpossibilityReport {
  std::vector<ImpossibilityGroupStats> groups;
  double base_rate_gap = 0.0;  // max pairwise |p_a - p_b|
  /// Gap tolerances used for the three verdicts.
  double tolerance = 0.0;
  bool equalized_odds_satisfied = false;   // TPR and FPR gaps <= tol
  bool predictive_parity_satisfied = false;  // PPV gap <= tol
  /// True when base rates differ beyond `tolerance` AND both criteria
  /// nevertheless hold — possible only for (near-)perfect classifiers,
  /// so it flags either a trivial decision rule or an audit bug.
  bool theorem_boundary_case = false;
  std::string verdict;
};

/// Evaluates the theorem's quantities on decisions. Requires labels;
/// every group needs both classes and at least one positive prediction.
FAIRLAW_NODISCARD Result<ImpossibilityReport> CheckImpossibility(
    const std::vector<std::string>& groups, const std::vector<int>& labels,
    const std::vector<int>& predictions, double tolerance = 0.05);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_IMPOSSIBILITY_H_
