#ifndef FAIRLAW_METRICS_INEQUALITY_INDICES_H_
#define FAIRLAW_METRICS_INEQUALITY_INDICES_H_

#include <span>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::metrics {

// Individual/inequality-based fairness indices (Speicher et al. style).
// Benefits are non-negative per-individual outcome scores; the canonical
// fairness benefit for binary decisions is b_i = prediction_i - label_i
// + 1 (2 for an unjustified advantage, 0 for an unjustified denial, 1 for
// a correct decision).

/// Generalized entropy index of the benefit vector with parameter alpha
/// (alpha != 0, 1 uses the power form; alpha = 1 is the Theil index,
/// alpha = 0 the mean log deviation). Benefits must be non-negative with
/// a positive mean. Zero benefits are fine for alpha > 0 (the x·ln x
/// convention handles alpha = 1) but degenerate for alpha <= 0, where
/// they are rejected.
FAIRLAW_NODISCARD Result<double> GeneralizedEntropyIndex(std::span<const double> benefits,
                                       double alpha);

/// Theil index (generalized entropy at alpha = 1).
FAIRLAW_NODISCARD Result<double> TheilIndex(std::span<const double> benefits);

/// Canonical benefit vector for binary decisions: prediction - label + 1.
FAIRLAW_NODISCARD Result<std::vector<double>> BinaryBenefits(std::span<const int> labels,
                                           std::span<const int> predictions);

/// Decomposition of the generalized entropy index into between-group and
/// within-group components (they sum to the total index).
struct EntropyDecomposition {
  double total = 0.0;
  double between_groups = 0.0;
  double within_groups = 0.0;
};

/// Decomposes the index over the given group assignment.
FAIRLAW_NODISCARD Result<EntropyDecomposition> DecomposeEntropyIndex(
    std::span<const double> benefits, const std::vector<std::string>& groups,
    double alpha);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_INEQUALITY_INDICES_H_
