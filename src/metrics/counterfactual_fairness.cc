#include "metrics/counterfactual_fairness.h"

#include "base/string_util.h"

namespace fairlaw::metrics {

Result<CounterfactualFairnessReport> AuditCounterfactualFairness(
    const causal::Scm& scm, const causal::ScmSample& sample,
    const std::string& protected_node, double value_a, double value_b,
    const HardPredictor& predict,
    const std::vector<std::string>& feature_nodes, double tolerance) {
  if (tolerance < 0.0) {
    return Status::Invalid("counterfactual fairness: tolerance must be >= 0");
  }
  if (!predict) {
    return Status::Invalid("counterfactual fairness: empty predictor");
  }
  if (feature_nodes.empty()) {
    return Status::Invalid("counterfactual fairness: no feature nodes");
  }
  FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(protected_node).status());
  std::vector<size_t> feature_indices(feature_nodes.size());
  for (size_t j = 0; j < feature_nodes.size(); ++j) {
    FAIRLAW_ASSIGN_OR_RETURN(feature_indices[j],
                             scm.NodeIndex(feature_nodes[j]));
  }
  if (sample.node_names().size() != scm.num_nodes()) {
    return Status::Invalid("counterfactual fairness: sample/model mismatch");
  }

  const size_t num_nodes = scm.num_nodes();
  std::vector<const std::vector<double>*> observed(num_nodes);
  for (size_t k = 0; k < num_nodes; ++k) {
    FAIRLAW_ASSIGN_OR_RETURN(observed[k],
                             sample.Values(sample.node_names()[k]));
  }

  CounterfactualFairnessReport report;
  report.n = sample.num_rows();
  report.tolerance = tolerance;

  std::unordered_map<std::string, double> do_a{{protected_node, value_a}};
  std::unordered_map<std::string, double> do_b{{protected_node, value_b}};
  std::vector<double> row(num_nodes);
  std::vector<double> features(feature_nodes.size());
  size_t positives_a = 0;
  size_t positives_b = 0;
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    for (size_t k = 0; k < num_nodes; ++k) row[k] = (*observed[k])[r];

    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> world_a,
                             scm.Counterfactual(row, do_a));
    for (size_t j = 0; j < feature_indices.size(); ++j) {
      features[j] = world_a[feature_indices[j]];
    }
    FAIRLAW_ASSIGN_OR_RETURN(int pred_a, predict(features));

    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> world_b,
                             scm.Counterfactual(row, do_b));
    for (size_t j = 0; j < feature_indices.size(); ++j) {
      features[j] = world_b[feature_indices[j]];
    }
    FAIRLAW_ASSIGN_OR_RETURN(int pred_b, predict(features));

    positives_a += pred_a;
    positives_b += pred_b;
    if (pred_a != pred_b) ++report.flipped;
  }

  const double n = static_cast<double>(report.n);
  report.flip_rate = n > 0.0 ? static_cast<double>(report.flipped) / n : 0.0;
  report.positive_rate_a = n > 0.0 ? static_cast<double>(positives_a) / n
                                   : 0.0;
  report.positive_rate_b = n > 0.0 ? static_cast<double>(positives_b) / n
                                   : 0.0;
  report.satisfied = report.flip_rate <= tolerance;
  report.detail = "flip_rate=" + FormatDouble(report.flip_rate, 4) +
                  " P(+|do(A=" + FormatDouble(value_a, 1) +
                  "))=" + FormatDouble(report.positive_rate_a, 4) +
                  " P(+|do(A=" + FormatDouble(value_b, 1) +
                  "))=" + FormatDouble(report.positive_rate_b, 4);
  return report;
}

}  // namespace fairlaw::metrics
