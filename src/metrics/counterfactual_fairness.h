#ifndef FAIRLAW_METRICS_COUNTERFACTUAL_FAIRNESS_H_
#define FAIRLAW_METRICS_COUNTERFACTUAL_FAIRNESS_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "base/result.h"
#include "causal/scm.h"

namespace fairlaw::metrics {

/// Hard binary decision for one feature vector. The audit is agnostic to
/// where the decision comes from — an ml::Classifier, a scored rule, a
/// remote model — so it takes this functional instead of depending on the
/// ml layer. Wrap a classifier as:
///
///   HardPredictor predictor = [&model](std::span<const double> x) {
///     return model.Predict(x, /*threshold=*/0.5);
///   };
using HardPredictor =
    std::function<Result<int>(std::span<const double> features)>;

/// Result of a counterfactual-fairness audit (§III-G).
struct CounterfactualFairnessReport {
  size_t n = 0;        // audited individuals
  size_t flipped = 0;  // individuals whose prediction changes under the flip
  double flip_rate = 0.0;
  double tolerance = 0.0;
  bool satisfied = false;
  /// Positive rates under the two interventions (do(A=a) vs do(A=b)).
  double positive_rate_a = 0.0;
  double positive_rate_b = 0.0;
  std::string detail;
};

/// Audits counterfactual fairness of `predict` over the individuals in
/// `sample` drawn from `scm`.
///
/// For each individual, the exogenous noise is abducted from the observed
/// row; the world is then re-simulated under do(protected = value_a) and
/// do(protected = value_b) with that same noise, the model's feature
/// vector rebuilt from `feature_nodes` in both worlds, and the two hard
/// predictions compared. The definition is satisfied when the fraction of
/// individuals whose prediction flips is <= `tolerance` (0 is the paper's
/// strict reading).
///
/// Note feature_nodes may deliberately exclude the protected node — that
/// is the "unawareness" configuration, and this audit is exactly the tool
/// that shows unawareness does not imply counterfactual fairness when
/// proxies (descendants of A) are among the features.
FAIRLAW_NODISCARD Result<CounterfactualFairnessReport> AuditCounterfactualFairness(
    const causal::Scm& scm, const causal::ScmSample& sample,
    const std::string& protected_node, double value_a, double value_b,
    const HardPredictor& predict,
    const std::vector<std::string>& feature_nodes, double tolerance = 0.0);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_COUNTERFACTUAL_FAIRNESS_H_
