#include "metrics/individual_fairness.h"

#include <algorithm>
#include <cmath>

namespace fairlaw::metrics {

double EuclideanDistance(const std::vector<double>& x,
                         const std::vector<double>& y) {
  double total = 0.0;
  for (size_t d = 0; d < x.size(); ++d) {
    double diff = x[d] - y[d];
    total += diff * diff;
  }
  return std::sqrt(total);
}

namespace {

Status CheckInputs(const std::vector<std::vector<double>>& features,
                   const std::vector<double>& scores) {
  if (features.empty()) {
    return Status::Invalid("individual fairness: empty input");
  }
  if (scores.size() != features.size()) {
    return Status::Invalid("individual fairness: scores/features size "
                           "mismatch");
  }
  for (const std::vector<double>& row : features) {
    if (row.size() != features[0].size()) {
      return Status::Invalid("individual fairness: ragged feature matrix");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ConsistencyReport> KnnConsistency(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& scores, size_t k, size_t worst,
    const SimilarityMetric& metric) {
  FAIRLAW_RETURN_NOT_OK(CheckInputs(features, scores));
  if (k == 0) return Status::Invalid("KnnConsistency: k must be >= 1");
  if (k >= features.size()) {
    return Status::Invalid("KnnConsistency: k must be < n");
  }
  if (!metric) return Status::Invalid("KnnConsistency: null metric");

  const size_t n = features.size();
  std::vector<double> deviation(n, 0.0);
  std::vector<std::pair<double, size_t>> distances(n);
  double total_deviation = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      distances[j] = {j == i ? std::numeric_limits<double>::infinity()
                             : metric(features[i], features[j]),
                      j};
    }
    std::nth_element(distances.begin(),
                     distances.begin() + static_cast<ptrdiff_t>(k - 1),
                     distances.end());
    double neighbor_mean = 0.0;
    for (size_t m = 0; m < k; ++m) {
      neighbor_mean += scores[distances[m].second];
    }
    neighbor_mean /= static_cast<double>(k);
    deviation[i] = std::fabs(scores[i] - neighbor_mean);
    total_deviation += deviation[i];
  }

  ConsistencyReport report;
  report.k = k;
  report.consistency = 1.0 - total_deviation / static_cast<double>(n);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&deviation](size_t a, size_t b) {
    return deviation[a] > deviation[b];
  });
  order.resize(std::min(worst, n));
  report.least_consistent = std::move(order);
  return report;
}

Result<LipschitzReport> AuditLipschitz(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& scores, double lipschitz_bound,
    double epsilon, size_t max_violations, const SimilarityMetric& metric) {
  FAIRLAW_RETURN_NOT_OK(CheckInputs(features, scores));
  if (lipschitz_bound <= 0.0) {
    return Status::Invalid("AuditLipschitz: bound must be > 0");
  }
  if (epsilon <= 0.0) {
    return Status::Invalid("AuditLipschitz: epsilon must be > 0");
  }
  if (!metric) return Status::Invalid("AuditLipschitz: null metric");

  LipschitzReport report;
  report.lipschitz_bound = lipschitz_bound;
  const size_t n = features.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double distance = metric(features[i], features[j]);
      if (distance > epsilon) continue;
      ++report.pairs_checked;
      double gap = std::fabs(scores[i] - scores[j]);
      if (distance > 0.0) {
        report.empirical_constant =
            std::max(report.empirical_constant, gap / distance);
      } else if (gap > 0.0) {
        // Identical individuals, different scores: infinite constant.
        report.empirical_constant =
            std::numeric_limits<double>::infinity();
      }
      if (gap > lipschitz_bound * distance) {
        report.violations.push_back({i, j, distance, gap});
      }
    }
  }
  std::sort(report.violations.begin(), report.violations.end(),
            [lipschitz_bound](const LipschitzViolation& a,
                              const LipschitzViolation& b) {
              return a.score_gap - lipschitz_bound * a.distance >
                     b.score_gap - lipschitz_bound * b.distance;
            });
  report.satisfied = report.violations.empty();
  if (report.violations.size() > max_violations) {
    report.violations.resize(max_violations);
  }
  return report;
}

}  // namespace fairlaw::metrics
