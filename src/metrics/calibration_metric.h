#ifndef FAIRLAW_METRICS_CALIBRATION_METRIC_H_
#define FAIRLAW_METRICS_CALIBRATION_METRIC_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "stats/mergeable.h"

namespace fairlaw::metrics {

/// Calibration within one protected group.
struct GroupCalibration {
  std::string group;
  size_t count = 0;
  double ece = 0.0;          // expected calibration error within the group
  double mean_score = 0.0;   // average predicted probability
  double positive_rate = 0.0;  // empirical base rate
};

/// Calibration-within-groups report: the paper's §V lists calibration
/// among the definitions prominent legal-algorithmic studies single out.
struct CalibrationReport {
  std::vector<GroupCalibration> groups;
  /// Largest pairwise |ECE_a - ECE_b|.
  double ece_gap = 0.0;
  /// Largest group ECE (a model can be uniformly miscalibrated with zero
  /// gap; both numbers matter).
  double max_ece = 0.0;
  double tolerance = 0.0;
  bool satisfied = false;  // max_ece <= tolerance
};

/// Audits calibration within each protected group. `scores[i]` is the
/// model probability for row i, `labels[i]` the actual outcome,
/// `groups[i]` the protected-attribute value.
FAIRLAW_NODISCARD Result<CalibrationReport> CalibrationWithinGroups(
    const std::vector<std::string>& groups, const std::vector<int>& labels,
    const std::vector<double>& scores, size_t num_bins = 10,
    double tolerance = 0.05);

/// Chunk-merged form for the morsel-driven audit engine: `series` holds
/// one (score, label) pair per row, keyed by group, with each group's
/// rows in global row order (tag = label). ECE and the mean-score /
/// base-rate sums are order-sensitive floating-point folds, so the
/// chunk-order merge contract (stats::GroupedSeries) is exactly what
/// makes this reproduce CalibrationWithinGroups bit-for-bit; groups are
/// reported in alphabetical order either way.
FAIRLAW_NODISCARD Result<CalibrationReport> CalibrationFromSeries(
    const stats::GroupedSeries& series, size_t num_bins = 10,
    double tolerance = 0.05);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_CALIBRATION_METRIC_H_
