#include "metrics/fairness_metric.h"

#include <algorithm>
#include <map>

#include "base/string_util.h"

namespace fairlaw::metrics {

Status MetricInput::Validate(bool require_labels) const {
  if (groups.empty()) return Status::Invalid("MetricInput: empty input");
  if (predictions.size() != groups.size()) {
    return Status::Invalid("MetricInput: predictions/groups size mismatch");
  }
  for (int p : predictions) {
    if (p != 0 && p != 1) {
      return Status::Invalid("MetricInput: predictions must be 0/1");
    }
  }
  if (require_labels) {
    if (labels.size() != groups.size()) {
      return Status::Invalid("MetricInput: this metric requires labels for "
                             "every row");
    }
  }
  if (!labels.empty()) {
    if (labels.size() != groups.size()) {
      return Status::Invalid("MetricInput: labels/groups size mismatch");
    }
    for (int y : labels) {
      if (y != 0 && y != 1) {
        return Status::Invalid("MetricInput: labels must be 0/1");
      }
    }
  }
  return Status::OK();
}

Result<std::vector<GroupStats>> ComputeGroupStats(const MetricInput& input,
                                                  bool with_labels) {
  FAIRLAW_RETURN_NOT_OK(input.Validate(with_labels));
  std::vector<GroupStats> stats;
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < input.size(); ++i) {
    auto [it, inserted] = index_of.try_emplace(input.groups[i], stats.size());
    if (inserted) {
      stats.push_back(GroupStats{});
      stats.back().group = input.groups[i];
    }
    GroupStats& gs = stats[it->second];
    ++gs.count;
    const bool predicted_positive = input.predictions[i] == 1;
    if (predicted_positive) ++gs.positive_predictions;
    if (with_labels) {
      if (input.labels[i] == 1) {
        ++gs.actual_positives;
        if (predicted_positive) ++gs.true_positives;
      } else {
        ++gs.actual_negatives;
        if (predicted_positive) ++gs.false_positives;
      }
    }
  }
  for (GroupStats& gs : stats) {
    gs.selection_rate = gs.count > 0 ? static_cast<double>(
                                           gs.positive_predictions) /
                                           static_cast<double>(gs.count)
                                     : 0.0;
    if (with_labels) {
      gs.tpr = gs.actual_positives > 0
                   ? static_cast<double>(gs.true_positives) /
                         static_cast<double>(gs.actual_positives)
                   : 0.0;
      gs.fpr = gs.actual_negatives > 0
                   ? static_cast<double>(gs.false_positives) /
                         static_cast<double>(gs.actual_negatives)
                   : 0.0;
      gs.ppv = gs.positive_predictions > 0
                   ? static_cast<double>(gs.true_positives) /
                         static_cast<double>(gs.positive_predictions)
                   : 0.0;
    }
  }
  return stats;
}

double MaxGap(const std::vector<double>& rates) {
  if (rates.size() < 2) return 0.0;
  auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
  return *hi - *lo;
}

double MinRatio(const std::vector<double>& rates) {
  if (rates.size() < 2) return 1.0;
  auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
  if (*hi == 0.0) return 1.0;  // all rates zero: no disparity
  return *lo / *hi;
}

std::string RenderReport(const MetricReport& report) {
  std::string out = report.metric_name + ": " +
                    (report.satisfied ? "SATISFIED" : "VIOLATED") +
                    " (max gap " + FormatDouble(report.max_gap, 4) +
                    ", tolerance " + FormatDouble(report.tolerance, 4) +
                    ", min ratio " + FormatDouble(report.min_ratio, 4) + ")\n";
  for (const GroupStats& gs : report.groups) {
    out += "  " + gs.group + ": n=" + std::to_string(gs.count) +
           " selection_rate=" + FormatDouble(gs.selection_rate, 4);
    if (gs.actual_positives + gs.actual_negatives > 0) {
      out += " tpr=" + FormatDouble(gs.tpr, 4) +
             " fpr=" + FormatDouble(gs.fpr, 4) +
             " ppv=" + FormatDouble(gs.ppv, 4);
    }
    out += "\n";
  }
  if (!report.detail.empty()) out += "  " + report.detail + "\n";
  return out;
}

}  // namespace fairlaw::metrics
