#include "metrics/fairness_metric.h"

#include <algorithm>
#include <map>

#include "base/string_util.h"

namespace fairlaw::metrics {

Status MetricInput::Validate(bool require_labels) const {
  if (groups.empty()) return Status::Invalid("MetricInput: empty input");
  if (predictions.size() != groups.size()) {
    return Status::Invalid("MetricInput: predictions/groups size mismatch");
  }
  for (int p : predictions) {
    if (p != 0 && p != 1) {
      return Status::Invalid("MetricInput: predictions must be 0/1");
    }
  }
  if (require_labels) {
    if (labels.size() != groups.size()) {
      return Status::Invalid("MetricInput: this metric requires labels for "
                             "every row");
    }
  }
  if (!labels.empty()) {
    if (labels.size() != groups.size()) {
      return Status::Invalid("MetricInput: labels/groups size mismatch");
    }
    for (int y : labels) {
      if (y != 0 && y != 1) {
        return Status::Invalid("MetricInput: labels must be 0/1");
      }
    }
  }
  return Status::OK();
}

Result<GroupPartition> GroupPartition::Build(const MetricInput& input) {
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  GroupPartition partition;
  partition.num_rows = input.size();
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < input.size(); ++i) {
    auto [it, inserted] =
        index_of.try_emplace(input.groups[i], partition.group_names.size());
    if (inserted) {
      partition.group_names.push_back(input.groups[i]);
      partition.group_bitmaps.emplace_back(partition.num_rows);
    }
    partition.group_bitmaps[it->second].Set(i);
  }
  partition.predictions = data::Bitmap(partition.num_rows);
  for (size_t i = 0; i < input.size(); ++i) {
    if (input.predictions[i] == 1) partition.predictions.Set(i);
  }
  partition.has_labels = !input.labels.empty();
  partition.labels = data::Bitmap(partition.has_labels ? partition.num_rows
                                                       : 0);
  if (partition.has_labels) {
    for (size_t i = 0; i < input.size(); ++i) {
      if (input.labels[i] == 1) partition.labels.Set(i);
    }
  }
  return partition;
}

Result<std::vector<GroupStats>> ComputeGroupStats(const MetricInput& input,
                                                  bool with_labels) {
  FAIRLAW_RETURN_NOT_OK(input.Validate(with_labels));
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           GroupPartition::Build(input));
  return ComputeGroupStats(partition, with_labels);
}

Result<std::vector<GroupStats>> ComputeGroupStats(
    const GroupPartition& partition, bool with_labels) {
  if (with_labels && !partition.has_labels) {
    return Status::Invalid("ComputeGroupStats: this metric requires labels "
                           "for every row");
  }
  // The whole-table pass is the one-chunk case of the morsel path:
  // accumulate this partition's popcounts, then derive rates from the
  // integer tallies. Sharing the derivation with the chunked engine is
  // what makes the byte-identity contract structural rather than
  // coincidental.
  stats::GroupCountsAccumulator accumulator;
  AccumulateGroupCounts(partition, with_labels, &accumulator);
  return GroupStatsFromCounts(accumulator, with_labels);
}

void AccumulateGroupCounts(const GroupPartition& partition, bool with_labels,
                           stats::GroupCountsAccumulator* accumulator) {
  for (size_t g = 0; g < partition.group_names.size(); ++g) {
    const data::Bitmap& members = partition.group_bitmaps[g];
    stats::GroupCounts tally;
    tally.count = static_cast<int64_t>(members.Count());
    tally.positive_predictions = static_cast<int64_t>(
        data::Bitmap::AndCount(members, partition.predictions));
    if (with_labels) {
      tally.actual_positives = static_cast<int64_t>(
          data::Bitmap::AndCount(members, partition.labels));
      tally.true_positives = static_cast<int64_t>(data::Bitmap::AndCount3(
          members, partition.predictions, partition.labels));
    }
    accumulator->Add(partition.group_names[g], tally);
  }
}

std::vector<GroupStats> GroupStatsFromCounts(
    const stats::GroupCountsAccumulator& counts, bool with_labels) {
  std::vector<GroupStats> stats;
  stats.reserve(counts.num_keys());
  for (size_t g = 0; g < counts.num_keys(); ++g) {
    const stats::GroupCounts& tally = counts.counts(g);
    GroupStats gs;
    gs.group = counts.keys()[g];
    gs.count = tally.count;
    gs.positive_predictions = tally.positive_predictions;
    if (with_labels) {
      gs.actual_positives = tally.actual_positives;
      gs.actual_negatives = gs.count - gs.actual_positives;
      gs.true_positives = tally.true_positives;
      gs.false_positives = gs.positive_predictions - gs.true_positives;
    }
    stats.push_back(std::move(gs));
  }
  for (GroupStats& gs : stats) {
    gs.selection_rate = gs.count > 0 ? static_cast<double>(
                                           gs.positive_predictions) /
                                           static_cast<double>(gs.count)
                                     : 0.0;
    if (with_labels) {
      gs.tpr = gs.actual_positives > 0
                   ? static_cast<double>(gs.true_positives) /
                         static_cast<double>(gs.actual_positives)
                   : 0.0;
      gs.fpr = gs.actual_negatives > 0
                   ? static_cast<double>(gs.false_positives) /
                         static_cast<double>(gs.actual_negatives)
                   : 0.0;
      gs.ppv = gs.positive_predictions > 0
                   ? static_cast<double>(gs.true_positives) /
                         static_cast<double>(gs.positive_predictions)
                   : 0.0;
    }
  }
  return stats;
}

double MaxGap(const std::vector<double>& rates) {
  if (rates.size() < 2) return 0.0;
  auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
  return *hi - *lo;
}

double MinRatio(const std::vector<double>& rates) {
  if (rates.size() < 2) return 1.0;
  auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
  if (*hi == 0.0) return 1.0;  // all rates zero: no disparity
  return *lo / *hi;
}

std::string RenderReport(const MetricReport& report) {
  std::string out = report.metric_name + ": " +
                    (report.satisfied ? "SATISFIED" : "VIOLATED") +
                    " (max gap " + FormatDouble(report.max_gap, 4) +
                    ", tolerance " + FormatDouble(report.tolerance, 4) +
                    ", min ratio " + FormatDouble(report.min_ratio, 4) + ")\n";
  for (const GroupStats& gs : report.groups) {
    out += "  " + gs.group + ": n=" + std::to_string(gs.count) +
           " selection_rate=" + FormatDouble(gs.selection_rate, 4);
    if (gs.actual_positives + gs.actual_negatives > 0) {
      out += " tpr=" + FormatDouble(gs.tpr, 4) +
             " fpr=" + FormatDouble(gs.fpr, 4) +
             " ppv=" + FormatDouble(gs.ppv, 4);
    }
    out += "\n";
  }
  if (!report.detail.empty()) out += "  " + report.detail + "\n";
  return out;
}

}  // namespace fairlaw::metrics
