#include "metrics/impossibility.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"
#include "metrics/fairness_metric.h"

namespace fairlaw::metrics {

Result<ImpossibilityReport> CheckImpossibility(
    const std::vector<std::string>& groups, const std::vector<int>& labels,
    const std::vector<int>& predictions, double tolerance) {
  if (tolerance < 0.0) {
    return Status::Invalid("CheckImpossibility: tolerance must be >= 0");
  }
  MetricInput input;
  input.groups = groups;
  input.labels = labels;
  input.predictions = predictions;
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<GroupStats> stats,
                           ComputeGroupStats(input, /*with_labels=*/true));
  if (stats.size() < 2) {
    return Status::Invalid("CheckImpossibility: need >= 2 groups");
  }

  ImpossibilityReport report;
  report.tolerance = tolerance;
  std::vector<double> base_rates;
  std::vector<double> tprs;
  std::vector<double> fprs;
  std::vector<double> ppvs;
  for (const GroupStats& gs : stats) {
    if (gs.actual_positives == 0 || gs.actual_negatives == 0) {
      return Status::Invalid("CheckImpossibility: group '" + gs.group +
                             "' lacks positives or negatives");
    }
    if (gs.positive_predictions == 0) {
      return Status::Invalid("CheckImpossibility: group '" + gs.group +
                             "' has no positive predictions; PPV "
                             "undefined");
    }
    ImpossibilityGroupStats row;
    row.group = gs.group;
    row.base_rate = static_cast<double>(gs.actual_positives) /
                    static_cast<double>(gs.count);
    row.tpr = gs.tpr;
    row.fpr = gs.fpr;
    row.ppv = gs.ppv;
    // Chouldechova identity; PPV > 0 because positive predictions could
    // still all be false — guard the division.
    if (row.ppv > 0.0 && row.base_rate < 1.0) {
      double implied_fpr = row.base_rate / (1.0 - row.base_rate) *
                           (1.0 - row.ppv) / row.ppv * row.tpr;
      row.identity_residual = std::fabs(row.fpr - implied_fpr);
    }
    base_rates.push_back(row.base_rate);
    tprs.push_back(row.tpr);
    fprs.push_back(row.fpr);
    ppvs.push_back(row.ppv);
    report.groups.push_back(std::move(row));
  }

  report.base_rate_gap = MaxGap(base_rates);
  report.equalized_odds_satisfied =
      MaxGap(tprs) <= tolerance && MaxGap(fprs) <= tolerance;
  report.predictive_parity_satisfied = MaxGap(ppvs) <= tolerance;
  report.theorem_boundary_case = report.base_rate_gap > tolerance &&
                                 report.equalized_odds_satisfied &&
                                 report.predictive_parity_satisfied;

  if (report.base_rate_gap <= tolerance) {
    report.verdict =
        "base rates are (near) equal (gap " +
        FormatDouble(report.base_rate_gap, 4) +
        "): equalized odds and predictive parity are jointly attainable";
  } else if (report.theorem_boundary_case) {
    report.verdict =
        "base rates differ (gap " + FormatDouble(report.base_rate_gap, 4) +
        ") yet both criteria hold — only (near-)perfect classification "
        "permits this; verify the decision rule is not degenerate";
  } else {
    report.verdict =
        "base rates differ (gap " + FormatDouble(report.base_rate_gap, 4) +
        "): equalized odds and predictive parity cannot both hold "
        "(Chouldechova/Kleinberg); currently " +
        std::string(report.equalized_odds_satisfied
                        ? "equalized odds holds, predictive parity is "
                          "sacrificed"
                        : (report.predictive_parity_satisfied
                               ? "predictive parity holds, equalized odds "
                                 "is sacrificed"
                               : "neither holds")) +
        " — the choice between them is the legal layer's call (SS IV-A)";
  }
  return report;
}

}  // namespace fairlaw::metrics
