#include "metrics/calibration_metric.h"

#include <algorithm>
#include <map>

#include "stats/calibration.h"

namespace fairlaw::metrics {

Result<CalibrationReport> CalibrationWithinGroups(
    const std::vector<std::string>& groups, const std::vector<int>& labels,
    const std::vector<double>& scores, size_t num_bins, double tolerance) {
  if (groups.empty()) {
    return Status::Invalid("CalibrationWithinGroups: empty input");
  }
  if (labels.size() != groups.size() || scores.size() != groups.size()) {
    return Status::Invalid("CalibrationWithinGroups: size mismatch");
  }
  if (tolerance < 0.0) {
    return Status::Invalid("CalibrationWithinGroups: tolerance must be >= 0");
  }

  std::map<std::string, std::vector<size_t>> members;
  for (size_t i = 0; i < groups.size(); ++i) {
    members[groups[i]].push_back(i);
  }

  CalibrationReport report;
  report.tolerance = tolerance;
  for (const auto& [group, rows] : members) {
    std::vector<int> group_labels;
    std::vector<double> group_scores;
    group_labels.reserve(rows.size());
    group_scores.reserve(rows.size());
    for (size_t row : rows) {
      group_labels.push_back(labels[row]);
      group_scores.push_back(scores[row]);
    }
    GroupCalibration gc;
    gc.group = group;
    gc.count = rows.size();
    FAIRLAW_ASSIGN_OR_RETURN(
        gc.ece,
        stats::ExpectedCalibrationError(group_labels, group_scores,
                                        num_bins));
    double score_sum = 0.0;
    double positives = 0.0;
    for (size_t k = 0; k < rows.size(); ++k) {
      score_sum += group_scores[k];
      positives += group_labels[k];
    }
    gc.mean_score = score_sum / static_cast<double>(rows.size());
    gc.positive_rate = positives / static_cast<double>(rows.size());
    report.groups.push_back(std::move(gc));
  }

  double min_ece = report.groups[0].ece;
  double max_ece = report.groups[0].ece;
  for (const GroupCalibration& gc : report.groups) {
    min_ece = std::min(min_ece, gc.ece);
    max_ece = std::max(max_ece, gc.ece);
  }
  report.ece_gap = max_ece - min_ece;
  report.max_ece = max_ece;
  report.satisfied = report.max_ece <= tolerance;
  return report;
}

}  // namespace fairlaw::metrics
