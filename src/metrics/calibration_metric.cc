#include "metrics/calibration_metric.h"

#include <algorithm>
#include <numeric>

#include "stats/calibration.h"

namespace fairlaw::metrics {

Result<CalibrationReport> CalibrationWithinGroups(
    const std::vector<std::string>& groups, const std::vector<int>& labels,
    const std::vector<double>& scores, size_t num_bins, double tolerance) {
  if (groups.empty()) {
    return Status::Invalid("CalibrationWithinGroups: empty input");
  }
  if (labels.size() != groups.size() || scores.size() != groups.size()) {
    return Status::Invalid("CalibrationWithinGroups: size mismatch");
  }
  // The row-wise pass is the one-chunk case of the morsel path: fold the
  // rows into a per-group series and finalize, sharing every
  // floating-point step with the chunked engine.
  stats::GroupedSeries series;
  for (size_t i = 0; i < groups.size(); ++i) {
    series.Append(series.KeyIndex(groups[i]), scores[i],
                  static_cast<uint8_t>(labels[i]));
  }
  return CalibrationFromSeries(series, num_bins, tolerance);
}

Result<CalibrationReport> CalibrationFromSeries(
    const stats::GroupedSeries& series, size_t num_bins, double tolerance) {
  if (series.num_keys() == 0) {
    return Status::Invalid("CalibrationWithinGroups: empty input");
  }
  if (tolerance < 0.0) {
    return Status::Invalid("CalibrationWithinGroups: tolerance must be >= 0");
  }

  // The series keys groups in first-seen row order; the report lists them
  // alphabetically.
  std::vector<size_t> order(series.num_keys());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return series.keys()[a] < series.keys()[b];
  });

  CalibrationReport report;
  report.tolerance = tolerance;
  for (size_t key : order) {
    const std::vector<double>& group_scores = series.values(key);
    const std::vector<uint8_t>& group_tags = series.tags(key);
    std::vector<int> group_labels(group_tags.begin(), group_tags.end());
    GroupCalibration gc;
    gc.group = series.keys()[key];
    gc.count = group_scores.size();
    FAIRLAW_ASSIGN_OR_RETURN(
        gc.ece,
        stats::ExpectedCalibrationError(group_labels, group_scores,
                                        num_bins));
    double score_sum = 0.0;
    double positives = 0.0;
    for (size_t k = 0; k < group_scores.size(); ++k) {
      score_sum += group_scores[k];
      positives += group_labels[k];
    }
    gc.mean_score = score_sum / static_cast<double>(group_scores.size());
    gc.positive_rate = positives / static_cast<double>(group_scores.size());
    report.groups.push_back(std::move(gc));
  }

  double min_ece = report.groups[0].ece;
  double max_ece = report.groups[0].ece;
  for (const GroupCalibration& gc : report.groups) {
    min_ece = std::min(min_ece, gc.ece);
    max_ece = std::max(max_ece, gc.ece);
  }
  report.ece_gap = max_ece - min_ece;
  report.max_ece = max_ece;
  report.satisfied = report.max_ece <= tolerance;
  return report;
}

}  // namespace fairlaw::metrics
