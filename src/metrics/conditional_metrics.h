#ifndef FAIRLAW_METRICS_CONDITIONAL_METRICS_H_
#define FAIRLAW_METRICS_CONDITIONAL_METRICS_H_

#include <string>
#include <vector>

#include "metrics/fairness_metric.h"
#include "stats/mergeable.h"

namespace fairlaw::metrics {

/// Per-stratum slice of a conditional metric report.
struct StratumReport {
  std::string stratum;  // value of the legitimate factor S
  MetricReport report;  // the unconditional metric within the stratum
};

/// Result of a conditional (stratified) fairness definition.
struct ConditionalReport {
  std::string metric_name;
  std::vector<StratumReport> strata;
  /// Worst stratum gap; the verdict aggregates across strata.
  double max_gap = 0.0;
  double tolerance = 0.0;
  bool satisfied = false;
  std::string detail;
};

/// §III-B Conditional statistical parity: demographic parity within every
/// stratum of the legitimate factor S. `strata[i]` is the S-value of row
/// i. Strata with fewer than `min_stratum_size` rows or fewer than two
/// groups are skipped (reported in detail) rather than failing the whole
/// audit — tiny strata say nothing reliable (§IV-F).
FAIRLAW_NODISCARD Result<ConditionalReport> ConditionalStatisticalParity(
    const MetricInput& input, const std::vector<std::string>& strata,
    double tolerance = 0.0, size_t min_stratum_size = 1);

/// §III-F Conditional demographic disparity: demographic disparity
/// (selection rate > 1/2 for every group) within every stratum.
FAIRLAW_NODISCARD Result<ConditionalReport> ConditionalDemographicDisparity(
    const MetricInput& input, const std::vector<std::string>& strata,
    size_t min_stratum_size = 1);

// Chunk-merged forms for the morsel-driven audit engine: the
// StratifiedCountsAccumulator holds per-stratum, per-group tallies merged
// in chunk order (strata and groups both in global first-seen row order),
// and these produce reports identical to the row-wise forms above on the
// concatenated input.

FAIRLAW_NODISCARD Result<ConditionalReport> ConditionalStatisticalParityFromCounts(
    const stats::StratifiedCountsAccumulator& counts, double tolerance = 0.0,
    size_t min_stratum_size = 1);

FAIRLAW_NODISCARD Result<ConditionalReport> ConditionalDemographicDisparityFromCounts(
    const stats::StratifiedCountsAccumulator& counts,
    size_t min_stratum_size = 1);

/// Renders a ConditionalReport as a human-readable block.
std::string RenderConditionalReport(const ConditionalReport& report);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_CONDITIONAL_METRICS_H_
