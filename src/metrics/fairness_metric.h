#ifndef FAIRLAW_METRICS_FAIRNESS_METRIC_H_
#define FAIRLAW_METRICS_FAIRNESS_METRIC_H_

#include <string>
#include <vector>

#include "base/result.h"  // IWYU pragma: export
#include "data/bitmap.h"
#include "stats/mergeable.h"

namespace fairlaw::metrics {

/// Per-group outcome statistics for one value of the protected attribute.
struct GroupStats {
  std::string group;                // protected-attribute value, e.g. "female"
  int64_t count = 0;                // group size
  int64_t positive_predictions = 0;  // predictions == 1 (R = +)
  double selection_rate = 0.0;      // P(R=+ | A=a)

  // Populated only when ground-truth labels were supplied:
  int64_t actual_positives = 0;  // Y = +
  int64_t actual_negatives = 0;  // Y = -
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  double tpr = 0.0;  // P(R=+ | Y=+, A=a); 0 when no actual positives
  double fpr = 0.0;  // P(R=+ | Y=-, A=a); 0 when no actual negatives
  double ppv = 0.0;  // P(Y=+ | R=+, A=a); 0 when no positive predictions
};

/// Input to the group fairness metrics: one row per audited individual.
///
/// `groups[i]` is the protected-attribute value of individual i (§III's A),
/// `predictions[i]` the classifier output R in {0,1} with 1 = the
/// favorable outcome, and `labels[i]` the actual outcome Y in {0,1}.
/// Labels may be empty for metrics that only look at predicted outcomes
/// (demographic parity, demographic disparity).
struct MetricInput {
  std::vector<std::string> groups;
  std::vector<int> predictions;
  std::vector<int> labels;

  size_t size() const { return groups.size(); }

  /// Structural validation; `require_labels` additionally demands a full
  /// label vector.
  FAIRLAW_NODISCARD Status Validate(bool require_labels) const;
};

/// Result of evaluating one fairness definition.
struct MetricReport {
  std::string metric_name;
  std::vector<GroupStats> groups;
  /// Largest absolute pairwise difference of the rate the definition
  /// constrains (selection rate, TPR, ...).
  double max_gap = 0.0;
  /// Smallest pairwise ratio of that rate (used by the four-fifths rule);
  /// 1.0 when all rates are equal; 0 when some group has rate 0 while
  /// another does not.
  double min_ratio = 1.0;
  /// Gap tolerance the verdict used.
  double tolerance = 0.0;
  /// True when max_gap <= tolerance.
  bool satisfied = false;
  /// Human-readable summary (one line per group plus the verdict).
  std::string detail;
};

/// Bitmap partition of a MetricInput, built once and shared by every
/// group metric of an audit run (the audit::Auditor caches one per run).
///
/// Group membership, predictions, and labels are packed into
/// data::Bitmap, so each per-group statistic is a fused word-wise
/// AND + popcount over the packed words instead of a per-row pass over
/// strings:
///   count              = |group|
///   positive_preds     = |group & predictions|
///   true_positives     = |group & predictions & labels|
///   false_positives    = |group & predictions & ~labels|
/// Groups appear in first-seen row order, matching the serial
/// ComputeGroupStats, so reports built either way are identical.
struct GroupPartition {
  std::vector<std::string> group_names;      // first-seen order
  std::vector<data::Bitmap> group_bitmaps;   // aligned with group_names
  data::Bitmap predictions;                  // bit i = predictions[i] == 1
  data::Bitmap labels;                       // bit i = labels[i] == 1
  bool has_labels = false;
  size_t num_rows = 0;

  /// Validates `input` and builds the partition (labels are packed when
  /// present).
  FAIRLAW_NODISCARD static Result<GroupPartition> Build(const MetricInput& input);
};

/// Computes per-group statistics. `with_labels` toggles the Y-conditional
/// fields; when true the input must carry labels.
FAIRLAW_NODISCARD Result<std::vector<GroupStats>> ComputeGroupStats(const MetricInput& input,
                                                  bool with_labels);

/// Same statistics from a prebuilt partition via the fused popcount
/// kernels; `with_labels` requires partition.has_labels.
FAIRLAW_NODISCARD Result<std::vector<GroupStats>> ComputeGroupStats(
    const GroupPartition& partition, bool with_labels);

/// Folds one partition's fused popcounts into `accumulator` — the morsel
/// side of the chunked audit. Call once per chunk partition (in any
/// order); merge the per-chunk accumulators in chunk order and the
/// result feeds GroupStatsFromCounts. `with_labels` requires
/// partition.has_labels.
void AccumulateGroupCounts(const GroupPartition& partition, bool with_labels,
                           stats::GroupCountsAccumulator* accumulator);

/// Derives GroupStats from chunk-merged integer tallies. Given an
/// accumulator whose partials were merged in chunk order, this returns
/// exactly what ComputeGroupStats would have on the concatenated input:
/// the rates are computed from the merged int64 counts by the same
/// divisions, so the doubles are bit-identical. `with_labels` toggles
/// the Y-conditional fields (the label tallies are ignored when false).
std::vector<GroupStats> GroupStatsFromCounts(
    const stats::GroupCountsAccumulator& counts, bool with_labels);

/// Max absolute pairwise gap of the selected per-group rates.
double MaxGap(const std::vector<double>& rates);

/// Min pairwise ratio of the selected per-group rates (see
/// MetricReport::min_ratio).
double MinRatio(const std::vector<double>& rates);

/// Renders a MetricReport as a short human-readable block.
std::string RenderReport(const MetricReport& report);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_FAIRNESS_METRIC_H_
