#ifndef FAIRLAW_METRICS_RANKING_METRICS_H_
#define FAIRLAW_METRICS_RANKING_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::metrics {

// Fairness in rankings (the recommendation/ranking setting the paper's
// related work covers via Pitoura et al. [18]). Rankings concentrate
// attention at the top: a group can hold half the list yet receive a
// sliver of the exposure. Exposure fairness weights positions by the
// standard logarithmic position bias 1/log2(rank+1); prefix parity
// checks representation in every top-k window.

/// Exposure weight of 1-based `rank`: 1 / log2(rank + 1).
double ExposureWeight(size_t rank);

/// Per-group exposure statistics over one ranking.
struct GroupExposure {
  std::string group;
  size_t count = 0;
  double population_share = 0.0;  // share of the ranked items
  double exposure = 0.0;          // sum of position weights
  double exposure_share = 0.0;    // exposure / total exposure
  /// exposure_share / population_share; < 1 means the group sits lower
  /// in the ranking than its size warrants.
  double exposure_ratio = 1.0;
};

struct RankingFairnessReport {
  std::vector<GroupExposure> groups;
  double min_exposure_ratio = 1.0;
  double threshold = 0.8;
  bool satisfied = false;  // min ratio >= threshold
  std::string detail;
};

/// Audits group exposure over `ranked_groups` (the group of the item at
/// each position, best first). `threshold` plays the four-fifths role
/// for exposure.
FAIRLAW_NODISCARD Result<RankingFairnessReport> ExposureFairness(
    const std::vector<std::string>& ranked_groups, double threshold = 0.8);

/// Representation in every top-k prefix.
struct PrefixParityReport {
  /// Largest |top-k share - overall share| over all audited prefixes and
  /// groups.
  double max_gap = 0.0;
  /// Prefix achieving it.
  size_t worst_prefix = 0;
  std::string worst_group;
  double tolerance = 0.0;
  bool satisfied = false;
};

/// Audits the prefixes in `prefix_sizes` (each in [1, n]).
FAIRLAW_NODISCARD Result<PrefixParityReport> TopKParity(
    const std::vector<std::string>& ranked_groups,
    const std::vector<size_t>& prefix_sizes, double tolerance = 0.1);

/// Fair re-ranking: greedily rebuilds the ranking by score while
/// guaranteeing that every prefix k contains at least
/// floor(min_share[g] * k) members of each constrained group (Celis-style
/// constrained top-k). Returns the item indices in their new order.
/// Shares must sum to <= 1.
FAIRLAW_NODISCARD Result<std::vector<size_t>> FairRerank(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    const std::map<std::string, double>& min_share);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_RANKING_METRICS_H_
