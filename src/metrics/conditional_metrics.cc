#include "metrics/conditional_metrics.h"

#include <algorithm>
#include <map>

#include "base/string_util.h"
#include "metrics/group_metrics.h"
#include "stats/mergeable.h"

namespace fairlaw::metrics {
namespace {

/// Partitions input rows by stratum value (first-seen order preserved).
Result<std::vector<std::pair<std::string, std::vector<size_t>>>>
PartitionByStratum(const MetricInput& input,
                   const std::vector<std::string>& strata) {
  if (strata.size() != input.size()) {
    return Status::Invalid("conditional metric: strata/input size mismatch");
  }
  std::vector<std::pair<std::string, std::vector<size_t>>> partitions;
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < strata.size(); ++i) {
    auto [it, inserted] = index_of.try_emplace(strata[i], partitions.size());
    if (inserted) partitions.push_back({strata[i], {}});
    partitions[it->second].second.push_back(i);
  }
  return partitions;
}

MetricInput Subset(const MetricInput& input, const std::vector<size_t>& rows) {
  MetricInput out;
  out.groups.reserve(rows.size());
  out.predictions.reserve(rows.size());
  if (!input.labels.empty()) out.labels.reserve(rows.size());
  for (size_t row : rows) {
    out.groups.push_back(input.groups[row]);
    out.predictions.push_back(input.predictions[row]);
    if (!input.labels.empty()) out.labels.push_back(input.labels[row]);
  }
  return out;
}

size_t CountDistinctGroups(const MetricInput& input) {
  std::vector<std::string> groups = input.groups;
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups.size();
}

}  // namespace

Result<ConditionalReport> ConditionalStatisticalParity(
    const MetricInput& input, const std::vector<std::string>& strata,
    double tolerance, size_t min_stratum_size) {
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  FAIRLAW_ASSIGN_OR_RETURN(auto partitions, PartitionByStratum(input, strata));

  ConditionalReport report;
  report.metric_name = "conditional_statistical_parity";
  report.tolerance = tolerance;
  report.satisfied = true;
  std::string skipped;
  size_t evaluated = 0;
  for (const auto& [stratum, rows] : partitions) {
    MetricInput slice = Subset(input, rows);
    if (rows.size() < min_stratum_size || CountDistinctGroups(slice) < 2) {
      if (!skipped.empty()) skipped += ", ";
      skipped += stratum;
      continue;
    }
    FAIRLAW_ASSIGN_OR_RETURN(MetricReport inner,
                             DemographicParity(slice, tolerance));
    inner.metric_name = "demographic_parity[" + stratum + "]";
    report.max_gap = std::max(report.max_gap, inner.max_gap);
    report.satisfied = report.satisfied && inner.satisfied;
    report.strata.push_back(StratumReport{stratum, std::move(inner)});
    ++evaluated;
  }
  if (evaluated == 0) {
    return Status::Invalid("conditional_statistical_parity: no stratum was "
                           "large enough to evaluate");
  }
  if (!skipped.empty()) {
    report.detail = "skipped strata (too small or single-group): " + skipped;
  }
  return report;
}

Result<ConditionalReport> ConditionalDemographicDisparity(
    const MetricInput& input, const std::vector<std::string>& strata,
    size_t min_stratum_size) {
  FAIRLAW_RETURN_NOT_OK(input.Validate(/*require_labels=*/false));
  FAIRLAW_ASSIGN_OR_RETURN(auto partitions, PartitionByStratum(input, strata));

  ConditionalReport report;
  report.metric_name = "conditional_demographic_disparity";
  report.tolerance = 0.0;
  report.satisfied = true;
  std::string skipped;
  size_t evaluated = 0;
  for (const auto& [stratum, rows] : partitions) {
    if (rows.size() < min_stratum_size) {
      if (!skipped.empty()) skipped += ", ";
      skipped += stratum;
      continue;
    }
    MetricInput slice = Subset(input, rows);
    FAIRLAW_ASSIGN_OR_RETURN(MetricReport inner, DemographicDisparity(slice));
    inner.metric_name = "demographic_disparity[" + stratum + "]";
    report.max_gap = std::max(report.max_gap, inner.max_gap);
    report.satisfied = report.satisfied && inner.satisfied;
    report.strata.push_back(StratumReport{stratum, std::move(inner)});
    ++evaluated;
  }
  if (evaluated == 0) {
    return Status::Invalid("conditional_demographic_disparity: no stratum "
                           "was large enough to evaluate");
  }
  if (!skipped.empty()) report.detail = "skipped strata: " + skipped;
  return report;
}

Result<ConditionalReport> ConditionalStatisticalParityFromCounts(
    const stats::StratifiedCountsAccumulator& counts, double tolerance,
    size_t min_stratum_size) {
  ConditionalReport report;
  report.metric_name = "conditional_statistical_parity";
  report.tolerance = tolerance;
  report.satisfied = true;
  std::string skipped;
  size_t evaluated = 0;
  for (size_t s = 0; s < counts.num_strata(); ++s) {
    const std::string& stratum = counts.keys()[s];
    const stats::GroupCountsAccumulator& tallies = counts.stratum(s);
    int64_t stratum_rows = 0;
    for (size_t g = 0; g < tallies.num_keys(); ++g) {
      stratum_rows += tallies.counts(g).count;
    }
    if (static_cast<size_t>(stratum_rows) < min_stratum_size ||
        tallies.num_keys() < 2) {
      if (!skipped.empty()) skipped += ", ";
      skipped += stratum;
      continue;
    }
    FAIRLAW_ASSIGN_OR_RETURN(
        MetricReport inner,
        DemographicParityFromStats(
            GroupStatsFromCounts(tallies, /*with_labels=*/false), tolerance));
    inner.metric_name = "demographic_parity[" + stratum + "]";
    report.max_gap = std::max(report.max_gap, inner.max_gap);
    report.satisfied = report.satisfied && inner.satisfied;
    report.strata.push_back(StratumReport{stratum, std::move(inner)});
    ++evaluated;
  }
  if (evaluated == 0) {
    return Status::Invalid("conditional_statistical_parity: no stratum was "
                           "large enough to evaluate");
  }
  if (!skipped.empty()) {
    report.detail = "skipped strata (too small or single-group): " + skipped;
  }
  return report;
}

Result<ConditionalReport> ConditionalDemographicDisparityFromCounts(
    const stats::StratifiedCountsAccumulator& counts,
    size_t min_stratum_size) {
  ConditionalReport report;
  report.metric_name = "conditional_demographic_disparity";
  report.tolerance = 0.0;
  report.satisfied = true;
  std::string skipped;
  size_t evaluated = 0;
  for (size_t s = 0; s < counts.num_strata(); ++s) {
    const std::string& stratum = counts.keys()[s];
    const stats::GroupCountsAccumulator& tallies = counts.stratum(s);
    int64_t stratum_rows = 0;
    for (size_t g = 0; g < tallies.num_keys(); ++g) {
      stratum_rows += tallies.counts(g).count;
    }
    if (static_cast<size_t>(stratum_rows) < min_stratum_size) {
      if (!skipped.empty()) skipped += ", ";
      skipped += stratum;
      continue;
    }
    FAIRLAW_ASSIGN_OR_RETURN(
        MetricReport inner,
        DemographicDisparityFromStats(
            GroupStatsFromCounts(tallies, /*with_labels=*/false)));
    inner.metric_name = "demographic_disparity[" + stratum + "]";
    report.max_gap = std::max(report.max_gap, inner.max_gap);
    report.satisfied = report.satisfied && inner.satisfied;
    report.strata.push_back(StratumReport{stratum, std::move(inner)});
    ++evaluated;
  }
  if (evaluated == 0) {
    return Status::Invalid("conditional_demographic_disparity: no stratum "
                           "was large enough to evaluate");
  }
  if (!skipped.empty()) report.detail = "skipped strata: " + skipped;
  return report;
}

std::string RenderConditionalReport(const ConditionalReport& report) {
  std::string out = report.metric_name + ": " +
                    (report.satisfied ? "SATISFIED" : "VIOLATED") +
                    " (worst stratum gap " + FormatDouble(report.max_gap, 4) +
                    ")\n";
  for (const StratumReport& sr : report.strata) {
    out += "  stratum " + sr.stratum + ": " +
           (sr.report.satisfied ? "ok" : "VIOLATED") + " gap " +
           FormatDouble(sr.report.max_gap, 4) + "\n";
  }
  if (!report.detail.empty()) out += "  " + report.detail + "\n";
  return out;
}

}  // namespace fairlaw::metrics
