#include "metrics/inequality_indices.h"

#include <cmath>
#include <map>

namespace fairlaw::metrics {
namespace {

Result<double> MeanBenefit(std::span<const double> benefits, double alpha) {
  if (benefits.empty()) {
    return Status::Invalid("entropy index: empty benefit vector");
  }
  double total = 0.0;
  for (double b : benefits) {
    if (b < 0.0) {
      return Status::Invalid("entropy index: benefits must be non-negative");
    }
    if (b == 0.0 && alpha <= 0.0) {
      return Status::Invalid("entropy index: zero benefit is degenerate for "
                             "alpha <= 0");
    }
    total += b;
  }
  double mean = total / static_cast<double>(benefits.size());
  if (mean <= 0.0) {
    return Status::Invalid("entropy index: mean benefit must be positive");
  }
  return mean;
}

}  // namespace

Result<double> GeneralizedEntropyIndex(std::span<const double> benefits,
                                       double alpha) {
  FAIRLAW_ASSIGN_OR_RETURN(double mean, MeanBenefit(benefits, alpha));
  const double n = static_cast<double>(benefits.size());
  if (alpha == 1.0) {
    // Theil: (1/n) sum (b/mu) ln(b/mu), with 0·ln 0 = 0.
    double total = 0.0;
    for (double b : benefits) {
      double ratio = b / mean;
      if (ratio > 0.0) total += ratio * std::log(ratio);
    }
    return total / n;
  }
  if (alpha == 0.0) {
    // Mean log deviation: (1/n) sum ln(mu/b).
    double total = 0.0;
    for (double b : benefits) total += std::log(mean / b);
    return total / n;
  }
  double total = 0.0;
  for (double b : benefits) {
    total += std::pow(b / mean, alpha) - 1.0;
  }
  return total / (n * alpha * (alpha - 1.0));
}

Result<double> TheilIndex(std::span<const double> benefits) {
  return GeneralizedEntropyIndex(benefits, 1.0);
}

Result<std::vector<double>> BinaryBenefits(std::span<const int> labels,
                                           std::span<const int> predictions) {
  if (labels.size() != predictions.size()) {
    return Status::Invalid("BinaryBenefits: size mismatch");
  }
  std::vector<double> benefits(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if ((labels[i] != 0 && labels[i] != 1) ||
        (predictions[i] != 0 && predictions[i] != 1)) {
      return Status::Invalid("BinaryBenefits: values must be 0/1");
    }
    benefits[i] = static_cast<double>(predictions[i] - labels[i] + 1);
  }
  return benefits;
}

Result<EntropyDecomposition> DecomposeEntropyIndex(
    std::span<const double> benefits, const std::vector<std::string>& groups,
    double alpha) {
  if (groups.size() != benefits.size()) {
    return Status::Invalid("DecomposeEntropyIndex: size mismatch");
  }
  FAIRLAW_ASSIGN_OR_RETURN(double total_index,
                           GeneralizedEntropyIndex(benefits, alpha));

  // Between-group component: every individual's benefit replaced by the
  // mean of their group; the within component is the remainder, which
  // matches the additive decomposition of generalized entropy.
  std::map<std::string, std::pair<double, size_t>> sums;
  for (size_t i = 0; i < benefits.size(); ++i) {
    auto& [sum, count] = sums[groups[i]];
    sum += benefits[i];
    ++count;
  }
  std::vector<double> replaced(benefits.size());
  for (size_t i = 0; i < benefits.size(); ++i) {
    const auto& [sum, count] = sums[groups[i]];
    replaced[i] = sum / static_cast<double>(count);
  }
  FAIRLAW_ASSIGN_OR_RETURN(double between,
                           GeneralizedEntropyIndex(replaced, alpha));
  EntropyDecomposition decomposition;
  decomposition.total = total_index;
  decomposition.between_groups = between;
  decomposition.within_groups = total_index - between;
  return decomposition;
}

}  // namespace fairlaw::metrics
