#ifndef FAIRLAW_METRICS_GROUP_METRICS_H_
#define FAIRLAW_METRICS_GROUP_METRICS_H_

#include "metrics/fairness_metric.h"

namespace fairlaw::metrics {

// The group fairness definitions of §III of the paper, plus the standard
// companions used by US disparate-impact practice. All of them take a
// gap `tolerance`: the report is satisfied when the largest pairwise gap
// of the constrained rate is <= tolerance (the paper's equalities, made
// testable on finite samples).
//
// Every metric has three forms: the MetricInput overload (convenient,
// builds a partition internally), a GroupPartition overload that runs
// on a prebuilt bitmap partition, and a FromStats core that evaluates
// the definition on already-computed per-group statistics. An audit
// evaluating several metrics over the same rows builds one
// GroupPartition and passes it to each, so the strings are grouped once
// per run instead of once per metric; the chunked audit engine derives
// one std::vector<GroupStats> from chunk-merged integer tallies
// (GroupStatsFromCounts) and feeds the FromStats cores. All forms
// produce identical reports — the first two route through the third.

/// §III-A Demographic parity: P(R=+ | A=a) equal across groups
/// (equal-outcome family). Labels not required.
FAIRLAW_NODISCARD Result<MetricReport> DemographicParity(const MetricInput& input,
                                       double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> DemographicParity(const GroupPartition& partition,
                                       double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> DemographicParityFromStats(
    std::vector<GroupStats> stats, double tolerance = 0.0);

/// §III-C Equal opportunity: P(R=+ | Y=+, A=a) equal across groups
/// (equal-treatment family). Requires labels.
FAIRLAW_NODISCARD Result<MetricReport> EqualOpportunity(const MetricInput& input,
                                      double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> EqualOpportunity(const GroupPartition& partition,
                                      double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> EqualOpportunityFromStats(
    std::vector<GroupStats> stats, double tolerance = 0.0);

/// §III-D Equalized odds: both TPR and FPR equal across groups. The
/// reported gap is the worse of the two. Requires labels.
FAIRLAW_NODISCARD Result<MetricReport> EqualizedOdds(const MetricInput& input,
                                   double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> EqualizedOdds(const GroupPartition& partition,
                                   double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> EqualizedOddsFromStats(
    std::vector<GroupStats> stats, double tolerance = 0.0);

/// §III-E Demographic disparity: for every group a,
/// P(R=+ | A=a) > P(R=- | A=a), i.e. the selection rate exceeds 1/2.
/// The report is satisfied when every group passes; max_gap carries the
/// largest shortfall below 1/2 (0 when satisfied). Labels not required.
FAIRLAW_NODISCARD Result<MetricReport> DemographicDisparity(const MetricInput& input);
FAIRLAW_NODISCARD Result<MetricReport> DemographicDisparity(const GroupPartition& partition);
FAIRLAW_NODISCARD Result<MetricReport> DemographicDisparityFromStats(
    std::vector<GroupStats> stats);

/// Disparate-impact ratio: min over groups of selection rate divided by
/// the highest group selection rate. `threshold` is the legal cut-off
/// (0.8 for the EEOC four-fifths rule); satisfied when the ratio >=
/// threshold. Labels not required.
FAIRLAW_NODISCARD Result<MetricReport> DisparateImpactRatio(const MetricInput& input,
                                          double threshold = 0.8);
FAIRLAW_NODISCARD Result<MetricReport> DisparateImpactRatio(const GroupPartition& partition,
                                          double threshold = 0.8);
FAIRLAW_NODISCARD Result<MetricReport> DisparateImpactRatioFromStats(
    std::vector<GroupStats> stats, double threshold = 0.8);

/// Predictive parity: P(Y=+ | R=+, A=a) (precision / PPV) equal across
/// groups. Requires labels.
FAIRLAW_NODISCARD Result<MetricReport> PredictiveParity(const MetricInput& input,
                                      double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> PredictiveParity(const GroupPartition& partition,
                                      double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> PredictiveParityFromStats(
    std::vector<GroupStats> stats, double tolerance = 0.0);

/// Overall accuracy equality: P(R=Y | A=a) equal across groups. Requires
/// labels.
FAIRLAW_NODISCARD Result<MetricReport> AccuracyEquality(const MetricInput& input,
                                      double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> AccuracyEquality(const GroupPartition& partition,
                                      double tolerance = 0.0);
FAIRLAW_NODISCARD Result<MetricReport> AccuracyEqualityFromStats(
    std::vector<GroupStats> stats, double tolerance = 0.0);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_GROUP_METRICS_H_
