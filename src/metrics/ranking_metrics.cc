#include "metrics/ranking_metrics.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"

namespace fairlaw::metrics {

double ExposureWeight(size_t rank) {
  return 1.0 / std::log2(static_cast<double>(rank) + 1.0);
}

Result<RankingFairnessReport> ExposureFairness(
    const std::vector<std::string>& ranked_groups, double threshold) {
  if (ranked_groups.empty()) {
    return Status::Invalid("ExposureFairness: empty ranking");
  }
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::Invalid("ExposureFairness: threshold must lie in (0,1]");
  }
  std::map<std::string, GroupExposure> by_group;
  double total_exposure = 0.0;
  for (size_t position = 0; position < ranked_groups.size(); ++position) {
    GroupExposure& exposure = by_group[ranked_groups[position]];
    exposure.group = ranked_groups[position];
    ++exposure.count;
    double weight = ExposureWeight(position + 1);
    exposure.exposure += weight;
    total_exposure += weight;
  }
  if (by_group.size() < 2) {
    return Status::Invalid("ExposureFairness: need >= 2 groups in the "
                           "ranking");
  }

  RankingFairnessReport report;
  report.threshold = threshold;
  report.min_exposure_ratio = std::numeric_limits<double>::infinity();
  const double n = static_cast<double>(ranked_groups.size());
  std::string worst;
  for (auto& [group, exposure] : by_group) {
    exposure.population_share = static_cast<double>(exposure.count) / n;
    exposure.exposure_share = exposure.exposure / total_exposure;
    exposure.exposure_ratio =
        exposure.exposure_share / exposure.population_share;
    if (exposure.exposure_ratio < report.min_exposure_ratio) {
      report.min_exposure_ratio = exposure.exposure_ratio;
      worst = group;
    }
    report.groups.push_back(exposure);
  }
  report.satisfied = report.min_exposure_ratio >= threshold;
  if (!report.satisfied) {
    report.detail = "group '" + worst + "' receives only " +
                    FormatDouble(report.min_exposure_ratio, 4) +
                    " of its size-proportional exposure";
  }
  return report;
}

Result<PrefixParityReport> TopKParity(
    const std::vector<std::string>& ranked_groups,
    const std::vector<size_t>& prefix_sizes, double tolerance) {
  if (ranked_groups.empty()) {
    return Status::Invalid("TopKParity: empty ranking");
  }
  if (prefix_sizes.empty()) {
    return Status::Invalid("TopKParity: no prefixes to audit");
  }
  if (tolerance < 0.0) {
    return Status::Invalid("TopKParity: tolerance must be >= 0");
  }
  const double n = static_cast<double>(ranked_groups.size());
  std::map<std::string, double> overall_share;
  for (const std::string& group : ranked_groups) {
    overall_share[group] += 1.0 / n;
  }

  PrefixParityReport report;
  report.tolerance = tolerance;
  for (size_t k : prefix_sizes) {
    if (k == 0 || k > ranked_groups.size()) {
      return Status::Invalid("TopKParity: prefix size " + std::to_string(k) +
                             " out of range");
    }
    std::map<std::string, double> prefix_count;
    for (size_t position = 0; position < k; ++position) {
      prefix_count[ranked_groups[position]] += 1.0;
    }
    for (const auto& [group, share] : overall_share) {
      double prefix_share = prefix_count[group] / static_cast<double>(k);
      double gap = std::fabs(prefix_share - share);
      if (gap > report.max_gap) {
        report.max_gap = gap;
        report.worst_prefix = k;
        report.worst_group = group;
      }
    }
  }
  report.satisfied = report.max_gap <= tolerance;
  return report;
}

Result<std::vector<size_t>> FairRerank(
    const std::vector<std::string>& groups, const std::vector<double>& scores,
    const std::map<std::string, double>& min_share) {
  if (groups.empty()) return Status::Invalid("FairRerank: empty input");
  if (scores.size() != groups.size()) {
    return Status::Invalid("FairRerank: scores/groups size mismatch");
  }
  double share_sum = 0.0;
  for (const auto& [group, share] : min_share) {
    (void)group;
    if (share < 0.0 || share > 1.0) {
      return Status::Invalid("FairRerank: shares must lie in [0,1]");
    }
    share_sum += share;
  }
  if (share_sum > 1.0 + 1e-12) {
    return Status::Invalid("FairRerank: shares sum above 1");
  }

  // Per-group score-sorted queues.
  std::map<std::string, std::vector<size_t>> queues;
  for (size_t i = 0; i < groups.size(); ++i) queues[groups[i]].push_back(i);
  for (auto& [group, queue] : queues) {
    (void)group;
    std::sort(queue.begin(), queue.end(), [&scores](size_t a, size_t b) {
      return scores[a] > scores[b];
    });
    std::reverse(queue.begin(), queue.end());  // pop_back = best
  }
  for (const auto& [group, share] : min_share) {
    (void)share;
    if (!queues.contains(group)) {
      return Status::NotFound("FairRerank: constrained group '" + group +
                              "' has no candidates");
    }
  }

  std::map<std::string, size_t> placed;
  std::vector<size_t> order;
  order.reserve(groups.size());
  for (size_t position = 1; position <= groups.size(); ++position) {
    // Find constrained groups whose floor(share*k) quota would be missed.
    std::string forced;
    for (const auto& [group, share] : min_share) {
      size_t required = static_cast<size_t>(
          std::floor(share * static_cast<double>(position) + 1e-12));
      if (placed[group] < required && !queues[group].empty()) {
        forced = group;
        break;
      }
    }
    size_t chosen;
    if (!forced.empty()) {
      chosen = queues[forced].back();
      queues[forced].pop_back();
    } else {
      // Globally best remaining candidate.
      double best_score = -std::numeric_limits<double>::infinity();
      std::string best_group;
      for (const auto& [group, queue] : queues) {
        if (!queue.empty() && scores[queue.back()] > best_score) {
          best_score = scores[queue.back()];
          best_group = group;
        }
      }
      chosen = queues[best_group].back();
      queues[best_group].pop_back();
    }
    ++placed[groups[chosen]];
    order.push_back(chosen);
  }
  return order;
}

}  // namespace fairlaw::metrics
