#include "metrics/group_metrics.h"

#include <algorithm>

#include "base/string_util.h"

namespace fairlaw::metrics {
namespace {

Status CheckTolerance(double tolerance) {
  if (tolerance < 0.0) {
    return Status::Invalid("fairness metric: tolerance must be >= 0");
  }
  return Status::OK();
}

Status CheckMultipleGroups(const std::vector<GroupStats>& stats) {
  if (stats.size() < 2) {
    return Status::Invalid("fairness metric: need at least 2 protected "
                           "groups, got " + std::to_string(stats.size()));
  }
  return Status::OK();
}

/// Validates the row-wise input (label-requiring metrics demand labels up
/// front so the error message names the missing piece) and builds the
/// bitmap partition the metric bodies run on.
Result<GroupPartition> PartitionInput(const MetricInput& input,
                                      bool require_labels) {
  FAIRLAW_RETURN_NOT_OK(input.Validate(require_labels));
  return GroupPartition::Build(input);
}

}  // namespace

Result<MetricReport> DemographicParity(const MetricInput& input,
                                       double tolerance) {
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           PartitionInput(input, /*require_labels=*/false));
  return DemographicParity(partition, tolerance);
}

Result<MetricReport> DemographicParity(const GroupPartition& partition,
                                       double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_ASSIGN_OR_RETURN(
      std::vector<GroupStats> stats,
      ComputeGroupStats(partition, /*with_labels=*/false));
  return DemographicParityFromStats(std::move(stats), tolerance);
}

Result<MetricReport> DemographicParityFromStats(std::vector<GroupStats> stats,
                                                double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_RETURN_NOT_OK(CheckMultipleGroups(stats));
  std::vector<double> rates;
  rates.reserve(stats.size());
  for (const GroupStats& gs : stats) rates.push_back(gs.selection_rate);
  MetricReport report;
  report.metric_name = "demographic_parity";
  report.groups = std::move(stats);
  report.max_gap = MaxGap(rates);
  report.min_ratio = MinRatio(rates);
  report.tolerance = tolerance;
  report.satisfied = report.max_gap <= tolerance;
  return report;
}

Result<MetricReport> EqualOpportunity(const MetricInput& input,
                                      double tolerance) {
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           PartitionInput(input, /*require_labels=*/true));
  return EqualOpportunity(partition, tolerance);
}

Result<MetricReport> EqualOpportunity(const GroupPartition& partition,
                                      double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<GroupStats> stats,
                           ComputeGroupStats(partition, /*with_labels=*/true));
  return EqualOpportunityFromStats(std::move(stats), tolerance);
}

Result<MetricReport> EqualOpportunityFromStats(std::vector<GroupStats> stats,
                                               double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_RETURN_NOT_OK(CheckMultipleGroups(stats));
  for (const GroupStats& gs : stats) {
    if (gs.actual_positives == 0) {
      return Status::Invalid("equal_opportunity: group '" + gs.group +
                             "' has no actual positives; TPR undefined");
    }
  }
  std::vector<double> rates;
  rates.reserve(stats.size());
  for (const GroupStats& gs : stats) rates.push_back(gs.tpr);
  MetricReport report;
  report.metric_name = "equal_opportunity";
  report.groups = std::move(stats);
  report.max_gap = MaxGap(rates);
  report.min_ratio = MinRatio(rates);
  report.tolerance = tolerance;
  report.satisfied = report.max_gap <= tolerance;
  return report;
}

Result<MetricReport> EqualizedOdds(const MetricInput& input,
                                   double tolerance) {
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           PartitionInput(input, /*require_labels=*/true));
  return EqualizedOdds(partition, tolerance);
}

Result<MetricReport> EqualizedOdds(const GroupPartition& partition,
                                   double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<GroupStats> stats,
                           ComputeGroupStats(partition, /*with_labels=*/true));
  return EqualizedOddsFromStats(std::move(stats), tolerance);
}

Result<MetricReport> EqualizedOddsFromStats(std::vector<GroupStats> stats,
                                            double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_RETURN_NOT_OK(CheckMultipleGroups(stats));
  for (const GroupStats& gs : stats) {
    if (gs.actual_positives == 0 || gs.actual_negatives == 0) {
      return Status::Invalid("equalized_odds: group '" + gs.group +
                             "' lacks actual positives or negatives");
    }
  }
  std::vector<double> tprs;
  std::vector<double> fprs;
  for (const GroupStats& gs : stats) {
    tprs.push_back(gs.tpr);
    fprs.push_back(gs.fpr);
  }
  const double tpr_gap = MaxGap(tprs);
  const double fpr_gap = MaxGap(fprs);
  MetricReport report;
  report.metric_name = "equalized_odds";
  report.groups = std::move(stats);
  report.max_gap = std::max(tpr_gap, fpr_gap);
  report.min_ratio = std::min(MinRatio(tprs), MinRatio(fprs));
  report.tolerance = tolerance;
  report.satisfied = report.max_gap <= tolerance;
  report.detail = "tpr_gap=" + FormatDouble(tpr_gap, 4) +
                  " fpr_gap=" + FormatDouble(fpr_gap, 4);
  return report;
}

Result<MetricReport> DemographicDisparity(const MetricInput& input) {
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           PartitionInput(input, /*require_labels=*/false));
  return DemographicDisparity(partition);
}

Result<MetricReport> DemographicDisparity(const GroupPartition& partition) {
  FAIRLAW_ASSIGN_OR_RETURN(
      std::vector<GroupStats> stats,
      ComputeGroupStats(partition, /*with_labels=*/false));
  return DemographicDisparityFromStats(std::move(stats));
}

Result<MetricReport> DemographicDisparityFromStats(
    std::vector<GroupStats> stats) {
  MetricReport report;
  report.metric_name = "demographic_disparity";
  report.tolerance = 0.0;
  report.satisfied = true;
  double worst_shortfall = 0.0;
  std::string failing;
  for (const GroupStats& gs : stats) {
    // P(R=+|A=a) > P(R=-|A=a)  <=>  selection rate > 1/2.
    if (gs.selection_rate <= 0.5) {
      report.satisfied = false;
      worst_shortfall = std::max(worst_shortfall, 0.5 - gs.selection_rate);
      if (!failing.empty()) failing += ", ";
      failing += gs.group;
    }
  }
  report.max_gap = worst_shortfall;
  std::vector<double> rates;
  for (const GroupStats& gs : stats) rates.push_back(gs.selection_rate);
  report.min_ratio = MinRatio(rates);
  report.groups = std::move(stats);
  if (!report.satisfied) {
    report.detail = "groups with more rejections than acceptances: " + failing;
  }
  return report;
}

Result<MetricReport> DisparateImpactRatio(const MetricInput& input,
                                          double threshold) {
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           PartitionInput(input, /*require_labels=*/false));
  return DisparateImpactRatio(partition, threshold);
}

Result<MetricReport> DisparateImpactRatio(const GroupPartition& partition,
                                          double threshold) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::Invalid("disparate_impact: threshold must lie in (0,1]");
  }
  FAIRLAW_ASSIGN_OR_RETURN(
      std::vector<GroupStats> stats,
      ComputeGroupStats(partition, /*with_labels=*/false));
  return DisparateImpactRatioFromStats(std::move(stats), threshold);
}

Result<MetricReport> DisparateImpactRatioFromStats(
    std::vector<GroupStats> stats, double threshold) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::Invalid("disparate_impact: threshold must lie in (0,1]");
  }
  FAIRLAW_RETURN_NOT_OK(CheckMultipleGroups(stats));
  std::vector<double> rates;
  rates.reserve(stats.size());
  for (const GroupStats& gs : stats) rates.push_back(gs.selection_rate);
  if (*std::max_element(rates.begin(), rates.end()) <= 0.0) {
    // 0/0 is undefined; a silent ratio of 1.0 would report a clean screen
    // for a selection process that admitted nobody.
    return Status::FailedPrecondition(
        "disparate_impact_ratio: no group has a positive selection rate; "
        "the ratio is undefined");
  }
  MetricReport report;
  report.metric_name = "disparate_impact_ratio";
  report.groups = std::move(stats);
  report.max_gap = MaxGap(rates);
  report.min_ratio = MinRatio(rates);
  report.tolerance = threshold;
  report.satisfied = report.min_ratio >= threshold;
  report.detail = "selection-rate ratio " + FormatDouble(report.min_ratio, 4) +
                  (report.satisfied ? " passes" : " fails") + " the " +
                  FormatDouble(threshold, 2) + " threshold";
  return report;
}

Result<MetricReport> PredictiveParity(const MetricInput& input,
                                      double tolerance) {
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           PartitionInput(input, /*require_labels=*/true));
  return PredictiveParity(partition, tolerance);
}

Result<MetricReport> PredictiveParity(const GroupPartition& partition,
                                      double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<GroupStats> stats,
                           ComputeGroupStats(partition, /*with_labels=*/true));
  return PredictiveParityFromStats(std::move(stats), tolerance);
}

Result<MetricReport> PredictiveParityFromStats(std::vector<GroupStats> stats,
                                               double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_RETURN_NOT_OK(CheckMultipleGroups(stats));
  for (const GroupStats& gs : stats) {
    if (gs.positive_predictions == 0) {
      return Status::Invalid("predictive_parity: group '" + gs.group +
                             "' has no positive predictions; PPV undefined");
    }
  }
  std::vector<double> rates;
  for (const GroupStats& gs : stats) rates.push_back(gs.ppv);
  MetricReport report;
  report.metric_name = "predictive_parity";
  report.groups = std::move(stats);
  report.max_gap = MaxGap(rates);
  report.min_ratio = MinRatio(rates);
  report.tolerance = tolerance;
  report.satisfied = report.max_gap <= tolerance;
  return report;
}

Result<MetricReport> AccuracyEquality(const MetricInput& input,
                                      double tolerance) {
  FAIRLAW_ASSIGN_OR_RETURN(GroupPartition partition,
                           PartitionInput(input, /*require_labels=*/true));
  return AccuracyEquality(partition, tolerance);
}

Result<MetricReport> AccuracyEquality(const GroupPartition& partition,
                                      double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<GroupStats> stats,
                           ComputeGroupStats(partition, /*with_labels=*/true));
  return AccuracyEqualityFromStats(std::move(stats), tolerance);
}

Result<MetricReport> AccuracyEqualityFromStats(std::vector<GroupStats> stats,
                                               double tolerance) {
  FAIRLAW_RETURN_NOT_OK(CheckTolerance(tolerance));
  FAIRLAW_RETURN_NOT_OK(CheckMultipleGroups(stats));
  std::vector<double> rates;
  for (const GroupStats& gs : stats) {
    // accuracy = (TP + TN) / n, with TN = actual_negatives - FP.
    double correct = static_cast<double>(
        gs.true_positives + (gs.actual_negatives - gs.false_positives));
    rates.push_back(gs.count > 0 ? correct / static_cast<double>(gs.count)
                                 : 0.0);
  }
  MetricReport report;
  report.metric_name = "accuracy_equality";
  report.groups = std::move(stats);
  report.max_gap = MaxGap(rates);
  report.min_ratio = MinRatio(rates);
  report.tolerance = tolerance;
  report.satisfied = report.max_gap <= tolerance;
  return report;
}

}  // namespace fairlaw::metrics
