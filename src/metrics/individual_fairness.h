#ifndef FAIRLAW_METRICS_INDIVIDUAL_FAIRNESS_H_
#define FAIRLAW_METRICS_INDIVIDUAL_FAIRNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::metrics {

// Individual fairness — "fairness through awareness" (Dwork et al. [4],
// the paper's reference for §III-A): similar individuals should receive
// similar decisions, formalized as a Lipschitz condition
// d_outcome(f(x), f(y)) <= L * d_task(x, y) for a task-specific
// similarity metric. fairlaw audits two operational forms: the kNN
// consistency score (how much each individual's score deviates from
// their nearest neighbors') and explicit Lipschitz-violation pairs.

/// Task-specific distance between two feature vectors.
using SimilarityMetric = std::function<double(
    const std::vector<double>&, const std::vector<double>&)>;

/// Euclidean distance (the default task metric when none is supplied —
/// standardize features first or provide a domain metric).
double EuclideanDistance(const std::vector<double>& x,
                         const std::vector<double>& y);

/// kNN consistency: 1 - mean_i |score_i - mean(score of i's k nearest
/// neighbors)|. 1 means every individual is scored like their peers;
/// lower values mean similar individuals receive dissimilar outcomes.
struct ConsistencyReport {
  double consistency = 1.0;
  size_t k = 0;
  /// Indices of the `worst` individuals with the largest deviation from
  /// their neighborhood (descending), for case-level review.
  std::vector<size_t> least_consistent;
};

FAIRLAW_NODISCARD Result<ConsistencyReport> KnnConsistency(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& scores, size_t k = 5, size_t worst = 5,
    const SimilarityMetric& metric = EuclideanDistance);

/// One Lipschitz violation: a pair closer than `epsilon` in task space
/// whose scores differ by more than L * distance.
struct LipschitzViolation {
  size_t i = 0;
  size_t j = 0;
  double distance = 0.0;
  double score_gap = 0.0;
};

struct LipschitzReport {
  double lipschitz_bound = 1.0;  // the audited L
  size_t pairs_checked = 0;
  std::vector<LipschitzViolation> violations;  // sorted by excess, capped
  /// Smallest L under which no audited pair violates (the empirical
  /// Lipschitz constant of the decision function on this sample).
  double empirical_constant = 0.0;
  bool satisfied = false;
};

/// Audits all pairs with distance <= `epsilon` (O(n^2); intended for
/// audit samples up to a few thousand rows). `max_violations` caps the
/// reported list.
FAIRLAW_NODISCARD Result<LipschitzReport> AuditLipschitz(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& scores, double lipschitz_bound,
    double epsilon, size_t max_violations = 20,
    const SimilarityMetric& metric = EuclideanDistance);

}  // namespace fairlaw::metrics

#endif  // FAIRLAW_METRICS_INDIVIDUAL_FAIRNESS_H_
