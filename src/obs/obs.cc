#include "obs/obs.h"

#include <array>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "base/mutex.h"
#include "base/string_util.h"
#include "base/thread_annotations.h"

namespace fairlaw::obs {
namespace {

/// Tri-state runtime switch: -1 = not yet initialized from the
/// environment, 0 = disabled, 1 = enabled.
std::atomic<int> g_enabled{-1};

int ReadEnabledFromEnv() {
  // Read-only env lookup before any thread could call setenv; the result
  // is cached in g_enabled, so this runs once per process.
  const char* value = std::getenv("FAIRLAW_OBS");  // NOLINT(concurrency-mt-unsafe)
  if (value == nullptr) return 1;
  const std::string lowered = AsciiToLower(value);
  if (lowered == "off" || lowered == "0" || lowered == "false") return 0;
  return 1;
}

/// Per-path completion stats. Counts are schedule-invariant; total_ns
/// is wall clock and only surfaces with ExportOptions.include_timings.
struct SpanStat {
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

std::string JsonEscapeName(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool Enabled() {
#ifdef FAIRLAW_OBS_DISABLED
  return false;
#else
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = ReadEnabledFromEnv();
    // Last writer wins on a first-use race; every contender computed the
    // same value from the same environment.
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
#endif
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  return bucket < kNumBuckets
             ? buckets_[bucket].load(std::memory_order_relaxed)
             : 0;
}

size_t Histogram::BucketOf(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry.

/// Probe storage. std::map keeps export iteration sorted by name with
/// no extra sort pass; unique_ptr keeps probe addresses stable across
/// rehash-free inserts, so callers may cache the raw pointers.
struct Registry::Impl {
  Mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      FAIRLAW_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      FAIRLAW_GUARDED_BY(mu);
  std::map<std::string, SpanStat, std::less<>> spans FAIRLAW_GUARDED_BY(mu);
};

Registry& Registry::Global() {
  static Registry* global = new Registry;  // leaked: see header
  return *global;
}

Registry::Impl* Registry::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Impl* fresh = new Impl;
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // lost the race; `existing` holds the winner
  return existing;
}

Counter* Registry::GetCounter(std::string_view name) {
  Impl* state = impl();
  MutexLock lock(state->mu);
  auto it = state->counters.find(name);
  if (it == state->counters.end()) {
    it = state->counters
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  Impl* state = impl();
  MutexLock lock(state->mu);
  auto it = state->histograms.find(name);
  if (it == state->histograms.end()) {
    it = state->histograms
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return it->second.get();
}

void Registry::MergeSpan(std::string_view path, uint64_t count,
                         uint64_t total_ns) {
  Impl* state = impl();
  MutexLock lock(state->mu);
  auto it = state->spans.find(path);
  if (it == state->spans.end()) {
    it = state->spans.emplace(std::string(path), SpanStat{}).first;
  }
  it->second.count += count;
  it->second.total_ns += total_ns;
}

// ---------------------------------------------------------------------------
// Per-thread span aggregation.

namespace {

/// One thread's span aggregate plus its active-span path. The map
/// flushes into the global registry when the thread exits, so by the
/// time an audit path exports (after its ThreadPool has been joined and
/// destroyed) every worker's spans are merged.
struct ThreadSpans {
  std::string current_path;
  std::map<std::string, SpanStat, std::less<>> stats;

  ~ThreadSpans() { Flush(); }

  void Flush() {
    for (const auto& [path, stat] : stats) {
      Registry::Global().MergeSpan(path, stat.count, stat.total_ns);
    }
    stats.clear();
  }
};

ThreadSpans& LocalSpans() {
  thread_local ThreadSpans spans;
  return spans;
}

}  // namespace

std::string CurrentPath() { return LocalSpans().current_path; }

void TraceSpan::Open(std::string_view name, std::string_view parent_path) {
  if (!Enabled()) return;
  ThreadSpans& local = LocalSpans();
  parent_ = local.current_path;
  if (parent_path.empty()) {
    path_ = std::string(name);
  } else {
    path_.reserve(parent_path.size() + 1 + name.size());
    path_.append(parent_path);
    path_.push_back('/');
    path_.append(name);
  }
  local.current_path = path_;
  start_ns_ = MonotonicNowNs();
}

TraceSpan::TraceSpan(std::string_view name) {
  Open(name, LocalSpans().current_path);
}

TraceSpan::TraceSpan(std::string_view name, std::string_view parent_path) {
  Open(name, parent_path);
}

TraceSpan::~TraceSpan() {
  if (path_.empty()) return;  // disabled at construction
  const uint64_t elapsed = MonotonicNowNs() - start_ns_;
  ThreadSpans& local = LocalSpans();
  SpanStat& stat = local.stats[path_];
  ++stat.count;
  stat.total_ns += elapsed;
  local.current_path = parent_;
}

// ---------------------------------------------------------------------------
// Export / reset.

std::string Registry::ExportJson(const ExportOptions& options) {
  LocalSpans().Flush();

  // Snapshot under the lock, render outside it: formatting is O(probes)
  // worth of allocation and must not serialize other threads' probe
  // registrations (detcheck rule lock-expensive). The probe values are
  // relaxed atomics, so reading them inside the critical section costs a
  // load each; the std::map iteration order keeps the snapshot (and thus
  // the export) sorted by name with no extra sort pass.
  struct CounterRow {
    std::string name;
    uint64_t value;
  };
  struct HistogramRow {
    std::string name;
    std::array<uint64_t, Histogram::kNumBuckets> buckets;
    uint64_t sum;
  };
  struct SpanRow {
    std::string path;
    SpanStat stat;
  };
  std::vector<CounterRow> counters;
  std::vector<HistogramRow> histograms;
  std::vector<SpanRow> spans;
  Impl* state = impl();
  {
    MutexLock lock(state->mu);
    counters.reserve(state->counters.size());
    for (const auto& [name, counter] : state->counters) {
      counters.push_back(CounterRow{name, counter->Value()});
    }
    histograms.reserve(state->histograms.size());
    for (const auto& [name, histogram] : state->histograms) {
      HistogramRow row;
      row.name = name;
      row.sum = histogram->Sum();
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        row.buckets[b] = histogram->BucketCount(b);
      }
      histograms.push_back(std::move(row));
    }
    spans.reserve(state->spans.size());
    for (const auto& [path, stat] : state->spans) {
      spans.push_back(SpanRow{path, stat});
    }
  }

  std::string out = "{\"fairlaw_obs_version\":1,\"enabled\":";
  out += Enabled() ? "true" : "false";

  out += ",\"counters\":[";
  bool first = true;
  for (const CounterRow& row : counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscapeName(row.name) +
           "\",\"value\":" + std::to_string(row.value) + "}";
  }
  out += "]";

  out += ",\"histograms\":[";
  first = true;
  for (const HistogramRow& row : histograms) {
    uint64_t total = 0;
    for (const uint64_t bucket_count : row.buckets) total += bucket_count;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscapeName(row.name) +
           "\",\"count\":" + std::to_string(total) +
           ",\"sum\":" + std::to_string(row.sum) + ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t bucket_count = row.buckets[b];
      if (bucket_count == 0) continue;  // sparse: zero buckets are implied
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "{\"le\":" + std::to_string(Histogram::BucketUpperBound(b)) +
             ",\"count\":" + std::to_string(bucket_count) + "}";
    }
    out += "]}";
  }
  out += "]";

  out += ",\"spans\":[";
  first = true;
  for (const SpanRow& row : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"path\":\"" + JsonEscapeName(row.path) +
           "\",\"count\":" + std::to_string(row.stat.count);
    if (options.include_timings) {
      out += ",\"total_ns\":" + std::to_string(row.stat.total_ns);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void Registry::Reset() {
  LocalSpans().stats.clear();
  Impl* state = impl();
  MutexLock lock(state->mu);
  for (const auto& [name, counter] : state->counters) counter->Reset();
  for (const auto& [name, histogram] : state->histograms) histogram->Reset();
  state->spans.clear();
}

// ---------------------------------------------------------------------------
// Free-function conveniences.

Counter* GetCounter(std::string_view name) {
  return Registry::Global().GetCounter(name);
}

Histogram* GetHistogram(std::string_view name) {
  return Registry::Global().GetHistogram(name);
}

std::string ExportJson(const ExportOptions& options) {
  return Registry::Global().ExportJson(options);
}

void ResetAll() { Registry::Global().Reset(); }

}  // namespace fairlaw::obs
