#ifndef FAIRLAW_OBS_OBS_H_
#define FAIRLAW_OBS_OBS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

/// fairlaw::obs — allocation-light observability for the audit stack.
///
/// Three probe kinds, all registered in a process-wide Registry:
///
///   * Counter    — monotonically increasing uint64 (rows audited,
///                  popcount kernel calls, pruned subtrees, ...).
///   * Histogram  — fixed log2 buckets over uint64 values (bootstrap
///                  replicate counts, batch sizes, ...). No dynamic
///                  bucket allocation; bucket b holds values whose
///                  bit width is b (bucket 0 holds the value 0).
///   * TraceSpan  — RAII wall-time span with parent/child nesting.
///                  Spans aggregate per thread (no lock on the hot
///                  path) and merge into the registry keyed by their
///                  '/'-joined path; the export sorts by path, never
///                  by completion order.
///
/// Determinism contract: ExportJson() is byte-identical for any
/// `num_threads` on the same input. Counts, histogram contents, and
/// span paths depend only on the work performed; wall-clock totals do
/// not, so they are excluded unless ExportOptions.include_timings is
/// set (a profiling mode, documented as non-reproducible).
///
/// Kill switch: configure with -DFAIRLAW_OBS=OFF to compile every probe
/// to a no-op, or set the environment variable FAIRLAW_OBS=off (also
/// "0"/"false") to disable at startup; SetEnabled() overrides at
/// runtime. Disabled probes never touch the clock.
///
/// This module sits at rank 1 of the layering DAG (next to stats): it
/// depends only on base/, so data, stats, metrics, audit, mitigation,
/// and the tools can all report through it.
namespace fairlaw::obs {

/// True when probes are live (compile switch on, not disabled by the
/// FAIRLAW_OBS environment variable or SetEnabled(false)).
bool Enabled();

/// Runtime override of the kill switch (benchmarks measure probe
/// overhead by flipping this; tests isolate themselves with it).
void SetEnabled(bool enabled);

/// Monotonic nanosecond clock. The one sanctioned timing source:
/// fairlaw_lint bans raw std::chrono::steady_clock outside src/obs/ so
/// every measurement flows through the same clock and kill switch.
uint64_t MonotonicNowNs();

/// Monotonically increasing counter. Increment is one relaxed atomic
/// add; cross-thread increments commute, so totals are deterministic
/// for any schedule.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  /// Adds `delta`; no-op when disabled.
  void Increment(uint64_t delta = 1) {
    if (Enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket log2 histogram: bucket 0 counts the value 0, bucket b
/// (1..64) counts values in [2^(b-1), 2^b - 1]. Recording is two
/// relaxed atomic adds; no allocation ever.
class Histogram {
 public:
  /// Bucket 0 plus one bucket per possible bit width.
  static constexpr size_t kNumBuckets = 65;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }

  /// Records one observation; no-op when disabled.
  void Record(uint64_t value);

  /// Total observations / sum of observed values.
  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Observations in `bucket` (< kNumBuckets).
  uint64_t BucketCount(size_t bucket) const;

  /// The bucket `value` lands in: 0 for 0, else std::bit_width(value).
  static size_t BucketOf(uint64_t value);

  /// Largest value bucket `b` admits (0, 1, 3, 7, ..., 2^64-1).
  static uint64_t BucketUpperBound(size_t bucket);

  void Reset();

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets]{};
};

/// Export controls. The default export carries only schedule-invariant
/// data; include_timings adds per-span "total_ns", which varies run to
/// run and must not be diffed or golden-tested.
struct ExportOptions {
  bool include_timings = false;
};

/// Process-wide probe registry. Lookup takes a mutex (probes cache the
/// returned pointer or look up once per run, not per row); Counter and
/// Histogram operations are lock-free.
class Registry {
 public:
  /// The global instance (leaked singleton: safe from thread-exit
  /// destructors running during process teardown).
  static Registry& Global();

  /// Returns the named probe, creating it on first use. Pointers stay
  /// valid for the process lifetime.
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Folds `count` completions totalling `total_ns` into the span stats
  /// for `path`. Called by the per-thread span aggregator on thread
  /// exit and on export; rarely needed directly.
  void MergeSpan(std::string_view path, uint64_t count, uint64_t total_ns);

  /// Serializes every probe as one JSON object, keys sorted by probe
  /// name / span path. Flushes the calling thread's span aggregate
  /// first; spans recorded on other still-live threads are not visible
  /// until those threads exit (the audit paths join their pools before
  /// exporting).
  std::string ExportJson(const ExportOptions& options = {});

  /// Zeroes every counter and histogram and drops all span stats
  /// (including the calling thread's unflushed aggregate).
  void Reset();

 private:
  Registry() = default;
  struct Impl;
  Impl* impl();  // lazily built so the ctor stays trivial
  std::atomic<Impl*> impl_{nullptr};
};

/// Registry::Global() conveniences — the spelling instrumentation sites
/// use.
Counter* GetCounter(std::string_view name);
Histogram* GetHistogram(std::string_view name);
std::string ExportJson(const ExportOptions& options = {});
void ResetAll();

/// Path of the innermost active span on the calling thread ("" at top
/// level). Capture it before handing work to a pool, then rebuild the
/// nesting on the worker with TraceSpan(name, parent_path) — that keeps
/// span paths identical whether the work ran inline or on a worker.
std::string CurrentPath();

/// RAII wall-time span. Nested spans join their names with '/':
///
///   obs::TraceSpan run("run_audit");          // path "run_audit"
///   obs::TraceSpan m("metric/dp");            // "run_audit/metric/dp"
///
/// The destructor folds (count += 1, total_ns += elapsed) into the
/// calling thread's aggregate; per-thread aggregates merge into the
/// Registry keyed by path, so the export never depends on completion
/// order. When obs is disabled construction and destruction do nothing
/// (no clock read, no allocation).
class TraceSpan {
 public:
  /// Nests under the calling thread's current span.
  explicit TraceSpan(std::string_view name);

  /// Nests under `parent_path` (from CurrentPath()) regardless of the
  /// calling thread — the cross-thread nesting constructor.
  TraceSpan(std::string_view name, std::string_view parent_path);

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Open(std::string_view name, std::string_view parent_path);

  std::string path_;    // empty when the span is disabled
  std::string parent_;  // thread's current path at construction
  uint64_t start_ns_ = 0;
};

}  // namespace fairlaw::obs

#endif  // FAIRLAW_OBS_OBS_H_
