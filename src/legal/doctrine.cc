#include "legal/doctrine.h"

namespace fairlaw::legal {

std::string_view JurisdictionToString(Jurisdiction jurisdiction) {
  switch (jurisdiction) {
    case Jurisdiction::kEu:
      return "EU";
    case Jurisdiction::kUs:
      return "US";
  }
  return "unknown";
}

const std::vector<DoctrineInfo>& AllDoctrines() {
  static const std::vector<DoctrineInfo>& doctrines =
      *new std::vector<DoctrineInfo>{
          {Doctrine::kEuDirectDiscrimination, Jurisdiction::kEu,
           "direct discrimination", /*requires_intent=*/false,
           /*justification_available=*/false,
           "A person is treated less favorably based on a protected "
           "attribute in a protected sector; grounded in treating like "
           "cases alike (formal equality / merit principle).",
           "ECHR Art. 14; Protocol 12; EU Charter Art. 21; Directives "
           "2000/43/EC, 2000/78/EC, 2004/113/EC, 2006/54/EC"},
          {Doctrine::kEuIndirectDiscrimination, Jurisdiction::kEu,
           "indirect discrimination", /*requires_intent=*/false,
           /*justification_available=*/true,
           "An ostensibly neutral provision or practice, universally "
           "applied, disproportionately disadvantages persons with a "
           "protected characteristic; justifiable only for a legitimate "
           "aim passing the proportionality test.",
           "Directives 2000/43/EC Art. 2(2)(b) and parallel provisions"},
          {Doctrine::kUsDisparateTreatment, Jurisdiction::kUs,
           "disparate treatment", /*requires_intent=*/true,
           /*justification_available=*/false,
           "Intentional differential treatment based on a protected "
           "characteristic; the plaintiff must show the characteristic "
           "was a motivating factor or but-for cause of the adverse "
           "decision.",
           "Title VII of the Civil Rights Act of 1964"},
          {Doctrine::kUsDisparateImpact, Jurisdiction::kUs,
           "disparate impact", /*requires_intent=*/false,
           /*justification_available=*/true,
           "A facially neutral practice disproportionately burdens a "
           "protected class; no intent required; analyzed under "
           "burden-shifting (prima facie impact, business necessity, "
           "less discriminatory alternative).",
           "Title VII; Griggs v. Duke Power; EEOC Uniform Guidelines "
           "(four-fifths rule)"},
      };
  return doctrines;
}

Result<DoctrineInfo> GetDoctrine(Doctrine doctrine) {
  for (const DoctrineInfo& info : AllDoctrines()) {
    if (info.doctrine == doctrine) return info;
  }
  return Status::NotFound("unknown doctrine");
}

std::string_view EqualityConceptToString(EqualityConcept equality) {
  switch (equality) {
    case EqualityConcept::kEqualTreatment:
      return "equal treatment";
    case EqualityConcept::kEqualOutcome:
      return "equal outcome";
    case EqualityConcept::kSubstantive:
      return "substantive equality";
  }
  return "unknown";
}

Result<EqualityConcept> ConceptForMetric(const std::string& metric_name) {
  // §IV-A: definitions A, B, E, F align with equal outcome; C, D with
  // equal treatment; G (counterfactual fairness) is the middle ground.
  if (metric_name == "demographic_parity" ||
      metric_name == "conditional_statistical_parity" ||
      metric_name == "demographic_disparity" ||
      metric_name == "conditional_demographic_disparity" ||
      metric_name == "disparate_impact_ratio") {
    return EqualityConcept::kEqualOutcome;
  }
  if (metric_name == "equal_opportunity" || metric_name == "equalized_odds" ||
      metric_name == "predictive_parity" ||
      metric_name == "accuracy_equality" ||
      metric_name == "calibration_within_groups") {
    return EqualityConcept::kEqualTreatment;
  }
  if (metric_name == "counterfactual_fairness") {
    return EqualityConcept::kSubstantive;
  }
  return Status::NotFound("no equality-concept mapping for metric '" +
                          metric_name + "'");
}

Result<Doctrine> DoctrineForMetric(const std::string& metric_name,
                                   Jurisdiction jurisdiction) {
  if (metric_name == "counterfactual_fairness") {
    // A flipped decision when only the protected attribute changes is the
    // algorithmic analogue of treating like cases differently.
    return jurisdiction == Jurisdiction::kEu
               ? Doctrine::kEuDirectDiscrimination
               : Doctrine::kUsDisparateTreatment;
  }
  FAIRLAW_RETURN_NOT_OK(ConceptForMetric(metric_name).status());
  // Group-rate gaps from facially neutral models evidence impact-style
  // doctrines.
  return jurisdiction == Jurisdiction::kEu
             ? Doctrine::kEuIndirectDiscrimination
             : Doctrine::kUsDisparateImpact;
}

}  // namespace fairlaw::legal
