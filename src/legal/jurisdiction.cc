#include "legal/jurisdiction.h"

#include <algorithm>

namespace fairlaw::legal {

const std::vector<Statute>& UsStatutes() {
  static const std::vector<Statute>& statutes = *new std::vector<Statute>{
      {"Title VII of the Civil Rights Act", Jurisdiction::kUs, 1964,
       {"employment"},
       {"race", "color", "religion", "national_origin", "sex"},
       "Prohibits employment discrimination (disparate treatment and "
       "disparate impact) and retaliation against reporters."},
      {"Equal Credit Opportunity Act (ECOA)", Jurisdiction::kUs, 1974,
       {"credit"},
       {"race", "color", "religion", "national_origin", "sex", "age"},
       "Prevents discrimination in any credit transaction, including "
       "business credit."},
      {"Fair Housing Act (Title VIII)", Jurisdiction::kUs, 1968,
       {"housing"},
       {"race", "color", "religion", "sex", "familial_status",
        "national_origin", "disability"},
       "Prohibits discrimination in housing."},
      {"Title VI of the Civil Rights Act", Jurisdiction::kUs, 1964,
       {"federally_assisted_programs"},
       {"race", "color", "national_origin"},
       "No exclusion from federally assisted programs on protected "
       "grounds."},
      {"Pregnancy Discrimination Act (PDA)", Jurisdiction::kUs, 1978,
       {"employment"},
       {"pregnancy", "sex"},
       "Amends Title VII: pregnancy, childbirth and related conditions."},
      {"Equal Pay Act (EPA)", Jurisdiction::kUs, 1963,
       {"employment"},
       {"sex"},
       "Prohibits sex-based wage discrimination for equal work."},
      {"Age Discrimination in Employment Act (ADEA)", Jurisdiction::kUs,
       1967,
       {"employment"},
       {"age"},
       "Protects individuals aged 40 or older in employment."},
      {"Americans with Disabilities Act, Title I (ADA)", Jurisdiction::kUs,
       1990,
       {"employment"},
       {"disability"},
       "Prohibits discrimination against qualified individuals with "
       "disabilities."},
      {"Civil Rights Act of 1991, Sections 102-103", Jurisdiction::kUs,
       1991,
       {"employment"},
       {"race", "color", "religion", "national_origin", "sex",
        "disability"},
       "Adds jury trials and compensatory/punitive damages for "
       "intentional discrimination."},
      {"Rehabilitation Act, Sections 501 and 505", Jurisdiction::kUs, 1973,
       {"federal_employment"},
       {"disability"},
       "Disability protection and reasonable accommodation in the "
       "federal government."},
      {"Genetic Information Nondiscrimination Act (GINA)",
       Jurisdiction::kUs, 2008,
       {"employment", "health_insurance"},
       {"genetic_information"},
       "Protects against discrimination based on genetic information."},
      {"Pregnant Workers Fairness Act (PWFA)", Jurisdiction::kUs, 2022,
       {"employment"},
       {"pregnancy"},
       "Mandates reasonable accommodation for limitations related to "
       "pregnancy and childbirth."},
      {"Immigration and Nationality Act (INA)", Jurisdiction::kUs, 1965,
       {"immigration"},
       {"national_origin"},
       "Abolished national-origin quotas; preference system for "
       "relatives, skilled professionals, refugees."},
  };
  return statutes;
}

const std::vector<Statute>& EuInstruments() {
  static const std::vector<Statute>& statutes = *new std::vector<Statute>{
      {"ECHR Article 14", Jurisdiction::kEu, 1950,
       {"general"},
       {"sex", "race", "color", "language", "religion", "political_opinion",
        "national_origin", "minority_association", "property", "birth"},
       "Prohibition of discrimination in the enjoyment of Convention "
       "rights."},
      {"ECHR Protocol 12", Jurisdiction::kEu, 2000,
       {"general"},
       {"sex", "race", "color", "language", "religion", "political_opinion",
        "national_origin", "minority_association", "property", "birth"},
       "General prohibition of discrimination in any right set forth by "
       "law."},
      {"European Social Charter (revised), Article E", Jurisdiction::kEu,
       1996,
       {"general"},
       {"race", "color", "sex", "language", "religion", "political_opinion",
        "national_origin", "health", "minority_association", "birth"},
       "Non-discrimination in the enjoyment of Charter rights."},
      {"EU Charter of Fundamental Rights, Article 21", Jurisdiction::kEu,
       2000,
       {"general"},
       {"sex", "race", "color", "ethnic_origin", "genetic_information",
        "language", "religion", "political_opinion", "minority_association",
        "property", "birth", "disability", "age", "sexual_orientation"},
       "Any discrimination based on any ground shall be prohibited; Arts. "
       "20, 22, 23 add equality before the law, diversity, gender "
       "equality."},
      {"Treaty on European Union, Articles 2-3", Jurisdiction::kEu, 1992,
       {"general"},
       {"sex"},
       "Union founded on equality; shall combat social exclusion and "
       "discrimination."},
      {"Council Directive 2000/43/EC (Racial Equality)", Jurisdiction::kEu,
       2000,
       {"employment", "goods_and_services", "education",
        "social_protection"},
       {"race", "ethnic_origin"},
       "Equal treatment irrespective of racial or ethnic origin."},
      {"Council Directive 2000/78/EC (Employment Framework)",
       Jurisdiction::kEu, 2000,
       {"employment"},
       {"religion", "disability", "age", "sexual_orientation"},
       "General framework for equal treatment in employment and "
       "occupation."},
      {"Council Directive 2004/113/EC (Gender Goods & Services)",
       Jurisdiction::kEu, 2004,
       {"goods_and_services"},
       {"sex"},
       "Equal treatment of men and women in access to and supply of goods "
       "and services."},
      {"Directive 2006/54/EC (Gender Employment, recast)",
       Jurisdiction::kEu, 2006,
       {"employment"},
       {"sex"},
       "Equal opportunities and equal treatment of men and women in "
       "employment and occupation."},
  };
  return statutes;
}

const std::vector<Statute>& StatutesOf(Jurisdiction jurisdiction) {
  return jurisdiction == Jurisdiction::kUs ? UsStatutes() : EuInstruments();
}

std::vector<const Statute*> StatutesProtecting(const std::string& attribute,
                                               Jurisdiction jurisdiction) {
  std::vector<const Statute*> matches;
  for (const Statute& statute : StatutesOf(jurisdiction)) {
    if (std::find(statute.protected_attributes.begin(),
                  statute.protected_attributes.end(),
                  attribute) != statute.protected_attributes.end()) {
      matches.push_back(&statute);
    }
  }
  return matches;
}

std::vector<const Statute*> StatutesForSector(const std::string& sector,
                                              Jurisdiction jurisdiction) {
  std::vector<const Statute*> matches;
  for (const Statute& statute : StatutesOf(jurisdiction)) {
    if (std::find(statute.sectors.begin(), statute.sectors.end(), sector) !=
            statute.sectors.end() ||
        std::find(statute.sectors.begin(), statute.sectors.end(),
                  "general") != statute.sectors.end()) {
      matches.push_back(&statute);
    }
  }
  return matches;
}

bool IsProtectedAttribute(const std::string& attribute,
                          Jurisdiction jurisdiction) {
  return !StatutesProtecting(attribute, jurisdiction).empty();
}

std::vector<std::string> ProtectedAttributesOf(Jurisdiction jurisdiction) {
  std::vector<std::string> attributes;
  for (const Statute& statute : StatutesOf(jurisdiction)) {
    attributes.insert(attributes.end(),
                      statute.protected_attributes.begin(),
                      statute.protected_attributes.end());
  }
  std::sort(attributes.begin(), attributes.end());
  attributes.erase(std::unique(attributes.begin(), attributes.end()),
                   attributes.end());
  return attributes;
}

}  // namespace fairlaw::legal
