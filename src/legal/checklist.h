#ifndef FAIRLAW_LEGAL_CHECKLIST_H_
#define FAIRLAW_LEGAL_CHECKLIST_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "legal/doctrine.h"

namespace fairlaw::legal {

// The §IV selection-criteria checklist, machine-readable: answer the
// questions the paper says must be asked before picking a fairness
// definition, get back a ranked metric recommendation plus the audits
// and warnings the answers trigger.

/// Answers to the §IV questions for one use case.
struct UseCaseProfile {
  std::string use_case;  // e.g. "hiring recommendation system"
  Jurisdiction jurisdiction = Jurisdiction::kEu;
  /// §IV-A: is structural/historical bias recognized in this domain?
  bool structural_bias_recognized = false;
  /// §IV-A: do directives / policy impose positive action (quotas)?
  bool positive_action_mandated = false;
  /// Are the training labels trustworthy ground truth, or do they encode
  /// historical decisions (label bias)? Equal-treatment metrics
  /// conditioned on Y are only meaningful when labels are reliable.
  bool labels_reliable = false;
  /// §IV-B: are proxy variables for protected attributes suspected?
  bool proxies_suspected = false;
  /// §IV-C: more than one sensitive attribute in play?
  bool multiple_sensitive_attributes = false;
  /// §IV-D: will the system's decisions feed back into future training
  /// data or applicant behavior?
  bool feedback_risk = false;
  /// §IV-E: could the model owner manipulate audits?
  bool adversarial_risk = false;
  /// §IV-F: sample sizes.
  size_t sample_size = 0;
  size_t smallest_group_size = 0;
  /// §III-G: is a defensible causal model of the domain available?
  bool causal_model_available = false;
};

/// One recommended metric with its rationale.
struct Recommendation {
  std::string metric;     // fairlaw metric name
  int priority = 0;       // 1 = strongest recommendation
  std::string rationale;  // which profile answers drove it
};

struct ChecklistReport {
  std::vector<Recommendation> metrics;   // sorted by priority
  std::vector<std::string> required_audits;  // audits the profile mandates
  std::vector<std::string> warnings;
  std::string Render() const;
};

/// Evaluates the checklist.
FAIRLAW_NODISCARD Result<ChecklistReport> EvaluateChecklist(const UseCaseProfile& profile);

}  // namespace fairlaw::legal

#endif  // FAIRLAW_LEGAL_CHECKLIST_H_
