#include "legal/four_fifths.h"

#include "base/string_util.h"

namespace fairlaw::legal {

Result<FourFifthsResult> FourFifthsTest(const metrics::MetricInput& input,
                                        double threshold, double alpha) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::Invalid("FourFifthsTest: threshold must lie in (0,1]");
  }
  FAIRLAW_ASSIGN_OR_RETURN(
      std::vector<metrics::GroupStats> stats,
      metrics::ComputeGroupStats(input, /*with_labels=*/false));
  if (stats.size() < 2) {
    return Status::Invalid("FourFifthsTest: need >= 2 groups");
  }

  const metrics::GroupStats* reference = &stats[0];
  for (const metrics::GroupStats& gs : stats) {
    if (gs.count == 0) {
      // ComputeGroupStats only materializes observed groups, so this is a
      // library invariant, not user input.
      return Status::Internal("FourFifthsTest: empty group '" + gs.group +
                              "' in group stats");
    }
    if (gs.selection_rate > reference->selection_rate) reference = &gs;
  }
  if (reference->selection_rate <= 0.0) {
    // Every group selects nobody: the impact ratio 0/0 is undefined and a
    // silent 1.0 would read as a clean screen in a legal report.
    return Status::FailedPrecondition(
        "FourFifthsTest: no group has a positive selection rate; impact "
        "ratios are undefined");
  }

  FourFifthsResult result;
  result.reference_group = reference->group;
  result.reference_rate = reference->selection_rate;
  result.threshold = threshold;

  std::string failing;
  for (const metrics::GroupStats& gs : stats) {
    FourFifthsGroup group;
    group.group = gs.group;
    group.count = gs.count;
    group.selected = gs.positive_predictions;
    group.selection_rate = gs.selection_rate;
    group.impact_ratio = gs.selection_rate / result.reference_rate;
    group.below_threshold = group.impact_ratio < threshold;
    if (gs.group != result.reference_group) {
      FAIRLAW_ASSIGN_OR_RETURN(
          group.significance,
          stats::TwoProportionZTest(gs.positive_predictions, gs.count,
                                    reference->positive_predictions,
                                    reference->count, alpha));
    }
    if (group.below_threshold) {
      result.passed = false;
      if (group.significance.significant) {
        result.adverse_impact_indicated = true;
      }
      if (!failing.empty()) failing += ", ";
      failing += gs.group;
    }
    result.groups.push_back(std::move(group));
  }
  if (!result.passed) {
    result.detail = "groups below the " + FormatDouble(threshold, 2) +
                    " ratio vs '" + result.reference_group + "': " + failing;
  }
  return result;
}

std::string RenderFourFifths(const FourFifthsResult& result) {
  std::string out = "four-fifths rule (threshold " +
                    FormatDouble(result.threshold, 2) + ", reference '" +
                    result.reference_group + "' at rate " +
                    FormatDouble(result.reference_rate, 4) + "): " +
                    (result.passed ? "PASSED" : "FAILED") + "\n";
  for (const FourFifthsGroup& group : result.groups) {
    out += "  " + group.group + ": rate " +
           FormatDouble(group.selection_rate, 4) + " ratio " +
           FormatDouble(group.impact_ratio, 4);
    if (group.group != result.reference_group) {
      out += " p=" + FormatDouble(group.significance.p_value, 4);
      out += group.significance.significant ? " (significant)"
                                            : " (not significant)";
    }
    if (group.below_threshold) out += "  <-- below threshold";
    out += "\n";
  }
  if (result.adverse_impact_indicated) {
    out += "  adverse impact indicated: ratio failure with statistical "
           "significance\n";
  }
  return out;
}

}  // namespace fairlaw::legal
