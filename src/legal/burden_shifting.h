#ifndef FAIRLAW_LEGAL_BURDEN_SHIFTING_H_
#define FAIRLAW_LEGAL_BURDEN_SHIFTING_H_

#include <string>

#include "base/result.h"
#include "legal/four_fifths.h"
#include "metrics/fairness_metric.h"

namespace fairlaw::legal {

// US disparate-impact burden-shifting pipeline (§II-B(4)):
//   1. Plaintiff: prima facie showing of disproportionate adverse impact
//      (here: the four-fifths screen with statistical significance).
//   2. Defendant: the practice is job-related and consistent with
//      business necessity.
//   3. Plaintiff: a less discriminatory alternative practice exists that
//      serves the same interest.
// Liability attaches when stage 1 succeeds and the defense chain fails.

/// Assessor-supplied facts for stages 2 and 3.
struct BurdenShiftingFacts {
  bool business_necessity_shown = false;
  std::string necessity_justification;
  bool less_discriminatory_alternative_exists = false;
  std::string alternative;
};

/// Stage at which the analysis resolved.
enum class BurdenStage {
  kNoPrimaFacie,           // stage 1 failed: no disparate impact shown
  kBusinessNecessityFails, // stage 2 failed: liability
  kAlternativeExists,      // stage 3: plaintiff rebuts -> liability
  kDefenseHolds,           // necessity shown, no alternative -> no liability
};

std::string_view BurdenStageToString(BurdenStage stage);

struct BurdenShiftingResult {
  FourFifthsResult prima_facie;
  BurdenStage stage = BurdenStage::kNoPrimaFacie;
  bool liability = false;
  std::string reasoning;
};

/// Runs the pipeline over the observed outcomes plus the qualitative
/// facts. The prima facie stage requires both a four-fifths ratio
/// failure and statistical significance.
FAIRLAW_NODISCARD Result<BurdenShiftingResult> RunBurdenShifting(
    const metrics::MetricInput& outcomes, const BurdenShiftingFacts& facts,
    double threshold = 0.8, double alpha = 0.05);

}  // namespace fairlaw::legal

#endif  // FAIRLAW_LEGAL_BURDEN_SHIFTING_H_
