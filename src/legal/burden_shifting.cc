#include "legal/burden_shifting.h"

namespace fairlaw::legal {

std::string_view BurdenStageToString(BurdenStage stage) {
  switch (stage) {
    case BurdenStage::kNoPrimaFacie:
      return "no prima facie case";
    case BurdenStage::kBusinessNecessityFails:
      return "business-necessity defense fails";
    case BurdenStage::kAlternativeExists:
      return "less discriminatory alternative exists";
    case BurdenStage::kDefenseHolds:
      return "defense holds";
  }
  return "unknown";
}

Result<BurdenShiftingResult> RunBurdenShifting(
    const metrics::MetricInput& outcomes, const BurdenShiftingFacts& facts,
    double threshold, double alpha) {
  BurdenShiftingResult result;
  FAIRLAW_ASSIGN_OR_RETURN(result.prima_facie,
                           FourFifthsTest(outcomes, threshold, alpha));

  // Stage 1: prima facie adverse impact (ratio failure + significance).
  if (!result.prima_facie.adverse_impact_indicated) {
    result.stage = BurdenStage::kNoPrimaFacie;
    result.liability = false;
    result.reasoning =
        result.prima_facie.passed
            ? "All impact ratios are at or above the threshold; no prima "
              "facie case of disparate impact."
            : "Some ratios fall below the threshold but the differences "
              "are not statistically significant; the prima facie showing "
              "fails.";
    return result;
  }

  // Stage 2: business necessity.
  if (!facts.business_necessity_shown) {
    result.stage = BurdenStage::kBusinessNecessityFails;
    result.liability = true;
    result.reasoning =
        "Prima facie disparate impact established and the defendant has "
        "not shown the practice to be job-related and consistent with "
        "business necessity: liability.";
    return result;
  }

  // Stage 3: less discriminatory alternative.
  if (facts.less_discriminatory_alternative_exists) {
    result.stage = BurdenStage::kAlternativeExists;
    result.liability = true;
    result.reasoning =
        "Business necessity was shown ('" + facts.necessity_justification +
        "') but a less discriminatory alternative serving the same "
        "interest exists ('" + facts.alternative + "'): liability.";
    return result;
  }

  result.stage = BurdenStage::kDefenseHolds;
  result.liability = false;
  result.reasoning =
      "Prima facie impact established, but the practice is justified by "
      "business necessity ('" + facts.necessity_justification +
      "') and no less discriminatory alternative was identified: no "
      "liability.";
  return result;
}

}  // namespace fairlaw::legal
