#include "legal/report.h"

#include "legal/jurisdiction.h"

namespace fairlaw::legal {

Result<std::string> RenderComplianceReport(
    const ComplianceReportInputs& inputs) {
  if (inputs.system_name.empty()) {
    return Status::Invalid("RenderComplianceReport: empty system name");
  }
  std::string out;
  out += "==========================================================\n";
  out += " FAIRNESS COMPLIANCE REPORT: " + inputs.system_name + "\n";
  out += " jurisdiction: " +
         std::string(JurisdictionToString(inputs.jurisdiction)) +
         ", sector: " + inputs.sector + ", protected attribute: " +
         inputs.protected_attribute + "\n";
  out += "==========================================================\n\n";

  // Statutory frame.
  out += "--- statutory frame ---\n";
  auto protecting =
      StatutesProtecting(inputs.protected_attribute, inputs.jurisdiction);
  if (protecting.empty()) {
    out += "No instrument of this jurisdiction names '" +
           inputs.protected_attribute +
           "' — verify the canonical attribute token.\n";
  } else {
    for (const Statute* statute : protecting) {
      out += "* " + statute->name + " (" + std::to_string(statute->year) +
             "): " + statute->summary + "\n";
    }
  }
  out += "\n";

  // Metric results with doctrine mapping.
  out += "--- audited fairness definitions ---\n";
  for (const metrics::MetricReport& report : inputs.audit.reports) {
    out += metrics::RenderReport(report);
    Result<EqualityConcept> equality = ConceptForMetric(report.metric_name);
    if (equality.ok()) {
      out += "  equality concept: " +
             std::string(EqualityConceptToString(*equality)) + "\n";
    }
    if (!report.satisfied) {
      Result<Doctrine> doctrine =
          DoctrineForMetric(report.metric_name, inputs.jurisdiction);
      if (doctrine.ok()) {
        FAIRLAW_ASSIGN_OR_RETURN(DoctrineInfo info, GetDoctrine(*doctrine));
        out += "  legal exposure: evidence relevant to " + info.name +
               " (" + info.legal_basis + ")" +
               (info.justification_available
                    ? "; a justification defense is available"
                    : "; no justification defense") +
               "\n";
      }
    }
  }
  for (const metrics::ConditionalReport& report :
       inputs.audit.conditional_reports) {
    out += metrics::RenderConditionalReport(report);
  }
  out += "\n";

  if (inputs.four_fifths.has_value()) {
    out += "--- EEOC four-fifths screen ---\n";
    out += RenderFourFifths(*inputs.four_fifths);
    out += "\n";
  }

  if (inputs.checklist.has_value()) {
    out += inputs.checklist->Render();
    out += "\n";
  }

  out += "--- overall ---\n";
  out += inputs.audit.all_satisfied
             ? "All configured fairness definitions are satisfied at the "
               "configured tolerances.\n"
             : "One or more fairness definitions are violated; see the "
               "doctrine mapping above for the legal exposure and "
               "DESIGN.md for the mitigation toolbox.\n";
  return out;
}

}  // namespace fairlaw::legal
