#ifndef FAIRLAW_LEGAL_DOCTRINE_H_
#define FAIRLAW_LEGAL_DOCTRINE_H_

#include <string>
#include <vector>

#include "base/result.h"

namespace fairlaw::legal {

/// Legal system whose anti-discrimination doctrine applies.
enum class Jurisdiction { kEu, kUs };

std::string_view JurisdictionToString(Jurisdiction jurisdiction);

/// The four discrimination doctrines §II of the paper maps out.
enum class Doctrine {
  /// EU: less favorable treatment based on a protected attribute.
  kEuDirectDiscrimination,
  /// EU: neutral provision disproportionately disadvantaging a protected
  /// group; justifiable via the proportionality test.
  kEuIndirectDiscrimination,
  /// US: intentional differential treatment (Title VII); requires
  /// motive ("motivating factor" or "but-for cause").
  kUsDisparateTreatment,
  /// US: neutral practice with disproportionate adverse impact; intent
  /// not required; analyzed under burden shifting.
  kUsDisparateImpact,
};

/// Description of one doctrine.
struct DoctrineInfo {
  Doctrine doctrine;
  Jurisdiction jurisdiction;
  std::string name;
  /// Whether liability requires proof of discriminatory intent.
  bool requires_intent;
  /// Whether a justification defense exists (proportionality / business
  /// necessity).
  bool justification_available;
  std::string description;
  std::string legal_basis;
};

/// All four doctrines with their descriptions.
const std::vector<DoctrineInfo>& AllDoctrines();

/// Looks up one doctrine.
FAIRLAW_NODISCARD Result<DoctrineInfo> GetDoctrine(Doctrine doctrine);

/// Equality concept a fairness definition pursues (§IV-A's distinction).
enum class EqualityConcept {
  /// Same chances given the same merits (formal equality).
  kEqualTreatment,
  /// Proportional outcomes across groups (distributive equality).
  kEqualOutcome,
  /// Equal treatment that accounts for historical bias (the paper's
  /// reading of counterfactual fairness).
  kSubstantive,
};

std::string_view EqualityConceptToString(EqualityConcept equality);

/// Maps a fairlaw metric name to the equality concept it operationalizes,
/// following §IV-A: demographic parity, conditional statistical parity,
/// demographic disparity and conditional demographic disparity align with
/// equal outcome; equal opportunity and equalized odds with equal
/// treatment; counterfactual fairness is the middle ground.
FAIRLAW_NODISCARD Result<EqualityConcept> ConceptForMetric(const std::string& metric_name);

/// The doctrine a metric violation is most probative of, per
/// jurisdiction. Outcome-style gaps evidence indirect discrimination /
/// disparate impact; counterfactual flips (holding all else fixed)
/// evidence direct discrimination / disparate treatment.
FAIRLAW_NODISCARD Result<Doctrine> DoctrineForMetric(const std::string& metric_name,
                                   Jurisdiction jurisdiction);

}  // namespace fairlaw::legal

#endif  // FAIRLAW_LEGAL_DOCTRINE_H_
