#include "legal/checklist.h"

#include <algorithm>

namespace fairlaw::legal {

std::string ChecklistReport::Render() const {
  std::string out = "=== fairness-method selection checklist ===\n";
  out += "recommended definitions (by priority):\n";
  for (const Recommendation& rec : metrics) {
    out += "  " + std::to_string(rec.priority) + ". " + rec.metric + " — " +
           rec.rationale + "\n";
  }
  if (!required_audits.empty()) {
    out += "required audits:\n";
    for (const std::string& audit : required_audits) {
      out += "  - " + audit + "\n";
    }
  }
  if (!warnings.empty()) {
    out += "warnings:\n";
    for (const std::string& warning : warnings) {
      out += "  ! " + warning + "\n";
    }
  }
  return out;
}

Result<ChecklistReport> EvaluateChecklist(const UseCaseProfile& profile) {
  if (profile.sample_size > 0 &&
      profile.smallest_group_size > profile.sample_size) {
    return Status::Invalid("EvaluateChecklist: smallest group exceeds the "
                           "sample size");
  }

  ChecklistReport report;
  int priority = 0;

  // §III-G / §V: counterfactual fairness leads when a causal model
  // exists — the paper calls it expressive enough to represent
  // substantive equality in the spirit of EU law.
  if (profile.causal_model_available) {
    report.metrics.push_back(
        {"counterfactual_fairness", ++priority,
         "a causal model is available; the paper's discussion singles out "
         "counterfactual fairness as the adaptable middle ground between "
         "equal treatment and equal outcome (substantive equality)"});
  }

  // §IV-A: structural bias + positive action -> equal-outcome family.
  if (profile.structural_bias_recognized) {
    report.metrics.push_back(
        {"demographic_parity", ++priority,
         "structural/historical bias is recognized, so equal-outcome "
         "definitions are the appropriate family (§IV-A)"});
    report.metrics.push_back(
        {"conditional_demographic_disparity", ++priority,
         "conditioning on legitimate factors keeps the outcome comparison "
         "meaningful across heterogeneous strata (§III-F; favored for the "
         "EU context by Wachter et al.)"});
    if (profile.positive_action_mandated) {
      report.required_audits.push_back(
          "quota compliance: verify the mitigation::SelectWithQuota shares "
          "against the mandated positive-action quota, and clear the "
          "legal::AssessProportionality test for the measure");
    }
  }

  // Labels reliable -> the Y-conditional (equal treatment) family is
  // meaningful; unreliable labels poison it.
  if (profile.labels_reliable) {
    report.metrics.push_back(
        {"equal_opportunity", ++priority,
         "ground-truth labels are reliable, so conditioning on actual "
         "qualification is meaningful (§III-C, equal treatment)"});
    report.metrics.push_back(
        {"equalized_odds", ++priority,
         "both error rates matter and labels are trustworthy (§III-D)"});
  } else {
    report.warnings.push_back(
        "labels encode historical decisions, not ground truth: equal "
        "opportunity / equalized odds would certify bias preservation "
        "(Wachter et al. [23]); prefer outcome-based definitions");
  }

  // §IV-B proxies.
  if (profile.proxies_suspected) {
    report.required_audits.push_back(
        "proxy audit: audit::DetectProxies over all candidate features "
        "against each protected attribute");
    report.warnings.push_back(
        "removing the protected attribute does NOT ensure fairness "
        "(fairness through unawareness fails under proxies, §IV-B); audit "
        "outcomes, not feature lists");
  }

  // §IV-C intersectionality.
  if (profile.multiple_sensitive_attributes) {
    report.required_audits.push_back(
        "subgroup audit: audit::AuditSubgroups at depth >= 2 over all "
        "sensitive attributes (fairness gerrymandering, §IV-C)");
  }

  // §IV-D feedback loops.
  if (profile.feedback_risk) {
    report.required_audits.push_back(
        "feedback monitoring: re-run the audit suite every retraining "
        "cycle and track the metric trajectory (sim::RunFeedbackLoop "
        "models the risk, §IV-D)");
  }

  // §IV-E manipulation.
  if (profile.adversarial_risk) {
    report.required_audits.push_back(
        "manipulation cross-check: audit::AuditManipulation — never "
        "accept attribution-based fairness evidence without an outcome "
        "audit (§IV-E)");
  }

  // §IV-F sampling.
  if (profile.smallest_group_size > 0 && profile.smallest_group_size < 30) {
    report.warnings.push_back(
        "smallest protected group has fewer than 30 samples: rate "
        "estimates are unreliable (§IV-F); run "
        "audit::AssessSamplingAdequacy and consider pooling strata");
  }

  // Jurisdiction-specific instruments.
  if (profile.jurisdiction == Jurisdiction::kUs) {
    report.metrics.push_back(
        {"disparate_impact_ratio", ++priority,
         "US jurisdiction: the EEOC four-fifths screen is the operational "
         "disparate-impact test (legal::FourFifthsTest)"});
  } else {
    report.metrics.push_back(
        {"conditional_statistical_parity", ++priority,
         "EU jurisdiction: stratified outcome comparisons support the "
         "indirect-discrimination analysis and its proportionality "
         "defense"});
  }

  if (report.metrics.empty()) {
    report.warnings.push_back(
        "profile gave no affirmative signals; defaulting to demographic "
        "parity as the minimal outcome screen");
    report.metrics.push_back(
        {"demographic_parity", 1,
         "default outcome screen in the absence of stronger signals"});
  }
  return report;
}

}  // namespace fairlaw::legal
