#ifndef FAIRLAW_LEGAL_REPORT_H_
#define FAIRLAW_LEGAL_REPORT_H_

#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "legal/checklist.h"
#include "legal/doctrine.h"
#include "legal/four_fifths.h"
#include "metrics/conditional_metrics.h"
#include "metrics/fairness_metric.h"

namespace fairlaw::legal {

/// Metric-level findings the report maps onto doctrine. The legal layer
/// deliberately takes these rather than the audit orchestrator's result
/// type: doctrine talks about fairness definitions, not about how the
/// audit pipeline produced them. audit::AuditResult::ToLegalFindings()
/// converts.
struct AuditFindings {
  std::vector<metrics::MetricReport> reports;
  std::vector<metrics::ConditionalReport> conditional_reports;
  bool all_satisfied = true;
};

/// Inputs for a compliance report.
struct ComplianceReportInputs {
  std::string system_name;
  Jurisdiction jurisdiction = Jurisdiction::kEu;
  /// Canonical token of the protected attribute audited ("sex", "race",
  /// ...), used to cite the instruments that protect it.
  std::string protected_attribute;
  /// Protected sector of the use case ("employment", "credit", ...).
  std::string sector;
  AuditFindings audit;
  std::optional<FourFifthsResult> four_fifths;
  std::optional<ChecklistReport> checklist;
};

/// Renders a full compliance report: the statutory frame (which
/// instruments protect the attribute in the sector), the metric results
/// with their doctrine mapping (§IV-A), the four-fifths screen, and the
/// checklist recommendations.
FAIRLAW_NODISCARD Result<std::string> RenderComplianceReport(
    const ComplianceReportInputs& inputs);

}  // namespace fairlaw::legal

#endif  // FAIRLAW_LEGAL_REPORT_H_
