#include "legal/proportionality.h"

#include "base/string_util.h"

namespace fairlaw::legal {

std::string_view ProportionalityStageToString(ProportionalityStage stage) {
  switch (stage) {
    case ProportionalityStage::kLegitimateAim:
      return "legitimate aim";
    case ProportionalityStage::kSuitability:
      return "suitability";
    case ProportionalityStage::kNecessity:
      return "necessity";
    case ProportionalityStage::kBalance:
      return "balance (proportionality stricto sensu)";
    case ProportionalityStage::kJustified:
      return "justified";
  }
  return "unknown";
}

Result<ProportionalityVerdict> AssessProportionality(
    const ProportionalityCase& facts) {
  if (facts.measured_disparity < 0.0 || facts.proportionate_disparity < 0.0) {
    return Status::Invalid("AssessProportionality: disparities must be >= 0");
  }
  ProportionalityVerdict verdict;
  if (!facts.has_legitimate_aim) {
    verdict.stage = ProportionalityStage::kLegitimateAim;
    verdict.reasoning = "The measure '" + facts.measure +
                        "' pursues no legitimate aim; the indirect "
                        "discrimination cannot be justified.";
    return verdict;
  }
  if (!facts.suitable) {
    verdict.stage = ProportionalityStage::kSuitability;
    verdict.reasoning = "The aim '" + facts.aim +
                        "' is legitimate but the measure is not capable of "
                        "achieving it; justification fails at suitability.";
    return verdict;
  }
  if (!facts.necessary) {
    verdict.stage = ProportionalityStage::kNecessity;
    verdict.reasoning = "A less discriminatory alternative achieving '" +
                        facts.aim + "' equally well exists; the measure is "
                        "not necessary.";
    return verdict;
  }
  if (facts.measured_disparity > facts.proportionate_disparity) {
    verdict.stage = ProportionalityStage::kBalance;
    verdict.reasoning =
        "The measured disparity (" +
        FormatDouble(facts.measured_disparity, 4) +
        ") exceeds what is proportionate to the aim (" +
        FormatDouble(facts.proportionate_disparity, 4) +
        "); the burden on the protected group outweighs the benefit.";
    return verdict;
  }
  verdict.justified = true;
  verdict.stage = ProportionalityStage::kJustified;
  verdict.reasoning = "The measure pursues the legitimate aim '" + facts.aim +
                      "' with suitable, necessary means and a disparity "
                      "within the proportionate bound.";
  return verdict;
}

}  // namespace fairlaw::legal
