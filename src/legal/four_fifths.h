#ifndef FAIRLAW_LEGAL_FOUR_FIFTHS_H_
#define FAIRLAW_LEGAL_FOUR_FIFTHS_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "metrics/fairness_metric.h"
#include "stats/hypothesis.h"

namespace fairlaw::legal {

// The EEOC four-fifths (80%) rule — the operational US disparate-impact
// screen: a selection rate for any protected group below 4/5 of the rate
// of the group with the highest rate is evidence of adverse impact. The
// implementation pairs the ratio test with a two-proportion z-test per
// group, because courts weigh statistical significance alongside the
// bare ratio.

/// Ratio and significance for one group vs the reference group.
struct FourFifthsGroup {
  std::string group;
  int64_t count = 0;
  int64_t selected = 0;
  double selection_rate = 0.0;
  /// selection_rate / reference rate.
  double impact_ratio = 1.0;
  bool below_threshold = false;
  /// Two-proportion z-test of this group's rate vs the reference group's.
  stats::TestResult significance;
};

struct FourFifthsResult {
  /// Group with the highest selection rate (the comparison baseline).
  std::string reference_group;
  double reference_rate = 0.0;
  std::vector<FourFifthsGroup> groups;
  double threshold = 0.8;
  /// True when no group falls below the threshold.
  bool passed = true;
  /// True when some group both fails the ratio and differs significantly.
  bool adverse_impact_indicated = false;
  std::string detail;
};

/// Runs the four-fifths screen over `input` (labels not required).
FAIRLAW_NODISCARD Result<FourFifthsResult> FourFifthsTest(const metrics::MetricInput& input,
                                        double threshold = 0.8,
                                        double alpha = 0.05);

/// Renders the screen as human-readable text.
std::string RenderFourFifths(const FourFifthsResult& result);

}  // namespace fairlaw::legal

#endif  // FAIRLAW_LEGAL_FOUR_FIFTHS_H_
