#ifndef FAIRLAW_LEGAL_JURISDICTION_H_
#define FAIRLAW_LEGAL_JURISDICTION_H_

#include <string>
#include <vector>

#include "legal/doctrine.h"

namespace fairlaw::legal {

/// One legal instrument (statute, directive, convention article).
struct Statute {
  std::string name;
  Jurisdiction jurisdiction;
  int year;
  /// Protected sector(s) the instrument covers ("employment", "credit",
  /// "housing", "goods_and_services", "general", ...).
  std::vector<std::string> sectors;
  /// Protected attributes the instrument names (canonical lowercase
  /// tokens: "race", "sex", "age", "disability", "religion",
  /// "national_origin", "sexual_orientation", "genetic_information",
  /// "pregnancy", "color", "familial_status", "language", "birth",
  /// "political_opinion", "property").
  std::vector<std::string> protected_attributes;
  std::string summary;
};

/// The US anti-discrimination statutes §II-B(2) of the paper enumerates.
const std::vector<Statute>& UsStatutes();

/// The EU / Council of Europe instruments of §II-A.
const std::vector<Statute>& EuInstruments();

/// All instruments of a jurisdiction.
const std::vector<Statute>& StatutesOf(Jurisdiction jurisdiction);

/// Instruments of `jurisdiction` protecting `attribute` (canonical
/// token). Empty result is NOT an error — it means the attribute is not
/// protected there.
std::vector<const Statute*> StatutesProtecting(const std::string& attribute,
                                               Jurisdiction jurisdiction);

/// Instruments of `jurisdiction` covering `sector`.
std::vector<const Statute*> StatutesForSector(const std::string& sector,
                                              Jurisdiction jurisdiction);

/// True when at least one instrument of the jurisdiction protects the
/// attribute.
bool IsProtectedAttribute(const std::string& attribute,
                          Jurisdiction jurisdiction);

/// Canonical attribute tokens protected in the jurisdiction (union over
/// instruments, sorted, deduplicated).
std::vector<std::string> ProtectedAttributesOf(Jurisdiction jurisdiction);

}  // namespace fairlaw::legal

#endif  // FAIRLAW_LEGAL_JURISDICTION_H_
