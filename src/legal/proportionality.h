#ifndef FAIRLAW_LEGAL_PROPORTIONALITY_H_
#define FAIRLAW_LEGAL_PROPORTIONALITY_H_

#include <string>

#include "base/result.h"

namespace fairlaw::legal {

// EU proportionality test for justified indirect discrimination (§II-A).
// A neutral measure that disproportionately disadvantages a protected
// group is nevertheless lawful when it pursues a legitimate aim and the
// means are appropriate and necessary. fairlaw encodes the test as a
// staged checklist: the assessor supplies the qualitative findings, the
// library supplies the measured disparity and the staged verdict.

/// The facts of one assessed measure.
struct ProportionalityCase {
  std::string measure;  // description of the neutral provision/practice
  /// Stage 1: does the measure pursue a legitimate aim?
  bool has_legitimate_aim = false;
  std::string aim;
  /// Stage 2: is the measure suitable (capable of achieving the aim)?
  bool suitable = false;
  /// Stage 3: is it necessary — no less discriminatory alternative that
  /// achieves the aim equally well?
  bool necessary = false;
  /// Stage 4 (balance): the measured disparity the measure causes (e.g.
  /// a demographic-parity gap or 1 - impact ratio) and the worst
  /// disparity the assessor deems proportionate to the aim.
  double measured_disparity = 0.0;
  double proportionate_disparity = 0.0;
};

/// Stage at which the assessment concluded.
enum class ProportionalityStage {
  kLegitimateAim,
  kSuitability,
  kNecessity,
  kBalance,
  kJustified,  // all stages passed
};

std::string_view ProportionalityStageToString(ProportionalityStage stage);

struct ProportionalityVerdict {
  bool justified = false;
  /// First failed stage (kJustified when none failed).
  ProportionalityStage stage = ProportionalityStage::kJustified;
  std::string reasoning;
};

/// Runs the staged test.
FAIRLAW_NODISCARD Result<ProportionalityVerdict> AssessProportionality(
    const ProportionalityCase& facts);

}  // namespace fairlaw::legal

#endif  // FAIRLAW_LEGAL_PROPORTIONALITY_H_
