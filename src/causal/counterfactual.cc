#include "causal/counterfactual.h"

#include "base/check.h"

namespace fairlaw::causal {

Mechanism ConstantMechanism(double value) {
  return [value](std::span<const double>) { return value; };
}

Mechanism LinearMechanism(std::vector<double> weights, double intercept) {
  return [weights = std::move(weights),
          intercept](std::span<const double> parents) {
    FAIRLAW_CHECK_MSG(parents.size() == weights.size(),
                      "LinearMechanism: parent count mismatch");
    double total = intercept;
    for (size_t i = 0; i < parents.size(); ++i) {
      total += weights[i] * parents[i];
    }
    return total;
  };
}

Mechanism ThresholdMechanism(std::vector<double> weights, double intercept) {
  return [weights = std::move(weights),
          intercept](std::span<const double> parents) {
    FAIRLAW_CHECK_MSG(parents.size() == weights.size(),
                      "ThresholdMechanism: parent count mismatch");
    double total = intercept;
    for (size_t i = 0; i < parents.size(); ++i) {
      total += weights[i] * parents[i];
    }
    return total > 0.0 ? 1.0 : 0.0;
  };
}

Result<ScmSample> CounterfactualSample(const Scm& scm,
                                       const ScmSample& sample,
                                       const std::string& node, double value) {
  FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(node).status());
  if (sample.node_names().size() != scm.num_nodes()) {
    return Status::Invalid("CounterfactualSample: sample does not match "
                           "model node count");
  }
  std::vector<std::string> names = sample.node_names();
  ScmSample out(names, sample.num_rows());

  const size_t num_nodes = scm.num_nodes();
  std::vector<const std::vector<double>*> observed(num_nodes);
  for (size_t k = 0; k < num_nodes; ++k) {
    FAIRLAW_ASSIGN_OR_RETURN(observed[k], sample.Values(names[k]));
  }

  std::unordered_map<std::string, double> interventions{{node, value}};
  std::vector<double> row(num_nodes);
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    for (size_t k = 0; k < num_nodes; ++k) row[k] = (*observed[k])[r];
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> noise, scm.Abduct(row));
    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> cf,
                             scm.Counterfactual(row, interventions));
    for (size_t k = 0; k < num_nodes; ++k) {
      (*out.mutable_values(k))[r] = cf[k];
      (*out.mutable_noise(k))[r] = noise[k];
    }
  }
  return out;
}

Result<std::vector<double>> CounterfactualOutcome(const Scm& scm,
                                                  const ScmSample& sample,
                                                  const std::string& node,
                                                  double value,
                                                  const std::string& outcome) {
  FAIRLAW_ASSIGN_OR_RETURN(ScmSample cf,
                           CounterfactualSample(scm, sample, node, value));
  FAIRLAW_ASSIGN_OR_RETURN(const std::vector<double>* values,
                           cf.Values(outcome));
  return *values;
}

}  // namespace fairlaw::causal
