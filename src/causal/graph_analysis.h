#ifndef FAIRLAW_CAUSAL_GRAPH_ANALYSIS_H_
#define FAIRLAW_CAUSAL_GRAPH_ANALYSIS_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "causal/scm.h"

namespace fairlaw::causal {

// Structural analysis of an SCM's graph. The formal criterion behind
// §IV-B and §III-G: a feature is a *structural proxy* for the protected
// attribute exactly when it is a causal descendant of it, and a model is
// counterfactually fair iff every feature it consumes is a non-descendant
// of the protected attribute (Kusner et al. [12], Lemma 1). These
// functions compute that criterion directly on the graph, complementing
// the statistical proxy detector in audit/proxy.h.

/// Direct children of `node` (nodes listing it as a parent).
FAIRLAW_NODISCARD Result<std::vector<std::string>> Children(const Scm& scm,
                                          const std::string& node);

/// All descendants of `node` (children, transitively), in topological
/// order, excluding the node itself.
FAIRLAW_NODISCARD Result<std::vector<std::string>> Descendants(const Scm& scm,
                                             const std::string& node);

/// All ancestors of `node` (parents, transitively), excluding itself.
FAIRLAW_NODISCARD Result<std::vector<std::string>> Ancestors(const Scm& scm,
                                           const std::string& node);

/// One directed path from `from` to `to`, or empty when none exists.
/// Paths name the mechanism chain through which protected information
/// reaches a feature ("gender -> university -> hired").
FAIRLAW_NODISCARD Result<std::vector<std::string>> FindDirectedPath(const Scm& scm,
                                                  const std::string& from,
                                                  const std::string& to);

/// Classification of a feature set against a protected node.
struct FeaturePathReport {
  /// Features that are descendants of the protected node — each carries
  /// protected information structurally; any model using them fails
  /// counterfactual fairness whenever the mechanism weights are nonzero.
  std::vector<std::string> proxy_features;
  /// Features with no directed path from the protected node — safe under
  /// the Kusner criterion.
  std::vector<std::string> clean_features;
  /// For each proxy feature, one witnessing path (aligned with
  /// proxy_features).
  std::vector<std::vector<std::string>> witness_paths;
  /// True when proxy_features is empty: a model on these features is
  /// counterfactually fair by construction.
  bool counterfactually_fair_by_construction = false;
};

/// Classifies `features` against `protected_node`.
FAIRLAW_NODISCARD Result<FeaturePathReport> AnalyzeFeaturePaths(
    const Scm& scm, const std::string& protected_node,
    const std::vector<std::string>& features);

}  // namespace fairlaw::causal

#endif  // FAIRLAW_CAUSAL_GRAPH_ANALYSIS_H_
