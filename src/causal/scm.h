#ifndef FAIRLAW_CAUSAL_SCM_H_
#define FAIRLAW_CAUSAL_SCM_H_

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "stats/rng.h"

namespace fairlaw::causal {

/// Deterministic part of a structural equation: node value from parent
/// values (ordered as declared).
using Mechanism = std::function<double(std::span<const double>)>;

/// Exogenous noise attached to a node.
enum class NoiseType {
  kNone,      // deterministic node: value = f(parents)
  kGaussian,  // value = f(parents) + N(param1, param2)
  kUniform,   // value = f(parents) + U(param1, param2)
};

struct NoiseSpec {
  NoiseType type = NoiseType::kNone;
  double param1 = 0.0;  // mean / lower bound
  double param2 = 1.0;  // stddev / upper bound

  static NoiseSpec None() { return {NoiseType::kNone, 0.0, 0.0}; }
  static NoiseSpec Gaussian(double mean, double stddev) {
    return {NoiseType::kGaussian, mean, stddev};
  }
  static NoiseSpec Uniform(double lo, double hi) {
    return {NoiseType::kUniform, lo, hi};
  }
};

/// One node of the SCM.
struct NodeSpec {
  std::string name;
  std::vector<std::string> parents;
  Mechanism mechanism;
  NoiseSpec noise;
};

/// A draw of n rows from the model: per-node value and noise columns.
class ScmSample {
 public:
  ScmSample(std::vector<std::string> names, size_t rows);

  size_t num_rows() const { return rows_; }
  const std::vector<std::string>& node_names() const { return names_; }

  /// Values of node `name` across rows; NotFound if absent.
  FAIRLAW_NODISCARD Result<const std::vector<double>*> Values(const std::string& name) const;
  /// Realized exogenous noise of node `name` across rows.
  FAIRLAW_NODISCARD Result<const std::vector<double>*> Noise(const std::string& name) const;

  std::vector<double>* mutable_values(size_t node) { return &values_[node]; }
  std::vector<double>* mutable_noise(size_t node) { return &noise_[node]; }

 private:
  FAIRLAW_NODISCARD Result<size_t> IndexOf(const std::string& name) const;

  std::vector<std::string> names_;
  size_t rows_;
  std::vector<std::vector<double>> values_;
  std::vector<std::vector<double>> noise_;
};

/// Structural causal model over real-valued nodes.
///
/// Nodes must be added parents-first (the declaration order is the
/// topological order). All noise is additive, which keeps abduction — the
/// first step of Pearl's abduction/action/prediction recipe for
/// counterfactuals — exact: u = observed - f(parents). Binary variables
/// are modeled as deterministic threshold nodes over a noisy latent
/// parent, which preserves exact abduction.
class Scm {
 public:
  /// Adds a node. Fails if the name is duplicated or a parent is unknown
  /// (which also enforces acyclicity).
  FAIRLAW_NODISCARD Status AddNode(NodeSpec node);

  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<NodeSpec>& nodes() const { return nodes_; }
  FAIRLAW_NODISCARD Result<size_t> NodeIndex(const std::string& name) const;

  /// Draws `n` i.i.d. rows, recording values and exogenous noise.
  FAIRLAW_NODISCARD Result<ScmSample> Sample(size_t n, stats::Rng* rng) const;

  /// Returns a copy of the model where `name` is replaced by the constant
  /// `value` (the do-operator).
  FAIRLAW_NODISCARD Result<Scm> Do(const std::string& name, double value) const;

  /// Abduction: recovers the exogenous noise behind one observed row
  /// (`observed[i]` is the value of node i in declaration order).
  FAIRLAW_NODISCARD Result<std::vector<double>> Abduct(std::span<const double> observed) const;

  /// Counterfactual for one observed row: abducts its noise, applies the
  /// interventions, and recomputes all non-intervened nodes with the same
  /// noise. Returns the counterfactual node values in declaration order.
  FAIRLAW_NODISCARD Result<std::vector<double>> Counterfactual(
      std::span<const double> observed,
      const std::unordered_map<std::string, double>& interventions) const;

 private:
  std::vector<NodeSpec> nodes_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace fairlaw::causal

#endif  // FAIRLAW_CAUSAL_SCM_H_
