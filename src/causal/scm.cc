#include "causal/scm.h"

#include <algorithm>

namespace fairlaw::causal {

ScmSample::ScmSample(std::vector<std::string> names, size_t rows)
    : names_(std::move(names)),
      rows_(rows),
      values_(names_.size(), std::vector<double>(rows, 0.0)),
      noise_(names_.size(), std::vector<double>(rows, 0.0)) {}

Result<size_t> ScmSample::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("ScmSample: no node named '" + name + "'");
}

Result<const std::vector<double>*> ScmSample::Values(
    const std::string& name) const {
  FAIRLAW_ASSIGN_OR_RETURN(size_t index, IndexOf(name));
  return &values_[index];
}

Result<const std::vector<double>*> ScmSample::Noise(
    const std::string& name) const {
  FAIRLAW_ASSIGN_OR_RETURN(size_t index, IndexOf(name));
  return &noise_[index];
}

Status Scm::AddNode(NodeSpec node) {
  if (node.name.empty()) return Status::Invalid("Scm: empty node name");
  if (index_.contains(node.name)) {
    return Status::AlreadyExists("Scm: node '" + node.name +
                                 "' already exists");
  }
  for (const std::string& parent : node.parents) {
    if (!index_.contains(parent)) {
      return Status::Invalid("Scm: node '" + node.name +
                             "' references unknown parent '" + parent +
                             "' (parents must be declared first)");
    }
  }
  if (!node.mechanism) {
    return Status::Invalid("Scm: node '" + node.name + "' has no mechanism");
  }
  if (node.noise.type == NoiseType::kGaussian && node.noise.param2 < 0.0) {
    return Status::Invalid("Scm: negative noise stddev");
  }
  if (node.noise.type == NoiseType::kUniform &&
      node.noise.param2 < node.noise.param1) {
    return Status::Invalid("Scm: uniform noise with hi < lo");
  }
  index_[node.name] = nodes_.size();
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Result<size_t> Scm::NodeIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("Scm: no node named '" + name + "'");
  }
  return it->second;
}

namespace {

double DrawNoise(const NoiseSpec& noise, stats::Rng* rng) {
  switch (noise.type) {
    case NoiseType::kNone:
      return 0.0;
    case NoiseType::kGaussian:
      return rng->Normal(noise.param1, noise.param2);
    case NoiseType::kUniform:
      return rng->Uniform(noise.param1, noise.param2);
  }
  return 0.0;
}

}  // namespace

Result<ScmSample> Scm::Sample(size_t n, stats::Rng* rng) const {
  if (rng == nullptr) return Status::Invalid("Scm::Sample: null rng");
  if (nodes_.empty()) return Status::Invalid("Scm::Sample: empty model");
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const NodeSpec& node : nodes_) names.push_back(node.name);
  ScmSample sample(std::move(names), n);

  std::vector<double> parent_values;
  for (size_t row = 0; row < n; ++row) {
    for (size_t k = 0; k < nodes_.size(); ++k) {
      const NodeSpec& node = nodes_[k];
      parent_values.clear();
      for (const std::string& parent : node.parents) {
        size_t pi = index_.at(parent);
        parent_values.push_back((*sample.mutable_values(pi))[row]);
      }
      double u = DrawNoise(node.noise, rng);
      (*sample.mutable_noise(k))[row] = u;
      (*sample.mutable_values(k))[row] = node.mechanism(parent_values) + u;
    }
  }
  return sample;
}

Result<Scm> Scm::Do(const std::string& name, double value) const {
  FAIRLAW_ASSIGN_OR_RETURN(size_t index, NodeIndex(name));
  Scm intervened = *this;
  intervened.nodes_[index].mechanism =
      [value](std::span<const double>) { return value; };
  intervened.nodes_[index].noise = NoiseSpec::None();
  return intervened;
}

Result<std::vector<double>> Scm::Abduct(
    std::span<const double> observed) const {
  if (observed.size() != nodes_.size()) {
    return Status::Invalid("Abduct: expected " +
                           std::to_string(nodes_.size()) + " values, got " +
                           std::to_string(observed.size()));
  }
  std::vector<double> noise(nodes_.size(), 0.0);
  std::vector<double> parent_values;
  for (size_t k = 0; k < nodes_.size(); ++k) {
    const NodeSpec& node = nodes_[k];
    parent_values.clear();
    for (const std::string& parent : node.parents) {
      parent_values.push_back(observed[index_.at(parent)]);
    }
    noise[k] = observed[k] - node.mechanism(parent_values);
  }
  return noise;
}

Result<std::vector<double>> Scm::Counterfactual(
    std::span<const double> observed,
    const std::unordered_map<std::string, double>& interventions) const {
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> noise, Abduct(observed));
  // Validate in sorted-name order: the loop returns on the first unknown
  // variable, and hash iteration order must not pick which one a caller
  // hears about.
  std::vector<const std::string*> names;
  names.reserve(interventions.size());
  // detcheck: allow-unordered-iteration (order-insensitive collect, sorted below)
  for (const auto& [name, value] : interventions) {
    (void)value;
    names.push_back(&name);
  }
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* name : names) {
    FAIRLAW_RETURN_NOT_OK(NodeIndex(*name).status());
  }
  std::vector<double> result(nodes_.size(), 0.0);
  std::vector<double> parent_values;
  for (size_t k = 0; k < nodes_.size(); ++k) {
    const NodeSpec& node = nodes_[k];
    auto it = interventions.find(node.name);
    if (it != interventions.end()) {
      result[k] = it->second;
      continue;
    }
    parent_values.clear();
    for (const std::string& parent : node.parents) {
      parent_values.push_back(result[index_.at(parent)]);
    }
    result[k] = node.mechanism(parent_values) + noise[k];
  }
  return result;
}

}  // namespace fairlaw::causal
