#ifndef FAIRLAW_CAUSAL_COUNTERFACTUAL_H_
#define FAIRLAW_CAUSAL_COUNTERFACTUAL_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "causal/scm.h"

namespace fairlaw::causal {

// Mechanism helpers -------------------------------------------------------

/// Mechanism returning a constant (for root nodes).
Mechanism ConstantMechanism(double value);

/// Linear mechanism: intercept + sum_i weights[i] * parent[i].
Mechanism LinearMechanism(std::vector<double> weights, double intercept = 0.0);

/// Threshold mechanism: 1 if (intercept + sum_i weights[i]*parent[i]) > 0,
/// else 0. Deterministic — use with NoiseSpec::None() and put the noise
/// into a latent parent so abduction stays exact.
Mechanism ThresholdMechanism(std::vector<double> weights,
                             double intercept = 0.0);

// Dataset-level counterfactuals -------------------------------------------

/// Counterfactual version of a sampled dataset: for each row of `sample`,
/// computes the node values that would have obtained had `node` been
/// `value`, holding the exogenous noise fixed (abduction / action /
/// prediction). Returns a new sample with the same node order. Noise
/// columns of the result carry the abducted noise.
FAIRLAW_NODISCARD Result<ScmSample> CounterfactualSample(const Scm& scm,
                                       const ScmSample& sample,
                                       const std::string& node, double value);

/// Per-row counterfactual values of a single outcome node under the
/// intervention node=value.
FAIRLAW_NODISCARD Result<std::vector<double>> CounterfactualOutcome(const Scm& scm,
                                                  const ScmSample& sample,
                                                  const std::string& node,
                                                  double value,
                                                  const std::string& outcome);

}  // namespace fairlaw::causal

#endif  // FAIRLAW_CAUSAL_COUNTERFACTUAL_H_
