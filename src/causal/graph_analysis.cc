#include "causal/graph_analysis.h"

#include <algorithm>
#include <set>

namespace fairlaw::causal {

Result<std::vector<std::string>> Children(const Scm& scm,
                                          const std::string& node) {
  FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(node).status());
  std::vector<std::string> children;
  for (const NodeSpec& candidate : scm.nodes()) {
    if (std::find(candidate.parents.begin(), candidate.parents.end(),
                  node) != candidate.parents.end()) {
      children.push_back(candidate.name);
    }
  }
  return children;
}

Result<std::vector<std::string>> Descendants(const Scm& scm,
                                             const std::string& node) {
  FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(node).status());
  // Nodes are stored in topological order, so one forward pass suffices.
  std::set<std::string> reached = {node};
  std::vector<std::string> descendants;
  for (const NodeSpec& candidate : scm.nodes()) {
    if (reached.contains(candidate.name)) continue;
    for (const std::string& parent : candidate.parents) {
      if (reached.contains(parent)) {
        reached.insert(candidate.name);
        descendants.push_back(candidate.name);
        break;
      }
    }
  }
  return descendants;
}

Result<std::vector<std::string>> Ancestors(const Scm& scm,
                                           const std::string& node) {
  FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(node).status());
  // Walk the topological order backwards, collecting transitive parents.
  std::set<std::string> reached = {node};
  std::vector<std::string> ancestors;
  for (auto it = scm.nodes().rbegin(); it != scm.nodes().rend(); ++it) {
    if (!reached.contains(it->name)) continue;
    for (const std::string& parent : it->parents) {
      if (reached.insert(parent).second) {
        ancestors.push_back(parent);
      }
    }
  }
  return ancestors;
}

Result<std::vector<std::string>> FindDirectedPath(const Scm& scm,
                                                  const std::string& from,
                                                  const std::string& to) {
  FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(from).status());
  FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(to).status());
  if (from == to) return std::vector<std::string>{from};
  // Forward pass over the topological order, remembering one predecessor
  // on a path from `from`.
  std::set<std::string> reached = {from};
  std::vector<std::string> via(scm.num_nodes());
  for (size_t k = 0; k < scm.num_nodes(); ++k) {
    const NodeSpec& node = scm.nodes()[k];
    if (reached.contains(node.name)) continue;
    for (const std::string& parent : node.parents) {
      if (reached.contains(parent)) {
        reached.insert(node.name);
        via[k] = parent;
        break;
      }
    }
  }
  if (!reached.contains(to)) return std::vector<std::string>{};
  // Reconstruct backwards.
  std::vector<std::string> path = {to};
  std::string cursor = to;
  while (cursor != from) {
    // cursor walks via[], which only holds names from the scm's node set
    // flowcheck: allow-unchecked-result (cursor is a known node name)
    size_t index = scm.NodeIndex(cursor).ValueOrDie();
    cursor = via[index];
    path.push_back(cursor);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<FeaturePathReport> AnalyzeFeaturePaths(
    const Scm& scm, const std::string& protected_node,
    const std::vector<std::string>& features) {
  if (features.empty()) {
    return Status::Invalid("AnalyzeFeaturePaths: no features");
  }
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<std::string> descendants,
                           Descendants(scm, protected_node));
  std::set<std::string> descendant_set(descendants.begin(),
                                       descendants.end());
  FeaturePathReport report;
  for (const std::string& feature : features) {
    FAIRLAW_RETURN_NOT_OK(scm.NodeIndex(feature).status());
    if (descendant_set.contains(feature)) {
      report.proxy_features.push_back(feature);
      FAIRLAW_ASSIGN_OR_RETURN(
          std::vector<std::string> path,
          FindDirectedPath(scm, protected_node, feature));
      report.witness_paths.push_back(std::move(path));
    } else {
      report.clean_features.push_back(feature);
    }
  }
  report.counterfactually_fair_by_construction =
      report.proxy_features.empty();
  return report;
}

}  // namespace fairlaw::causal
