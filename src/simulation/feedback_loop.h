#ifndef FAIRLAW_SIMULATION_FEEDBACK_LOOP_H_
#define FAIRLAW_SIMULATION_FEEDBACK_LOOP_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "stats/rng.h"

namespace fairlaw::sim {

// Feedback-loop simulator (§IV-D). Round zero trains a hiring model on
// historically biased labels. Each subsequent round: a fresh applicant
// pool arrives, the model decides, the decisions are appended to the
// training data as if they were ground truth, and the model is retrained.
// Two reinforcement channels operate: (1) label feedback — the model's
// own biased decisions become training labels; (2) discouragement —
// members of a group whose past selection rate trails the other group's
// become less likely to apply at all. Mitigation (reweighing before each
// retrain, or post-processing group thresholds) can be switched on to
// show the loop flattening.

enum class LoopMitigation {
  kNone,
  kReweighing,       // pre-processing before every retrain
  kGroupThresholds,  // demographic-parity thresholds on every decision round
};

struct FeedbackLoopOptions {
  size_t initial_n = 4000;           // historical training pool
  size_t applicants_per_round = 2000;
  int rounds = 12;
  double selection_rate = 0.3;       // fraction hired each round
  double label_bias = 1.0;           // historical bias in round-0 labels
  double proxy_strength = 1.0;       // gender proxy strength in features
  /// Discouragement sensitivity: after each round, the disadvantaged
  /// group's application propensity is multiplied by
  /// (1 - discouragement * selection-rate gap).
  double discouragement = 0.5;
  LoopMitigation mitigation = LoopMitigation::kNone;
};

/// Per-round measurements.
struct RoundStats {
  int round = 0;
  double selection_rate_female = 0.0;
  double selection_rate_male = 0.0;
  double dp_gap = 0.0;
  /// Share of women among this round's applicants (starts at the
  /// population share and erodes under discouragement).
  double female_applicant_share = 0.0;
  /// Model accuracy against gender-blind merit.
  double accuracy_vs_merit = 0.0;
};

struct FeedbackLoopResult {
  std::vector<RoundStats> rounds;
  /// dp_gap of the last round minus the first round (> 0 = amplification).
  double gap_drift = 0.0;
};

/// Runs the simulation.
FAIRLAW_NODISCARD Result<FeedbackLoopResult> RunFeedbackLoop(const FeedbackLoopOptions& options,
                                           stats::Rng* rng);

}  // namespace fairlaw::sim

#endif  // FAIRLAW_SIMULATION_FEEDBACK_LOOP_H_
