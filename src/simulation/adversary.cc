#include "simulation/adversary.h"

#include <cmath>
#include <limits>
#include <vector>

namespace fairlaw::sim {

Result<ml::LogisticRegression> TrainMaskedModel(
    const ml::Dataset& data, size_t protected_feature_index,
    const MaskingOptions& options) {
  FAIRLAW_RETURN_NOT_OK(data.Validate());
  if (protected_feature_index >= data.num_features()) {
    return Status::Invalid("TrainMaskedModel: protected feature index out "
                           "of range");
  }
  if (options.masking_penalty < 0.0) {
    return Status::Invalid("TrainMaskedModel: masking_penalty must be >= 0");
  }

  // Gradient descent on the logistic loss with per-feature L2: the
  // protected coefficient carries base + masking penalty, the rest only
  // the base penalty.
  const size_t n = data.size();
  const size_t d = data.num_features();
  std::vector<double> l2(d, options.lr.l2);
  l2[protected_feature_index] += options.masking_penalty;

  std::vector<double> weights(d, 0.0);
  double bias = 0.0;
  std::vector<double> gradient(d);
  double previous_loss = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < options.lr.max_epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double bias_gradient = 0.0;
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = bias;
      for (size_t j = 0; j < d; ++j) z += weights[j] * data.features[i][j];
      double p = ml::Sigmoid(z);
      double w = data.weight(i);
      double error = p - static_cast<double>(data.labels[i]);
      for (size_t j = 0; j < d; ++j) {
        gradient[j] += w * error * data.features[i][j];
      }
      bias_gradient += w * error;
      double pc = std::clamp(p, 1e-12, 1.0 - 1e-12);
      loss -= w * (data.labels[i] == 1 ? std::log(pc) : std::log(1.0 - pc));
    }
    double total_weight = 0.0;
    for (size_t i = 0; i < n; ++i) total_weight += data.weight(i);
    loss /= total_weight;
    for (size_t j = 0; j < d; ++j) {
      gradient[j] /= total_weight;
      loss += 0.5 * l2[j] * weights[j] * weights[j];
    }
    bias_gradient /= total_weight;
    // Proximal (implicit) handling of the per-feature L2 term: the
    // explicit gradient step diverges once learning_rate * penalty > 2,
    // and the masking penalty is deliberately huge. The proximal update
    //   w <- (w - lr * data_gradient) / (1 + lr * l2)
    // is unconditionally stable and drives the masked coefficient to ~0.
    for (size_t j = 0; j < d; ++j) {
      weights[j] = (weights[j] - options.lr.learning_rate * gradient[j]) /
                   (1.0 + options.lr.learning_rate * l2[j]);
    }
    bias -= options.lr.learning_rate * bias_gradient;
    if (std::fabs(previous_loss - loss) < options.lr.tolerance) break;
    previous_loss = loss;
  }

  ml::LogisticRegression model(options.lr);
  model.SetParameters(std::move(weights), bias);
  return model;
}

}  // namespace fairlaw::sim
