#include "simulation/feedback_loop.h"

#include <algorithm>
#include <cmath>

#include "data/column.h"
#include "mitigation/reweighing.h"
#include "mitigation/threshold_optimizer.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "simulation/scenarios.h"
#include "stats/empirical.h"

namespace fairlaw::sim {
namespace {

struct Pool {
  std::vector<std::vector<double>> features;
  std::vector<std::string> genders;
  std::vector<int> historical_labels;
  std::vector<int> merit;
};

Result<Pool> DrawPool(size_t n, double female_share, double label_bias,
                      double proxy_strength, stats::Rng* rng) {
  HiringOptions options;
  options.n = n;
  options.female_share = female_share;
  options.label_bias = label_bias;
  options.proxy_strength = proxy_strength;
  FAIRLAW_ASSIGN_OR_RETURN(ScenarioData scenario,
                           MakeHiringScenario(options, rng));
  Pool pool;
  FAIRLAW_ASSIGN_OR_RETURN(
      pool.features,
      ml::FeaturesFromTable(scenario.table, scenario.feature_columns));
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* gender,
                           scenario.table.GetColumn("gender"));
  pool.genders.resize(n);
  for (size_t i = 0; i < n; ++i) {
    FAIRLAW_ASSIGN_OR_RETURN(pool.genders[i], gender->GetString(i));
  }
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* hired,
                           scenario.table.GetColumn("hired"));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> raw_hired, hired->ToDoubles());
  FAIRLAW_ASSIGN_OR_RETURN(const data::Column* merit,
                           scenario.table.GetColumn("merit"));
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> raw_merit, merit->ToDoubles());
  pool.historical_labels.resize(n);
  pool.merit.resize(n);
  for (size_t i = 0; i < n; ++i) {
    pool.historical_labels[i] = raw_hired[i] == 1.0 ? 1 : 0;
    pool.merit[i] = raw_merit[i] == 1.0 ? 1 : 0;
  }
  return pool;
}

Result<ml::LogisticRegression> Train(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, const std::vector<std::string>& genders,
    LoopMitigation mitigation) {
  ml::Dataset data;
  data.feature_names = {"university", "experience", "test_score"};
  data.features = features;
  data.labels = labels;
  if (mitigation == LoopMitigation::kReweighing) {
    FAIRLAW_RETURN_NOT_OK(mitigation::ApplyReweighing(genders, &data));
  }
  ml::LogisticRegressionOptions lr_options;
  lr_options.max_epochs = 200;
  ml::LogisticRegression model(lr_options);
  FAIRLAW_RETURN_NOT_OK(model.Fit(data));
  return model;
}

}  // namespace

Result<FeedbackLoopResult> RunFeedbackLoop(const FeedbackLoopOptions& options,
                                           stats::Rng* rng) {
  if (rng == nullptr) return Status::Invalid("RunFeedbackLoop: null rng");
  if (options.rounds < 1) {
    return Status::Invalid("RunFeedbackLoop: rounds must be >= 1");
  }
  if (options.selection_rate <= 0.0 || options.selection_rate >= 1.0) {
    return Status::Invalid("RunFeedbackLoop: selection_rate must lie in "
                           "(0,1)");
  }
  if (options.discouragement < 0.0) {
    return Status::Invalid("RunFeedbackLoop: discouragement must be >= 0");
  }

  // Round 0: historical, biased training data.
  FAIRLAW_ASSIGN_OR_RETURN(
      Pool history,
      DrawPool(options.initial_n, 0.5, options.label_bias,
               options.proxy_strength, rng));
  std::vector<std::vector<double>> train_features = history.features;
  std::vector<int> train_labels = history.historical_labels;
  std::vector<std::string> train_genders = history.genders;

  FAIRLAW_ASSIGN_OR_RETURN(
      ml::LogisticRegression model,
      Train(train_features, train_labels, train_genders, options.mitigation));

  FeedbackLoopResult result;
  double female_share = 0.5;
  for (int round = 0; round < options.rounds; ++round) {
    // Fresh applicants; labels in this pool are unused — the model's own
    // decisions become the labels (the feedback channel). Applicant pools
    // carry no decision bias knob of their own.
    FAIRLAW_ASSIGN_OR_RETURN(
        Pool applicants,
        DrawPool(options.applicants_per_round, female_share,
                 options.label_bias, options.proxy_strength, rng));

    FAIRLAW_ASSIGN_OR_RETURN(std::vector<double> scores,
                             model.PredictProbaBatch(applicants.features));
    std::vector<int> decisions;
    if (options.mitigation == LoopMitigation::kGroupThresholds) {
      mitigation::ThresholdOptimizerOptions to_options;
      to_options.target_rate = options.selection_rate;
      FAIRLAW_ASSIGN_OR_RETURN(
          mitigation::GroupThresholds thresholds,
          mitigation::OptimizeThresholds(
              applicants.genders, scores, {},
              mitigation::ThresholdCriterion::kDemographicParity,
              to_options));
      FAIRLAW_ASSIGN_OR_RETURN(decisions,
                               thresholds.Apply(applicants.genders, scores));
    } else {
      FAIRLAW_ASSIGN_OR_RETURN(stats::EmpiricalDistribution dist,
                               stats::EmpiricalDistribution::Make(scores));
      double threshold = dist.Quantile(1.0 - options.selection_rate);
      decisions.resize(scores.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        decisions[i] = scores[i] >= threshold ? 1 : 0;
      }
    }

    // Round statistics.
    RoundStats stats;
    stats.round = round;
    size_t female_n = 0;
    size_t female_pos = 0;
    size_t male_n = 0;
    size_t male_pos = 0;
    size_t correct = 0;
    for (size_t i = 0; i < decisions.size(); ++i) {
      if (applicants.genders[i] == "female") {
        ++female_n;
        female_pos += decisions[i];
      } else {
        ++male_n;
        male_pos += decisions[i];
      }
      if (decisions[i] == applicants.merit[i]) ++correct;
    }
    stats.selection_rate_female =
        female_n > 0 ? static_cast<double>(female_pos) /
                           static_cast<double>(female_n)
                     : 0.0;
    stats.selection_rate_male =
        male_n > 0 ? static_cast<double>(male_pos) /
                         static_cast<double>(male_n)
                   : 0.0;
    stats.dp_gap =
        std::fabs(stats.selection_rate_male - stats.selection_rate_female);
    stats.female_applicant_share =
        static_cast<double>(female_n) /
        static_cast<double>(decisions.size());
    stats.accuracy_vs_merit = static_cast<double>(correct) /
                              static_cast<double>(decisions.size());
    result.rounds.push_back(stats);

    // Feedback channel 1: the model's decisions become training labels.
    train_features.insert(train_features.end(), applicants.features.begin(),
                          applicants.features.end());
    train_labels.insert(train_labels.end(), decisions.begin(),
                        decisions.end());
    train_genders.insert(train_genders.end(), applicants.genders.begin(),
                         applicants.genders.end());
    FAIRLAW_ASSIGN_OR_RETURN(
        model, Train(train_features, train_labels, train_genders,
                     options.mitigation));

    // Feedback channel 2: discouragement shifts the applicant pool.
    double gap =
        std::max(0.0, stats.selection_rate_male - stats.selection_rate_female);
    female_share *= 1.0 - options.discouragement * gap;
    female_share = std::clamp(female_share, 0.05, 0.95);
  }

  result.gap_drift =
      result.rounds.back().dp_gap - result.rounds.front().dp_gap;
  return result;
}

}  // namespace fairlaw::sim
