#ifndef FAIRLAW_SIMULATION_SCENARIOS_H_
#define FAIRLAW_SIMULATION_SCENARIOS_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "causal/scm.h"
#include "data/table.h"
#include "stats/rng.h"

namespace fairlaw::sim {

// Synthetic population generators. Each scenario is a structural causal
// model with explicit bias knobs, standing in for the proprietary
// hiring/lending/promotion datasets the paper's use cases assume (see
// DESIGN.md, substitution table). Because the ground-truth mechanisms are
// known, every audit in fairlaw can be validated against the injected
// bias: turn a knob to zero and the corresponding detector must go quiet.

/// A generated scenario: the causal model, the raw sample (with exogenous
/// noise, for counterfactual audits), and a ready-to-audit table.
struct ScenarioData {
  causal::Scm scm;
  causal::ScmSample sample;
  data::Table table;
  /// Feature columns a model may legitimately use (excludes protected
  /// attributes and the label).
  std::vector<std::string> feature_columns;
  /// Protected attribute column(s), string-valued.
  std::vector<std::string> protected_columns;
  /// Historical decision column (0/1 int64) — the biased training label.
  std::string label_column;
  /// Ground-truth merit column (0/1 int64): whether the individual is
  /// actually a "good match", independent of historical bias.
  std::string merit_column;
};

/// Hiring scenario (§III's running example + §IV-B proxies).
///
/// Causal graph: gender -> university, gender -> hired (via label_bias);
/// skill -> {university, experience, test_score} -> hired.
/// `proxy_strength` scales the gender->university edge: with the gender
/// column removed, university remains a gender proxy of that strength.
/// `label_bias` scales the direct gender penalty in the *historical*
/// hiring decision, while merit stays gender-blind.
struct HiringOptions {
  size_t n = 10000;
  double female_share = 1.0 / 3.0;  // the paper's 10-female/20-male ratio
  double label_bias = 1.0;          // logit penalty applied to women
  double proxy_strength = 1.0;      // gender -> university edge weight
};
FAIRLAW_NODISCARD Result<ScenarioData> MakeHiringScenario(const HiringOptions& options,
                                        stats::Rng* rng);

/// Lending scenario (ECOA setting): continuous credit score, group-based
/// historical bias in approvals; group B is the disadvantaged minority.
struct LendingOptions {
  size_t n = 10000;
  double minority_share = 0.3;
  double label_bias = 1.0;      // logit penalty on minority approvals
  double income_gap = 0.5;      // structural income difference (std units)
};
FAIRLAW_NODISCARD Result<ScenarioData> MakeLendingScenario(const LendingOptions& options,
                                         stats::Rng* rng);

/// Promotion scenario with two protected attributes (§IV-C). The injected
/// bias is gerrymandered: it penalizes exactly the subgroups
/// (male, non_caucasian) and (female, caucasian), so both marginal audits
/// pass while the depth-2 subgroup audit fails.
struct PromotionOptions {
  size_t n = 20000;
  double female_share = 0.5;
  double caucasian_share = 0.5;
  double subgroup_bias = 1.5;  // logit penalty on the two gerrymandered cells
};
FAIRLAW_NODISCARD Result<ScenarioData> MakePromotionScenario(const PromotionOptions& options,
                                           stats::Rng* rng);

/// University admissions scenario: first-generation applicants face two
/// structural channels — a test-prep gap depressing test scores (proxy)
/// and a legacy-status advantage they rarely hold — plus an optional
/// direct decision bias. Exercises the same audits on a third domain
/// (education, EU Directive 2000/43 sector coverage).
struct AdmissionsOptions {
  size_t n = 10000;
  double first_gen_share = 0.4;
  double coaching_gap = 0.8;   // test-score depression for first-gen
  double legacy_weight = 0.6;  // admission boost from legacy status
  double label_bias = 0.5;     // direct logit penalty on first-gen
};
FAIRLAW_NODISCARD Result<ScenarioData> MakeAdmissionsScenario(const AdmissionsOptions& options,
                                            stats::Rng* rng);

}  // namespace fairlaw::sim

#endif  // FAIRLAW_SIMULATION_SCENARIOS_H_
