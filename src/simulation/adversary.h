#ifndef FAIRLAW_SIMULATION_ADVERSARY_H_
#define FAIRLAW_SIMULATION_ADVERSARY_H_

#include <cstddef>

#include "base/result.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"

namespace fairlaw::sim {

// Adversarial attribution masking (§IV-E; Dimanov et al. [3]). The
// attacker retrains a model so that explanation methods assign ~zero
// importance to the protected feature while discrimination continues
// through correlated proxies. For a linear model the attack is an
// asymmetric ridge: a very large L2 penalty on the protected coefficient
// only. The optimizer drives that coefficient to ~0 and re-routes its
// predictive (and discriminatory) signal through the proxies — accuracy
// barely moves, attribution audits go quiet, outcome audits do not.

struct MaskingOptions {
  /// Extra L2 penalty applied to the protected coefficient.
  double masking_penalty = 1000.0;
  ml::LogisticRegressionOptions lr;
};

/// Trains the masked model on `data` (which must INCLUDE the protected
/// feature at `protected_feature_index` — the attacker controls training
/// and has it). Returns a logistic regression whose protected coefficient
/// is suppressed.
FAIRLAW_NODISCARD Result<ml::LogisticRegression> TrainMaskedModel(
    const ml::Dataset& data, size_t protected_feature_index,
    const MaskingOptions& options = {});

}  // namespace fairlaw::sim

#endif  // FAIRLAW_SIMULATION_ADVERSARY_H_
