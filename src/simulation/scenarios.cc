#include "simulation/scenarios.h"

#include "causal/counterfactual.h"

namespace fairlaw::sim {
namespace {

using causal::LinearMechanism;
using causal::Mechanism;
using causal::NodeSpec;
using causal::NoiseSpec;
using causal::Scm;
using causal::ScmSample;
using causal::ThresholdMechanism;

/// Root node: value = 0 + noise.
NodeSpec Root(const std::string& name, NoiseSpec noise) {
  return NodeSpec{name, {}, causal::ConstantMechanism(0.0), noise};
}

/// Converts a 0/1-valued node to a string column with the given names.
Result<data::Column> BinaryToStrings(const ScmSample& sample,
                                     const std::string& node,
                                     const std::string& zero_name,
                                     const std::string& one_name) {
  FAIRLAW_ASSIGN_OR_RETURN(const std::vector<double>* values,
                           sample.Values(node));
  std::vector<std::string> strings(values->size());
  for (size_t i = 0; i < values->size(); ++i) {
    strings[i] = (*values)[i] == 1.0 ? one_name : zero_name;
  }
  return data::Column::FromStrings(std::move(strings));
}

Result<data::Column> NodeToDoubles(const ScmSample& sample,
                                   const std::string& node) {
  FAIRLAW_ASSIGN_OR_RETURN(const std::vector<double>* values,
                           sample.Values(node));
  return data::Column::FromDoubles(*values);
}

Result<data::Column> BinaryToInt64(const ScmSample& sample,
                                   const std::string& node) {
  FAIRLAW_ASSIGN_OR_RETURN(const std::vector<double>* values,
                           sample.Values(node));
  std::vector<int64_t> ints(values->size());
  for (size_t i = 0; i < values->size(); ++i) {
    ints[i] = (*values)[i] == 1.0 ? 1 : 0;
  }
  return data::Column::FromInt64s(std::move(ints));
}

}  // namespace

Result<ScenarioData> MakeHiringScenario(const HiringOptions& options,
                                        stats::Rng* rng) {
  if (options.n < 10) {
    return Status::Invalid("MakeHiringScenario: n must be >= 10");
  }
  if (options.female_share <= 0.0 || options.female_share >= 1.0) {
    return Status::Invalid("MakeHiringScenario: female_share must lie in "
                           "(0,1)");
  }
  Scm scm;
  // gender = 1 (female) iff the uniform latent falls below female_share.
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("gender_u",
                                         NoiseSpec::Uniform(0.0, 1.0))));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "gender",
      {"gender_u"},
      ThresholdMechanism({-1.0}, options.female_share),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("skill",
                                         NoiseSpec::Gaussian(0.0, 1.0))));
  // University prestige: driven by skill but depressed for women in
  // proportion to proxy_strength — the §IV-B proxy channel.
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "university",
      {"skill", "gender"},
      LinearMechanism({0.8, -options.proxy_strength}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.6)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "experience",
      {"skill"},
      LinearMechanism({0.7}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.7)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "test_score",
      {"skill"},
      LinearMechanism({0.9}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.4)}));
  // Merit is gender-blind: a good match iff skill is above average.
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "merit", {"skill"}, ThresholdMechanism({1.0}, 0.0), NoiseSpec::None()}));
  // Historical hiring: skill-driven but with a direct gender penalty —
  // the disparate-treatment channel the label carries into training data.
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "hire_latent",
      {"skill", "gender"},
      LinearMechanism({1.2, -options.label_bias}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.8)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "hired",
      {"hire_latent"},
      ThresholdMechanism({1.0}, -0.2),
      NoiseSpec::None()}));

  FAIRLAW_ASSIGN_OR_RETURN(ScmSample sample, scm.Sample(options.n, rng));

  FAIRLAW_ASSIGN_OR_RETURN(data::Column gender,
                           BinaryToStrings(sample, "gender", "male",
                                           "female"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column university,
                           NodeToDoubles(sample, "university"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column experience,
                           NodeToDoubles(sample, "experience"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column test_score,
                           NodeToDoubles(sample, "test_score"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column merit, BinaryToInt64(sample, "merit"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column hired, BinaryToInt64(sample, "hired"));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Schema schema,
      data::Schema::Make({{"gender", data::DataType::kString},
                          {"university", data::DataType::kDouble},
                          {"experience", data::DataType::kDouble},
                          {"test_score", data::DataType::kDouble},
                          {"merit", data::DataType::kInt64},
                          {"hired", data::DataType::kInt64}}));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Table table,
      data::Table::Make(std::move(schema),
                        {std::move(gender), std::move(university),
                         std::move(experience), std::move(test_score),
                         std::move(merit), std::move(hired)}));

  ScenarioData scenario{std::move(scm), std::move(sample), std::move(table),
                        {"university", "experience", "test_score"},
                        {"gender"},
                        "hired",
                        "merit"};
  return scenario;
}

Result<ScenarioData> MakeLendingScenario(const LendingOptions& options,
                                         stats::Rng* rng) {
  if (options.n < 10) {
    return Status::Invalid("MakeLendingScenario: n must be >= 10");
  }
  if (options.minority_share <= 0.0 || options.minority_share >= 1.0) {
    return Status::Invalid("MakeLendingScenario: minority_share must lie in "
                           "(0,1)");
  }
  Scm scm;
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("group_u",
                                         NoiseSpec::Uniform(0.0, 1.0))));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "group",
      {"group_u"},
      ThresholdMechanism({-1.0}, options.minority_share),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("earning_ability",
                                         NoiseSpec::Gaussian(0.0, 1.0))));
  // Structural income gap: the §IV-A "structural/historical inequality"
  // channel, distinct from decision bias.
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "income",
      {"earning_ability", "group"},
      LinearMechanism({0.8, -options.income_gap}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.5)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "credit_history",
      {"earning_ability"},
      LinearMechanism({0.6}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.6)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "debt_ratio",
      {"income"},
      LinearMechanism({-0.4}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.8)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "merit",
      {"earning_ability", "debt_ratio"},
      ThresholdMechanism({1.0, -0.3}, 0.1),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "approve_latent",
      {"earning_ability", "debt_ratio", "group"},
      LinearMechanism({1.0, -0.3, -options.label_bias}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.7)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "approved",
      {"approve_latent"},
      ThresholdMechanism({1.0}, 0.0),
      NoiseSpec::None()}));

  FAIRLAW_ASSIGN_OR_RETURN(ScmSample sample, scm.Sample(options.n, rng));

  FAIRLAW_ASSIGN_OR_RETURN(data::Column group,
                           BinaryToStrings(sample, "group", "majority",
                                           "minority"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column income,
                           NodeToDoubles(sample, "income"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column credit_history,
                           NodeToDoubles(sample, "credit_history"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column debt_ratio,
                           NodeToDoubles(sample, "debt_ratio"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column merit, BinaryToInt64(sample, "merit"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column approved,
                           BinaryToInt64(sample, "approved"));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Schema schema,
      data::Schema::Make({{"group", data::DataType::kString},
                          {"income", data::DataType::kDouble},
                          {"credit_history", data::DataType::kDouble},
                          {"debt_ratio", data::DataType::kDouble},
                          {"merit", data::DataType::kInt64},
                          {"approved", data::DataType::kInt64}}));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Table table,
      data::Table::Make(std::move(schema),
                        {std::move(group), std::move(income),
                         std::move(credit_history), std::move(debt_ratio),
                         std::move(merit), std::move(approved)}));

  ScenarioData scenario{std::move(scm), std::move(sample), std::move(table),
                        {"income", "credit_history", "debt_ratio"},
                        {"group"},
                        "approved",
                        "merit"};
  return scenario;
}

Result<ScenarioData> MakePromotionScenario(const PromotionOptions& options,
                                           stats::Rng* rng) {
  if (options.n < 10) {
    return Status::Invalid("MakePromotionScenario: n must be >= 10");
  }
  if (options.female_share <= 0.0 || options.female_share >= 1.0 ||
      options.caucasian_share <= 0.0 || options.caucasian_share >= 1.0) {
    return Status::Invalid("MakePromotionScenario: shares must lie in (0,1)");
  }
  Scm scm;
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("gender_u",
                                         NoiseSpec::Uniform(0.0, 1.0))));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "gender",
      {"gender_u"},
      ThresholdMechanism({-1.0}, options.female_share),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("race_u",
                                         NoiseSpec::Uniform(0.0, 1.0))));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "race",
      {"race_u"},
      ThresholdMechanism({-1.0}, options.caucasian_share),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("ability",
                                         NoiseSpec::Gaussian(0.0, 1.0))));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "performance",
      {"ability"},
      LinearMechanism({0.9}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.5)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "tenure",
      {"ability"},
      LinearMechanism({0.5}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.8)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "merit",
      {"ability"},
      ThresholdMechanism({1.0}, 0.0),
      NoiseSpec::None()}));
  // Gerrymandered penalty cell: the §IV-C pattern. Penalized iff
  // gender == race (i.e. female&caucasian or male&non_caucasian), which
  // leaves both marginal selection rates balanced for balanced shares.
  Mechanism gerrymander = [](std::span<const double> parents) {
    return parents[0] == parents[1] ? 1.0 : 0.0;
  };
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "penalized", {"gender", "race"}, gerrymander, NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "promote_latent",
      {"ability", "penalized"},
      LinearMechanism({1.0, -options.subgroup_bias}, 0.3),
      NoiseSpec::Gaussian(0.0, 0.7)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "promoted",
      {"promote_latent"},
      ThresholdMechanism({1.0}, 0.0),
      NoiseSpec::None()}));

  FAIRLAW_ASSIGN_OR_RETURN(ScmSample sample, scm.Sample(options.n, rng));

  FAIRLAW_ASSIGN_OR_RETURN(data::Column gender,
                           BinaryToStrings(sample, "gender", "male",
                                           "female"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column race,
                           BinaryToStrings(sample, "race", "non_caucasian",
                                           "caucasian"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column performance,
                           NodeToDoubles(sample, "performance"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column tenure,
                           NodeToDoubles(sample, "tenure"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column merit, BinaryToInt64(sample, "merit"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column promoted,
                           BinaryToInt64(sample, "promoted"));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Schema schema,
      data::Schema::Make({{"gender", data::DataType::kString},
                          {"race", data::DataType::kString},
                          {"performance", data::DataType::kDouble},
                          {"tenure", data::DataType::kDouble},
                          {"merit", data::DataType::kInt64},
                          {"promoted", data::DataType::kInt64}}));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Table table,
      data::Table::Make(std::move(schema),
                        {std::move(gender), std::move(race),
                         std::move(performance), std::move(tenure),
                         std::move(merit), std::move(promoted)}));

  ScenarioData scenario{std::move(scm), std::move(sample), std::move(table),
                        {"performance", "tenure"},
                        {"gender", "race"},
                        "promoted",
                        "merit"};
  return scenario;
}

Result<ScenarioData> MakeAdmissionsScenario(const AdmissionsOptions& options,
                                            stats::Rng* rng) {
  if (options.n < 10) {
    return Status::Invalid("MakeAdmissionsScenario: n must be >= 10");
  }
  if (options.first_gen_share <= 0.0 || options.first_gen_share >= 1.0) {
    return Status::Invalid("MakeAdmissionsScenario: first_gen_share must "
                           "lie in (0,1)");
  }
  Scm scm;
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("first_gen_u",
                                         NoiseSpec::Uniform(0.0, 1.0))));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "first_gen",
      {"first_gen_u"},
      ThresholdMechanism({-1.0}, options.first_gen_share),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(Root("ability",
                                         NoiseSpec::Gaussian(0.0, 1.0))));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "gpa",
      {"ability"},
      LinearMechanism({0.8}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.5)}));
  // Test-prep access: the proxy channel — first-gen applicants score
  // lower on the standardized test at equal ability.
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "test_score",
      {"ability", "first_gen"},
      LinearMechanism({0.9, -options.coaching_gap}, 0.0),
      NoiseSpec::Gaussian(0.0, 0.5)}));
  // Legacy status: overwhelmingly non-first-gen.
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "legacy_latent",
      {"first_gen"},
      LinearMechanism({-2.0}, -0.5),
      NoiseSpec::Gaussian(0.0, 1.0)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "legacy",
      {"legacy_latent"},
      ThresholdMechanism({1.0}, 0.0),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "merit", {"ability"}, ThresholdMechanism({1.0}, 0.0),
      NoiseSpec::None()}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "admit_latent",
      {"ability", "legacy", "first_gen"},
      LinearMechanism({1.0, options.legacy_weight, -options.label_bias},
                      -0.2),
      NoiseSpec::Gaussian(0.0, 0.7)}));
  FAIRLAW_RETURN_NOT_OK(scm.AddNode(NodeSpec{
      "admitted",
      {"admit_latent"},
      ThresholdMechanism({1.0}, 0.0),
      NoiseSpec::None()}));

  FAIRLAW_ASSIGN_OR_RETURN(ScmSample sample, scm.Sample(options.n, rng));

  FAIRLAW_ASSIGN_OR_RETURN(data::Column first_gen,
                           BinaryToStrings(sample, "first_gen",
                                           "continuing_gen", "first_gen"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column gpa, NodeToDoubles(sample, "gpa"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column test_score,
                           NodeToDoubles(sample, "test_score"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column legacy,
                           NodeToDoubles(sample, "legacy"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column merit, BinaryToInt64(sample, "merit"));
  FAIRLAW_ASSIGN_OR_RETURN(data::Column admitted,
                           BinaryToInt64(sample, "admitted"));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Schema schema,
      data::Schema::Make({{"first_gen", data::DataType::kString},
                          {"gpa", data::DataType::kDouble},
                          {"test_score", data::DataType::kDouble},
                          {"legacy", data::DataType::kDouble},
                          {"merit", data::DataType::kInt64},
                          {"admitted", data::DataType::kInt64}}));
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Table table,
      data::Table::Make(std::move(schema),
                        {std::move(first_gen), std::move(gpa),
                         std::move(test_score), std::move(legacy),
                         std::move(merit), std::move(admitted)}));

  ScenarioData scenario{std::move(scm), std::move(sample), std::move(table),
                        {"gpa", "test_score", "legacy"},
                        {"first_gen"},
                        "admitted",
                        "merit"};
  return scenario;
}

}  // namespace fairlaw::sim
