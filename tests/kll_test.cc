// Tests for the deterministic KLL quantile sketch (stats/kll.h): rank
// error against the exact empirical quantiles on large streams, the
// determinism contract (same operation sequence => member-for-member
// equal state, regardless of how Adds are batched), fixed-order merge
// identity, and the sketch distance kernels against the exact presorted
// W1/KS kernels within the sketch's error bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/distance.h"
#include "stats/kll.h"
#include "stats/mergeable.h"
#include "stats/rng.h"

namespace fairlaw {
namespace {

using stats::GroupedSketches;
using stats::KllSketch;
using stats::Rng;

/// Exact empirical quantile of a sorted sample, mirroring the sketch's
/// convention: the smallest value whose cumulative count reaches q*n.
double ExactQuantile(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  if (rank >= n) rank = n - 1;
  return sorted[rank];
}

TEST(KllSketchTest, EmptyAndSingleton) {
  KllSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_FALSE(sketch.Quantile(0.5).ok());
  EXPECT_FALSE(sketch.Cdf(0.0).ok());

  sketch.Add(3.5);
  EXPECT_EQ(sketch.count(), 1u);
  ASSERT_TRUE(sketch.Quantile(0.0).ok());
  EXPECT_DOUBLE_EQ(*sketch.Quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(*sketch.Quantile(1.0), 3.5);
  EXPECT_FALSE(sketch.Quantile(-0.1).ok());
  EXPECT_FALSE(sketch.Quantile(1.1).ok());
}

TEST(KllSketchTest, SmallStreamIsExact) {
  // Below the compaction threshold nothing is ever discarded, so every
  // quantile must be exactly the empirical one.
  KllSketch sketch;
  std::vector<double> values;
  for (int i = 99; i >= 0; --i) {
    sketch.Add(static_cast<double>(i));
    values.push_back(static_cast<double>(i));
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(sketch.num_retained(), 100u);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    ASSERT_TRUE(sketch.Quantile(q).ok());
    EXPECT_DOUBLE_EQ(*sketch.Quantile(q), ExactQuantile(values, q))
        << "q=" << q;
  }
}

TEST(KllSketchTest, QuantileErrorBoundOnMillionDraws) {
  // 1e6 mixed-distribution draws; k=200 targets ~1% rank error. We
  // assert a conservative 3% rank-error bound: for each q, the sketch's
  // answer must lie between the exact (q +- 0.03) quantiles.
  Rng rng(7);
  KllSketch sketch;
  std::vector<double> values;
  values.reserve(1000000);
  for (size_t i = 0; i < 1000000; ++i) {
    const double v = (i % 3 == 0) ? rng.Normal(0.0, 1.0)
                                  : rng.Uniform(-2.0, 2.0);
    sketch.Add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(sketch.count(), values.size());
  // Retained memory stays O(k), not O(n).
  EXPECT_LT(sketch.num_retained(), 3000u);

  const double kRankTolerance = 0.03;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    ASSERT_TRUE(sketch.Quantile(q).ok());
    const double estimate = *sketch.Quantile(q);
    const double lo =
        ExactQuantile(values, std::max(0.0, q - kRankTolerance));
    const double hi =
        ExactQuantile(values, std::min(1.0, q + kRankTolerance));
    EXPECT_GE(estimate, lo) << "q=" << q;
    EXPECT_LE(estimate, hi) << "q=" << q;
  }

  // Cdf and Quantile must roughly invert each other.
  const double median = *sketch.Quantile(0.5);
  ASSERT_TRUE(sketch.Cdf(median).ok());
  EXPECT_NEAR(*sketch.Cdf(median), 0.5, 0.05);
}

TEST(KllSketchTest, StateIsPureFunctionOfOperationSequence) {
  // Two sketches fed the same items in the same order are equal
  // member-for-member — no matter that one "batch" paused halfway.
  // This is the property serve's batch-boundary identity rides on.
  Rng rng(11);
  std::vector<double> values;
  for (size_t i = 0; i < 50000; ++i) values.push_back(rng.Uniform());

  KllSketch a;
  KllSketch b;
  for (double v : values) a.Add(v);
  for (size_t i = 0; i < 17; ++i) b.Add(values[i]);
  for (size_t i = 17; i < values.size(); ++i) b.Add(values[i]);
  EXPECT_TRUE(a == b);

  // A different insertion order is allowed to differ — order is part of
  // the operation sequence, which is why every consumer fixes it.
  KllSketch c;
  for (size_t i = values.size(); i > 0; --i) c.Add(values[i - 1]);
  EXPECT_EQ(c.count(), a.count());
}

TEST(KllSketchTest, BucketedMergeIsDeterministicAndAccurate) {
  // Partition a stream into buckets, sketch each bucket, merge in
  // ascending bucket order — WindowRing::Window's shape. The merged
  // state is intentionally NOT identical to a single sequential sketch
  // (each bucket compacts on its own schedule); the contract is that
  // it is a pure function of the bucket states and the merge order
  // (rebuilding reproduces it member-for-member) and that its
  // quantiles stay within the sketch's rank-error bound of the exact
  // stream quantiles.
  Rng rng(13);
  std::vector<double> values;
  for (size_t i = 0; i < 40000; ++i) values.push_back(rng.Normal());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  for (size_t num_buckets : {2u, 7u, 16u}) {
    auto build = [&]() {
      std::vector<KllSketch> buckets(num_buckets);
      const size_t per = values.size() / num_buckets;
      for (size_t i = 0; i < values.size(); ++i) {
        buckets[std::min(i / per, num_buckets - 1)].Add(values[i]);
      }
      KllSketch merged;
      for (const KllSketch& bucket : buckets) merged.Merge(bucket);
      return merged;
    };
    const KllSketch merged = build();
    EXPECT_TRUE(merged == build()) << num_buckets << " buckets";
    EXPECT_EQ(merged.count(), values.size());
    for (double q : {0.1, 0.5, 0.9}) {
      ASSERT_TRUE(merged.Quantile(q).ok());
      const double estimate = *merged.Quantile(q);
      EXPECT_GE(estimate, ExactQuantile(sorted, std::max(0.0, q - 0.03)))
          << num_buckets << " buckets, q=" << q;
      EXPECT_LE(estimate, ExactQuantile(sorted, std::min(1.0, q + 0.03)))
          << num_buckets << " buckets, q=" << q;
    }
  }
}

TEST(KllSketchTest, MergePreservesTotalWeight) {
  Rng rng(17);
  KllSketch a;
  KllSketch b;
  for (size_t i = 0; i < 12345; ++i) a.Add(rng.Uniform());
  for (size_t i = 0; i < 6789; ++i) b.Add(rng.Uniform(1.0, 2.0));
  a.Merge(b);
  EXPECT_EQ(a.count(), 12345u + 6789u);
  uint64_t retained_weight = 0;
  for (const KllSketch::WeightedItem& item : a.SortedItems()) {
    retained_weight += item.weight;
  }
  EXPECT_EQ(retained_weight, a.count());
}

TEST(KllSketchTest, SketchDistancesAgreeWithExactKernels) {
  // Two clearly different distributions: the sketch W1/KS must agree
  // with the exact presorted kernels within the sketch rank error
  // (O(1/k) per sketch, asserted with generous margin).
  Rng rng(19);
  std::vector<double> p_values;
  std::vector<double> q_values;
  KllSketch p;
  KllSketch q;
  for (size_t i = 0; i < 200000; ++i) {
    const double pv = rng.Uniform();
    const double qv = rng.Uniform() * 0.8 + 0.15;
    p_values.push_back(pv);
    q_values.push_back(qv);
    p.Add(pv);
    q.Add(qv);
  }
  ASSERT_TRUE(stats::KolmogorovSmirnov(p_values, q_values).ok());
  const double exact_ks = *stats::KolmogorovSmirnov(p_values, q_values);
  const double exact_w1 = *stats::Wasserstein1Samples(p_values, q_values);

  ASSERT_TRUE(stats::KolmogorovSmirnovSketch(p, q).ok());
  const double sketch_ks = *stats::KolmogorovSmirnovSketch(p, q);
  const double sketch_w1 = *stats::Wasserstein1Sketch(p, q);

  // k=200 => ~1% rank error per sketch; 4% total margin is generous.
  EXPECT_NEAR(sketch_ks, exact_ks, 0.04);
  EXPECT_NEAR(sketch_w1, exact_w1, 0.04);

  // Identical sketches are at distance zero.
  EXPECT_DOUBLE_EQ(*stats::KolmogorovSmirnovSketch(p, p), 0.0);
  EXPECT_DOUBLE_EQ(*stats::Wasserstein1Sketch(p, p), 0.0);

  // Empty operands are errors, not zeros.
  KllSketch empty;
  EXPECT_FALSE(stats::KolmogorovSmirnovSketch(p, empty).ok());
  EXPECT_FALSE(stats::Wasserstein1Sketch(empty, q).ok());
}

TEST(GroupedSketchesTest, KeysKeepFirstSeenOrderAndMergeInKeyOrder) {
  GroupedSketches a;
  a.Add(a.KeyIndex("beta"), 1.0);
  a.Add(a.KeyIndex("alpha"), 2.0);
  a.Add(a.KeyIndex("beta"), 3.0);

  GroupedSketches b;
  b.Add(b.KeyIndex("gamma"), 4.0);
  b.Add(b.KeyIndex("alpha"), 5.0);

  a.MergeFrom(b);
  ASSERT_EQ(a.num_keys(), 3u);
  EXPECT_EQ(a.keys()[0], "beta");
  EXPECT_EQ(a.keys()[1], "alpha");
  EXPECT_EQ(a.keys()[2], "gamma");
  EXPECT_EQ(a.sketch(0).count(), 2u);
  EXPECT_EQ(a.sketch(1).count(), 2u);
  EXPECT_EQ(a.sketch(2).count(), 1u);

  EXPECT_EQ(a.FindKey("gamma"), 2u);
  EXPECT_EQ(a.FindKey("missing"), a.num_keys());
}

}  // namespace
}  // namespace fairlaw
