#include <gtest/gtest.h>

#include "stats/distance.h"
#include "stats/sample_complexity.h"

namespace fairlaw::stats {
namespace {

Sampler GaussianSampler(double mean, double stddev) {
  return [mean, stddev](size_t n, Rng* rng) {
    std::vector<double> sample(n);
    for (double& v : sample) v = rng->Normal(mean, stddev);
    return sample;
  };
}

DistanceEstimator W1Estimator() {
  return [](const std::vector<double>& x, const std::vector<double>& y) {
    return Wasserstein1Samples(x, y);
  };
}

TEST(SampleComplexityTest, ErrorShrinksWithN) {
  Rng rng(17);
  ComplexityCurve curve =
      MeasureSampleComplexity("w1", GaussianSampler(0.0, 1.0),
                              GaussianSampler(2.0, 1.0), W1Estimator(),
                              /*true_distance=*/2.0, {50, 500, 5000},
                              /*repetitions=*/10, &rng)
          .ValueOrDie();
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_GT(curve.points[0].mean_abs_error, curve.points[2].mean_abs_error);
  // Root-n-ish convergence: exponent clearly negative.
  EXPECT_LT(curve.error_rate_exponent, -0.2);
  // Estimates center near the truth at large n.
  EXPECT_NEAR(curve.points[2].mean_estimate, 2.0, 0.1);
}

TEST(SampleComplexityTest, RuntimeGrowsWithN) {
  Rng rng(19);
  ComplexityCurve curve =
      MeasureSampleComplexity("w1", GaussianSampler(0.0, 1.0),
                              GaussianSampler(0.0, 1.0), W1Estimator(), 0.0,
                              {100, 10000}, 5, &rng)
          .ValueOrDie();
  EXPECT_GT(curve.points[1].mean_runtime_us,
            curve.points[0].mean_runtime_us);
}

TEST(SampleComplexityTest, Validation) {
  Rng rng(1);
  auto sampler = GaussianSampler(0.0, 1.0);
  auto estimator = W1Estimator();
  EXPECT_FALSE(MeasureSampleComplexity("x", sampler, sampler, estimator, 0.0,
                                       {}, 5, &rng)
                   .ok());
  EXPECT_FALSE(MeasureSampleComplexity("x", sampler, sampler, estimator, 0.0,
                                       {100}, 1, &rng)
                   .ok());
  EXPECT_FALSE(MeasureSampleComplexity("x", sampler, sampler, estimator, 0.0,
                                       {1}, 5, &rng)
                   .ok());
  EXPECT_FALSE(MeasureSampleComplexity("x", sampler, sampler, estimator, 0.0,
                                       {100}, 5, nullptr)
                   .ok());
}

}  // namespace
}  // namespace fairlaw::stats
