// Post-processing mitigators: group thresholds (Hardt-style) and
// affirmative-action quota selection (§IV-A).
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/group_metrics.h"
#include "mitigation/quota.h"
#include "mitigation/threshold_optimizer.h"
#include "stats/rng.h"

namespace fairlaw::mitigation {
namespace {

using fairlaw::stats::Rng;

struct Scored {
  std::vector<std::string> groups;
  std::vector<double> scores;
  std::vector<int> labels;
};

/// Group "b" scores are depressed by `shift`; labels follow the
/// pre-shift latent so b's scores underestimate b's qualification.
Scored MakeScored(size_t n, double shift, uint64_t seed) {
  Rng rng(seed);
  Scored data;
  for (size_t i = 0; i < n; ++i) {
    bool b = rng.Bernoulli(0.5);
    double latent = rng.Normal(0.0, 1.0);
    double score = 1.0 / (1.0 + std::exp(-(latent - (b ? shift : 0.0))));
    data.groups.push_back(b ? "b" : "a");
    data.scores.push_back(score);
    data.labels.push_back(latent + rng.Normal(0.0, 0.3) > 0.0 ? 1 : 0);
  }
  return data;
}

metrics::MetricInput ToInput(const Scored& data,
                             const std::vector<int>& predictions) {
  metrics::MetricInput input;
  input.groups = data.groups;
  input.predictions = predictions;
  input.labels = data.labels;
  return input;
}

TEST(ThresholdOptimizerTest, DemographicParityEqualizesRates) {
  Scored data = MakeScored(4000, 1.5, 3);
  ThresholdOptimizerOptions options;
  options.target_rate = 0.3;
  GroupThresholds thresholds =
      OptimizeThresholds(data.groups, data.scores, {},
                         ThresholdCriterion::kDemographicParity, options)
          .ValueOrDie();
  std::vector<int> predictions =
      thresholds.Apply(data.groups, data.scores).ValueOrDie();
  metrics::MetricReport report =
      metrics::DemographicParity(ToInput(data, predictions), 0.05)
          .ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  for (const metrics::GroupStats& gs : report.groups) {
    EXPECT_NEAR(gs.selection_rate, 0.3, 0.05);
  }
  // Group b needs a lower threshold than group a.
  EXPECT_LT(thresholds.threshold.at("b"), thresholds.threshold.at("a"));
}

TEST(ThresholdOptimizerTest, SingleThresholdWouldViolateParity) {
  // Sanity baseline: a shared 0.5 threshold yields a large gap on the
  // same data the optimizer fixes.
  Scored data = MakeScored(4000, 1.5, 3);
  std::vector<int> predictions(data.scores.size());
  for (size_t i = 0; i < data.scores.size(); ++i) {
    predictions[i] = data.scores[i] >= 0.5 ? 1 : 0;
  }
  metrics::MetricReport report =
      metrics::DemographicParity(ToInput(data, predictions), 0.05)
          .ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_GT(report.max_gap, 0.3);
}

TEST(ThresholdOptimizerTest, EqualOpportunityEqualizesTpr) {
  Scored data = MakeScored(6000, 1.5, 5);
  ThresholdOptimizerOptions options;
  options.target_tpr = 0.7;
  GroupThresholds thresholds =
      OptimizeThresholds(data.groups, data.scores, data.labels,
                         ThresholdCriterion::kEqualOpportunity, options)
          .ValueOrDie();
  std::vector<int> predictions =
      thresholds.Apply(data.groups, data.scores).ValueOrDie();
  metrics::MetricReport report =
      metrics::EqualOpportunity(ToInput(data, predictions), 0.06)
          .ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  for (const metrics::GroupStats& gs : report.groups) {
    EXPECT_NEAR(gs.tpr, 0.7, 0.06);
  }
}

TEST(ThresholdOptimizerTest, EqualizedOddsReducesBothGaps) {
  Scored data = MakeScored(6000, 1.5, 7);
  // Baseline at shared threshold.
  std::vector<int> baseline(data.scores.size());
  for (size_t i = 0; i < data.scores.size(); ++i) {
    baseline[i] = data.scores[i] >= 0.5 ? 1 : 0;
  }
  double baseline_gap =
      metrics::EqualizedOdds(ToInput(data, baseline), 0.0)
          .ValueOrDie()
          .max_gap;

  GroupThresholds thresholds =
      OptimizeThresholds(data.groups, data.scores, data.labels,
                         ThresholdCriterion::kEqualizedOdds, {})
          .ValueOrDie();
  std::vector<int> predictions =
      thresholds.Apply(data.groups, data.scores).ValueOrDie();
  double optimized_gap =
      metrics::EqualizedOdds(ToInput(data, predictions), 0.0)
          .ValueOrDie()
          .max_gap;
  EXPECT_LT(optimized_gap, baseline_gap * 0.5);
}

TEST(ThresholdOptimizerTest, Validation) {
  Scored data = MakeScored(100, 0.5, 9);
  EXPECT_FALSE(OptimizeThresholds(data.groups, data.scores, {},
                                  ThresholdCriterion::kEqualOpportunity, {})
                   .ok());  // labels required
  EXPECT_FALSE(OptimizeThresholds({}, {}, {},
                                  ThresholdCriterion::kDemographicParity, {})
                   .ok());
  // Unknown group at apply time.
  GroupThresholds thresholds =
      OptimizeThresholds(data.groups, data.scores, {},
                         ThresholdCriterion::kDemographicParity, {})
          .ValueOrDie();
  std::vector<std::string> alien = {"zzz"};
  std::vector<double> score = {0.5};
  EXPECT_TRUE(thresholds.Apply(alien, score).status().IsNotFound());
}

// ---- quota selection ----

TEST(QuotaTest, ReservedShareEnforced) {
  // 10 candidates: males hold the top 6 scores.
  std::vector<std::string> groups = {"m", "m", "m", "m", "m", "m",
                                     "f", "f", "f", "f"};
  std::vector<double> scores = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  QuotaOptions options;
  options.total_selections = 5;
  options.min_share = {{"f", 0.4}};  // at least 2 of 5
  QuotaSelection selection =
      SelectWithQuota(groups, scores, options).ValueOrDie();
  EXPECT_EQ(selection.selected_per_group["f"], 2u);
  EXPECT_EQ(selection.selected_per_group["m"], 3u);
  // The two selected women are the best-scoring women.
  EXPECT_EQ(selection.selected[6], 1);
  EXPECT_EQ(selection.selected[7], 1);
  EXPECT_EQ(selection.selected[8], 0);
  // Two men displaced relative to pure top-5.
  EXPECT_EQ(selection.displaced, 2u);
}

TEST(QuotaTest, NoQuotaIsPureTopK) {
  std::vector<std::string> groups = {"m", "f", "m", "f"};
  std::vector<double> scores = {4, 3, 2, 1};
  QuotaOptions options;
  options.total_selections = 2;
  QuotaSelection selection =
      SelectWithQuota(groups, scores, options).ValueOrDie();
  EXPECT_EQ(selection.selected, (std::vector<int>{1, 1, 0, 0}));
  EXPECT_EQ(selection.displaced, 0u);
}

TEST(QuotaTest, QuotaAlreadySatisfiedCostsNothing) {
  std::vector<std::string> groups = {"f", "f", "m", "m"};
  std::vector<double> scores = {4, 3, 2, 1};
  QuotaOptions options;
  options.total_selections = 2;
  options.min_share = {{"f", 0.5}};
  QuotaSelection selection =
      SelectWithQuota(groups, scores, options).ValueOrDie();
  EXPECT_EQ(selection.displaced, 0u);
  EXPECT_EQ(selection.selected_per_group["f"], 2u);
}

TEST(QuotaTest, GroupSmallerThanReservationReturnsSlots) {
  std::vector<std::string> groups = {"f", "m", "m", "m"};
  std::vector<double> scores = {1, 4, 3, 2};
  QuotaOptions options;
  options.total_selections = 3;
  options.min_share = {{"f", 0.9}};  // would reserve 3, only 1 woman
  QuotaSelection selection =
      SelectWithQuota(groups, scores, options).ValueOrDie();
  EXPECT_EQ(selection.selected_per_group["f"], 1u);
  EXPECT_EQ(selection.selected_per_group["m"], 2u);
}

TEST(QuotaTest, Validation) {
  std::vector<std::string> groups = {"a", "b"};
  std::vector<double> scores = {1.0, 2.0};
  QuotaOptions options;
  options.total_selections = 0;
  EXPECT_FALSE(SelectWithQuota(groups, scores, options).ok());
  options.total_selections = 5;
  EXPECT_FALSE(SelectWithQuota(groups, scores, options).ok());
  options.total_selections = 1;
  options.min_share = {{"a", 0.6}, {"b", 0.6}};
  EXPECT_FALSE(SelectWithQuota(groups, scores, options).ok());  // sum > 1
  options.min_share = {{"zzz", 0.5}};
  EXPECT_TRUE(
      SelectWithQuota(groups, scores, options).status().IsNotFound());
}

}  // namespace
}  // namespace fairlaw::mitigation
