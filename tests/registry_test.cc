#include <gtest/gtest.h>

#include "core/registry.h"
#include "metrics/group_metrics.h"

namespace fairlaw {
namespace {

metrics::MetricInput SampleInput() {
  metrics::MetricInput input;
  for (int i = 0; i < 10; ++i) {
    input.groups.push_back(i < 5 ? "a" : "b");
    input.predictions.push_back(i % 2);
    input.labels.push_back(i % 2);
  }
  return input;
}

TEST(RegistryTest, DefaultHasSevenMetrics) {
  const MetricRegistry& registry = MetricRegistry::Default();
  EXPECT_EQ(registry.size(), 7u);
  std::vector<std::string> names = registry.Names();
  EXPECT_EQ(names[0], "demographic_parity");
  EXPECT_TRUE(registry.Get("equalized_odds").ok());
  EXPECT_FALSE(registry.Get("zzz").ok());
}

TEST(RegistryTest, EntriesDeclareLabelRequirements) {
  const MetricRegistry& registry = MetricRegistry::Default();
  EXPECT_FALSE(
      registry.Get("demographic_parity").ValueOrDie()->requires_labels);
  EXPECT_TRUE(
      registry.Get("equal_opportunity").ValueOrDie()->requires_labels);
}

TEST(RegistryTest, EntriesAreInvocable) {
  const MetricRegistry& registry = MetricRegistry::Default();
  metrics::MetricInput input = SampleInput();
  for (const std::string& name : registry.Names()) {
    const MetricEntry* entry = registry.Get(name).ValueOrDie();
    Result<metrics::MetricReport> report = entry->fn(input, 0.1);
    ASSERT_TRUE(report.ok()) << name << ": " << report.status().ToString();
    EXPECT_FALSE(report->metric_name.empty());
  }
}

TEST(RegistryTest, EveryRegisteredMetricIsPinnedByName) {
  // fairlaw_lint requires each name registered in core/registry.cc to be
  // referenced by a test; this test pins the full set, so adding a metric
  // without naming it in a test fails both lint and this expectation.
  const std::vector<std::string> expected = {
      "demographic_parity",     "equal_opportunity", "equalized_odds",
      "demographic_disparity",  "disparate_impact_ratio",
      "predictive_parity",      "accuracy_equality",
  };
  EXPECT_EQ(MetricRegistry::Default().Names(), expected);
}

TEST(RegistryTest, CompanionMetricsComputeOnBalancedInput) {
  const MetricRegistry& registry = MetricRegistry::Default();
  metrics::MetricInput input = SampleInput();
  Result<metrics::MetricReport> ppv =
      registry.Get("predictive_parity").ValueOrDie()->fn(input, 0.1);
  ASSERT_TRUE(ppv.ok()) << ppv.status().ToString();
  EXPECT_EQ(ppv->metric_name, "predictive_parity");
  Result<metrics::MetricReport> acc =
      registry.Get("accuracy_equality").ValueOrDie()->fn(input, 0.1);
  ASSERT_TRUE(acc.ok()) << acc.status().ToString();
  EXPECT_EQ(acc->metric_name, "accuracy_equality");
}

TEST(RegistryTest, RegisterRejectsDuplicatesAndBadEntries) {
  MetricRegistry registry;
  MetricEntry entry;
  entry.name = "custom";
  entry.fn = [](const metrics::MetricInput& input, double tolerance) {
    return metrics::DemographicParity(input, tolerance);
  };
  EXPECT_TRUE(registry.Register(entry).ok());
  EXPECT_TRUE(registry.Register(entry).IsAlreadyExists());
  MetricEntry nameless;
  nameless.fn = entry.fn;
  EXPECT_FALSE(registry.Register(nameless).ok());
  MetricEntry functionless;
  functionless.name = "empty";
  EXPECT_FALSE(registry.Register(functionless).ok());
}

}  // namespace
}  // namespace fairlaw
