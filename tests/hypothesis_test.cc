#include <gtest/gtest.h>

#include <cmath>

#include "stats/hypothesis.h"

namespace fairlaw::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p : {0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99}) {
    double z = NormalQuantile(p).ValueOrDie();
    EXPECT_NEAR(NormalCdf(z), p, 1e-8) << "p=" << p;
  }
  EXPECT_NEAR(NormalQuantile(0.975).ValueOrDie(), 1.959964, 1e-5);
  EXPECT_FALSE(NormalQuantile(0.0).ok());
  EXPECT_FALSE(NormalQuantile(1.0).ok());
}

TEST(TwoProportionZTest, EqualRatesNotSignificant) {
  TestResult result = TwoProportionZTest(50, 100, 50, 100).ValueOrDie();
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);
  EXPECT_FALSE(result.significant);
}

TEST(TwoProportionZTest, LargeGapSignificant) {
  TestResult result = TwoProportionZTest(80, 100, 40, 100).ValueOrDie();
  EXPECT_GT(std::fabs(result.statistic), 4.0);
  EXPECT_LT(result.p_value, 0.001);
  EXPECT_TRUE(result.significant);
}

TEST(TwoProportionZTest, SmallSampleNotSignificant) {
  // Same rates as above but tiny n: the gap cannot be established.
  TestResult result = TwoProportionZTest(4, 5, 2, 5).ValueOrDie();
  EXPECT_FALSE(result.significant);
}

TEST(TwoProportionZTest, DegenerateRates) {
  TestResult result = TwoProportionZTest(0, 10, 0, 10).ValueOrDie();
  EXPECT_FALSE(result.significant);
  result = TwoProportionZTest(10, 10, 10, 10).ValueOrDie();
  EXPECT_FALSE(result.significant);
}

TEST(TwoProportionZTest, Validation) {
  EXPECT_FALSE(TwoProportionZTest(1, 0, 1, 2).ok());
  EXPECT_FALSE(TwoProportionZTest(3, 2, 1, 2).ok());
  EXPECT_FALSE(TwoProportionZTest(-1, 2, 1, 2).ok());
}

TEST(ChiSquareTest, IndependentTableNotSignificant) {
  // Perfectly proportional rows.
  std::vector<std::vector<int64_t>> table = {{20, 80}, {40, 160}};
  TestResult result = ChiSquareIndependence(table).ValueOrDie();
  EXPECT_NEAR(result.statistic, 0.0, 1e-9);
  EXPECT_FALSE(result.significant);
}

TEST(ChiSquareTest, DependentTableSignificant) {
  std::vector<std::vector<int64_t>> table = {{90, 10}, {10, 90}};
  TestResult result = ChiSquareIndependence(table).ValueOrDie();
  EXPECT_GT(result.statistic, 100.0);
  EXPECT_TRUE(result.significant);
}

TEST(ChiSquareTest, Validation) {
  EXPECT_FALSE(ChiSquareIndependence({}).ok());
  EXPECT_FALSE(ChiSquareIndependence({{1, 2}, {3}}).ok());
  EXPECT_FALSE(ChiSquareIndependence({{-1, 2}, {3, 4}}).ok());
  // Single effective row.
  EXPECT_FALSE(ChiSquareIndependence({{1, 2}, {0, 0}}).ok());
}

TEST(RegularizedGammaQTest, KnownChiSquareTail) {
  // Chi-square df=1: P(X > 3.841) ~ 0.05.
  EXPECT_NEAR(RegularizedGammaQ(0.5, 3.841 / 2.0), 0.05, 1e-3);
  // df=2: survival is exp(-x/2); at x=4.605 -> 0.1.
  EXPECT_NEAR(RegularizedGammaQ(1.0, 4.605 / 2.0), 0.1, 1e-3);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(1.0, 0.0), 1.0);
}

TEST(CramersVTest, PerfectAssociationIsOne) {
  std::vector<std::vector<int64_t>> table = {{50, 0}, {0, 50}};
  EXPECT_NEAR(CramersV(table).ValueOrDie(), 1.0, 1e-9);
}

TEST(CramersVTest, IndependenceIsZero) {
  std::vector<std::vector<int64_t>> table = {{25, 25}, {25, 25}};
  EXPECT_NEAR(CramersV(table).ValueOrDie(), 0.0, 1e-9);
}

TEST(MutualInformationTest, IndependenceIsZero) {
  std::vector<std::vector<int64_t>> table = {{25, 25}, {25, 25}};
  EXPECT_NEAR(MutualInformation(table).ValueOrDie(), 0.0, 1e-9);
}

TEST(MutualInformationTest, PerfectAssociationIsEntropy) {
  std::vector<std::vector<int64_t>> table = {{50, 0}, {0, 50}};
  EXPECT_NEAR(MutualInformation(table).ValueOrDie(), std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace fairlaw::stats
