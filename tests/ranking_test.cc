#include <gtest/gtest.h>

#include <cmath>

#include "metrics/ranking_metrics.h"

namespace fairlaw::metrics {
namespace {

TEST(ExposureWeightTest, LogDiscount) {
  EXPECT_DOUBLE_EQ(ExposureWeight(1), 1.0);
  EXPECT_NEAR(ExposureWeight(3), 0.5, 1e-12);
  EXPECT_GT(ExposureWeight(2), ExposureWeight(3));
}

TEST(ExposureFairnessTest, InterleavedRankingIsNearFair) {
  std::vector<std::string> ranking;
  for (int i = 0; i < 25; ++i) {
    ranking.push_back("a");
    ranking.push_back("b");
  }
  RankingFairnessReport report = ExposureFairness(ranking).ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_GT(report.min_exposure_ratio, 0.9);
}

TEST(ExposureFairnessTest, SegregatedRankingFails) {
  // All of group b stacked at the bottom.
  std::vector<std::string> ranking(25, "a");
  ranking.insert(ranking.end(), 25, "b");
  RankingFairnessReport report = ExposureFairness(ranking).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_LT(report.min_exposure_ratio, 0.8);
  EXPECT_NE(report.detail.find("b"), std::string::npos);
  // Exposure shares sum to 1.
  double total = 0.0;
  for (const GroupExposure& exposure : report.groups) {
    total += exposure.exposure_share;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExposureFairnessTest, Validation) {
  EXPECT_FALSE(ExposureFairness({}).ok());
  EXPECT_FALSE(ExposureFairness({"a", "a"}).ok());  // single group
  EXPECT_FALSE(ExposureFairness({"a", "b"}, 0.0).ok());
}

TEST(TopKParityTest, DetectsTopHeavySkew) {
  std::vector<std::string> ranking(10, "a");
  ranking.insert(ranking.end(), 10, "b");
  PrefixParityReport report =
      TopKParity(ranking, {5, 10, 20}).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_NEAR(report.max_gap, 0.5, 1e-12);  // top-5 is 100% a vs 50%
  EXPECT_TRUE(report.worst_prefix == 5 || report.worst_prefix == 10);
  // The full prefix is always fair.
  PrefixParityReport full = TopKParity(ranking, {20}).ValueOrDie();
  EXPECT_TRUE(full.satisfied);
  EXPECT_NEAR(full.max_gap, 0.0, 1e-12);
}

TEST(TopKParityTest, Validation) {
  std::vector<std::string> ranking = {"a", "b"};
  EXPECT_FALSE(TopKParity({}, {1}).ok());
  EXPECT_FALSE(TopKParity(ranking, {}).ok());
  EXPECT_FALSE(TopKParity(ranking, {0}).ok());
  EXPECT_FALSE(TopKParity(ranking, {3}).ok());
  EXPECT_FALSE(TopKParity(ranking, {1}, -0.1).ok());
}

TEST(FairRerankTest, EnforcesPrefixQuota) {
  // Group b's candidates all score below group a's.
  std::vector<std::string> groups = {"a", "a", "a", "a", "b", "b", "b",
                                     "b"};
  std::vector<double> scores = {8, 7, 6, 5, 4, 3, 2, 1};
  std::vector<size_t> order =
      FairRerank(groups, scores, {{"b", 0.5}}).ValueOrDie();
  ASSERT_EQ(order.size(), 8u);
  // Every prefix k must contain >= floor(k/2) b's.
  size_t b_count = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    if (groups[order[k]] == "b") ++b_count;
    EXPECT_GE(b_count, (k + 1) / 2) << "prefix " << k + 1;
  }
  // Within each group the score order is preserved.
  double last_a = 1e9;
  double last_b = 1e9;
  for (size_t index : order) {
    double& last = groups[index] == "a" ? last_a : last_b;
    EXPECT_LE(scores[index], last);
    last = scores[index];
  }
  // And the re-ranked list passes the exposure audit.
  std::vector<std::string> reranked_groups;
  for (size_t index : order) reranked_groups.push_back(groups[index]);
  EXPECT_TRUE(ExposureFairness(reranked_groups).ValueOrDie().satisfied);
}

TEST(FairRerankTest, NoConstraintsIsPureScoreOrder) {
  std::vector<std::string> groups = {"a", "b", "a"};
  std::vector<double> scores = {1.0, 3.0, 2.0};
  std::vector<size_t> order = FairRerank(groups, scores, {}).ValueOrDie();
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST(FairRerankTest, QuotaGroupExhaustionFallsBackGracefully) {
  // Only one b exists; after it is placed the quota is unsatisfiable and
  // the remaining slots go by score.
  std::vector<std::string> groups = {"a", "a", "a", "b"};
  std::vector<double> scores = {4, 3, 2, 1};
  std::vector<size_t> order =
      FairRerank(groups, scores, {{"b", 0.5}}).ValueOrDie();
  EXPECT_EQ(order.size(), 4u);
  // b appears by position 2 (floor(2*0.5)=1 requires one b in top 2).
  EXPECT_TRUE(groups[order[0]] == "b" || groups[order[1]] == "b");
}

TEST(FairRerankTest, Validation) {
  std::vector<std::string> groups = {"a", "b"};
  std::vector<double> scores = {1.0, 2.0};
  EXPECT_FALSE(FairRerank({}, {}, {}).ok());
  EXPECT_FALSE(FairRerank(groups, {1.0}, {}).ok());
  EXPECT_FALSE(FairRerank(groups, scores, {{"a", 1.5}}).ok());
  EXPECT_FALSE(FairRerank(groups, scores, {{"a", 0.6}, {"b", 0.6}}).ok());
  EXPECT_TRUE(
      FairRerank(groups, scores, {{"zzz", 0.5}}).status().IsNotFound());
}

}  // namespace
}  // namespace fairlaw::metrics
