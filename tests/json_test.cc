#include <gtest/gtest.h>

#include "core/json.h"
#include "data/csv.h"
#include "metrics/group_metrics.h"

namespace fairlaw {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("\x01")), "\\u0001");
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter json;
  json.BeginObject();
  json.Field("name", std::string("fairlaw"));
  json.Field("version", int64_t{1});
  json.Field("ratio", 0.5);
  json.Field("ok", true);
  json.Key("items");
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.BeginObject();
  json.Field("nested", false);
  json.EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.Finish().ValueOrDie(),
            "{\"name\":\"fairlaw\",\"version\":1,\"ratio\":0.5,"
            "\"ok\":true,\"items\":[1,2,{\"nested\":false}]}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(std::numeric_limits<double>::quiet_NaN());
  json.Number(std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ(json.Finish().ValueOrDie(), "[null,null]");
}

TEST(JsonWriterTest, UnclosedContainerFailsFinish) {
  JsonWriter json;
  json.BeginObject();
  EXPECT_TRUE(json.Finish().status().IsFailedPrecondition());
}

TEST(MetricReportJsonTest, RoundTripKeyFields) {
  metrics::MetricInput input;
  for (int i = 0; i < 10; ++i) {
    input.groups.push_back(i < 5 ? "a" : "b");
    input.predictions.push_back(i % 5 < 2 ? 1 : 0);  // both groups at 0.4
  }
  metrics::MetricReport report =
      metrics::DemographicParity(input, 0.1).ValueOrDie();
  std::string json = MetricReportToJson(report).ValueOrDie();
  EXPECT_NE(json.find("\"metric\":\"demographic_parity\""),
            std::string::npos);
  EXPECT_NE(json.find("\"satisfied\":true"), std::string::npos);
  EXPECT_NE(json.find("\"group\":\"a\""), std::string::npos);
}

TEST(SuiteReportJsonTest, SerializesFullSuite) {
  data::Table table =
      data::ReadCsvString(
          "g,score,pred,label\n"
          "a,1.0,1,1\na,0.5,1,0\na,0.2,0,0\na,0.9,1,1\n"
          "b,0.8,0,1\nb,0.3,0,0\nb,0.1,0,0\nb,0.7,1,1\n")
          .ValueOrDie();
  SuiteConfig config;
  config.audit.protected_column = "g";
  config.audit.prediction_column = "pred";
  config.audit.label_column = "label";
  config.proxy_candidates = {"score"};
  config.subgroup_columns = {"g"};
  config.subgroup_options.min_support = 2;
  config.sampling_options.min_count = 2;
  config.sampling_options.max_ci_halfwidth = 0.9;
  SuiteReport report = RunFairnessSuite(table, config).ValueOrDie();
  std::string json = SuiteReportToJson(report).ValueOrDie();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"proxies\":["), std::string::npos);
  EXPECT_NE(json.find("\"subgroups\":"), std::string::npos);
  EXPECT_NE(json.find("\"sampling\":["), std::string::npos);
  EXPECT_NE(json.find("\"four_fifths\":"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity check).
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace fairlaw
