#include <gtest/gtest.h>

#include "audit/sampling_adequacy.h"

namespace fairlaw::audit {
namespace {

metrics::MetricInput MakeInput(int big_n, int small_n) {
  metrics::MetricInput input;
  for (int i = 0; i < big_n; ++i) {
    input.groups.push_back("majority");
    input.predictions.push_back(i % 2);
  }
  for (int i = 0; i < small_n; ++i) {
    input.groups.push_back("minority");
    input.predictions.push_back(i % 2);
  }
  return input;
}

TEST(SamplingAdequacyTest, SmallGroupFlagged) {
  metrics::MetricInput input = MakeInput(2000, 8);
  SamplingReport report = AssessSamplingAdequacy(input).ValueOrDie();
  ASSERT_EQ(report.groups.size(), 2u);
  EXPECT_FALSE(report.all_adequate);
  for (const GroupSupport& support : report.groups) {
    if (support.group == "majority") {
      EXPECT_TRUE(support.adequate);
      EXPECT_LT(support.ci_halfwidth, 0.03);
    } else {
      EXPECT_FALSE(support.adequate);
      EXPECT_GT(support.ci_halfwidth, 0.3);
    }
  }
  EXPECT_NE(report.detail.find("minority"), std::string::npos);
}

TEST(SamplingAdequacyTest, BalancedLargeGroupsPass) {
  metrics::MetricInput input = MakeInput(1000, 1000);
  SamplingReport report = AssessSamplingAdequacy(input).ValueOrDie();
  EXPECT_TRUE(report.all_adequate);
  EXPECT_TRUE(report.detail.empty());
}

TEST(SamplingAdequacyTest, HalfwidthMatchesNormalFormula) {
  metrics::MetricInput input = MakeInput(400, 400);
  SamplingReport report = AssessSamplingAdequacy(input).ValueOrDie();
  // p = 0.5, n = 400, z(0.95) = 1.96: hw = 1.96*sqrt(.25/400) = 0.049.
  EXPECT_NEAR(report.groups[0].ci_halfwidth, 0.049, 0.001);
}

TEST(SamplingAdequacyTest, Validation) {
  metrics::MetricInput input = MakeInput(10, 10);
  SamplingAdequacyOptions options;
  options.confidence = 1.5;
  EXPECT_FALSE(AssessSamplingAdequacy(input, options).ok());
  options.confidence = 0.95;
  options.max_ci_halfwidth = 0.0;
  EXPECT_FALSE(AssessSamplingAdequacy(input, options).ok());
}

TEST(RequiredSampleSizeTest, MatchesClosedForm) {
  // Worst case p=.5, hw=.05, 95%: n = 1.96^2*.25/.0025 ~ 384.
  size_t n = RequiredSampleSize(0.5, 0.05, 0.95).ValueOrDie();
  EXPECT_NEAR(static_cast<double>(n), 384.0, 2.0);
  // Smaller halfwidth quadruples the requirement when halved.
  size_t n2 = RequiredSampleSize(0.5, 0.025, 0.95).ValueOrDie();
  EXPECT_NEAR(static_cast<double>(n2), 4.0 * static_cast<double>(n), 8.0);
  // Degenerate rate needs 1 sample.
  EXPECT_EQ(RequiredSampleSize(0.0, 0.05, 0.95).ValueOrDie(), 1u);
}

TEST(RequiredSampleSizeTest, Validation) {
  EXPECT_FALSE(RequiredSampleSize(1.5, 0.05, 0.95).ok());
  EXPECT_FALSE(RequiredSampleSize(0.5, 0.0, 0.95).ok());
  EXPECT_FALSE(RequiredSampleSize(0.5, 0.05, 0.0).ok());
}

}  // namespace
}  // namespace fairlaw::audit
