// Isotonic (PAV) calibration and the per-group calibration repairer.
#include <gtest/gtest.h>

#include "metrics/calibration_metric.h"
#include "ml/isotonic.h"
#include "mitigation/group_calibrator.h"
#include "stats/rng.h"

namespace fairlaw {
namespace {

using fairlaw::stats::Rng;
using ml::IsotonicCalibrator;

TEST(IsotonicTest, AlreadyMonotoneDataIsInterpolated) {
  std::vector<double> scores = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> targets = {0.1, 0.2, 0.3, 0.4};
  IsotonicCalibrator calibrator =
      IsotonicCalibrator::Fit(scores, targets).ValueOrDie();
  EXPECT_DOUBLE_EQ(calibrator.Predict(1.0), 0.1);
  EXPECT_DOUBLE_EQ(calibrator.Predict(4.0), 0.4);
  EXPECT_NEAR(calibrator.Predict(2.5), 0.25, 1e-12);
  // Clamped outside the range.
  EXPECT_DOUBLE_EQ(calibrator.Predict(-10.0), 0.1);
  EXPECT_DOUBLE_EQ(calibrator.Predict(10.0), 0.4);
}

TEST(IsotonicTest, PoolsViolators) {
  // Decreasing segment {0.9, 0.1} must merge into its mean.
  std::vector<double> scores = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> targets = {0.0, 0.9, 0.1, 1.0};
  IsotonicCalibrator calibrator =
      IsotonicCalibrator::Fit(scores, targets).ValueOrDie();
  // Fitted values are non-decreasing.
  const std::vector<double>& values = calibrator.knot_values();
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i - 1], values[i]);
  }
  // Violating pair pooled to 0.5.
  EXPECT_NEAR(calibrator.Predict(2.5), 0.5, 1e-12);
}

TEST(IsotonicTest, WeightsShiftPooledMeans) {
  std::vector<double> scores = {1.0, 2.0};
  std::vector<double> targets = {1.0, 0.0};  // violator pair
  std::vector<double> weights = {3.0, 1.0};
  IsotonicCalibrator calibrator =
      IsotonicCalibrator::Fit(scores, targets, weights).ValueOrDie();
  // Pooled mean = (3*1 + 1*0) / 4 = 0.75 everywhere.
  EXPECT_NEAR(calibrator.Predict(1.5), 0.75, 1e-12);
}

TEST(IsotonicTest, UnsortedInputHandled) {
  std::vector<double> scores = {3.0, 1.0, 2.0};
  std::vector<double> targets = {0.3, 0.1, 0.2};
  IsotonicCalibrator calibrator =
      IsotonicCalibrator::Fit(scores, targets).ValueOrDie();
  EXPECT_NEAR(calibrator.Predict(2.0), 0.2, 1e-12);
}

TEST(IsotonicTest, Validation) {
  EXPECT_FALSE(IsotonicCalibrator::Fit({}, {}).ok());
  EXPECT_FALSE(IsotonicCalibrator::Fit({1.0}, {0.5, 0.6}).ok());
  EXPECT_FALSE(IsotonicCalibrator::Fit({1.0}, {0.5}, {-1.0}).ok());
  EXPECT_FALSE(IsotonicCalibrator::Fit({1.0}, {0.5}, {0.0}).ok());
}

TEST(GroupCalibratorTest, RepairsMiscalibratedGroup) {
  // Group b's raw scores systematically overstate the outcome rate.
  Rng rng(13);
  std::vector<std::string> groups;
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 6000; ++i) {
    bool b = rng.Bernoulli(0.5);
    double score = rng.Uniform(0.05, 0.95);
    double true_rate = b ? std::max(0.0, score - 0.25) : score;
    groups.push_back(b ? "b" : "a");
    scores.push_back(score);
    labels.push_back(rng.Bernoulli(true_rate) ? 1 : 0);
  }

  metrics::CalibrationReport before =
      metrics::CalibrationWithinGroups(groups, labels, scores)
          .ValueOrDie();
  EXPECT_GT(before.max_ece, 0.15);

  mitigation::GroupCalibrator calibrator =
      mitigation::GroupCalibrator::Fit(groups, scores, labels).ValueOrDie();
  std::vector<double> repaired =
      calibrator.CalibrateBatch(groups, scores).ValueOrDie();
  // Calibrated outputs must be valid probabilities.
  for (double p : repaired) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  metrics::CalibrationReport after =
      metrics::CalibrationWithinGroups(groups, labels, repaired)
          .ValueOrDie();
  EXPECT_LT(after.max_ece, before.max_ece * 0.3);
}

TEST(GroupCalibratorTest, Validation) {
  EXPECT_FALSE(mitigation::GroupCalibrator::Fit({}, {}, {}).ok());
  EXPECT_FALSE(
      mitigation::GroupCalibrator::Fit({"a"}, {0.5}, {2}).ok());
  mitigation::GroupCalibrator calibrator =
      mitigation::GroupCalibrator::Fit({"a", "a"}, {0.2, 0.8}, {0, 1})
          .ValueOrDie();
  EXPECT_TRUE(calibrator.Calibrate("zzz", 0.5).status().IsNotFound());
  EXPECT_FALSE(calibrator.CalibrateBatch({"a"}, {0.5, 0.6}).ok());
}

}  // namespace
}  // namespace fairlaw
