#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/group_by.h"

namespace fairlaw::data {
namespace {

Table MakeTable() {
  return ReadCsvString(
             "gender,dept,hired\n"
             "f,eng,1\n"
             "m,eng,1\n"
             "f,sales,0\n"
             "m,eng,0\n"
             "f,eng,1\n")
      .ValueOrDie();
}

TEST(GroupByTest, SingleColumn) {
  Table table = MakeTable();
  std::vector<Group> groups = GroupBy(table, {"gender"}).ValueOrDie();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key[0], "f");  // first-seen order
  EXPECT_EQ(groups[0].rows, (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(groups[1].key[0], "m");
  EXPECT_EQ(groups[1].rows, (std::vector<size_t>{1, 3}));
}

TEST(GroupByTest, MultiColumn) {
  Table table = MakeTable();
  std::vector<Group> groups =
      GroupBy(table, {"gender", "dept"}).ValueOrDie();
  EXPECT_EQ(groups.size(), 3u);  // f/eng, m/eng, f/sales
  EXPECT_EQ(groups[0].KeyString({"gender", "dept"}), "gender=f,dept=eng");
}

TEST(GroupByTest, NonStringColumnsGroupByRenderedValue) {
  Table table = MakeTable();
  std::vector<Group> groups = GroupBy(table, {"hired"}).ValueOrDie();
  EXPECT_EQ(groups.size(), 2u);
}

TEST(GroupByTest, Validation) {
  Table table = MakeTable();
  EXPECT_FALSE(GroupBy(table, {}).ok());
  EXPECT_FALSE(GroupBy(table, {"missing"}).ok());
}

TEST(DistinctValuesTest, FirstSeenOrder) {
  Table table = MakeTable();
  EXPECT_EQ(DistinctValues(table, "dept").ValueOrDie(),
            (std::vector<std::string>{"eng", "sales"}));
}

TEST(ValueCountsTest, AlignedWithDistinct) {
  Table table = MakeTable();
  EXPECT_EQ(ValueCounts(table, "gender").ValueOrDie(),
            (std::vector<int64_t>{3, 2}));
}

}  // namespace
}  // namespace fairlaw::data
