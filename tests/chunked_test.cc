// Tests for the chunked columnar substrate and the morsel-driven audit
// engine (DESIGN.md §14): chunk-boundary edges, nulls straddling chunk
// edges, byte-identical audit output across chunk sizes / thread counts /
// ingestion paths, the chunked subgroup walk against the row-wise oracle,
// and the radix/presorted tiers of the distance path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "base/string_util.h"
#include "audit/subgroup.h"
#include "data/bitmap.h"
#include "data/chunked.h"
#include "data/csv.h"
#include "data/table.h"
#include "stats/distance.h"
#include "stats/rng.h"
#include "stats/sort.h"

namespace fairlaw {
namespace {

using audit::AuditConfig;
using audit::AuditResult;
using audit::SubgroupAuditOptions;
using audit::SubgroupAuditResult;
using data::ChunkedTable;
using data::Table;
using stats::Rng;

/// Deterministic decisions CSV: group, stratum, prediction, label, score.
std::string MakeAuditCsv(size_t rows, uint64_t seed) {
  const char* groups[] = {"a", "b", "c"};
  const double rates[] = {0.3, 0.5, 0.7};
  Rng rng(seed);
  std::string text = "g,st,p,y,s\n";
  for (size_t i = 0; i < rows; ++i) {
    const size_t g = static_cast<size_t>(rng.UniformInt(3));
    text += groups[g];
    text += ",s";
    text += std::to_string(rng.UniformInt(2));
    text += ',';
    text += rng.Bernoulli(rates[g]) ? '1' : '0';
    text += ',';
    text += rng.Bernoulli(0.5) ? '1' : '0';
    text += ',';
    text += FormatDouble(rng.Uniform(), 6);
    text += '\n';
  }
  return text;
}

AuditConfig FullAuditConfig() {
  AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "p";
  config.label_column = "y";
  config.score_column = "s";
  config.strata_columns = {"st"};
  config.min_stratum_size = 5;
  config.audit_score_distribution = true;
  return config;
}

bool SameCells(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (a.column(c).IsValid(r) != b.column(c).IsValid(r)) return false;
      if (a.column(c).ValueToString(r) != b.column(c).ValueToString(r)) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// ChunkedTable substrate.

TEST(ChunkedTableTest, BoundarySizesSplitAndRoundTrip) {
  // 0, 1, chunk-1, chunk, chunk+1, and 3*chunk+7 rows at chunk size 8.
  const size_t kChunk = 8;
  for (size_t rows : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                      size_t{31}}) {
    Table table = data::ReadCsvString(MakeAuditCsv(rows, 11)).ValueOrDie();
    ChunkedTable chunked = ChunkedTable::FromTable(table, kChunk).ValueOrDie();
    EXPECT_EQ(chunked.num_rows(), rows);
    EXPECT_EQ(chunked.num_chunks(), (rows + kChunk - 1) / kChunk);
    size_t total = 0;
    for (size_t c = 0; c < chunked.num_chunks(); ++c) {
      EXPECT_GE(chunked.chunk(c).num_rows(), 1u);
      EXPECT_LE(chunked.chunk(c).num_rows(), kChunk);
      total += chunked.chunk(c).num_rows();
    }
    EXPECT_EQ(total, rows);
    Table back = chunked.Materialize().ValueOrDie();
    EXPECT_TRUE(SameCells(table, back)) << "rows=" << rows;
  }
}

TEST(ChunkedTableTest, ZeroRowTableKeepsSchemaWithZeroChunks) {
  Table table = data::ReadCsvString("g,p\n").ValueOrDie();
  ChunkedTable chunked = ChunkedTable::FromTable(table, 4).ValueOrDie();
  EXPECT_EQ(chunked.num_chunks(), 0u);
  EXPECT_EQ(chunked.num_rows(), 0u);
  EXPECT_TRUE(chunked.schema().HasField("g"));
  Table back = chunked.Materialize().ValueOrDie();
  EXPECT_EQ(back.num_rows(), 0u);
  EXPECT_EQ(back.num_columns(), 2u);
}

TEST(ChunkedTableTest, NullsStraddlingChunkEdgesSurvive) {
  // Nulls at rows 6..9 straddle the 8-row chunk boundary: the last two
  // rows of chunk 0 and the first two of chunk 1.
  std::string text = "x,t\n";
  for (size_t i = 0; i < 12; ++i) {
    const bool null_row = i >= 6 && i <= 9;
    text += null_row ? "" : std::to_string(i);
    text += ",r" + std::to_string(i) + "\n";
  }
  Table table = data::ReadCsvString(text).ValueOrDie();
  ASSERT_EQ(table.GetColumn("x").ValueOrDie()->null_count(), 4u);
  ChunkedTable chunked = ChunkedTable::FromTable(table, 8).ValueOrDie();
  ASSERT_EQ(chunked.num_chunks(), 2u);
  EXPECT_EQ(chunked.chunk(0).GetColumn("x").ValueOrDie()->null_count(), 2u);
  EXPECT_EQ(chunked.chunk(1).GetColumn("x").ValueOrDie()->null_count(), 2u);
  EXPECT_FALSE(chunked.chunk(0).GetColumn("x").ValueOrDie()->IsValid(7));
  EXPECT_FALSE(chunked.chunk(1).GetColumn("x").ValueOrDie()->IsValid(1));
  EXPECT_TRUE(chunked.chunk(1).GetColumn("x").ValueOrDie()->IsValid(2));
  Table back = chunked.Materialize().ValueOrDie();
  EXPECT_TRUE(SameCells(table, back));
}

TEST(ChunkedBitmapTest, KernelCountsMatchContiguousBitmap) {
  const size_t n = 100;
  data::Bitmap whole_a(n);
  data::Bitmap whole_b(n);
  std::vector<data::Bitmap> parts_a;
  std::vector<data::Bitmap> parts_b;
  parts_a.emplace_back(64);
  parts_a.emplace_back(36);
  parts_b.emplace_back(64);
  parts_b.emplace_back(36);
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) {
    const size_t chunk = i < 64 ? 0 : 1;
    const size_t offset = i < 64 ? i : i - 64;
    if (rng.Bernoulli(0.4)) {
      whole_a.Set(i);
      parts_a[chunk].Set(offset);
    }
    if (rng.Bernoulli(0.6)) {
      whole_b.Set(i);
      parts_b[chunk].Set(offset);
    }
  }
  data::ChunkedBitmap chunked_a(std::move(parts_a));
  data::ChunkedBitmap chunked_b(std::move(parts_b));
  EXPECT_EQ(chunked_a.size(), n);
  EXPECT_EQ(chunked_a.Count(), whole_a.Count());
  EXPECT_EQ(data::ChunkedBitmap::AndCount(chunked_a, chunked_b),
            data::Bitmap::AndCount(whole_a, whole_b));
  data::ChunkedBitmap narrowed;
  data::Bitmap whole_narrowed;
  EXPECT_EQ(data::ChunkedBitmap::AndInto(chunked_a, chunked_b, &narrowed),
            data::Bitmap::AndInto(whole_a, whole_b, &whole_narrowed));
  EXPECT_EQ(narrowed.Count(), whole_narrowed.Count());
}

// ---------------------------------------------------------------------------
// Streaming CSV reader.

TEST(CsvChunkReaderTest, MatchesWholeFileReadOnAwkwardFixtures) {
  // Quoted delimiters/escapes, CRLF line endings, and null tokens — the
  // cases where a chunk-at-a-time re-scan could drift from the one-shot
  // parse.
  const std::string text =
      "name,score,tag\r\n"
      "\"x,y\",1.5,\"he said \"\"hi\"\"\"\r\n"
      ",2.5,plain\r\n"
      "NA,,third\r\n"
      "dora,4.5,\"multi\nline\"\r\n"
      "eve,5.5,last\r\n";
  const std::string path = "chunked_test_fixture.csv";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
  }
  Table whole = data::ReadCsvFile(path).ValueOrDie();
  for (size_t chunk_rows : {size_t{1}, size_t{2}, size_t{3}, size_t{100}}) {
    data::CsvChunkReader::Options options;
    options.chunk_rows = chunk_rows;
    ChunkedTable chunked =
        data::ReadCsvFileChunked(path, options).ValueOrDie();
    EXPECT_TRUE(chunked.schema() == whole.schema());
    EXPECT_EQ(chunked.num_rows(), whole.num_rows());
    for (size_t c = 0; c < chunked.num_chunks(); ++c) {
      EXPECT_LE(chunked.chunk(c).num_rows(), chunk_rows);
    }
    Table back = chunked.Materialize().ValueOrDie();
    EXPECT_TRUE(SameCells(whole, back)) << "chunk_rows=" << chunk_rows;
  }
  std::remove(path.c_str());
}

TEST(CsvChunkReaderTest, ReportsRowCountBeforeStreamingAndDrains) {
  const std::string path = "chunked_test_drain.csv";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << MakeAuditCsv(10, 5);
    ASSERT_TRUE(out.good());
  }
  data::CsvChunkReader::Options options;
  options.chunk_rows = 4;
  data::CsvChunkReader reader =
      data::CsvChunkReader::Make(path, options).ValueOrDie();
  EXPECT_EQ(reader.num_rows(), 10u);
  size_t chunks = 0;
  size_t rows = 0;
  while (true) {
    auto chunk = reader.Next().ValueOrDie();
    if (!chunk.has_value()) break;
    ++chunks;
    rows += chunk->num_rows();
  }
  EXPECT_EQ(chunks, 3u);  // 4 + 4 + 2
  EXPECT_EQ(rows, 10u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Morsel-driven audit engine.

TEST(ChunkedAuditTest, ByteIdenticalAcrossChunkSizesAndThreads) {
  Table table = data::ReadCsvString(MakeAuditCsv(300, 23)).ValueOrDie();
  const AuditConfig reference_config = FullAuditConfig();
  const std::string reference =
      audit::RunAudit(table, reference_config).ValueOrDie().Render();
  for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      AuditConfig config = FullAuditConfig();
      config.chunk_rows = chunk_rows;
      config.num_threads = threads;
      const std::string render =
          audit::RunAudit(table, config).ValueOrDie().Render();
      EXPECT_EQ(render, reference)
          << "chunk_rows=" << chunk_rows << " threads=" << threads;
    }
  }
}

TEST(ChunkedAuditTest, StreamingCsvMatchesInMemoryAudit) {
  const std::string path = "chunked_test_stream.csv";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << MakeAuditCsv(200, 29);
    ASSERT_TRUE(out.good());
  }
  Table table = data::ReadCsvFile(path).ValueOrDie();
  const std::string reference =
      audit::RunAudit(table, FullAuditConfig()).ValueOrDie().Render();
  for (size_t chunk_rows : {size_t{9}, size_t{64}, size_t{100000}}) {
    for (size_t threads : {size_t{1}, size_t{3}}) {
      AuditConfig config = FullAuditConfig();
      config.chunk_rows = chunk_rows;
      config.num_threads = threads;
      const std::string streamed =
          audit::RunAuditCsv(path, config).ValueOrDie().Render();
      EXPECT_EQ(streamed, reference)
          << "chunk_rows=" << chunk_rows << " threads=" << threads;
    }
  }
  std::remove(path.c_str());
}

TEST(ChunkedAuditTest, ErrorsMatchContiguousPathForEveryChunkSize) {
  // A non-binary prediction value in the last row: whichever chunk holds
  // it, the engine must surface the same row-independent message the
  // contiguous path produces.
  std::string text = "g,p\n";
  for (size_t i = 0; i < 20; ++i) text += "a,1\n";
  text += "b,2\n";
  Table table = data::ReadCsvString(text).ValueOrDie();
  AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "p";
  const std::string reference =
      audit::RunAudit(table, config).status().message();
  ASSERT_FALSE(reference.empty());
  for (size_t chunk_rows : {size_t{3}, size_t{8}, size_t{21}}) {
    AuditConfig chunked = config;
    chunked.chunk_rows = chunk_rows;
    EXPECT_EQ(audit::RunAudit(table, chunked).status().message(), reference)
        << "chunk_rows=" << chunk_rows;
  }
  // Empty input: the zero-chunk path reports the same error as the
  // contiguous extractor.
  Table empty = data::ReadCsvString("g,p\n").ValueOrDie();
  const std::string empty_reference =
      audit::RunAudit(empty, config).status().message();
  AuditConfig chunked = config;
  chunked.chunk_rows = 4;
  EXPECT_EQ(audit::RunAudit(empty, chunked).status().message(),
            empty_reference);
}

// ---------------------------------------------------------------------------
// Chunked subgroup audit.

std::string MakeSubgroupCsv(size_t rows, uint64_t seed) {
  const char* values[] = {"x", "y", "z"};
  Rng rng(seed);
  std::string text = "a1,a2,a3,pred\n";
  for (size_t i = 0; i < rows; ++i) {
    for (size_t a = 0; a < 3; ++a) {
      text += values[rng.UniformInt(3)];
      text += ',';
    }
    text += rng.Bernoulli(0.4) ? '1' : '0';
    text += '\n';
  }
  return text;
}

void ExpectSameFindings(const SubgroupAuditResult& got,
                        const SubgroupAuditResult& want) {
  EXPECT_EQ(got.subgroups_examined, want.subgroups_examined);
  EXPECT_EQ(got.subgroups_skipped_small, want.subgroups_skipped_small);
  EXPECT_EQ(got.any_violation, want.any_violation);
  ASSERT_EQ(got.findings.size(), want.findings.size());
  for (size_t i = 0; i < got.findings.size(); ++i) {
    EXPECT_EQ(got.findings[i].subgroup.conditions,
              want.findings[i].subgroup.conditions) << "finding " << i;
    EXPECT_EQ(got.findings[i].count, want.findings[i].count);
    EXPECT_EQ(got.findings[i].selection_rate,
              want.findings[i].selection_rate);
    EXPECT_EQ(got.findings[i].gap, want.findings[i].gap);
    EXPECT_EQ(got.findings[i].weighted_gap, want.findings[i].weighted_gap);
  }
}

TEST(ChunkedSubgroupTest, MatchesRowwiseOracleForEveryChunkLayout) {
  Table table = data::ReadCsvString(MakeSubgroupCsv(400, 41)).ValueOrDie();
  const std::vector<std::string> attrs = {"a1", "a2", "a3"};
  SubgroupAuditOptions options;
  options.max_depth = 3;
  options.min_support = 5;
  const SubgroupAuditResult oracle =
      audit::AuditSubgroupsRowwise(table, attrs, "pred", options)
          .ValueOrDie();
  for (size_t chunk_rows : {size_t{0}, size_t{7}, size_t{64}, size_t{1000}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SubgroupAuditOptions chunked = options;
      chunked.chunk_rows = chunk_rows;
      chunked.num_threads = threads;
      SubgroupAuditResult result =
          audit::AuditSubgroups(table, attrs, "pred", chunked).ValueOrDie();
      ExpectSameFindings(result, oracle);
    }
  }
}

TEST(ChunkedSubgroupTest, ChunkedTableOverloadMatchesContiguous) {
  Table table = data::ReadCsvString(MakeSubgroupCsv(120, 43)).ValueOrDie();
  const std::vector<std::string> attrs = {"a1", "a2"};
  SubgroupAuditOptions options;
  options.max_depth = 2;
  options.min_support = 3;
  const SubgroupAuditResult contiguous =
      audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie();
  ChunkedTable chunked = ChunkedTable::FromTable(table, 13).ValueOrDie();
  SubgroupAuditResult result =
      audit::AuditSubgroups(chunked, attrs, "pred", options).ValueOrDie();
  ExpectSameFindings(result, contiguous);
  // Value dictionaries merged across chunks must reproduce the
  // contiguous error strings too.
  EXPECT_EQ(audit::AuditSubgroups(chunked, {}, "pred", options)
                .status()
                .message(),
            "AuditSubgroups: no attribute columns");
}

// ---------------------------------------------------------------------------
// Radix sort tier and the unsorted distance paths.

TEST(RadixSortTest, MatchesStdSortIncludingEdgeValues) {
  Rng rng(57);
  std::vector<double> values;
  // Above kRadixSortMinSize so SortDoubles takes the radix tier.
  for (size_t i = 0; i < 3000; ++i) {
    values.push_back(rng.Normal() * 1e6);
  }
  const double kEdges[] = {0.0, -0.0, 1e-310, -1e-310,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::lowest(), 42.0,
                           42.0, 42.0};
  values.insert(values.end(), std::begin(kEdges), std::end(kEdges));
  std::vector<double> expected = values;
  std::sort(expected.begin(), expected.end());
  std::vector<double> radix = values;
  stats::RadixSortDoubles(radix);
  std::vector<double> tiered = values;
  stats::SortDoubles(tiered);
  ASSERT_EQ(radix.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // Bitwise-compatible comparison: -0.0 and 0.0 are interchangeable for
    // std::sort, so compare by value not by bits.
    EXPECT_EQ(radix[i], expected[i]) << "index " << i;
    EXPECT_EQ(tiered[i], expected[i]) << "index " << i;
  }
}

TEST(RadixSortTest, NansLandDeterministicallyAtTheEnds) {
  std::vector<double> values = {3.0,
                                std::copysign(
                                    std::numeric_limits<double>::quiet_NaN(),
                                    -1.0),
                                -1.0,
                                std::numeric_limits<double>::quiet_NaN(),
                                2.0};
  stats::RadixSortDoubles(values);
  EXPECT_TRUE(std::isnan(values.front()));
  EXPECT_TRUE(std::signbit(values.front()));
  EXPECT_TRUE(std::isnan(values.back()));
  EXPECT_FALSE(std::signbit(values.back()));
  EXPECT_EQ(values[1], -1.0);
  EXPECT_EQ(values[2], 2.0);
  EXPECT_EQ(values[3], 3.0);
}

TEST(DistanceTierTest, UnsortedW1AndKsEqualPresortedOracle) {
  Rng rng(61);
  // n above the radix threshold so the unsorted path exercises the new
  // tier; the presorted calls are the equality oracle.
  std::vector<double> x;
  std::vector<double> y;
  for (size_t i = 0; i < 3000; ++i) x.push_back(rng.Normal());
  for (size_t i = 0; i < 2500; ++i) y.push_back(rng.Normal(0.3, 1.2));
  std::vector<double> xs = x;
  std::vector<double> ys = y;
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  EXPECT_EQ(stats::Wasserstein1Samples(x, y).ValueOrDie(),
            stats::Wasserstein1Presorted(xs, ys).ValueOrDie());
  EXPECT_EQ(stats::KolmogorovSmirnov(x, y).ValueOrDie(),
            stats::KolmogorovSmirnovPresorted(xs, ys).ValueOrDie());
}

}  // namespace
}  // namespace fairlaw
