// Legal layer: doctrine taxonomy, statute registry, four-fifths screen,
// EU proportionality, US burden shifting.
#include <gtest/gtest.h>

#include "legal/burden_shifting.h"
#include "legal/doctrine.h"
#include "legal/four_fifths.h"
#include "legal/jurisdiction.h"
#include "legal/proportionality.h"

namespace fairlaw::legal {
namespace {

TEST(DoctrineTest, FourDoctrinesWithExpectedProperties) {
  EXPECT_EQ(AllDoctrines().size(), 4u);
  DoctrineInfo treatment =
      GetDoctrine(Doctrine::kUsDisparateTreatment).ValueOrDie();
  EXPECT_TRUE(treatment.requires_intent);
  EXPECT_FALSE(treatment.justification_available);
  DoctrineInfo impact =
      GetDoctrine(Doctrine::kUsDisparateImpact).ValueOrDie();
  EXPECT_FALSE(impact.requires_intent);
  EXPECT_TRUE(impact.justification_available);
  DoctrineInfo indirect =
      GetDoctrine(Doctrine::kEuIndirectDiscrimination).ValueOrDie();
  EXPECT_TRUE(indirect.justification_available);
  EXPECT_EQ(indirect.jurisdiction, Jurisdiction::kEu);
}

TEST(DoctrineTest, MetricConceptMappingFollowsSectionIvA) {
  // §IV-A: A, B, E, F -> equal outcome; C, D -> equal treatment; G ->
  // substantive.
  EXPECT_EQ(ConceptForMetric("demographic_parity").ValueOrDie(),
            EqualityConcept::kEqualOutcome);
  EXPECT_EQ(ConceptForMetric("conditional_statistical_parity").ValueOrDie(),
            EqualityConcept::kEqualOutcome);
  EXPECT_EQ(ConceptForMetric("demographic_disparity").ValueOrDie(),
            EqualityConcept::kEqualOutcome);
  EXPECT_EQ(
      ConceptForMetric("conditional_demographic_disparity").ValueOrDie(),
      EqualityConcept::kEqualOutcome);
  EXPECT_EQ(ConceptForMetric("equal_opportunity").ValueOrDie(),
            EqualityConcept::kEqualTreatment);
  EXPECT_EQ(ConceptForMetric("equalized_odds").ValueOrDie(),
            EqualityConcept::kEqualTreatment);
  EXPECT_EQ(ConceptForMetric("counterfactual_fairness").ValueOrDie(),
            EqualityConcept::kSubstantive);
  EXPECT_FALSE(ConceptForMetric("made_up_metric").ok());
}

TEST(DoctrineTest, DoctrineForMetricPerJurisdiction) {
  EXPECT_EQ(
      DoctrineForMetric("demographic_parity", Jurisdiction::kUs)
          .ValueOrDie(),
      Doctrine::kUsDisparateImpact);
  EXPECT_EQ(
      DoctrineForMetric("demographic_parity", Jurisdiction::kEu)
          .ValueOrDie(),
      Doctrine::kEuIndirectDiscrimination);
  EXPECT_EQ(
      DoctrineForMetric("counterfactual_fairness", Jurisdiction::kUs)
          .ValueOrDie(),
      Doctrine::kUsDisparateTreatment);
  EXPECT_EQ(
      DoctrineForMetric("counterfactual_fairness", Jurisdiction::kEu)
          .ValueOrDie(),
      Doctrine::kEuDirectDiscrimination);
}

TEST(JurisdictionTest, RegistryCoversThePaperStatutes) {
  EXPECT_EQ(UsStatutes().size(), 13u);  // the thirteen §II-B(2) items
  EXPECT_EQ(EuInstruments().size(), 9u);
  // Title VII protects sex in employment.
  auto statutes = StatutesProtecting("sex", Jurisdiction::kUs);
  bool title7 = false;
  for (const Statute* statute : statutes) {
    if (statute->name.find("Title VII") != std::string::npos) title7 = true;
  }
  EXPECT_TRUE(title7);
  // GINA protects genetic information.
  EXPECT_FALSE(
      StatutesProtecting("genetic_information", Jurisdiction::kUs).empty());
  // Sexual orientation is protected in the EU Charter / 2000/78.
  EXPECT_TRUE(IsProtectedAttribute("sexual_orientation", Jurisdiction::kEu));
  // Fantasy attribute is not protected.
  EXPECT_FALSE(IsProtectedAttribute("favorite_color", Jurisdiction::kUs));
}

TEST(JurisdictionTest, SectorLookupIncludesGeneralInstruments) {
  auto credit = StatutesForSector("credit", Jurisdiction::kUs);
  bool ecoa = false;
  for (const Statute* statute : credit) {
    if (statute->name.find("ECOA") != std::string::npos) ecoa = true;
  }
  EXPECT_TRUE(ecoa);
  // EU "general" instruments apply to any sector query.
  auto eu_housing = StatutesForSector("housing", Jurisdiction::kEu);
  EXPECT_FALSE(eu_housing.empty());
}

TEST(JurisdictionTest, ProtectedAttributeUnionSortedAndDeduped) {
  auto attributes = ProtectedAttributesOf(Jurisdiction::kUs);
  EXPECT_FALSE(attributes.empty());
  for (size_t i = 1; i < attributes.size(); ++i) {
    EXPECT_LT(attributes[i - 1], attributes[i]);
  }
}

metrics::MetricInput Outcomes(int a_selected, int a_total, int b_selected,
                              int b_total) {
  metrics::MetricInput input;
  for (int i = 0; i < a_total; ++i) {
    input.groups.push_back("a");
    input.predictions.push_back(i < a_selected ? 1 : 0);
  }
  for (int i = 0; i < b_total; ++i) {
    input.groups.push_back("b");
    input.predictions.push_back(i < b_selected ? 1 : 0);
  }
  return input;
}

TEST(FourFifthsTest, ClassicEeocExample) {
  // a: 50% selected, b: 30% -> ratio 0.6 < 0.8 -> fail.
  FourFifthsResult result =
      FourFifthsTest(Outcomes(250, 500, 150, 500)).ValueOrDie();
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.reference_group, "a");
  EXPECT_TRUE(result.adverse_impact_indicated);  // large n: significant
  ASSERT_EQ(result.groups.size(), 2u);
  for (const FourFifthsGroup& group : result.groups) {
    if (group.group == "b") {
      EXPECT_NEAR(group.impact_ratio, 0.6, 1e-12);
      EXPECT_TRUE(group.below_threshold);
      EXPECT_TRUE(group.significance.significant);
    }
  }
}

TEST(FourFifthsTest, RatioFailureWithoutSignificance) {
  // Same 0.6 ratio but n=10 per group: the ratio fails, significance
  // does not -> no adverse-impact indication.
  FourFifthsResult result =
      FourFifthsTest(Outcomes(5, 10, 3, 10)).ValueOrDie();
  EXPECT_FALSE(result.passed);
  EXPECT_FALSE(result.adverse_impact_indicated);
}

TEST(FourFifthsTest, BalancedRatesPass) {
  FourFifthsResult result =
      FourFifthsTest(Outcomes(100, 200, 90, 200)).ValueOrDie();
  EXPECT_TRUE(result.passed);  // ratio 0.9
  std::string text = RenderFourFifths(result);
  EXPECT_NE(text.find("PASSED"), std::string::npos);
}

TEST(FourFifthsTest, Validation) {
  metrics::MetricInput single;
  single.groups = {"a", "a"};
  single.predictions = {1, 0};
  EXPECT_FALSE(FourFifthsTest(single).ok());
  EXPECT_FALSE(FourFifthsTest(Outcomes(1, 2, 1, 2), 0.0).ok());
}

TEST(ProportionalityTest, StagesFailInOrder) {
  ProportionalityCase facts;
  facts.measure = "language requirement";
  ProportionalityVerdict verdict = AssessProportionality(facts).ValueOrDie();
  EXPECT_FALSE(verdict.justified);
  EXPECT_EQ(verdict.stage, ProportionalityStage::kLegitimateAim);

  facts.has_legitimate_aim = true;
  facts.aim = "customer safety";
  verdict = AssessProportionality(facts).ValueOrDie();
  EXPECT_EQ(verdict.stage, ProportionalityStage::kSuitability);

  facts.suitable = true;
  verdict = AssessProportionality(facts).ValueOrDie();
  EXPECT_EQ(verdict.stage, ProportionalityStage::kNecessity);

  facts.necessary = true;
  facts.measured_disparity = 0.3;
  facts.proportionate_disparity = 0.1;
  verdict = AssessProportionality(facts).ValueOrDie();
  EXPECT_EQ(verdict.stage, ProportionalityStage::kBalance);
  EXPECT_FALSE(verdict.justified);

  facts.proportionate_disparity = 0.4;
  verdict = AssessProportionality(facts).ValueOrDie();
  EXPECT_TRUE(verdict.justified);
  EXPECT_EQ(verdict.stage, ProportionalityStage::kJustified);
}

TEST(ProportionalityTest, Validation) {
  ProportionalityCase facts;
  facts.measured_disparity = -0.1;
  EXPECT_FALSE(AssessProportionality(facts).ok());
}

TEST(BurdenShiftingTest, NoPrimaFacieNoLiability) {
  BurdenShiftingFacts facts;
  BurdenShiftingResult result =
      RunBurdenShifting(Outcomes(100, 200, 95, 200), facts).ValueOrDie();
  EXPECT_EQ(result.stage, BurdenStage::kNoPrimaFacie);
  EXPECT_FALSE(result.liability);
}

TEST(BurdenShiftingTest, ImpactWithoutNecessityIsLiability) {
  BurdenShiftingFacts facts;  // no defense offered
  BurdenShiftingResult result =
      RunBurdenShifting(Outcomes(250, 500, 150, 500), facts).ValueOrDie();
  EXPECT_EQ(result.stage, BurdenStage::kBusinessNecessityFails);
  EXPECT_TRUE(result.liability);
}

TEST(BurdenShiftingTest, AlternativeDefeatsNecessityDefense) {
  BurdenShiftingFacts facts;
  facts.business_necessity_shown = true;
  facts.necessity_justification = "job-related strength test";
  facts.less_discriminatory_alternative_exists = true;
  facts.alternative = "task-specific simulation";
  BurdenShiftingResult result =
      RunBurdenShifting(Outcomes(250, 500, 150, 500), facts).ValueOrDie();
  EXPECT_EQ(result.stage, BurdenStage::kAlternativeExists);
  EXPECT_TRUE(result.liability);
}

TEST(BurdenShiftingTest, DefenseHoldsWithoutAlternative) {
  BurdenShiftingFacts facts;
  facts.business_necessity_shown = true;
  facts.necessity_justification = "licensing requirement";
  BurdenShiftingResult result =
      RunBurdenShifting(Outcomes(250, 500, 150, 500), facts).ValueOrDie();
  EXPECT_EQ(result.stage, BurdenStage::kDefenseHolds);
  EXPECT_FALSE(result.liability);
  EXPECT_NE(result.reasoning.find("licensing requirement"),
            std::string::npos);
}

}  // namespace
}  // namespace fairlaw::legal
