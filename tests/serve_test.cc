// Tests for the fairlaw_serve daemon layers (src/serve/): the
// line-JSON parser, the versioned request schema, the window ring's
// event-time semantics, and the daemon's central contract — query
// responses byte-identical across ingest batch boundaries and thread
// counts — plus the unified Auditor::Run entry over window sources.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/report_io.h"
#include "audit/source.h"
#include "audit/windowed.h"
#include "base/json_writer.h"
#include "base/thread_pool.h"
#include "obs/obs.h"
#include "serve/api.h"
#include "serve/json_value.h"
#include "serve/service.h"
#include "serve/window.h"
#include "stats/rng.h"

namespace fairlaw {
namespace {

using serve::Event;
using serve::JsonValue;
using serve::ParseRequest;
using serve::Request;
using serve::ServeConfig;
using serve::Service;
using serve::WindowRing;
using stats::Rng;

TEST(JsonValueTest, ParsesScalarsObjectsArrays) {
  Result<JsonValue> doc = JsonValue::Parse(
      R"({"a":1,"b":-2.5e2,"c":"x\n\"y\"","d":[true,false,null],"e":{}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(*(*doc->Get("a"))->AsInt64(), 1);
  EXPECT_DOUBLE_EQ(*(*doc->Get("b"))->AsDouble(), -250.0);
  EXPECT_EQ(*(*doc->Get("c"))->AsString(), "x\n\"y\"");
  const JsonValue* array = *doc->Get("d");
  ASSERT_TRUE(array->is_array());
  ASSERT_EQ(array->size(), 3u);
  EXPECT_TRUE(*array->at(0).AsBool());
  EXPECT_TRUE(array->at(2).is_null());
  EXPECT_TRUE((*doc->Get("e"))->is_object());
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "{}extra", "nul",
        "\"unterminated", "{\"a\":01}", "[1 2]", "\"bad\\escape\""}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << bad;
  }
  // Integer vs double typing: 1e3 is a number but not integral.
  Result<JsonValue> doc = JsonValue::Parse("[1, 1e3, 2.0]");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->at(0).AsInt64().ok());
  EXPECT_FALSE(doc->at(1).AsInt64().ok());
  EXPECT_TRUE(doc->at(1).AsDouble().ok());
  EXPECT_FALSE(doc->at(2).AsInt64().ok());
}

TEST(ServeApiTest, ConfigValidation) {
  ServeConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.bucket_width = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ServeConfig{};
  config.with_scores = true;
  config.with_labels = false;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ServeApiTest, RequestParsingAndSchemaVersion) {
  ServeConfig config;
  config.with_strata = false;

  auto parse = [&config](const std::string& line) {
    Result<JsonValue> doc = JsonValue::Parse(line);
    EXPECT_TRUE(doc.ok()) << line;
    return ParseRequest(*doc, config);
  };

  Result<Request> ingest = parse(
      R"({"op":"ingest","events":[{"t":5,"group":"a","pred":1,"label":0,)"
      R"("score":0.25}]})");
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  ASSERT_EQ(ingest->ingest.events.size(), 1u);
  EXPECT_TRUE(ingest->ingest.events[0].Validate(config).ok());

  // Schema from the future => NotImplemented, not a half-parse.
  Result<Request> future =
      parse(R"({"schema_version":99,"op":"ingest","events":[]})");
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kNotImplemented);

  // Current version is accepted explicitly.
  EXPECT_TRUE(parse(R"({"schema_version":2,"op":"stats"})").ok());

  // Unknown op / unknown query type / capability mismatches.
  EXPECT_FALSE(parse(R"({"op":"explode"})").ok());
  EXPECT_FALSE(parse(R"({"op":"query","type":"nope"})").ok());
  EXPECT_FALSE(parse(R"({"op":"query","type":"drilldown"})").ok());
  EXPECT_FALSE(
      parse(R"({"op":"query","type":"quantiles","group":"a"})").ok());
  EXPECT_TRUE(parse(
      R"({"op":"query","type":"quantiles","group":"a","q":[0.5]})").ok());
  EXPECT_FALSE(parse(
      R"({"op":"query","type":"quantiles","group":"a","q":[1.5]})").ok());

  // Event schema mismatches are caught by Event::Validate.
  Result<Request> no_label =
      parse(R"({"op":"ingest","events":[{"t":1,"group":"a","pred":0,)"
            R"("score":0.5}]})");
  ASSERT_TRUE(no_label.ok());
  EXPECT_FALSE(no_label->ingest.events[0].Validate(config).ok());
}

Event MakeEvent(int64_t t, const std::string& group, int pred, int label,
                double score) {
  Event event;
  event.t = t;
  event.group = group;
  event.pred = pred;
  event.label = label;
  event.has_label = true;
  event.score = score;
  event.has_score = true;
  return event;
}

TEST(WindowRingTest, EventTimeWindowAndOldEventRejection) {
  ServeConfig config;
  config.bucket_width = 10;
  config.num_buckets = 3;
  ASSERT_TRUE(config.Validate().ok());
  WindowRing ring(config);
  EXPECT_EQ(ring.watermark(), -1);

  ASSERT_TRUE(ring.Ingest(MakeEvent(0, "a", 1, 1, 0.5)).ok());
  ASSERT_TRUE(ring.Ingest(MakeEvent(25, "a", 0, 0, 0.4)).ok());
  EXPECT_EQ(ring.watermark(), 2);
  EXPECT_EQ(ring.num_events(), 2u);

  // Advancing to bucket 4 slides buckets {0,1} out: the window is now
  // {2,3,4} and events for bucket <= 1 are rejected as too old.
  ASSERT_TRUE(ring.Ingest(MakeEvent(45, "b", 1, 0, 0.6)).ok());
  EXPECT_EQ(ring.watermark(), 4);
  EXPECT_EQ(ring.window_start(), 2);
  EXPECT_EQ(ring.num_events(), 2u);  // the t=0 event slid out
  Status too_old = ring.Ingest(MakeEvent(5, "a", 1, 1, 0.2));
  EXPECT_FALSE(too_old.ok());
  EXPECT_EQ(too_old.code(), StatusCode::kOutOfRange);
  // Late but still inside the window is fine.
  EXPECT_TRUE(ring.Ingest(MakeEvent(29, "b", 0, 1, 0.7)).ok());

  // A jump far past the ring resets every slot.
  ASSERT_TRUE(ring.Ingest(MakeEvent(1000, "a", 1, 1, 0.9)).ok());
  EXPECT_EQ(ring.num_events(), 1u);
}

TEST(WindowRingTest, WindowMergeIsThreadCountInvariant) {
  ServeConfig config;
  config.bucket_width = 10;
  config.num_buckets = 16;
  WindowRing ring(config);
  Rng rng(23);
  const char* groups[] = {"a", "b", "c", "d", "e"};
  for (int64_t i = 0; i < 5000; ++i) {
    const size_t g = rng.UniformInt(5);
    ASSERT_TRUE(ring.Ingest(MakeEvent(i / 32, groups[g],
                                      rng.Bernoulli(0.5) ? 1 : 0,
                                      rng.Bernoulli(0.5) ? 1 : 0,
                                      rng.Uniform()))
                    .ok());
  }
  const audit::WindowedPartial serial = ring.Window(nullptr);
  ThreadPool pool4(4);
  ThreadPool pool7(7);
  const audit::WindowedPartial par4 = ring.Window(&pool4);
  const audit::WindowedPartial par7 = ring.Window(&pool7);
  EXPECT_TRUE(serial.sketches == par4.sketches);
  EXPECT_TRUE(serial.sketches == par7.sketches);
  EXPECT_EQ(serial.num_rows, par4.num_rows);
}

/// Replays one request stream through a fresh Service and returns the
/// responses. Resets the obs registry first: serve's obs counters are
/// process-global, and query responses embed the schedule-invariant
/// ones, so each replay must start from zero like a fresh daemon.
std::vector<std::string> Replay(const ServeConfig& config,
                                const std::vector<std::string>& lines) {
  obs::ResetAll();
  Service service(config);
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  for (const std::string& line : lines) {
    responses.push_back(service.HandleLine(line));
  }
  return responses;
}

/// The generator mirror of tools/fairlaw_generate --events-jsonl, in
/// miniature: same event sequence, batched at `batch` events per ingest
/// line, the query suite after every `query_every` events.
std::vector<std::string> MakeStream(size_t n, size_t batch,
                                    size_t query_every, uint64_t seed) {
  Rng rng(seed);
  const char* groups[] = {"alpha", "beta", "gamma"};
  const double pred_rate[] = {0.5, 0.35, 0.44};
  std::vector<std::string> lines;
  std::string current;
  size_t in_batch = 0;
  auto flush = [&]() {
    if (in_batch == 0) return;
    lines.push_back("{\"op\":\"ingest\",\"events\":[" + current + "]}");
    current.clear();
    in_batch = 0;
  };
  auto queries = [&]() {
    flush();
    lines.push_back(R"({"op":"query","type":"audit"})");
    lines.push_back(R"({"op":"query","type":"four_fifths"})");
    lines.push_back(R"({"op":"query","type":"drift"})");
    lines.push_back(
        R"({"op":"query","type":"quantiles","group":"alpha","q":[0.5,0.9]})");
  };
  for (size_t i = 0; i < n; ++i) {
    const size_t g = static_cast<size_t>(rng.UniformInt(3));
    const int pred = rng.Bernoulli(pred_rate[g]) ? 1 : 0;
    const int label = rng.Bernoulli(0.42) ? 1 : 0;
    // Scores as exact six-digit decimal text, so every replay parses
    // bit-identical doubles.
    std::string mil = std::to_string(rng.UniformInt(1000000));
    mil.insert(0, 6 - mil.size(), '0');
    if (in_batch > 0) current += ",";
    current += "{\"t\":" + std::to_string(i * 3) + ",\"group\":\"" +
               groups[g] + "\",\"pred\":" + std::to_string(pred) +
               ",\"label\":" + std::to_string(label) + ",\"score\":0." +
               mil + "}";
    ++in_batch;
    if (in_batch == batch) flush();
    if (query_every > 0 && (i + 1) % query_every == 0) queries();
  }
  flush();
  queries();
  return lines;
}

std::vector<std::string> QueryLines(const std::vector<std::string>& lines) {
  std::vector<std::string> result;
  for (const std::string& line : lines) {
    if (line.find("\"op\":\"query\"") != std::string::npos) {
      result.push_back(line);
    }
  }
  return result;
}

TEST(ServeServiceTest, QueryResponsesAreBatchBoundaryInvariant) {
  ServeConfig config;
  config.bucket_width = 50;
  config.num_buckets = 32;
  ASSERT_TRUE(config.Validate().ok());

  // Same event/query sequence, three very different batchings.
  const std::vector<std::string> a = MakeStream(3000, 1000, 1000, 31);
  const std::vector<std::string> b = MakeStream(3000, 7, 1000, 31);
  const std::vector<std::string> c = MakeStream(3000, 311, 1000, 31);

  const std::vector<std::string> ra = QueryLines(Replay(config, a));
  const std::vector<std::string> rb = QueryLines(Replay(config, b));
  const std::vector<std::string> rc = QueryLines(Replay(config, c));

  ASSERT_EQ(ra.size(), 16u);  // 4 query types x (3 mid-stream + 1 final)
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra, rc);
  // The responses actually carry findings, not errors.
  EXPECT_NE(ra[0].find("\"findings\""), std::string::npos);
  EXPECT_NE(ra[2].find("\"approximate\":true"), std::string::npos);
}

TEST(ServeServiceTest, QueryResponsesAreThreadCountInvariant) {
  const std::vector<std::string> stream = MakeStream(2000, 128, 0, 37);
  ServeConfig config;
  config.bucket_width = 50;
  config.num_buckets = 32;

  config.num_threads = 1;
  const std::vector<std::string> serial = QueryLines(Replay(config, stream));
  config.num_threads = 4;
  const std::vector<std::string> par = QueryLines(Replay(config, stream));
  config.num_threads = 0;  // one per hardware thread
  const std::vector<std::string> hw = QueryLines(Replay(config, stream));

  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, par);
  EXPECT_EQ(serial, hw);
}

TEST(ServeServiceTest, ErrorEnvelopesAndStats) {
  ServeConfig config;
  Service service(config);

  // Unparseable line => op "error" envelope with the version header.
  const std::string bad = service.HandleLine("not json at all");
  EXPECT_NE(bad.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(bad.find("\"op\":\"error\""), std::string::npos);
  EXPECT_NE(bad.find("\"error\":{"), std::string::npos);

  // Recognized-but-unanswerable query keeps "op":"query" (it must be
  // identical across batchings, so it participates in the identity
  // comparison) — here: empty window.
  const std::string empty =
      service.HandleLine(R"({"op":"query","type":"audit"})");
  EXPECT_NE(empty.find("\"op\":\"query\""), std::string::npos);
  EXPECT_NE(empty.find("\"error\":{"), std::string::npos);

  // Unknown group for quantiles.
  ASSERT_NE(service
                .HandleLine(R"({"op":"ingest","events":[{"t":1,)"
                            R"("group":"a","pred":1,"label":1,)"
                            R"("score":0.5}]})")
                .find("\"accepted\":1"),
            std::string::npos);
  const std::string missing = service.HandleLine(
      R"({"op":"query","type":"quantiles","group":"zzz","q":[0.5]})");
  EXPECT_NE(missing.find("\"op\":\"query\""), std::string::npos);
  EXPECT_NE(missing.find("not found"), std::string::npos);

  // Stats carries the full obs export.
  const std::string stats = service.HandleLine(R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(stats.find("serve.requests"), std::string::npos);
}

TEST(ServeServiceTest, IngestAckCountsRejections) {
  ServeConfig config;
  config.bucket_width = 10;
  config.num_buckets = 2;
  Service service(config);

  // Second event is stale (bucket 0 after watermark jumps to 9), third
  // fails schema validation (missing label/score).
  const std::string ack = service.HandleLine(
      R"({"op":"ingest","events":[)"
      R"({"t":95,"group":"a","pred":1,"label":1,"score":0.5},)"
      R"({"t":5,"group":"a","pred":0,"label":0,"score":0.4},)"
      R"({"t":96,"group":"a","pred":1}]})");
  EXPECT_NE(ack.find("\"accepted\":1"), std::string::npos);
  EXPECT_NE(ack.find("\"rejected\":2"), std::string::npos);
  EXPECT_NE(ack.find("\"watermark\":9"), std::string::npos);
}

TEST(AuditorRunTest, WindowSourceMatchesServiceFindings) {
  // The unified entry point over a window source is exactly what the
  // service serves: build the same window by hand, run Auditor::Run,
  // and the audit query's findings must embed its serialized report.
  ServeConfig config;
  config.bucket_width = 50;
  config.num_buckets = 32;

  const std::vector<std::string> stream = MakeStream(1500, 100, 0, 41);
  obs::ResetAll();
  Service service(config);
  std::string audit_response;
  for (const std::string& line : stream) {
    const std::string response = service.HandleLine(line);
    if (line.find("\"type\":\"audit\"") != std::string::npos) {
      audit_response = response;
    }
  }
  ASSERT_FALSE(audit_response.empty());

  const audit::WindowedPartial window = service.ring().Window(nullptr);
  Result<audit::AuditResult> result = audit::Auditor::Run(
      audit::AuditSource::FromWindow(window), config.ToAuditConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  JsonWriter json;
  audit::WriteAuditFindings(&json, *result);
  Result<std::string> findings = json.Finish();
  ASSERT_TRUE(findings.ok());
  EXPECT_NE(audit_response.find("\"findings\":" + *findings),
            std::string::npos)
      << "service audit response must embed the exact findings object "
         "Auditor::Run produces over the same window";
}

}  // namespace
}  // namespace fairlaw
