#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace fairlaw::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean(kSample).ValueOrDie(), 5.0);
  EXPECT_FALSE(Mean(std::vector<double>{}).ok());
}

TEST(DescriptiveTest, VarianceAndStdDev) {
  // Sum of squared deviations = 32; n-1 = 7.
  EXPECT_NEAR(Variance(kSample).ValueOrDie(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(kSample).ValueOrDie(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_FALSE(Variance(std::vector<double>{1.0}).ok());
}

TEST(DescriptiveTest, WeightedMean) {
  std::vector<double> values = {1.0, 3.0};
  std::vector<double> weights = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(WeightedMean(values, weights).ValueOrDie(), 2.5);
  EXPECT_FALSE(WeightedMean(values, std::vector<double>{1.0}).ok());
  EXPECT_FALSE(WeightedMean(values, std::vector<double>{0.0, 0.0}).ok());
  EXPECT_FALSE(WeightedMean(values, std::vector<double>{-1.0, 2.0}).ok());
}

TEST(DescriptiveTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min(kSample).ValueOrDie(), 2.0);
  EXPECT_DOUBLE_EQ(Max(kSample).ValueOrDie(), 9.0);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0).ValueOrDie(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5).ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0 / 3.0).ValueOrDie(), 2.0);
  EXPECT_FALSE(Quantile(values, -0.1).ok());
  EXPECT_FALSE(Quantile(values, 1.1).ok());
}

TEST(DescriptiveTest, QuantileUnsortedInput) {
  std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5).ValueOrDie(), 2.5);
}

TEST(DescriptiveTest, Median) {
  EXPECT_DOUBLE_EQ(Median(kSample).ValueOrDie(), 4.5);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{3.0}).ValueOrDie(), 3.0);
}

TEST(DescriptiveTest, PearsonCorrelationPerfect) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y).ValueOrDie(), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, neg).ValueOrDie(), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonCorrelationZeroVarianceFails) {
  std::vector<double> x = {1.0, 1.0, 1.0};
  std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_FALSE(PearsonCorrelation(x, y).ok());
}

TEST(DescriptiveTest, PointBiserial) {
  std::vector<uint8_t> indicator = {0, 0, 1, 1};
  std::vector<double> values = {1.0, 2.0, 5.0, 6.0};
  double r = PointBiserialCorrelation(indicator, values).ValueOrDie();
  EXPECT_GT(r, 0.9);
}

TEST(DescriptiveTest, Covariance) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(Covariance(x, y).ValueOrDie(), 2.0);
}

TEST(DescriptiveTest, Summarize) {
  Summary summary = Summarize(kSample).ValueOrDie();
  EXPECT_EQ(summary.count, 8u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.min, 2.0);
  EXPECT_DOUBLE_EQ(summary.max, 9.0);
  EXPECT_DOUBLE_EQ(summary.median, 4.5);
  EXPECT_LE(summary.q25, summary.median);
  EXPECT_LE(summary.median, summary.q75);
}

}  // namespace
}  // namespace fairlaw::stats
