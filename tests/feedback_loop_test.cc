#include <gtest/gtest.h>

#include "simulation/feedback_loop.h"

namespace fairlaw::sim {
namespace {

using fairlaw::stats::Rng;

FeedbackLoopOptions SmallLoop() {
  FeedbackLoopOptions options;
  options.initial_n = 1500;
  options.applicants_per_round = 800;
  options.rounds = 6;
  options.label_bias = 1.2;
  options.proxy_strength = 1.2;
  options.discouragement = 0.5;
  return options;
}

TEST(FeedbackLoopTest, UnmitigatedLoopKeepsOrAmplifiesGap) {
  Rng rng(3);
  FeedbackLoopOptions options = SmallLoop();
  FeedbackLoopResult result = RunFeedbackLoop(options, &rng).ValueOrDie();
  ASSERT_EQ(result.rounds.size(), 6u);
  // The biased model disadvantages women from round 0 and the gap does
  // not heal on its own.
  EXPECT_GT(result.rounds.front().dp_gap, 0.1);
  EXPECT_GT(result.rounds.back().dp_gap, 0.1);
  // Discouragement shrinks the female applicant share over rounds.
  EXPECT_LT(result.rounds.back().female_applicant_share,
            result.rounds.front().female_applicant_share);
}

TEST(FeedbackLoopTest, GroupThresholdsFlattenTheLoop) {
  Rng rng(5);
  FeedbackLoopOptions options = SmallLoop();
  options.mitigation = LoopMitigation::kGroupThresholds;
  FeedbackLoopResult mitigated = RunFeedbackLoop(options, &rng).ValueOrDie();
  for (const RoundStats& round : mitigated.rounds) {
    EXPECT_LT(round.dp_gap, 0.08) << "round " << round.round;
  }
  // Applicant pool stays balanced because nobody is discouraged.
  EXPECT_GT(mitigated.rounds.back().female_applicant_share, 0.4);
}

TEST(FeedbackLoopTest, ReweighingReducesGapVsNone) {
  Rng rng_a(7);
  Rng rng_b(7);
  FeedbackLoopOptions plain = SmallLoop();
  FeedbackLoopOptions reweighed = SmallLoop();
  reweighed.mitigation = LoopMitigation::kReweighing;
  double plain_final =
      RunFeedbackLoop(plain, &rng_a).ValueOrDie().rounds.back().dp_gap;
  double reweighed_final =
      RunFeedbackLoop(reweighed, &rng_b).ValueOrDie().rounds.back().dp_gap;
  EXPECT_LT(reweighed_final, plain_final);
}

TEST(FeedbackLoopTest, Validation) {
  Rng rng(1);
  FeedbackLoopOptions options = SmallLoop();
  EXPECT_FALSE(RunFeedbackLoop(options, nullptr).ok());
  options.rounds = 0;
  EXPECT_FALSE(RunFeedbackLoop(options, &rng).ok());
  options.rounds = 2;
  options.selection_rate = 0.0;
  EXPECT_FALSE(RunFeedbackLoop(options, &rng).ok());
  options.selection_rate = 0.3;
  options.discouragement = -1.0;
  EXPECT_FALSE(RunFeedbackLoop(options, &rng).ok());
}

}  // namespace
}  // namespace fairlaw::sim
