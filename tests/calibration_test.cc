#include <gtest/gtest.h>

#include "ml/calibration.h"
#include "stats/rng.h"

namespace fairlaw::ml {
namespace {

using fairlaw::stats::Rng;

TEST(ReliabilityDiagramTest, BinsCoverUnitInterval) {
  std::vector<int> labels = {0, 1, 0, 1};
  std::vector<double> scores = {0.05, 0.95, 0.45, 0.55};
  auto bins = ReliabilityDiagram(labels, scores, 10).ValueOrDie();
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_DOUBLE_EQ(bins[0].lower, 0.0);
  EXPECT_DOUBLE_EQ(bins[9].upper, 1.0);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[9].count, 1u);
  EXPECT_EQ(bins[4].count, 1u);
  EXPECT_EQ(bins[5].count, 1u);
  EXPECT_DOUBLE_EQ(bins[9].positive_rate, 1.0);
}

TEST(ReliabilityDiagramTest, ScoreOneGoesToLastBin) {
  std::vector<int> labels = {1};
  std::vector<double> scores = {1.0};
  auto bins = ReliabilityDiagram(labels, scores, 5).ValueOrDie();
  EXPECT_EQ(bins[4].count, 1u);
}

TEST(EceTest, PerfectlyCalibratedNearZero) {
  // Scores equal to the empirical rate per bin.
  Rng rng(5);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) {
    double p = (static_cast<int>(rng.UniformInt(10)) + 0.5) / 10.0;
    scores.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1 : 0);
  }
  EXPECT_LT(ExpectedCalibrationError(labels, scores, 10).ValueOrDie(), 0.02);
}

TEST(EceTest, MiscalibratedIsLarge) {
  // Model always says 0.9 but the true rate is 0.5.
  Rng rng(7);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(0.9);
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(ExpectedCalibrationError(labels, scores, 10).ValueOrDie(),
              0.4, 0.03);
}

TEST(BrierScoreTest, KnownValues) {
  std::vector<int> labels = {1, 0};
  std::vector<double> perfect = {1.0, 0.0};
  std::vector<double> worst = {0.0, 1.0};
  std::vector<double> hedged = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(BrierScore(labels, perfect).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore(labels, worst).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(BrierScore(labels, hedged).ValueOrDie(), 0.25);
}

TEST(CalibrationTest, Validation) {
  std::vector<int> labels = {0, 1};
  std::vector<double> out_of_range = {0.5, 1.5};
  std::vector<double> short_scores = {0.5};
  EXPECT_FALSE(ExpectedCalibrationError(labels, out_of_range).ok());
  EXPECT_FALSE(ExpectedCalibrationError(labels, short_scores).ok());
  EXPECT_FALSE(ReliabilityDiagram(labels, std::vector<double>{0.5, 0.5}, 0).ok());
  std::vector<int> bad_labels = {0, 3};
  EXPECT_FALSE(BrierScore(bad_labels, std::vector<double>{0.5, 0.5}).ok());
}

}  // namespace
}  // namespace fairlaw::ml
