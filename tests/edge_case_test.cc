// Zero-denominator and empty/degenerate-group edge cases across the
// division-heavy audit paths. The contract under test: degenerate inputs
// produce Status errors, never NaN/Inf smuggled into a legal conclusion.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "legal/four_fifths.h"
#include "metrics/conditional_metrics.h"
#include "metrics/group_metrics.h"
#include "stats/descriptive.h"

namespace fairlaw {
namespace {

metrics::MetricInput TwoGroupInput(int selected_a, int total_a,
                                   int selected_b, int total_b) {
  metrics::MetricInput input;
  for (int i = 0; i < total_a; ++i) {
    input.groups.push_back("a");
    input.predictions.push_back(i < selected_a ? 1 : 0);
  }
  for (int i = 0; i < total_b; ++i) {
    input.groups.push_back("b");
    input.predictions.push_back(i < selected_b ? 1 : 0);
  }
  return input;
}

TEST(EdgeCaseTest, FourFifthsRejectsAllZeroSelectionRates) {
  Result<legal::FourFifthsResult> result =
      legal::FourFifthsTest(TwoGroupInput(0, 20, 0, 20));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition())
      << result.status().ToString();
}

TEST(EdgeCaseTest, FourFifthsRejectsSingleGroup) {
  metrics::MetricInput input;
  for (int i = 0; i < 10; ++i) {
    input.groups.push_back("only");
    input.predictions.push_back(i % 2);
  }
  Result<legal::FourFifthsResult> result = legal::FourFifthsTest(input);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(EdgeCaseTest, FourFifthsSingleMemberGroupStaysFinite) {
  Result<legal::FourFifthsResult> result =
      legal::FourFifthsTest(TwoGroupInput(1, 1, 5, 10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const legal::FourFifthsGroup& group : result->groups) {
    EXPECT_TRUE(std::isfinite(group.impact_ratio)) << group.group;
    EXPECT_TRUE(std::isfinite(group.selection_rate)) << group.group;
  }
}

TEST(EdgeCaseTest, DisparateImpactRejectsAllZeroSelectionRates) {
  Result<metrics::MetricReport> report =
      metrics::DisparateImpactRatio(TwoGroupInput(0, 15, 0, 5));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsFailedPrecondition())
      << report.status().ToString();
}

TEST(EdgeCaseTest, MetricsRejectEmptyInput) {
  metrics::MetricInput empty;
  EXPECT_FALSE(metrics::DemographicParity(empty, 0.1).ok());
  EXPECT_FALSE(metrics::DisparateImpactRatio(empty).ok());
  EXPECT_FALSE(legal::FourFifthsTest(empty).ok());
}

TEST(EdgeCaseTest, EqualOpportunityRejectsGroupWithoutPositives) {
  metrics::MetricInput input = TwoGroupInput(3, 6, 2, 6);
  // Group "a" rows get label 1, group "b" rows all get label 0: TPR for
  // "b" would be 0/0.
  for (size_t i = 0; i < input.groups.size(); ++i) {
    input.labels.push_back(input.groups[i] == "a" ? 1 : 0);
  }
  Result<metrics::MetricReport> report =
      metrics::EqualOpportunity(input, 0.1);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalid());
}

TEST(EdgeCaseTest, PredictiveParityRejectsGroupWithoutPredictions) {
  metrics::MetricInput input = TwoGroupInput(3, 6, 0, 6);
  for (size_t i = 0; i < input.groups.size(); ++i) {
    input.labels.push_back(static_cast<int>(i % 2));
  }
  Result<metrics::MetricReport> report =
      metrics::PredictiveParity(input, 0.1);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalid());
}

TEST(EdgeCaseTest, ConditionalParityRejectsWhenNoStratumIsEvaluable) {
  metrics::MetricInput input = TwoGroupInput(2, 4, 1, 4);
  // Every row its own stratum: all strata fall below min_stratum_size.
  std::vector<std::string> strata;
  for (size_t i = 0; i < input.groups.size(); ++i) {
    strata.push_back("s" + std::to_string(i));
  }
  Result<metrics::ConditionalReport> report =
      metrics::ConditionalStatisticalParity(input, strata, 0.1,
                                            /*min_stratum_size=*/5);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalid());
}

TEST(EdgeCaseTest, DescriptiveStatsRejectEmptySamples) {
  std::vector<double> empty;
  EXPECT_FALSE(stats::Mean(empty).ok());
  EXPECT_FALSE(stats::Variance(empty).ok());
  EXPECT_FALSE(stats::StdDev(empty).ok());
  EXPECT_FALSE(stats::Min(empty).ok());
  EXPECT_FALSE(stats::Max(empty).ok());
  EXPECT_FALSE(stats::Median(empty).ok());
  EXPECT_FALSE(stats::Summarize(empty).ok());
}

TEST(EdgeCaseTest, DescriptiveStatsHandleSingleSample) {
  std::vector<double> one = {4.25};
  EXPECT_DOUBLE_EQ(stats::Mean(one).ValueOrDie(), 4.25);
  EXPECT_FALSE(stats::Variance(one).ok());  // needs n >= 2
  EXPECT_DOUBLE_EQ(stats::Quantile(one, 0.75).ValueOrDie(), 4.25);
  Result<stats::Summary> summary = stats::Summarize(one);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_DOUBLE_EQ(summary->stddev, 0.0);
  EXPECT_DOUBLE_EQ(summary->median, 4.25);
}

TEST(EdgeCaseTest, CorrelationRejectsZeroVariance) {
  std::vector<double> flat = {1.0, 1.0, 1.0, 1.0};
  std::vector<double> varying = {1.0, 2.0, 3.0, 4.0};
  Result<double> corr = stats::PearsonCorrelation(flat, varying);
  ASSERT_FALSE(corr.ok());
  EXPECT_TRUE(corr.status().IsInvalid());
}

TEST(EdgeCaseTest, WeightedMeanRejectsZeroTotalWeight) {
  std::vector<double> values = {1.0, 2.0};
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_FALSE(stats::WeightedMean(values, weights).ok());
}

}  // namespace
}  // namespace fairlaw
