// Unit tests for the shared analysis lexer (tools/analysis/lexer.h):
// the token substrate under fairlaw_lint and fairlaw_detcheck. The
// cases concentrate on the constructs that broke the old string-blanked
// scanner — raw strings with embedded quotes, splice-continued line
// comments — plus the lookup helpers the rule code leans on.
#include "tools/analysis/lexer.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace fairlaw::analysis {
namespace {

std::vector<Token> CodeTokens(std::string_view source) {
  std::vector<Token> out;
  for (const Token& token : Lex(source).tokens) {
    if (token.kind != TokenKind::kEndOfFile) out.push_back(token);
  }
  return out;
}

TEST(LexerTest, IdentifiersNumbersAndPunctuators) {
  const std::vector<Token> tokens = CodeTokens("int x = 0x1f + 1'000;");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_TRUE(tokens[0].IsIdent("int"));
  EXPECT_TRUE(tokens[1].IsIdent("x"));
  EXPECT_TRUE(tokens[2].IsPunct("="));
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].text, "0x1f");
  EXPECT_TRUE(tokens[4].IsPunct("+"));
  EXPECT_EQ(tokens[5].text, "1'000");
  EXPECT_TRUE(tokens[6].IsPunct(";"));
}

TEST(LexerTest, LongestMatchPunctuators) {
  const std::vector<Token> tokens =
      CodeTokens("a<<=b; c<=>d; e->*f; g...h; x::y;");
  std::vector<std::string> puncts;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kPunct) puncts.push_back(token.text);
  }
  const std::vector<std::string> expected = {"<<=", ";", "<=>", ";", "->*",
                                             ";",   "...", ";", "::", ";"};
  EXPECT_EQ(puncts, expected);
}

TEST(LexerTest, ClosingAngleBracketsStayOneToken) {
  // The lexer is template-blind by design: >> lexes as one shift token
  // and the rule code counts it as two closers (see UnorderedNames).
  const std::vector<Token> tokens = CodeTokens("map<int, vector<int>> m;");
  bool saw_shift = false;
  for (const Token& token : tokens) saw_shift |= token.IsPunct(">>");
  EXPECT_TRUE(saw_shift);
}

TEST(LexerTest, StringContentsAreNotCode) {
  const std::vector<Token> tokens =
      CodeTokens("log(\"call rand() and srand()\");");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsIdent("log"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "call rand() and srand()");
  // No identifier token spells the banned names.
  for (const Token& token : tokens) {
    EXPECT_FALSE(token.IsIdent("rand"));
    EXPECT_FALSE(token.IsIdent("srand"));
  }
}

TEST(LexerTest, EscapedQuoteDoesNotEndString) {
  const std::vector<Token> tokens = CodeTokens(R"(s = "a\"b"; t = 'c';)");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "a\\\"b");  // contents kept verbatim
  bool saw_char = false;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kCharLiteral) {
      saw_char = true;
      EXPECT_EQ(token.text, "c");
    }
  }
  EXPECT_TRUE(saw_char);
}

TEST(LexerTest, RawStringWithEmbeddedQuotesAndDelimiter) {
  // The construct that false-positived the old scanner: an embedded
  // closing quote flips naive in-string tracking, after which real code
  // looks like string text and vice versa.
  const std::string source =
      "auto s = R\"(prefer \"steady_clock\" via obs)\";\n"
      "auto t = R\"doc(text with )\" inside, plus rand)doc\";\n"
      "int after = 1;\n";
  const std::vector<Token> tokens = CodeTokens(source);
  size_t strings = 0;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kString) {
      ++strings;
      EXPECT_TRUE(token.text.find("steady_clock") != std::string::npos ||
                  token.text.find("plus rand") != std::string::npos);
    }
    EXPECT_FALSE(token.IsIdent("steady_clock"));
    EXPECT_FALSE(token.IsIdent("rand"));
  }
  EXPECT_EQ(strings, 2u);
  // Code resumes cleanly after each raw string.
  EXPECT_TRUE(tokens.back().IsPunct(";"));
  bool saw_after = false;
  for (const Token& token : tokens) saw_after |= token.IsIdent("after");
  EXPECT_TRUE(saw_after);
}

TEST(LexerTest, StringPrefixesLexAsStrings) {
  const std::vector<Token> tokens =
      CodeTokens("a(u8\"x\"); b(L\"y\"); c(U\"z\"); d(u\"w\");");
  size_t strings = 0;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kString) ++strings;
  }
  EXPECT_EQ(strings, 4u);
}

TEST(LexerTest, LineSpliceContinuesLineComment) {
  // A backslash-newline extends a // comment onto the next physical
  // line; `rand();` below it is commented out, not code.
  const std::string source =
      "int x = 1;\n"
      "// banned here: \\\n"
      "rand();\n"
      "int y = 2;\n";
  const LexResult lex = Lex(source);
  for (const Token& token : lex.tokens) {
    EXPECT_FALSE(token.IsIdent("rand"));
  }
  ASSERT_EQ(lex.comments.size(), 1u);
  EXPECT_EQ(lex.comments[0].line, 2u);
  EXPECT_EQ(lex.comments[0].end_line, 3u);
  // Line numbers stay physical across the splice.
  bool saw_y = false;
  for (const Token& token : lex.tokens) {
    if (token.IsIdent("y")) {
      saw_y = true;
      EXPECT_EQ(token.line, 4u);
    }
  }
  EXPECT_TRUE(saw_y);
}

TEST(LexerTest, SpliceInsideIdentifierJoinsIt) {
  const std::vector<Token> tokens = CodeTokens("int ste\\\nady = 0;");
  bool joined = false;
  for (const Token& token : tokens) joined |= token.IsIdent("steady");
  EXPECT_TRUE(joined);
}

TEST(LexerTest, SpliceRevertedInsideRawString) {
  // Phase 2 splices are undone inside raw string bodies: the backslash
  // and newline are literal content, and lexing continues correctly.
  const std::string source = "auto s = R\"(a\\\nb)\"; int tail = 3;\n";
  const std::vector<Token> tokens = CodeTokens(source);
  bool saw_string = false;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kString) {
      saw_string = true;
      EXPECT_EQ(token.text, "a\\\nb");
    }
  }
  EXPECT_TRUE(saw_string);
  bool saw_tail = false;
  for (const Token& token : tokens) saw_tail |= token.IsIdent("tail");
  EXPECT_TRUE(saw_tail);
}

TEST(LexerTest, MultiLineBlockCommentTracksLines) {
  const std::string source =
      "int a = 1;\n"
      "/* spans\n"
      "   three\n"
      "   lines */ int b = 2;\n";
  const LexResult lex = Lex(source);
  ASSERT_EQ(lex.comments.size(), 1u);
  EXPECT_EQ(lex.comments[0].line, 2u);
  EXPECT_EQ(lex.comments[0].end_line, 4u);
  for (const Token& token : lex.tokens) {
    if (token.IsIdent("b")) {
      EXPECT_EQ(token.line, 4u);
    }
  }
}

TEST(LexerTest, UnterminatedStringEndsAtNewline) {
  // Never-fails contract: a broken literal must not swallow the rest of
  // the file.
  const std::vector<Token> tokens = CodeTokens("auto s = \"oops;\nint z = 1;");
  bool saw_z = false;
  for (const Token& token : tokens) saw_z |= token.IsIdent("z");
  EXPECT_TRUE(saw_z);
}

TEST(LexerTest, TokenSeqAtMatchesCodeOnly) {
  const LexResult lex = Lex("std::vector<bool> flags;");
  const std::span<const Token> tokens(lex.tokens);
  EXPECT_TRUE(TokenSeqAt(tokens, 0, {"std", "::", "vector", "<", "bool"}));
  EXPECT_FALSE(TokenSeqAt(tokens, 1, {"std", "::"}));

  const LexResult quoted = Lex("f(\"std\");");
  EXPECT_FALSE(TokenSeqAt(std::span<const Token>(quoted.tokens), 2, {"std"}));
}

TEST(LexerTest, MatchingCloseHonorsNesting) {
  const LexResult lex = Lex("f(a[1], g(2, {3}));");
  const std::span<const Token> tokens(lex.tokens);
  ASSERT_TRUE(tokens[1].IsPunct("("));
  const size_t close = MatchingClose(tokens, 1);
  ASSERT_LT(close, tokens.size());
  EXPECT_TRUE(tokens[close].IsPunct(")"));
  EXPECT_TRUE(tokens[close + 1].IsPunct(";"));

  const LexResult broken = Lex("f(a");
  EXPECT_EQ(MatchingClose(std::span<const Token>(broken.tokens), 1),
            broken.tokens.size());
}

TEST(LexerTest, MarkerOnLineOrLineAbove) {
  const std::string source =
      "int a = 1;  // detcheck: allow-entropy\n"
      "// detcheck: allow-merge-order\n"
      "int b = 2;\n"
      "int c = 3;\n";
  const LexResult lex = Lex(source);
  EXPECT_TRUE(HasMarkerOnOrAbove(lex.comments, "detcheck: allow-entropy", 1));
  EXPECT_TRUE(
      HasMarkerOnOrAbove(lex.comments, "detcheck: allow-merge-order", 3));
  EXPECT_FALSE(
      HasMarkerOnOrAbove(lex.comments, "detcheck: allow-merge-order", 4));
  EXPECT_FALSE(HasMarkerOnOrAbove(lex.comments, "detcheck: allow-entropy", 3));
}

TEST(LexerTest, CursorPeeksPastEndSafely) {
  const LexResult lex = Lex("a b");
  TokenCursor cursor{std::span<const Token>(lex.tokens)};
  EXPECT_TRUE(cursor.Peek().IsIdent("a"));
  EXPECT_TRUE(cursor.Peek(1).IsIdent("b"));
  EXPECT_EQ(cursor.Peek(100).kind, TokenKind::kEndOfFile);
  cursor.Advance(2);
  EXPECT_TRUE(cursor.AtEnd());
  cursor.Seek(0);
  EXPECT_TRUE(cursor.MatchesSeq({"a", "b"}));
}

TEST(LexerTest, EveryStreamEndsWithEof) {
  for (const std::string_view source :
       {std::string_view(""), std::string_view("// only a comment\n"),
        std::string_view("int x;")}) {
    const LexResult lex = Lex(source);
    ASSERT_FALSE(lex.tokens.empty());
    EXPECT_EQ(lex.tokens.back().kind, TokenKind::kEndOfFile);
  }
}

}  // namespace
}  // namespace fairlaw::analysis
