// §III-G counterfactual fairness: flip the protected attribute, keep the
// exogenous noise, re-predict.
#include <gtest/gtest.h>

#include "causal/counterfactual.h"
#include "metrics/counterfactual_fairness.h"
#include "ml/logistic_regression.h"

namespace fairlaw::metrics {
namespace {

using causal::ConstantMechanism;
using causal::LinearMechanism;
using causal::NoiseSpec;
using causal::Scm;
using causal::ScmSample;
using fairlaw::stats::Rng;

/// gender -> education; skill -> education; model sees education only.
Scm MakeModel(double gender_effect) {
  Scm scm;
  EXPECT_TRUE(scm.AddNode({"gender", {}, ConstantMechanism(0.0),
                           NoiseSpec::Uniform(0.0, 1.0)})
                  .ok());
  EXPECT_TRUE(scm.AddNode({"skill", {}, ConstantMechanism(0.0),
                           NoiseSpec::Gaussian(0.0, 1.0)})
                  .ok());
  EXPECT_TRUE(scm.AddNode({"education",
                           {"skill", "gender"},
                           LinearMechanism({1.0, -gender_effect}, 0.0),
                           NoiseSpec::Gaussian(0.0, 0.2)})
                  .ok());
  return scm;
}

ml::LogisticRegression EducationModel() {
  // Fixed model: p = sigmoid(2 * education).
  ml::LogisticRegression model;
  model.SetParameters({2.0}, 0.0);
  return model;
}

/// Adapts a classifier to the ml-agnostic HardPredictor the audit takes.
HardPredictor Predictor(const ml::Classifier& model) {
  return [&model](std::span<const double> x) {
    return model.Predict(x, /*threshold=*/0.5);
  };
}

TEST(CounterfactualFairnessTest, FairWhenProtectedHasNoEffect) {
  Scm scm = MakeModel(/*gender_effect=*/0.0);
  Rng rng(3);
  ScmSample sample = scm.Sample(500, &rng).ValueOrDie();
  ml::LogisticRegression model = EducationModel();
  CounterfactualFairnessReport report =
      AuditCounterfactualFairness(scm, sample, "gender", 0.0, 1.0,
                                  Predictor(model), {"education"})
          .ValueOrDie();
  EXPECT_EQ(report.flipped, 0u);
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.positive_rate_a, report.positive_rate_b);
}

TEST(CounterfactualFairnessTest, UnfairUnderProxyEvenWithoutGenderFeature) {
  // The model never sees gender, but education is a descendant of gender:
  // flipping gender changes education changes the prediction — the
  // "fairness through unawareness" failure §IV-B warns about.
  Scm scm = MakeModel(/*gender_effect=*/2.0);
  Rng rng(5);
  ScmSample sample = scm.Sample(500, &rng).ValueOrDie();
  ml::LogisticRegression model = EducationModel();
  CounterfactualFairnessReport report =
      AuditCounterfactualFairness(scm, sample, "gender", 0.0, 1.0,
                                  Predictor(model), {"education"})
          .ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_GT(report.flip_rate, 0.3);
  // do(gender=0) is the favorable world.
  EXPECT_GT(report.positive_rate_a, report.positive_rate_b);
}

TEST(CounterfactualFairnessTest, ToleranceSemantics) {
  Scm scm = MakeModel(/*gender_effect=*/0.3);
  Rng rng(7);
  ScmSample sample = scm.Sample(500, &rng).ValueOrDie();
  ml::LogisticRegression model = EducationModel();
  CounterfactualFairnessReport strict =
      AuditCounterfactualFairness(scm, sample, "gender", 0.0, 1.0,
                                  Predictor(model), {"education"},
                                  /*tolerance=*/0.0)
          .ValueOrDie();
  CounterfactualFairnessReport lenient =
      AuditCounterfactualFairness(scm, sample, "gender", 0.0, 1.0,
                                  Predictor(model), {"education"},
                                  /*tolerance=*/1.0)
          .ValueOrDie();
  EXPECT_FALSE(strict.satisfied);
  EXPECT_TRUE(lenient.satisfied);
  EXPECT_EQ(strict.flipped, lenient.flipped);
}

TEST(CounterfactualFairnessTest, Validation) {
  Scm scm = MakeModel(1.0);
  Rng rng(9);
  ScmSample sample = scm.Sample(10, &rng).ValueOrDie();
  ml::LogisticRegression model = EducationModel();
  EXPECT_FALSE(AuditCounterfactualFairness(scm, sample, "nope", 0.0, 1.0,
                                           Predictor(model), {"education"})
                   .ok());
  EXPECT_FALSE(AuditCounterfactualFairness(scm, sample, "gender", 0.0, 1.0,
                                           Predictor(model), {})
                   .ok());
  EXPECT_FALSE(AuditCounterfactualFairness(scm, sample, "gender", 0.0, 1.0,
                                           Predictor(model), {"education"},
                                           -1.0)
                   .ok());
  EXPECT_FALSE(AuditCounterfactualFairness(scm, sample, "gender", 0.0, 1.0,
                                           Predictor(model),
                                           {"unknown_node"})
                   .ok());
}

}  // namespace
}  // namespace fairlaw::metrics
