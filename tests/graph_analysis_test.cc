#include <gtest/gtest.h>

#include "causal/counterfactual.h"
#include "causal/graph_analysis.h"
#include "simulation/scenarios.h"

namespace fairlaw::causal {
namespace {

using fairlaw::stats::Rng;

/// a -> b -> d; a -> c; e isolated.
Scm MakeDiamondish() {
  Scm scm;
  auto add = [&scm](const std::string& name,
                    std::vector<std::string> parents) {
    std::vector<double> weights(parents.size(), 1.0);
    Mechanism mechanism = parents.empty()
                              ? ConstantMechanism(0.0)
                              : LinearMechanism(weights, 0.0);
    EXPECT_TRUE(scm.AddNode({name, std::move(parents), mechanism,
                             NoiseSpec::Gaussian(0.0, 1.0)})
                    .ok());
  };
  add("a", {});
  add("b", {"a"});
  add("c", {"a"});
  add("d", {"b"});
  add("e", {});
  return scm;
}

TEST(GraphAnalysisTest, Children) {
  Scm scm = MakeDiamondish();
  EXPECT_EQ(Children(scm, "a").ValueOrDie(),
            (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(Children(scm, "e").ValueOrDie().empty());
  EXPECT_FALSE(Children(scm, "zzz").ok());
}

TEST(GraphAnalysisTest, DescendantsTransitive) {
  Scm scm = MakeDiamondish();
  EXPECT_EQ(Descendants(scm, "a").ValueOrDie(),
            (std::vector<std::string>{"b", "c", "d"}));
  EXPECT_EQ(Descendants(scm, "b").ValueOrDie(),
            (std::vector<std::string>{"d"}));
  EXPECT_TRUE(Descendants(scm, "d").ValueOrDie().empty());
}

TEST(GraphAnalysisTest, AncestorsTransitive) {
  Scm scm = MakeDiamondish();
  std::vector<std::string> ancestors = Ancestors(scm, "d").ValueOrDie();
  EXPECT_EQ(ancestors.size(), 2u);
  EXPECT_NE(std::find(ancestors.begin(), ancestors.end(), "a"),
            ancestors.end());
  EXPECT_NE(std::find(ancestors.begin(), ancestors.end(), "b"),
            ancestors.end());
  EXPECT_TRUE(Ancestors(scm, "a").ValueOrDie().empty());
}

TEST(GraphAnalysisTest, DirectedPath) {
  Scm scm = MakeDiamondish();
  EXPECT_EQ(FindDirectedPath(scm, "a", "d").ValueOrDie(),
            (std::vector<std::string>{"a", "b", "d"}));
  EXPECT_TRUE(FindDirectedPath(scm, "c", "d").ValueOrDie().empty());
  EXPECT_TRUE(FindDirectedPath(scm, "d", "a").ValueOrDie().empty());
  EXPECT_EQ(FindDirectedPath(scm, "a", "a").ValueOrDie(),
            (std::vector<std::string>{"a"}));
}

TEST(GraphAnalysisTest, FeaturePathReportSeparatesProxiesFromClean) {
  Scm scm = MakeDiamondish();
  FeaturePathReport report =
      AnalyzeFeaturePaths(scm, "a", {"d", "e", "c"}).ValueOrDie();
  EXPECT_EQ(report.proxy_features, (std::vector<std::string>{"d", "c"}));
  EXPECT_EQ(report.clean_features, (std::vector<std::string>{"e"}));
  EXPECT_FALSE(report.counterfactually_fair_by_construction);
  ASSERT_EQ(report.witness_paths.size(), 2u);
  EXPECT_EQ(report.witness_paths[0],
            (std::vector<std::string>{"a", "b", "d"}));

  FeaturePathReport clean =
      AnalyzeFeaturePaths(scm, "a", {"e"}).ValueOrDie();
  EXPECT_TRUE(clean.counterfactually_fair_by_construction);
  EXPECT_FALSE(AnalyzeFeaturePaths(scm, "a", {}).ok());
  EXPECT_FALSE(AnalyzeFeaturePaths(scm, "a", {"zzz"}).ok());
}

TEST(GraphAnalysisTest, HiringScenarioFeaturesAreAllGenderDescendants) {
  // In the hiring SCM every model feature descends from gender via the
  // university proxy edge — the structural reason 'unawareness' fails
  // there (§IV-B).
  Rng rng(3);
  sim::HiringOptions options;
  options.n = 100;
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, &rng).ValueOrDie();
  FeaturePathReport report =
      AnalyzeFeaturePaths(scenario.scm, "gender", scenario.feature_columns)
          .ValueOrDie();
  EXPECT_EQ(report.proxy_features, (std::vector<std::string>{"university"}));
  EXPECT_EQ(report.clean_features,
            (std::vector<std::string>{"experience", "test_score"}));
}

}  // namespace
}  // namespace fairlaw::causal
