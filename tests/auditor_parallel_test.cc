// Parallel audit path: byte-identical output for every thread count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "audit/auditor.h"
#include "data/csv.h"
#include "data/table.h"

namespace fairlaw::audit {
namespace {

/// A table big enough that parallel metric evaluation actually
/// interleaves: 240 rows, two groups, labels, scores, and a stratum.
data::Table MakeTable() {
  std::ostringstream csv;
  csv << "sex,pred,label,score,dept\n";
  for (int i = 0; i < 240; ++i) {
    const bool male = i % 2 == 0;
    const int pred = (i % 3 == 0) ? 1 : 0;
    const int label = (i % 5 == 0) ? 1 - pred : pred;
    const double score = (pred == 1) ? 0.55 + 0.3 * ((i % 7) / 7.0)
                                     : 0.10 + 0.3 * ((i % 7) / 7.0);
    csv << (male ? "male" : "female") << ',' << pred << ',' << label << ','
        << score << ',' << (i % 4 < 2 ? "eng" : "sales") << '\n';
  }
  return data::ReadCsvString(csv.str()).ValueOrDie();
}

AuditConfig MakeConfig(size_t num_threads) {
  AuditConfig config;
  config.protected_column = "sex";
  config.prediction_column = "pred";
  config.label_column = "label";
  config.score_column = "score";
  config.strata_columns = {"dept"};
  config.num_threads = num_threads;
  return config;
}

TEST(AuditorParallelTest, RenderIsByteIdenticalAcrossThreadCounts) {
  const data::Table table = MakeTable();
  const std::string serial =
      RunAudit(table, MakeConfig(1)).ValueOrDie().Render();
  EXPECT_FALSE(serial.empty());
  for (const size_t threads : {2u, 8u, 0u}) {
    const std::string parallel =
        RunAudit(table, MakeConfig(threads)).ValueOrDie().Render();
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(AuditorParallelTest, ReportOrderMatchesSerialRun) {
  const data::Table table = MakeTable();
  const AuditResult serial = RunAudit(table, MakeConfig(1)).ValueOrDie();
  const AuditResult parallel = RunAudit(table, MakeConfig(8)).ValueOrDie();
  ASSERT_EQ(parallel.reports.size(), serial.reports.size());
  for (size_t i = 0; i < serial.reports.size(); ++i) {
    EXPECT_EQ(parallel.reports[i].metric_name, serial.reports[i].metric_name)
        << i;
  }
  ASSERT_EQ(parallel.conditional_reports.size(),
            serial.conditional_reports.size());
  EXPECT_EQ(parallel.all_satisfied, serial.all_satisfied);
  EXPECT_EQ(parallel.calibration.has_value(), serial.calibration.has_value());
}

TEST(AuditorParallelTest, ErrorsMatchSerialRun) {
  // A metric failure (single-group input breaks the gap metrics) must
  // surface the same error whether evaluated serially or in parallel.
  data::Table table = data::ReadCsvString(
                          "sex,pred\n"
                          "male,1\nmale,0\nmale,1\nmale,0\n")
                          .ValueOrDie();
  AuditConfig config;
  config.protected_column = "sex";
  config.prediction_column = "pred";

  config.num_threads = 1;
  const auto serial = RunAudit(table, config);
  config.num_threads = 8;
  const auto parallel = RunAudit(table, config);
  ASSERT_EQ(serial.ok(), parallel.ok());
  if (!serial.ok()) {
    EXPECT_EQ(parallel.status().ToString(), serial.status().ToString());
  }
}

TEST(AuditorParallelTest, ThreadCountZeroUsesHardwareConcurrency) {
  const data::Table table = MakeTable();
  EXPECT_TRUE(RunAudit(table, MakeConfig(0)).ok());
}

}  // namespace
}  // namespace fairlaw::audit
