// Exact randomized equalized-odds post-processing (Hardt et al.).
#include <gtest/gtest.h>

#include <map>

#include "metrics/group_metrics.h"
#include "mitigation/randomized_eodds.h"
#include "stats/rng.h"

namespace fairlaw::mitigation {
namespace {

using fairlaw::stats::Rng;

struct Scored {
  std::vector<std::string> groups;
  std::vector<double> scores;
  std::vector<int> labels;
};

/// Group b's scores are shifted down AND noisier, so the two ROC curves
/// genuinely differ — the case deterministic thresholds cannot equalize.
Scored MakeScored(size_t n, uint64_t seed) {
  Rng rng(seed);
  Scored data;
  for (size_t i = 0; i < n; ++i) {
    bool b = rng.Bernoulli(0.5);
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    double quality = b ? 1.0 : 2.0;  // group b scores are less informative
    double score = label == 1 ? rng.Normal(quality, 1.0)
                              : rng.Normal(0.0, 1.0);
    if (b) score -= 0.5;
    data.groups.push_back(b ? "b" : "a");
    data.scores.push_back(score);
    data.labels.push_back(label);
  }
  return data;
}

metrics::MetricInput Evaluate(const Scored& data,
                              const std::vector<int>& decisions) {
  metrics::MetricInput input;
  input.groups = data.groups;
  input.predictions = decisions;
  input.labels = data.labels;
  return input;
}

TEST(RandomizedEOddsTest, EqualizesBothRatesInExpectation) {
  Scored data = MakeScored(20000, 7);
  RandomizedEqualizedOdds rule =
      RandomizedEqualizedOdds::Fit(data.groups, data.scores, data.labels)
          .ValueOrDie();
  Rng rng(11);
  std::vector<int> decisions =
      rule.Apply(data.groups, data.scores, &rng).ValueOrDie();
  metrics::MetricReport report =
      metrics::EqualizedOdds(Evaluate(data, decisions), 0.03).ValueOrDie();
  EXPECT_TRUE(report.satisfied) << metrics::RenderReport(report);
  // Rates land near the fitted target point.
  for (const metrics::GroupStats& gs : report.groups) {
    EXPECT_NEAR(gs.tpr, rule.target_tpr(), 0.03) << gs.group;
    EXPECT_NEAR(gs.fpr, rule.target_fpr(), 0.03) << gs.group;
  }
  // The target is a useful operating point, not the trivial corner.
  EXPECT_GT(rule.target_tpr(), rule.target_fpr() + 0.2);
}

TEST(RandomizedEOddsTest, TargetLiesOnLowerEnvelope) {
  // The shared target TPR cannot exceed what the weaker group's ROC
  // supports; with group b strictly less informative, the target is
  // below group a's achievable TPR at that FPR.
  Scored data = MakeScored(20000, 13);
  RandomizedEqualizedOdds rule =
      RandomizedEqualizedOdds::Fit(data.groups, data.scores, data.labels)
          .ValueOrDie();
  EXPECT_LE(rule.target_tpr(), 1.0);
  EXPECT_GE(rule.target_tpr(), rule.target_fpr());
}

TEST(RandomizedEOddsTest, ProbabilitiesAreValidAndMonotoneInScore) {
  Scored data = MakeScored(4000, 17);
  RandomizedEqualizedOdds rule =
      RandomizedEqualizedOdds::Fit(data.groups, data.scores, data.labels)
          .ValueOrDie();
  double previous = -1.0;
  for (double score : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    double p = rule.PositiveProbability("a", score).ValueOrDie();
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_GE(p, previous);  // mixtures of threshold rules are monotone
    previous = p;
  }
  EXPECT_TRUE(rule.PositiveProbability("zzz", 0.0).status().IsNotFound());
}

TEST(RandomizedEOddsTest, Validation) {
  Rng rng(1);
  std::vector<std::string> one_group = {"a", "a"};
  std::vector<double> scores = {0.1, 0.9};
  std::vector<int> labels = {0, 1};
  EXPECT_FALSE(
      RandomizedEqualizedOdds::Fit(one_group, scores, labels).ok());
  std::vector<std::string> groups = {"a", "b"};
  EXPECT_FALSE(RandomizedEqualizedOdds::Fit(groups, scores, {0, 2}).ok());
  EXPECT_FALSE(RandomizedEqualizedOdds::Fit(groups, {0.1}, labels).ok());
  // Group without positives.
  std::vector<std::string> four = {"a", "a", "b", "b"};
  std::vector<double> s4 = {0.1, 0.9, 0.2, 0.8};
  std::vector<int> no_pos_in_b = {0, 1, 0, 0};
  EXPECT_FALSE(RandomizedEqualizedOdds::Fit(four, s4, no_pos_in_b).ok());
  // Apply validation.
  std::vector<int> ok_labels = {0, 1, 0, 1};
  RandomizedEqualizedOdds rule =
      RandomizedEqualizedOdds::Fit(four, s4, ok_labels).ValueOrDie();
  EXPECT_FALSE(rule.Apply({"a"}, {0.5, 0.6}, &rng).ok());
  std::vector<std::string> g1 = {"a"};
  std::vector<double> sc1 = {0.5};
  EXPECT_FALSE(rule.Apply(g1, sc1, nullptr).ok());
}

}  // namespace
}  // namespace fairlaw::mitigation
