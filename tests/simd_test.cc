// Equivalence tests for the sanctioned SIMD wrapper (base/simd.h).
//
// The integer kernels carry a byte-identical contract: whatever backend
// the build selected must return exactly the scalar reference result on
// every input, including the ragged tails the vector loops peel off.
// The tests run the dispatch kernel against the scalar namespace on the
// edge sizes the Bitmap invariants care about (0, 1, 63, 64, 65, 8191
// bits) plus word counts straddling the 4-word vector width. On a
// scalar build the comparison is trivially scalar-vs-scalar, which is
// exactly the point: the same suite must pass on every backend.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "base/simd.h"
#include "data/bitmap.h"
#include "stats/rng.h"

namespace fairlaw {
namespace {

using data::Bitmap;
using stats::Rng;

std::vector<uint64_t> RandomWords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) w = rng.Next();
  return words;
}

// Word counts covering: empty, sub-vector tails, the exact 4-word vector
// width, one past it, and a large buffer with a ragged tail.
const size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 127, 128, 129};

TEST(SimdTest, PopcountMatchesScalarAtEveryWordCount) {
  for (const size_t n : kWordCounts) {
    const std::vector<uint64_t> a = RandomWords(n, 0xA0 + n);
    EXPECT_EQ(simd::PopcountWords(a.data(), n),
              simd::scalar::PopcountWords(a.data(), n))
        << "n=" << n << " backend=" << simd::kBackendName;
  }
}

TEST(SimdTest, FusedKernelsMatchScalarAtEveryWordCount) {
  for (const size_t n : kWordCounts) {
    const std::vector<uint64_t> a = RandomWords(n, 0xB0 + n);
    const std::vector<uint64_t> b = RandomWords(n, 0xC0 + n);
    const std::vector<uint64_t> c = RandomWords(n, 0xD0 + n);
    EXPECT_EQ(simd::AndPopcountWords(a.data(), b.data(), n),
              simd::scalar::AndPopcountWords(a.data(), b.data(), n))
        << "n=" << n;
    EXPECT_EQ(simd::And3PopcountWords(a.data(), b.data(), c.data(), n),
              simd::scalar::And3PopcountWords(a.data(), b.data(), c.data(),
                                              n))
        << "n=" << n;
    EXPECT_EQ(simd::AndNotPopcountWords(a.data(), b.data(), n),
              simd::scalar::AndNotPopcountWords(a.data(), b.data(), n))
        << "n=" << n;
    EXPECT_EQ(
        simd::AndAndNotPopcountWords(a.data(), b.data(), c.data(), n),
        simd::scalar::AndAndNotPopcountWords(a.data(), b.data(), c.data(),
                                             n))
        << "n=" << n;
  }
}

TEST(SimdTest, AndIntoMatchesScalarResultAndWrites) {
  for (const size_t n : kWordCounts) {
    const std::vector<uint64_t> a = RandomWords(n, 0xE0 + n);
    const std::vector<uint64_t> b = RandomWords(n, 0xF0 + n);
    std::vector<uint64_t> dst_simd(n, 0);
    std::vector<uint64_t> dst_scalar(n, 0);
    const uint64_t count_simd =
        simd::AndIntoPopcountWords(a.data(), b.data(), dst_simd.data(), n);
    const uint64_t count_scalar = simd::scalar::AndIntoPopcountWords(
        a.data(), b.data(), dst_scalar.data(), n);
    EXPECT_EQ(count_simd, count_scalar) << "n=" << n;
    EXPECT_EQ(dst_simd, dst_scalar) << "n=" << n;
  }
}

// Bitmap-level equivalence at the bit sizes where tail masking matters:
// the fused kernels must agree with a bit-at-a-time reference count.
TEST(SimdTest, BitmapFusedKernelsMatchReferenceAtEdgeSizes) {
  for (const size_t bits : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                            size_t{65}, size_t{8191}}) {
    Rng rng(0x51 + bits);
    Bitmap a(bits);
    Bitmap b(bits);
    Bitmap c(bits);
    for (size_t i = 0; i < bits; ++i) {
      if ((rng.Next() & 1) != 0) a.Set(i);
      if ((rng.Next() & 1) != 0) b.Set(i);
      if ((rng.Next() & 1) != 0) c.Set(i);
    }
    size_t and_ref = 0;
    size_t and3_ref = 0;
    size_t andnot_ref = 0;
    size_t andandnot_ref = 0;
    for (size_t i = 0; i < bits; ++i) {
      const bool ga = a.Test(i);
      const bool gb = b.Test(i);
      const bool gc = c.Test(i);
      if (ga && gb) ++and_ref;
      if (ga && gb && gc) ++and3_ref;
      if (ga && !gb) ++andnot_ref;
      if (ga && gb && !gc) ++andandnot_ref;
    }
    EXPECT_EQ(Bitmap::AndCount(a, b), and_ref) << "bits=" << bits;
    EXPECT_EQ(Bitmap::AndCount3(a, b, c), and3_ref) << "bits=" << bits;
    EXPECT_EQ(Bitmap::AndNotCount(a, b), andnot_ref) << "bits=" << bits;
    EXPECT_EQ(Bitmap::AndAndNotCount(a, b, c), andandnot_ref)
        << "bits=" << bits;
  }
}

// The float kernels are deterministic within a build but carry a
// tolerance across backends: the vectorized cosine is a polynomial
// approximation, accurate to ~1e-10 per element.
TEST(SimdTest, CosSumWithinToleranceOfScalar) {
  Rng rng(0x105);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                         size_t{5}, size_t{4096}}) {
    std::vector<double> args(n);
    for (double& v : args) v = rng.Normal(0.0, 50.0);
    const double vectorized = simd::CosSum(args.data(), n);
    const double reference = simd::scalar::CosSum(args.data(), n);
    EXPECT_NEAR(vectorized, reference,
                1e-9 * static_cast<double>(n + 1))
        << "n=" << n << " backend=" << simd::kBackendName;
  }
}

TEST(SimdTest, CosSumAffineWithinToleranceOfScalar) {
  Rng rng(0x106);
  for (const size_t n : {size_t{1}, size_t{5}, size_t{1024}}) {
    std::vector<double> xs(n);
    for (double& v : xs) v = rng.Normal(0.0, 3.0);
    const double scale = 2.75;
    const double offset = 1.25;
    const double vectorized =
        simd::CosSumAffine(xs.data(), n, scale, offset);
    const double reference =
        simd::scalar::CosSumAffine(xs.data(), n, scale, offset);
    EXPECT_NEAR(vectorized, reference,
                1e-9 * static_cast<double>(n + 1))
        << "n=" << n;
  }
}

// Calling the dispatch kernel twice on the same input must return the
// same bits — no internal state, no input-dependent control flow.
TEST(SimdTest, KernelsArePureFunctions) {
  const std::vector<uint64_t> a = RandomWords(129, 0x200);
  const std::vector<uint64_t> b = RandomWords(129, 0x201);
  EXPECT_EQ(simd::AndPopcountWords(a.data(), b.data(), a.size()),
            simd::AndPopcountWords(a.data(), b.data(), a.size()));
  std::vector<double> xs(513);
  Rng rng(0x202);
  for (double& v : xs) v = rng.Normal(0.0, 10.0);
  const double first = simd::CosSum(xs.data(), xs.size());
  const double second = simd::CosSum(xs.data(), xs.size());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace fairlaw
