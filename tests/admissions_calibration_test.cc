// Admissions scenario + calibration-within-groups wired into RunAudit.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "audit/proxy.h"
#include "causal/graph_analysis.h"
#include "simulation/scenarios.h"

namespace fairlaw {
namespace {

using fairlaw::stats::Rng;

TEST(AdmissionsScenarioTest, StructuralChannelsPresent) {
  Rng rng(3);
  sim::AdmissionsOptions options;
  options.n = 8000;
  sim::ScenarioData scenario =
      sim::MakeAdmissionsScenario(options, &rng).ValueOrDie();
  EXPECT_EQ(scenario.protected_columns,
            (std::vector<std::string>{"first_gen"}));

  // Historical admissions disadvantage first-gen applicants...
  audit::AuditConfig config;
  config.protected_column = "first_gen";
  config.prediction_column = "admitted";
  audit::AuditResult result =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  EXPECT_GT(result.Find("demographic_parity").ValueOrDie()->max_gap, 0.1);

  // ...while merit is blind to first-gen status.
  config.prediction_column = "merit";
  audit::AuditResult merit =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  EXPECT_LT(merit.Find("demographic_parity").ValueOrDie()->max_gap, 0.05);

  // test_score and legacy are structural descendants of first_gen; gpa
  // is clean.
  causal::FeaturePathReport paths =
      causal::AnalyzeFeaturePaths(scenario.scm, "first_gen",
                                  scenario.feature_columns)
          .ValueOrDie();
  EXPECT_EQ(paths.clean_features, (std::vector<std::string>{"gpa"}));
  EXPECT_EQ(paths.proxy_features,
            (std::vector<std::string>{"test_score", "legacy"}));

  // The statistical proxy detector agrees on the strong channels.
  auto findings = audit::DetectProxies(scenario.table, "first_gen",
                                       {"gpa", "test_score", "legacy"})
                      .ValueOrDie();
  for (const audit::ProxyFinding& finding : findings) {
    if (finding.feature == "gpa") {
      EXPECT_FALSE(finding.flagged);
    }
    if (finding.feature == "legacy") {
      EXPECT_TRUE(finding.flagged);
    }
  }
}

TEST(AdmissionsScenarioTest, Validation) {
  Rng rng(5);
  sim::AdmissionsOptions options;
  options.n = 5;
  EXPECT_FALSE(sim::MakeAdmissionsScenario(options, &rng).ok());
  options.n = 100;
  options.first_gen_share = 1.0;
  EXPECT_FALSE(sim::MakeAdmissionsScenario(options, &rng).ok());
}

data::Table ScoredTable(bool miscalibrated_for_b) {
  // Scores 0.8/0.2; group a outcomes match the scores, group b outcomes
  // optionally don't.
  Rng rng(9);
  std::vector<std::string> groups;
  std::vector<double> scores;
  std::vector<int64_t> predictions;
  std::vector<int64_t> labels;
  for (int i = 0; i < 2000; ++i) {
    bool b = i % 2 == 0;
    double score = rng.Bernoulli(0.5) ? 0.8 : 0.2;
    double outcome_rate = score;
    if (b && miscalibrated_for_b) outcome_rate = score - 0.15;
    groups.push_back(b ? "b" : "a");
    scores.push_back(score);
    predictions.push_back(score >= 0.5 ? 1 : 0);
    labels.push_back(rng.Bernoulli(outcome_rate) ? 1 : 0);
  }
  auto schema =
      data::Schema::Make({{"g", data::DataType::kString},
                          {"score", data::DataType::kDouble},
                          {"pred", data::DataType::kInt64},
                          {"label", data::DataType::kInt64}})
          .ValueOrDie();
  return data::Table::Make(
             schema,
             {data::Column::FromStrings(groups),
              data::Column::FromDoubles(scores),
              data::Column::FromInt64s(predictions),
              data::Column::FromInt64s(labels)})
      .ValueOrDie();
}

TEST(CalibrationInAuditTest, MiscalibratedGroupFlagsTheAudit) {
  data::Table table = ScoredTable(/*miscalibrated_for_b=*/true);
  audit::AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "pred";
  config.label_column = "label";
  config.score_column = "score";
  config.calibration_tolerance = 0.05;
  audit::AuditResult result = audit::RunAudit(table, config).ValueOrDie();
  ASSERT_TRUE(result.calibration.has_value());
  EXPECT_FALSE(result.calibration->satisfied);
  EXPECT_GT(result.calibration->max_ece, 0.08);
  // The worse-calibrated group is b.
  double ece_a = 0.0;
  double ece_b = 0.0;
  for (const metrics::GroupCalibration& gc : result.calibration->groups) {
    (gc.group == "a" ? ece_a : ece_b) = gc.ece;
  }
  EXPECT_GT(ece_b, ece_a);
  EXPECT_NE(result.Render().find("calibration_within_groups"),
            std::string::npos);
}

TEST(CalibrationInAuditTest, WellCalibratedPasses) {
  data::Table table = ScoredTable(/*miscalibrated_for_b=*/false);
  audit::AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "pred";
  config.label_column = "label";
  config.score_column = "score";
  config.calibration_tolerance = 0.06;
  audit::AuditResult result = audit::RunAudit(table, config).ValueOrDie();
  ASSERT_TRUE(result.calibration.has_value());
  EXPECT_TRUE(result.calibration->satisfied);
}

TEST(CalibrationInAuditTest, ScoreColumnRequiresLabels) {
  data::Table table = ScoredTable(false);
  audit::AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "pred";
  config.score_column = "score";  // no label column
  EXPECT_FALSE(audit::RunAudit(table, config).ok());
}

}  // namespace
}  // namespace fairlaw
